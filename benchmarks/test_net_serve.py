"""Benchmark: loopback load generation against the network fleet server.

The headline claim of the service facade PR: a single-CPU
:class:`~repro.service.net.FleetServer` ingesting ``repro-ticks/v1``
binary frames over a loopback socket sustains **>= 1000 simulated
nodes at serving cadence** (1 sample/s/node telemetry, so aggregate
node-samples/s is directly the number of nodes the server keeps up
with), while the alert JSONL stays *byte-identical* to the in-process
replay of the same trained fleet.

The fleets are built once (4 trained base nodes) and scaled with
:func:`repro.service.api.replicate_setup` — replicas share models and
held-out data by reference, so the benchmark measures serving
throughput, not training time.

Results merge into ``results/net_serve.csv`` and ``BENCH_service.json``
(keys ``net_*``); ``tests/test_bench_guard.py`` enforces the
1000-node floor and the byte-identity bit.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from pathlib import Path

import pytest

from benchmarks.conftest import SCALE, merge_csv
from repro.service.api import (
    ServiceConfig,
    build_detector,
    build_setup,
    replay,
    replicate_setup,
)
from repro.service.net import FleetServer, ListAlertSink, loadgen

ROOT = Path(__file__).resolve().parent.parent
RESULTS_CSV = ROOT / "results" / "net_serve.csv"
SUMMARY_JSON = ROOT / "BENCH_service.json"
CSV_HEADERS = (
    "Nodes",
    "Format",
    "Ticks",
    "Frames",
    "Samples/s",
    "p50 [ms]",
    "p99 [ms]",
    "Identical",
)

#: Trained base fleet; every benchmark fleet is a by-reference replica.
BASE_NODES = 4
T = int(1200 * SCALE)
#: Serving cadence: 30 samples per frame — at 1 Hz telemetry each tick
#: carries 30 s of fleet data, the batching a real deployment uses.
CHUNK = 30
BLOCKS = 20
TREES = 20
FLEET_SIZES = (250, 1000)

_rows: list[tuple] = []
_summary: dict[str, float] = {}


@pytest.fixture(scope="module")
def base_config() -> ServiceConfig:
    return ServiceConfig(
        nodes=BASE_NODES,
        t=T,
        blocks=BLOCKS,
        trees=TREES,
        chunk=CHUNK,
        backend="fused",
    )


@pytest.fixture(scope="module")
def base_setup(base_config):
    return build_setup(base_config)


@pytest.mark.parametrize("nodes", FLEET_SIZES)
def test_loopback_serve_sustains_fleet(base_config, base_setup, nodes):
    setup = replicate_setup(base_setup, nodes)
    # In-process reference replay: the byte-identity baseline.
    ref_sink = ListAlertSink()
    outcome = replay(base_config, setup, sinks=(ref_sink,))
    # Network path: server thread + blocking loopback load generator.
    net_sink = ListAlertSink()
    server = FleetServer(
        build_detector(base_config, setup),
        sinks=(net_sink,),
        exit_on_idle=True,
    )
    thread = server.start_background()
    assert server.ready.wait(120), "server failed to start"
    load = loadgen(
        setup, ("127.0.0.1", server.port), chunk=CHUNK, fmt="binary"
    )
    thread.join(600)
    assert not thread.is_alive(), "server did not drain and exit"
    snap = server.stats.snapshot()
    identical = net_sink.text() == ref_sink.text()
    assert snap["ticks"] == load["ticks"]
    assert snap["backpressure"]["dropped"] == 0
    assert identical, (
        f"{nodes}-node fleet: network alert stream diverged from the "
        f"in-process replay"
    )
    assert len(ref_sink.lines) > 0, "benchmark fleet raised no alerts"
    # 1 Hz telemetry -> aggregate samples/s == nodes sustained.
    sustained = int(snap["samples_per_s"])
    _rows.append(
        (
            nodes,
            "binary",
            snap["ticks"],
            snap["frames"],
            round(snap["samples_per_s"], 1),
            snap["tick_latency_p50_ms"],
            snap["tick_latency_p99_ms"],
            int(identical),
        )
    )
    _summary[f"net{nodes}_samples_per_s"] = round(snap["samples_per_s"], 1)
    _summary[f"net{nodes}_tick_p50_ms"] = snap["tick_latency_p50_ms"]
    _summary[f"net{nodes}_tick_p99_ms"] = snap["tick_latency_p99_ms"]
    if nodes == max(FLEET_SIZES):
        _summary["net_samples_per_s"] = round(snap["samples_per_s"], 1)
        _summary["net_tick_p50_ms"] = snap["tick_latency_p50_ms"]
        _summary["net_tick_p99_ms"] = snap["tick_latency_p99_ms"]
        _summary["net_nodes_sustained"] = sustained
        _summary["net_byte_identical"] = int(identical)
        _summary["net_events"] = len(net_sink.lines)
        _summary["net_replay_events"] = len(outcome.events)
    # Noise floor here; the committed 1000-node headline is guarded by
    # tests/test_bench_guard.py.
    assert sustained >= nodes, (
        f"server sustained only {sustained} node-samples/s for a "
        f"{nodes}-node fleet at 1 Hz cadence"
    )


def _journal_root(tmp_path: Path) -> Path:
    """Journal directory for the overhead benchmark — tmpfs when
    available.

    Every node-sample carries ~1 KiB of journal (128 sensors x 8 B),
    so this max-speed replay needs ~100 MB/s of journal bandwidth —
    more than a CI-class virtio disk sustains, while the *claimed*
    serving cadence (1000 nodes at 1 Hz) needs ~1 MB/s, which any disk
    covers.  Benchmarking on tmpfs therefore floors what the code is
    responsible for — encode + CRC + buffering + syscalls on the
    serving path — instead of the host's sequential disk bandwidth.
    """
    shm = Path("/dev/shm")
    if shm.is_dir() and os.access(shm, os.W_OK):
        return Path(tempfile.mkdtemp(prefix="repro-walbench-", dir=shm))
    return tmp_path


def test_wal_overhead(base_config, base_setup, tmp_path):
    """Durability tax: the same max-size fleet served with a write-ahead
    journal (fsync policy ``tick``).

    Records ``net_wal_samples_per_s`` and the keep ratio against the
    no-WAL run from this session; the committed floors live in
    ``tests/test_bench_guard.py``.  Note what the keep ratio *is*: at
    max replay speed every node-sample drags ~1 KiB through the kernel
    write path, so the ratio compares detector-compute-per-byte with
    kernel-write-cost-per-byte — it is a property of the host's write
    path as much as of this code.  The steady-state claim (1000 nodes
    at 1 Hz needs ~1 MB/s of journal) is guarded separately via the
    absolute ``net_wal_samples_per_s`` floor.
    """
    nodes = max(FLEET_SIZES)
    base_key = f"net{nodes}_samples_per_s"
    assert base_key in _summary, "no-WAL baseline must run first"
    setup = replicate_setup(base_setup, nodes)
    ref_sink = ListAlertSink()
    replay(base_config, setup, sinks=(ref_sink,))
    net_sink = ListAlertSink()
    journal = _journal_root(tmp_path)
    server = FleetServer(
        build_detector(base_config, setup),
        sinks=(net_sink,),
        exit_on_idle=True,
        wal=journal / "wal",
        wal_fsync="tick",
    )
    try:
        thread = server.start_background()
        assert server.ready.wait(120), "server failed to start"
        load = loadgen(
            setup, ("127.0.0.1", server.port), chunk=CHUNK, fmt="binary"
        )
        thread.join(600)
        assert not thread.is_alive(), "server did not drain and exit"
        snap = server.stats.snapshot()
    finally:
        if journal != tmp_path:
            shutil.rmtree(journal, ignore_errors=True)
    identical = net_sink.text() == ref_sink.text()
    assert identical, "journaled serve diverged from in-process replay"
    assert snap["ticks"] == load["ticks"]
    assert snap["wal_appended"] > 0 and snap["wal_fsyncs"] > 0
    keep = snap["samples_per_s"] / _summary[base_key]
    _rows.append(
        (
            nodes,
            "binary+wal",
            snap["ticks"],
            snap["frames"],
            round(snap["samples_per_s"], 1),
            snap["tick_latency_p50_ms"],
            snap["tick_latency_p99_ms"],
            int(identical),
        )
    )
    _summary["net_wal_samples_per_s"] = round(snap["samples_per_s"], 1)
    _summary["net_wal_keep_ratio"] = round(keep, 4)
    _summary["net_wal_tick_p50_ms"] = snap["tick_latency_p50_ms"]
    _summary["net_wal_byte_identical"] = int(identical)
    # Noise floor only (host write-path speed varies several-fold on
    # virtualized CI); the committed values are the guarded claims.
    assert keep >= 0.2, (
        f"WAL run kept only {keep:.0%} of no-WAL throughput"
    )
    assert snap["samples_per_s"] >= nodes, (
        "journaled server fell below the 1 Hz serving cadence"
    )


def test_zz_write_summary():
    """Persist the results (named so it runs after the benchmarks)."""
    assert _summary, "benchmarks did not run"
    merge_csv(RESULTS_CSV, CSV_HEADERS, _rows, n_key_cols=2)
    merged: dict[str, float] = {}
    if SUMMARY_JSON.exists():
        merged = json.loads(SUMMARY_JSON.read_text())
    merged.update(_summary)
    SUMMARY_JSON.write_text(
        json.dumps(merged, indent=2, sort_keys=True) + "\n"
    )
    print(f"\nnet_serve summary: {json.dumps(_summary, sort_keys=True)}")
"""Benchmark: fused single-pass tick path vs the staged pipeline.

The fused :class:`~repro.engine.hotpath.TickArena` claim: at serving
cadence (one window step per tick, ``chunk = ws``) a preallocated
single-pass tick — gather-into-ring normalization, one prefix-sum
reduction, lockstep forest votes — beats the staged
``FleetIngest → signature_features → forest`` pipeline by >= 2x on a
64-node fleet while producing a **bit-identical** alert stream in
``exact`` mode (asserted here).  ``float32`` and ``quantized`` modes
trade signature precision for further throughput and memory; their
measured window accuracy is recorded alongside so the tradeoff is a
number, not a claim.

Results merge into ``results/tick_hotpath.csv`` and a summary is
written to ``BENCH_tick.json``; ``tests/test_bench_guard.py`` fails if
the recorded headline drops below the committed 2x floor or any
recorded speedup falls below 1x.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from benchmarks.conftest import SCALE, TREES, merge_csv
from repro.service.detector import FleetFaultDetector
from repro.service.replay import fleet_recipes, prepare_fleet, replay

ROOT = Path(__file__).resolve().parent.parent
RESULTS_CSV = ROOT / "results" / "tick_hotpath.csv"
SUMMARY_JSON = ROOT / "BENCH_tick.json"
CSV_HEADERS = (
    "Chunk",
    "Backend",
    "Windows",
    "Accuracy",
    "Replay [s]",
    "Windows/s",
    "Speedup",
    "State/node [KiB]",
)

NODES = 64
BLOCKS = 20
#: Serving cadence (one window step per tick) is the headline; the
#: larger chunk shows the gap narrowing as staged overhead amortizes.
CHUNKS = (10, 30)
REPS = 3

#: (backend, mode) columns; staged/exact is the baseline of each chunk.
CONFIGS = (
    ("staged", "exact"),
    ("fused", "exact"),
    ("fused", "float32"),
    ("fused", "quantized"),
)

_rows: list[tuple] = []
_summary: dict[str, float] = {}
_mem_per_node: dict[str, float] = {}


@pytest.fixture(scope="module")
def setup64():
    return prepare_fleet(
        fleet_recipes(NODES, t=int(1500 * SCALE)),
        blocks=BLOCKS,
        trees=TREES,
        seed=0,
    )


def _config_name(backend: str, mode: str) -> str:
    return backend if backend == "staged" else f"fused/{mode}"


def test_memory_per_node(setup64):
    """Record the arena's resident bytes per node for every mode."""
    for mode in ("exact", "float32", "quantized"):
        det = FleetFaultDetector(setup64.trained, backend="fused", mode=mode)
        rep = det.memory_report()
        assert rep["nodes"] == NODES
        _mem_per_node[mode] = rep["per_node_total_bytes"]
        _summary[f"memory_per_node_{mode}_bytes"] = rep[
            "per_node_total_bytes"
        ]
    # The reduced-precision modes must actually shrink the state
    # (quantized runs float32 arithmetic plus a uint8 feature view, so
    # it sits just above float32 but well below exact).
    assert _mem_per_node["float32"] < _mem_per_node["exact"]
    assert _mem_per_node["quantized"] < _mem_per_node["exact"]


@pytest.mark.parametrize("chunk", CHUNKS)
def test_fused_tick_beats_staged(setup64, chunk):
    # Interleave the configurations across repetitions so slow machine
    # drift (thermal, noisy neighbours) hits every config equally; keep
    # the best of REPS per config.
    best: dict[tuple, float] = {}
    outcomes: dict[tuple, object] = {}
    for _ in range(REPS):
        for backend, mode in CONFIGS:
            out = replay(setup64, chunk=chunk, backend=backend, mode=mode)
            key = (backend, mode)
            outcomes[key] = out
            if key not in best or out.replay_time_s < best[key]:
                best[key] = out.replay_time_s
    staged = outcomes[("staged", "exact")]
    fused = outcomes[("fused", "exact")]
    # The exact-mode contract: identical chunking => identical events,
    # byte for byte and in the same order.
    assert fused.events == staged.events, (
        "fused exact mode diverged from the staged alert stream"
    )
    assert fused.n_windows == staged.n_windows > 0
    staged_s = best[("staged", "exact")]
    for backend, mode in CONFIGS:
        out = outcomes[(backend, mode)]
        secs = best[(backend, mode)]
        speedup = staged_s / secs
        state_kib = (
            _mem_per_node.get(mode, 0.0) / 1024.0
            if backend == "fused"
            else 0.0
        )
        _rows.append(
            (
                chunk,
                _config_name(backend, mode),
                out.n_windows,
                round(out.window_accuracy, 4),
                round(secs, 4),
                round(out.n_windows / secs, 1),
                round(speedup, 2),
                round(state_kib, 1),
            )
        )
        if backend == "fused":
            serving = chunk == CHUNKS[0]
            base = "tick" if serving else f"tick_chunk{chunk}"
            name = "fused" if mode == "exact" else mode
            _summary[f"{base}_{name}_speedup"] = round(speedup, 2)
            if mode == "exact":
                _summary[f"{base}_staged_s"] = round(staged_s, 4)
                _summary[f"{base}_fused_s"] = round(secs, 4)
            if chunk == CHUNKS[0]:
                _summary[f"accuracy_{mode}"] = round(
                    out.window_accuracy, 4
                )
                if mode == "exact":
                    _summary["accuracy_staged"] = round(
                        staged.window_accuracy, 4
                    )
            # Noise floor, not the target: the committed headline is
            # guarded at >= 2x by tests/test_bench_guard.py.
            assert speedup > 1.0, (
                f"chunk={chunk} fused/{mode} slower than staged "
                f"({speedup:.2f}x)"
            )


def test_zz_write_summary():
    """Persist the results (named so it runs after the benchmarks)."""
    assert _rows, "benchmarks did not run"
    merge_csv(RESULTS_CSV, CSV_HEADERS, _rows, n_key_cols=2)
    if "tick_fused_speedup" not in _summary:
        pytest.skip(
            "headline case (serving cadence, exact mode) did not run; "
            "BENCH_tick.json left untouched — run the full file to "
            "regenerate it"
        )
    SUMMARY_JSON.write_text(
        json.dumps(_summary, indent=2, sort_keys=True) + "\n"
    )
    print(f"\nBENCH_tick summary: {json.dumps(_summary, sort_keys=True)}")

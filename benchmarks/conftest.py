"""Shared benchmark fixtures.

Benchmarks run at reduced scale by default so
``pytest benchmarks/ --benchmark-only`` completes in minutes; set
``REPRO_BENCH_SCALE`` (a float) to enlarge the datasets toward the
paper's sizes, and ``REPRO_BENCH_TREES`` to change the forest size (the
paper uses 50).
"""

from __future__ import annotations

import os

import pytest

from repro.datasets.generators import (
    generate_application,
    generate_fault,
    generate_infrastructure,
    generate_power,
)

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
TREES = int(os.environ.get("REPRO_BENCH_TREES", "20"))


def pytest_collection_modifyitems(config, items):
    """Mark everything under ``benchmarks/`` as ``slow``.

    The tier-1 command deselects them via the ``-m "not slow"`` in
    ``pyproject.toml``'s addopts; run ``pytest benchmarks -m slow`` to
    execute the figure/table reproductions and scaling benchmarks.
    (The hook sees the whole session's items, so filter by path.)
    """
    from pathlib import Path

    bench_dir = Path(__file__).resolve().parent
    for item in items:
        if bench_dir in Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def bench_trees() -> int:
    return TREES


@pytest.fixture(scope="session")
def fault_segment_bench():
    return generate_fault(seed=0, t=int(6000 * SCALE))


@pytest.fixture(scope="session")
def application_segment_bench():
    return generate_application(seed=0, t=int(1200 * SCALE), nodes=6)


@pytest.fixture(scope="session")
def power_segment_bench():
    return generate_power(seed=0, t=int(3500 * SCALE))


@pytest.fixture(scope="session")
def infrastructure_segment_bench():
    return generate_infrastructure(seed=0, t=int(1000 * SCALE), racks=4)


SEGMENT_FIXTURES = {
    "fault": "fault_segment_bench",
    "application": "application_segment_bench",
    "power": "power_segment_bench",
    "infrastructure": "infrastructure_segment_bench",
}


def merge_csv(path, headers, rows, n_key_cols: int = 2) -> None:
    """Merge rows into a results CSV, keyed on the first columns.

    Partial or filtered bench runs then update their cells without
    clobbering rows produced by earlier runs.
    """
    from pathlib import Path

    from repro.experiments.reporting import format_value, save_csv

    path = Path(path)
    merged: dict[tuple, tuple] = {}
    if path.exists():
        lines = path.read_text().splitlines()
        if lines and lines[0] == ",".join(str(h) for h in headers):
            for line in lines[1:]:
                cells = line.split(",")
                if len(cells) == len(headers):
                    merged[tuple(cells[:n_key_cols])] = tuple(cells)
    for row in rows:
        cells = tuple(format_value(c) for c in row)
        merged[cells[:n_key_cols]] = cells
    path.parent.mkdir(exist_ok=True)
    save_csv(path, headers, sorted(merged.values()))

"""Benchmark: Section IV-F — cross-architecture portability.

Runs the merged three-architecture classification (paper: F1 = 0.995 RF /
0.992 MLP) and verifies the baselines cannot even produce compatible
signatures.
"""

from __future__ import annotations

from pathlib import Path


from repro.experiments.crossarch import baseline_signature_lengths, run
from benchmarks.conftest import SCALE, merge_csv
from repro.experiments.reporting import format_table

RESULTS = Path(__file__).resolve().parent.parent / "results" / "crossarch.csv"


def test_crossarch_merged_classification(benchmark, bench_trees):
    result = benchmark.pedantic(
        lambda: run(blocks=20, trees=bench_trees, seed=0,
                    t=int(1600 * SCALE), mlp_max_iter=80),
        rounds=1, iterations=1,
    )
    rows = [("Random forest", round(result.rf_f1, 4), 0.995),
            ("MLP", round(result.mlp_f1, 4), 0.992)]
    merge_csv(RESULTS, ("Model", "F1 measured", "F1 paper"), rows, n_key_cols=1)
    print()
    print(format_table(
        ("Model", "F1 measured", "F1 paper"),
        rows,
        title="Section IV-F — merged cross-architecture classification",
    ))
    # The qualitative claim: near-perfect classification with no
    # architecture knowledge.
    assert result.rf_f1 > 0.95
    assert result.mlp_f1 > 0.9


def test_crossarch_baselines_incompatible():
    lengths = baseline_signature_lengths(seed=0, t=600)
    print(f"\nTuncer signature lengths per arch: {lengths}")
    assert len(set(lengths.values())) == 3

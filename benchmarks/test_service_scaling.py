"""Benchmark: batched fleet detection vs the naive per-node loop.

The online service's claim is that one ``process_block`` tick — batched
ring-buffer ingestion plus a single lockstep stacked-forest pass over
every signature the fleet emitted — beats the obvious implementation
(per node: one ``push`` per sample, one single-row forest predict per
signature).  Both paths produce *identical* alert events (asserted
here), so the comparison is pure overhead.

Results merge into ``results/service_scaling.csv`` and a summary is
written to ``BENCH_service.json``; ``tests/test_bench_guard.py`` fails
if the recorded headline drops below the committed 2x floor or any
recorded speedup falls below 1x.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from benchmarks.conftest import SCALE, merge_csv
from repro.service.detector import detect_naive
from repro.service.replay import fleet_recipes, prepare_fleet, replay

ROOT = Path(__file__).resolve().parent.parent
RESULTS_CSV = ROOT / "results" / "service_scaling.csv"
SUMMARY_JSON = ROOT / "BENCH_service.json"
CSV_HEADERS = (
    "Fleet nodes",
    "Windows",
    "Alert events",
    "Batched [s]",
    "Per-node [s]",
    "Speedup",
)

FLEET_SIZES = (2, 4, 8)
#: Large fleets compare fused vs staged backends (the naive per-node
#: loop would take minutes at this scale and proves nothing new).
LARGE_FLEET_SIZES = (64, 256)
TREES = 20
BLOCKS = 20
CHUNK = 256
#: Serving cadence for the large-fleet comparison: one window step per
#: tick, the configuration an online deployment actually runs at.
SERVE_CHUNK = 10

_rows: list[tuple] = []
_summary: dict[str, float] = {}


def _event_key(event: dict) -> tuple:
    return (event["node"], event["window"], event["event"])


@pytest.mark.parametrize("nodes", FLEET_SIZES)
def test_batched_detection_beats_per_node_loop(nodes):
    setup = prepare_fleet(
        fleet_recipes(nodes, t=int(3000 * SCALE)),
        blocks=BLOCKS,
        trees=TREES,
        seed=0,
    )
    # Best-of-2 batched replays (each builds fresh stream/policy state).
    outcomes = [replay(setup, chunk=CHUNK) for _ in range(2)]
    batched_s = min(o.replay_time_s for o in outcomes)
    start = time.perf_counter()
    naive_events = detect_naive(setup.trained, setup.eval_data)
    naive_s = time.perf_counter() - start
    # Same alerts, chunking aside: the batched path interleaves nodes
    # burst by burst, so compare order-normalized streams.
    assert sorted(outcomes[-1].events, key=_event_key) == sorted(
        naive_events, key=_event_key
    ), "batched and per-node detection disagree on the alert stream"
    speedup = naive_s / batched_s
    _rows.append(
        (
            nodes,
            outcomes[-1].n_windows,
            len(naive_events),
            round(batched_s, 4),
            round(naive_s, 4),
            round(speedup, 2),
        )
    )
    _summary[f"fleet{nodes}_batched_s"] = round(batched_s, 4)
    _summary[f"fleet{nodes}_naive_s"] = round(naive_s, 4)
    _summary[f"fleet{nodes}_detect_speedup"] = round(speedup, 2)
    # Noise floor, not the target: the committed headline is guarded at
    # >= 2x by tests/test_bench_guard.py.
    assert speedup > 1.0, (
        f"{nodes}-node fleet: batched detection slower than the "
        f"per-node loop ({speedup:.2f}x)"
    )


@pytest.mark.parametrize("nodes", LARGE_FLEET_SIZES)
def test_fused_backend_scales_to_large_fleets(nodes):
    """64- and 256-node fleets: fused arena vs staged pipeline.

    Runs at serving cadence with interleaved repetitions (machine drift
    hits both backends equally); exact-mode events must stay identical.
    """
    t = 1500 if nodes <= 64 else 900
    setup = prepare_fleet(
        fleet_recipes(nodes, t=int(t * SCALE)),
        blocks=BLOCKS,
        trees=TREES,
        seed=0,
    )
    best: dict[str, float] = {}
    events: dict[str, list] = {}
    for _ in range(2):
        for backend in ("staged", "fused"):
            out = replay(setup, chunk=SERVE_CHUNK, backend=backend)
            events[backend] = out.events
            if backend not in best or out.replay_time_s < best[backend]:
                best[backend] = out.replay_time_s
    assert events["fused"] == events["staged"], (
        f"{nodes}-node fleet: fused backend diverged from staged events"
    )
    assert len(events["staged"]) > 0
    speedup = best["staged"] / best["fused"]
    _summary[f"fleet{nodes}_staged_s"] = round(best["staged"], 4)
    _summary[f"fleet{nodes}_fused_s"] = round(best["fused"], 4)
    _summary[f"fleet{nodes}_fused_speedup"] = round(speedup, 2)
    assert speedup > 1.0, (
        f"{nodes}-node fleet: fused backend slower than staged "
        f"({speedup:.2f}x)"
    )


def test_guarded_overhead_under_five_percent():
    """Input-hardening guard overhead at 64 nodes, serving cadence.

    The guard validates every block of every tick (dict lookups, one
    ``sum()`` reduction for the NaN/Inf check, health bookkeeping); the
    acceptance bar is <5% over the unguarded tick.  Interleaved
    best-of-3 so machine drift hits both variants equally.
    """
    nodes = 64
    setup = prepare_fleet(
        fleet_recipes(nodes, t=int(1500 * SCALE)),
        blocks=BLOCKS,
        trees=TREES,
        seed=0,
    )
    best = {"plain": float("inf"), "guarded": float("inf")}
    events: dict[str, list] = {}
    for _ in range(3):
        for variant in ("plain", "guarded"):
            out = replay(
                setup,
                chunk=SERVE_CHUNK,
                guard=(variant == "guarded") or None,
            )
            events[variant] = out.events
            best[variant] = min(best[variant], out.replay_time_s)
    stripped = [
        {k: v for k, v in e.items() if k != "health"}
        for e in events["guarded"]
        if e["event"] != "guard"
    ]
    assert stripped == events["plain"], (
        "guard changed the alert stream on clean input"
    )
    overhead = best["guarded"] / best["plain"] - 1.0
    _summary["guard64_plain_s"] = round(best["plain"], 4)
    _summary["guard64_guarded_s"] = round(best["guarded"], 4)
    _summary["guard64_overhead_frac"] = round(overhead, 4)
    assert overhead < 0.05, (
        f"guard overhead {overhead:.1%} exceeds the 5% budget at "
        f"{nodes} nodes"
    )


def test_zz_write_summary():
    """Persist the results (named so it runs after the benchmarks).

    Read-merge-write: a partial run (``-k guard``) refreshes only the
    keys it measured, so the committed headline numbers survive."""
    assert _summary, "benchmarks did not run"
    if _rows:
        merge_csv(RESULTS_CSV, CSV_HEADERS, _rows, n_key_cols=1)
    merged: dict[str, float] = {}
    if SUMMARY_JSON.exists():
        merged = json.loads(SUMMARY_JSON.read_text())
    merged.update(_summary)
    largest_key = f"fleet{FLEET_SIZES[-1]}_detect_speedup"
    if largest_key in merged:
        merged["batched_detect_speedup"] = merged[largest_key]
    SUMMARY_JSON.write_text(
        json.dumps(merged, indent=2, sort_keys=True) + "\n"
    )
    print(f"\nBENCH_service summary: {json.dumps(merged, sort_keys=True)}")

"""Benchmark: cold vs cached scenario execution.

Runs registered scenarios twice against a fresh content-addressed
artifact cache — the cold run pays segment generation and signature-set
construction, the cached re-run loads both from the store — and records
the wall-clock ratio:

* ``table1`` — pure generation workload (all five segments), the
  headline ``cached_speedup``: a cached re-run must be >= 5x faster;
* ``fig7`` — generation + heatmap rendering (the render always runs);
* ``fleet-scaling`` — generation + batched fleet transforms;
* ``fig3`` restricted to the fault segment — the signature-set reuse
  case, where cross-validation still runs on every pass.

Results merge into ``results/scenario_cache.csv`` and a summary is
written to ``BENCH_scenarios.json``; ``tests/test_bench_guard.py`` fails
if the recorded headline drops below 5x or any cached run is slower
than cold.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from benchmarks.conftest import merge_csv
from repro.scenarios import RunOptions, execute, get_scenario

ROOT = Path(__file__).resolve().parent.parent
RESULTS_CSV = ROOT / "results" / "scenario_cache.csv"
SUMMARY_JSON = ROOT / "BENCH_scenarios.json"
CSV_HEADERS = (
    "Scenario",
    "Cold [s]",
    "Cached [s]",
    "Speedup",
    "Segment loads",
    "Dataset loads",
)

#: (summary key, scenario name, RunOptions overrides)
CASES = [
    ("table1", "table1", {}),
    ("fig7", "fig7", {}),
    ("fleet_scaling", "fleet-scaling", {}),
    (
        "fig3_fault_grid",
        "fig3",
        {"segments": ("fault",), "methods": ("cs-20", "cs-40"), "trees": 4},
    ),
]

_rows: list[tuple] = []
_summary: dict[str, float] = {}


def _timed_run(spec, cache_dir, **overrides):
    start = time.perf_counter()
    result = execute(
        spec, options=RunOptions(cache_dir=cache_dir, **overrides)
    )
    return time.perf_counter() - start, result


@pytest.mark.parametrize("key,name,overrides", CASES, ids=[c[0] for c in CASES])
def test_cached_rerun_faster(key, name, overrides, tmp_path):
    spec = get_scenario(name)
    cache_dir = tmp_path / "cache"
    cold_s, cold = _timed_run(spec, cache_dir, **overrides)
    # Best-of-2 cached passes: absorbs one-off allocator/IO noise.
    cached_s = min(
        _timed_run(spec, cache_dir, **overrides)[0] for _ in range(2)
    )
    warm_stats = execute(
        spec, options=RunOptions(cache_dir=cache_dir, **overrides)
    ).cache_stats
    assert warm_stats["segment_misses"] == 0
    assert warm_stats["dataset_misses"] == 0
    speedup = cold_s / cached_s
    _rows.append(
        (
            key,
            round(cold_s, 4),
            round(cached_s, 4),
            round(speedup, 2),
            warm_stats["segment_hits"],
            warm_stats["dataset_hits"],
        )
    )
    _summary[f"{key}_cold_s"] = round(cold_s, 4)
    _summary[f"{key}_cached_s"] = round(cached_s, 4)
    _summary[f"{key}_cached_speedup_ratio"] = round(speedup, 2)
    # Noise floor, not the target: the guard enforces the committed >=5x
    # headline; here we only require the cache to never be a pessimization.
    assert speedup > 1.0, f"{name}: cached run slower than cold ({speedup:.2f}x)"


def test_zz_write_summary():
    """Persist the results (named so it runs after the benchmarks)."""
    assert _rows, "benchmarks did not run"
    merge_csv(RESULTS_CSV, CSV_HEADERS, _rows, n_key_cols=1)
    if "table1_cached_speedup_ratio" not in _summary:
        pytest.skip(
            "headline case (table1) did not run; BENCH_scenarios.json "
            "left untouched — run the full file to regenerate it"
        )
    _summary["cached_speedup"] = _summary["table1_cached_speedup_ratio"]
    SUMMARY_JSON.write_text(
        json.dumps(_summary, indent=2, sort_keys=True) + "\n"
    )
    print(f"\nBENCH_scenarios summary: {json.dumps(_summary, sort_keys=True)}")

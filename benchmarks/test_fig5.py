"""Benchmark: Figure 5 — time to compute one signature vs wl and n.

This is the natural pytest-benchmark experiment: each cell times one
``transform`` call on a random matrix (training excluded, matching the
paper's methodology).  Expected shapes: all methods linear in n; Tuncer
and Bodik slightly super-linear in wl (percentile sort); CS roughly an
order of magnitude faster than Tuncer/Bodik at large sizes, with the
block count mattering little.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.experiments.fig5 import time_single_signature
from repro.experiments.harness import make_method_factory
from repro.experiments.reporting import format_table, save_csv

METHODS = ("tuncer", "bodik", "lan", "cs-5", "cs-40", "cs-all")
WL_GRID = (100, 1000, 4000)
N_GRID = (100, 1000, 4000)


def _make_fitted(method, n, wl, seed=0):
    rng = np.random.default_rng(seed)
    Sw = rng.random((n, wl))
    m = make_method_factory(method)()
    m.fit(Sw)
    m.transform(Sw)  # warm-up
    return m, Sw


@pytest.mark.parametrize("wl", WL_GRID)
@pytest.mark.parametrize("method", METHODS)
def test_fig5a_vs_wl(benchmark, method, wl):
    """Figure 5a: n fixed at 100, wl sweeps."""
    m, Sw = _make_fitted(method, 100, wl)
    benchmark(m.transform, Sw)


@pytest.mark.parametrize("n", N_GRID)
@pytest.mark.parametrize("method", METHODS)
def test_fig5b_vs_n(benchmark, method, n):
    """Figure 5b: wl fixed at 100, n sweeps."""
    if method == "cs-40" and n < 40:
        pytest.skip("l > n")
    m, Sw = _make_fitted(method, n, 100)
    benchmark(m.transform, Sw)


def test_fig5_shape_cs_faster_than_tuncer_at_scale():
    """The headline: ~an order of magnitude at high dimension counts."""
    n, wl = 4000, 100
    t_cs = time_single_signature("cs-20", n, wl, repeats=7)
    t_tuncer = time_single_signature("tuncer", n, wl, repeats=7)
    print(f"\nn={n}: CS-20 {t_cs * 1e3:.2f} ms vs Tuncer {t_tuncer * 1e3:.2f} ms "
          f"({t_tuncer / t_cs:.1f}x)")
    assert t_cs * 3 < t_tuncer


def test_fig5_shape_cs_linear_in_wl():
    """CS time grows ~linearly in wl (O(wl n) complexity)."""
    times = [time_single_signature("cs-20", 100, wl, repeats=7) for wl in (500, 4000)]
    ratio = times[1] / max(times[0], 1e-9)
    print(f"\nCS-20 wl 500->4000 time ratio: {ratio:.2f} (ideal 8)")
    assert ratio < 24  # super-linear blowup would far exceed this


def test_fig5_block_count_minor_effect():
    """The number of blocks has minimal impact on the CS footprint."""
    t5 = time_single_signature("cs-5", 1000, 100, repeats=7)
    tall = time_single_signature("cs-all", 1000, 100, repeats=7)
    print(f"\nCS-5 {t5 * 1e3:.3f} ms vs CS-All {tall * 1e3:.3f} ms at n=1000")
    assert tall < t5 * 5


def test_fig5_rows(benchmark):
    rows = []
    # Route one representative measurement through pytest-benchmark so
    # this collector runs under --benchmark-only too.
    benchmark.pedantic(
        lambda: time_single_signature("cs-20", 100, 100, repeats=3),
        rounds=1, iterations=1,
    )
    for method in METHODS:
        for wl in WL_GRID:
            rows.append(("wl", method, wl, 100,
                         time_single_signature(method, 100, wl, repeats=5)))
        for n in N_GRID:
            if method == "cs-40" and n < 40:
                continue
            rows.append(("n", method, 100, n,
                         time_single_signature(method, n, 100, repeats=5)))
    results = Path(__file__).resolve().parent.parent / "results" / "fig5_series.csv"
    results.parent.mkdir(exist_ok=True)
    save_csv(results, ("Axis", "Method", "wl", "n", "Median time [s]"), rows)
    print()
    print(format_table(("Axis", "Method", "wl", "n", "Median time [s]"), rows,
                       title="Figure 5 series"))

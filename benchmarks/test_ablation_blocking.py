"""Ablation: Equation 2 modulo blocking vs remainder-at-end blocking.

The paper's blocking spreads widened blocks uniformly over the signature
via the modulo periodicity.  The obvious alternative — equal blocks with
all the remainder dumped into the last one — skews block widths.  This
bench compares width dispersion and the resulting JS divergence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.similarity import cs_compression_divergence
from repro.core.blocks import block_bounds, block_widths
from repro.core.pipeline import CorrelationWiseSmoothing
from repro.experiments.reporting import format_table


def _remainder_at_end_bounds(n: int, l: int):
    base = n // l
    starts = np.arange(l) * base
    ends = starts + base
    ends[-1] = n  # the last block swallows the remainder
    return starts, ends


def _smooth_with_bounds(sorted_data, starts, ends, wl, ws):
    n, t = sorted_data.shape
    num = (t - wl) // ws + 1
    out = np.empty((num, len(starts)), dtype=np.complex128)
    for k in range(num):
        W = sorted_data[:, k * ws : k * ws + wl]
        row_means = W.mean(axis=1)
        prev = sorted_data[:, k * ws - 1] if k > 0 else W[:, 0]
        deriv_means = (W[:, -1] - prev) / wl
        for j, (s, e) in enumerate(zip(starts, ends)):
            out[k, j] = row_means[s:e].mean() + 1j * deriv_means[s:e].mean()
    return out


@pytest.mark.parametrize("n,l", [(128, 40), (52, 20), (31, 5)])
def test_width_dispersion(n, l):
    eq2 = block_widths(n, l)
    starts, ends = _remainder_at_end_bounds(n, l)
    naive = ends - starts
    print(f"\nn={n}, l={l}: Eq2 widths {eq2.min()}..{eq2.max()}, "
          f"remainder-at-end {naive.min()}..{naive.max()}")
    assert eq2.max() - eq2.min() <= 1
    if n % l:
        assert naive.max() - naive.min() >= eq2.max() - eq2.min()


def test_blocking_ablation_divergence(benchmark, fault_segment_bench):
    comp = fault_segment_bench.components[0]
    spec = fault_segment_bench.spec
    l = 40
    cs = CorrelationWiseSmoothing(blocks=l).fit(comp.matrix)
    sorted_data = cs.sort(comp.matrix)

    sigs_eq2 = benchmark.pedantic(
        lambda: cs.transform_series(comp.matrix, spec.wl, spec.ws),
        rounds=1, iterations=1,
    )
    starts, ends = _remainder_at_end_bounds(comp.n_sensors, l)
    sigs_naive = _smooth_with_bounds(sorted_data, starts, ends, spec.wl, spec.ws)

    _, _, js_eq2 = cs_compression_divergence(sorted_data, sigs_eq2)
    _, _, js_naive = cs_compression_divergence(sorted_data, sigs_naive)
    print()
    print(format_table(
        ("Blocking", "JS divergence"),
        [("Equation 2 (modulo)", round(js_eq2, 4)),
         ("remainder-at-end", round(js_naive, 4))],
        title=f"Ablation — blocking scheme (fault, l={l})",
    ))
    # Equation 2 should not be worse than the skewed alternative.
    assert js_eq2 <= js_naive + 0.02


def test_eq2_bounds_cover_and_naive_matches_when_divisible():
    # Sanity: when n % l == 0 both schemes coincide.
    n, l = 120, 40
    s1, e1 = block_bounds(n, l)
    s2, e2 = _remainder_at_end_bounds(n, l)
    assert np.array_equal(s1, s2) and np.array_equal(e1, e2)

"""Benchmark: Figure 3 — times (a), signature sizes (b), ML scores (c).

For each (segment, method) cell: the dataset-generation phase is the
pytest benchmark; the 5-fold cross-validation time, signature size and ML
score are computed once and printed as the paper's rows.  Expected
shapes: CS signatures ~10x smaller than Tuncer/Bodik (3b); CS generation
and CV up to ~10x faster (3a); scores comparable, with Fault needing a
high block count and Infrastructure saturating at CS-5 (3c).
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.datasets.generators import build_ml_dataset
from repro.experiments.harness import make_method_factory
from repro.experiments.fig3 import HEADERS
from benchmarks.conftest import SEGMENT_FIXTURES, merge_csv
from repro.experiments.reporting import format_table
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.model_selection import (
    cross_validate_classifier,
    cross_validate_regressor,
)

METHODS = ("tuncer", "bodik", "lan", "cs-5", "cs-10", "cs-20", "cs-40", "cs-all")

_ROWS: list[tuple] = []

#: Every cell rewrites this file, so a partial or filtered run still
#: leaves a complete record of what it measured.
RESULTS = Path(__file__).resolve().parent.parent / "results" / "fig3_grid.csv"


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("segment", list(SEGMENT_FIXTURES))
def test_fig3_cell(benchmark, request, segment, method, bench_trees):
    seg = request.getfixturevalue(SEGMENT_FIXTURES[segment])
    factory = make_method_factory(method)

    dataset = benchmark.pedantic(
        lambda: build_ml_dataset(seg, factory), rounds=1, iterations=1
    )
    start = time.perf_counter()
    if dataset.task == "classification":
        scores = cross_validate_classifier(
            lambda: RandomForestClassifier(bench_trees, random_state=0),
            dataset.X, dataset.y, random_state=0,
        )
    else:
        scores = cross_validate_regressor(
            lambda: RandomForestRegressor(bench_trees, random_state=0),
            dataset.X, dataset.y, random_state=0,
        )
    cv_time = time.perf_counter() - start
    row = (
        segment,
        method,
        dataset.signature_size,
        round(dataset.generation_time_s, 4),
        round(cv_time, 4),
        round(float(scores.mean()), 4),
        round(float(scores.std()), 4),
    )
    _ROWS.append(row)
    merge_csv(RESULTS, HEADERS, _ROWS)
    print()
    print(format_table(HEADERS, [row], title=f"Figure 3 cell — {segment}/{method}"))
    assert 0.0 <= scores.mean() <= 1.0
    # Performance requirement: every method must beat a trivial predictor.
    assert scores.mean() > 0.5


def test_fig3_summary_shapes():
    """After the grid ran, check the paper's qualitative claims."""
    if len(_ROWS) < len(METHODS):
        pytest.skip("grid incomplete (ran with -k filter)")
    by = {(r[0], r[1]): r for r in _ROWS}

    for segment in {r[0] for r in _ROWS}:
        if (segment, "tuncer") in by and (segment, "cs-20") in by:
            # Figure 3b: CS-20 signatures are much smaller than Tuncer's.
            assert by[(segment, "cs-20")][2] * 5 <= by[(segment, "tuncer")][2]
            # Figure 3c: CS at sufficient l is within a few points.
            best_cs = max(
                by[(segment, m)][5]
                for m in ("cs-20", "cs-40", "cs-all")
                if (segment, m) in by
            )
            assert best_cs > by[(segment, "tuncer")][5] - 0.08
    print()
    print(format_table(HEADERS, sorted(_ROWS), title="Figure 3 — full grid"))

"""Benchmark: Figures 2, 6 and 7 — signature heatmap generation.

Times the full heatmap pipeline (train on the stacked node matrix, sort,
smooth all windows of each run) and verifies the interpretability hooks
the paper describes: Kripke's iterative pattern, Linpack's constant load
with init phase, Quicksilver's frequency oscillation, AMG's memory
gradient, and pattern recurrence across architectures (Figure 7).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import SCALE
from repro.datasets.generators import generate_application
from repro.experiments.fig6 import application_heatmaps
from repro.experiments.fig7 import run as fig7_run


@pytest.fixture(scope="module")
def app_segment():
    return generate_application(seed=0, t=int(2400 * SCALE), nodes=8)


@pytest.mark.parametrize("app", ["Kripke", "Linpack", "Quicksilver", "AMG"])
def test_fig6_heatmap_generation(benchmark, app_segment, app):
    res = benchmark.pedantic(
        lambda: application_heatmaps(app_segment, app, blocks=160),
        rounds=1, iterations=1,
    )
    assert res.signatures.shape[1] == 160
    assert res.real_image.shape[0] == 160


def test_fig6_kripke_iterative(app_segment):
    """Kripke's real components oscillate over time (iterations)."""
    res = application_heatmaps(app_segment, "Kripke", blocks=160)
    top_blocks = res.signatures.real[:, :40]  # descriptive upper section
    temporal_std = top_blocks.std(axis=0).mean()
    lin = application_heatmaps(app_segment, "Linpack", blocks=160)
    lin_std = lin.signatures.real[:, :40].std(axis=0).mean()
    print(f"\nKripke temporal std {temporal_std:.4f} vs Linpack {lin_std:.4f}")
    assert temporal_std > lin_std


def test_fig6_quicksilver_light_load(app_segment):
    """Quicksilver: 'very light load ... with small values across all blocks'."""
    qs = application_heatmaps(app_segment, "Quicksilver", blocks=160)
    lp = application_heatmaps(app_segment, "Linpack", blocks=160)
    assert qs.signatures.real.mean() < lp.signatures.real.mean()


def test_fig6_amg_memory_gradient(app_segment):
    """AMG: a gradient in block values within each run (memory growth)."""
    res = application_heatmaps(app_segment, "AMG", blocks=160)
    bounds = [0] + [int(b) + 1 for b in res.boundaries]
    increasing = 0
    runs = 0
    for s, e in zip(bounds[:-1], bounds[1:]):
        if e - s < 4:
            continue
        runs += 1
        # Mean real value in the first vs last quarter of the run.
        sigs = res.signatures.real[s:e]
        q = max(1, (e - s) // 4)
        if sigs[-q:].mean() > sigs[:q].mean():
            increasing += 1
    assert runs > 0 and increasing >= runs / 2


def test_fig7_cross_architecture_patterns(benchmark):
    """LAMMPS heatmaps exist for all three architectures with equal l."""
    results = benchmark.pedantic(
        lambda: fig7_run(t=int(2600 * SCALE), blocks=20), rounds=1, iterations=1
    )
    assert len(results) == 3
    assert all(r.signatures.shape[1] == 20 for r in results)
    # "The same performance patterns can be recognized in all cases":
    # the block-mean profiles of the three heatmaps correlate pairwise.
    profiles = [r.signatures.real.mean(axis=0) for r in results]
    for i in range(3):
        for j in range(i + 1, 3):
            corr = np.corrcoef(profiles[i], profiles[j])[0, 1]
            print(f"\nprofile corr {results[i].arch} vs {results[j].arch}: {corr:.3f}")
            assert corr > 0.0

"""Ablation: the Algorithm 1 greedy-chain ordering vs alternatives.

DESIGN.md §6: the CS ordering is the heart of the method — blocks average
*adjacent* sorted rows, so an ordering that groups correlated sensors
loses less information.  This bench compares, at fixed l, the JS
divergence obtained with:

* the paper's greedy chain (``rho[k, last] * rho_k`` product rule),
* a naive sort by global correlation coefficient only,
* a greedy chain with a sum rule (``rho[k, last] + rho_k``),
* a random permutation.

Expected: Algorithm 1 <= global-sort and random on divergence; the
product and sum rules land close together (the paper's choice is not
knife-edge).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.similarity import cs_compression_divergence
from repro.core.model import CSModel
from repro.core.smoothing import smooth_windows
from repro.core.sorting import sort_rows
from repro.core.training import (
    correlation_ordering,
    global_correlation,
    shifted_correlation_matrix,
)
from repro.experiments.reporting import format_table


def _sum_rule_ordering(rho: np.ndarray) -> np.ndarray:
    g = global_correlation(rho)
    n = rho.shape[0]
    p = np.empty(n, dtype=np.intp)
    remaining = np.ones(n, dtype=bool)
    last = int(np.argmax(g))
    p[0] = last
    remaining[last] = False
    for step in range(1, n):
        scores = np.where(remaining, rho[last] + g, -np.inf)
        last = int(np.argmax(scores))
        p[step] = last
        remaining[last] = False
    return p


def _divergence_for_permutation(matrix, perm, l, wl, ws):
    model = CSModel(perm, matrix.min(axis=1), matrix.max(axis=1))
    sorted_data = sort_rows(matrix, model)
    sigs = smooth_windows(sorted_data, l, wl, ws)
    _, _, js = cs_compression_divergence(sorted_data, sigs)
    return js


@pytest.fixture(scope="module")
def ablation_setup(application_segment_bench):
    comp = application_segment_bench.components[0]
    rho = shifted_correlation_matrix(comp.matrix)
    return comp, rho


def test_ordering_ablation(benchmark, ablation_setup, application_segment_bench):
    comp, rho = ablation_setup
    spec = application_segment_bench.spec
    l = 10
    rng = np.random.default_rng(0)

    greedy = benchmark.pedantic(
        lambda: correlation_ordering(rho), rounds=3, iterations=1
    )
    orderings = {
        "algorithm-1 (product)": greedy,
        "sum rule": _sum_rule_ordering(rho),
        "global sort only": np.argsort(-global_correlation(rho)),
        "random": rng.permutation(comp.n_sensors),
        "identity": np.arange(comp.n_sensors),
    }
    rows = []
    js = {}
    for name, perm in orderings.items():
        js[name] = _divergence_for_permutation(
            comp.matrix, perm, l, spec.wl, spec.ws
        )
        rows.append((name, round(js[name], 4)))
    print()
    print(format_table(("Ordering", "JS divergence (l=10)"), rows,
                       title="Ablation — row ordering"))
    # Algorithm 1 must beat a random arrangement and not lose badly to
    # any alternative.
    assert js["algorithm-1 (product)"] <= js["random"] + 1e-6
    assert js["algorithm-1 (product)"] <= js["global sort only"] + 0.02


def test_ordering_correlated_adjacency(ablation_setup):
    """Algorithm 1 increases adjacent-row correlation vs identity order."""
    comp, rho = ablation_setup
    p = correlation_ordering(rho)
    raw = rho - 1.0  # back to [-1, 1]

    def adjacency_score(perm):
        return float(np.mean([raw[perm[i], perm[i + 1]]
                              for i in range(len(perm) - 1)]))

    score_sorted = adjacency_score(p)
    score_identity = adjacency_score(np.arange(comp.n_sensors))
    print(f"\nadjacent-corr: sorted {score_sorted:.3f} vs identity {score_identity:.3f}")
    assert score_sorted > score_identity

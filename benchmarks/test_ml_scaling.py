"""Benchmark: the presorted/batched ML engine vs the seed implementation.

Every comparison runs against the frozen seed code path
(:mod:`repro.ml._seed_reference`) on fig3-scale datasets built by the
paper's own pipeline (segment -> signature features -> 50-tree forest):

* **tree fit** — one CART fit, presorted/batched scans vs the seed's
  per-node per-feature ``np.argsort`` + one-hot ``cumsum``.  Node arrays
  must come out bit-identical.
* **forest fit** — the paper's 50-tree forest on the power segment
  (regression, the Figure 3 power-prediction use case) and the fault
  segment (classification).  Exact-split mode: same trees, same
  predictions as the seed.
* **forest predict** — the batched lockstep walk vs 50 sequential
  per-tree walks, at three granularities of the evaluation path: the
  in-band ODA control-loop tick (one signature per step, the paper's
  Section V deployment), a small monitoring batch, and a full CV test
  fold.
* **end to end** — ``run_method_on_segment`` (5-repeat, 5-fold CV)
  vs the seed harness loop (fresh splitter + seed forest per repeat);
  classification scores must match exactly.
* **hist fit** — the opt-in quantile-binned splitter on a large-m
  dataset, the regime it exists for.

Results merge into ``results/ml_scaling.csv`` and a summary is written
to ``BENCH_ml.json`` for the performance trajectory; the lightweight
guard in ``tests/test_bench_guard.py`` fails if any recorded speedup
regresses below 1.0.

The in-test asserts are noise floors (this container's timings swing
with load), not the aspirational targets: the issue aimed for >=5x
forest fit / >=10x batched predict.  Steady-state on 1 CPU the engine
records ~3.5-4.5x exact-mode forest fit (bounded by the shared sort +
scan C work once the seed's per-feature dispatch overhead is gone —
bit-identical preorder RNG consumption rules out cross-node batching)
and 13-26x batched predict at in-band granularities.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.datasets.generators import build_ml_dataset
from repro.experiments.harness import make_method_factory, run_method_on_segment
from repro.ml._seed_reference import (
    SeedDecisionTreeClassifier,
    SeedRandomForestClassifier,
    SeedRandomForestRegressor,
)
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.metrics import ml_score_classification
from repro.ml.model_selection import StratifiedKFold
from repro.ml.tree import DecisionTreeClassifier

from benchmarks.conftest import merge_csv

ROOT = Path(__file__).resolve().parent.parent
RESULTS_CSV = ROOT / "results" / "ml_scaling.csv"
SUMMARY_JSON = ROOT / "BENCH_ml.json"
CSV_HEADERS = (
    "Kind", "Dataset", "m", "n",
    "Seed time [s]", "Engine time [s]", "Speedup",
)

#: The paper's forest size (50); REPRO_BENCH_ML_TREES overrides.
TREES = int(os.environ.get("REPRO_BENCH_ML_TREES", "50"))

_summary: dict = {}
_rows: list[tuple] = []


def _best_of(fn, repeats=3):
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def fault_ds(fault_segment_bench):
    return build_ml_dataset(fault_segment_bench, make_method_factory("cs-all"))


@pytest.fixture(scope="module")
def power_ds(power_segment_bench):
    return build_ml_dataset(power_segment_bench, make_method_factory("cs-20"))


def test_tree_fit_presorted_vs_seed(fault_ds):
    X, y = fault_ds.X, fault_ds.y
    t_seed = _best_of(lambda: SeedDecisionTreeClassifier(random_state=0).fit(X, y))
    t_new = _best_of(lambda: DecisionTreeClassifier(random_state=0).fit(X, y))

    a = SeedDecisionTreeClassifier(random_state=0).fit(X, y)
    b = DecisionTreeClassifier(random_state=0).fit(X, y)
    assert np.array_equal(a._feature, b._feature)
    assert np.array_equal(a._threshold, b._threshold)
    assert np.array_equal(a._left, b._left)
    assert np.array_equal(a._right, b._right)
    assert np.array_equal(a._values, b._values)

    speedup = t_seed / max(t_new, 1e-12)
    _rows.append(("tree-fit", "fault/cs-all", X.shape[0], X.shape[1],
                  t_seed, t_new, speedup))
    _summary["tree_fit_speedup"] = round(speedup, 2)
    print(f"\ntree fit: seed {t_seed*1e3:.1f} ms, engine {t_new*1e3:.1f} ms "
          f"({speedup:.1f}x)")
    assert t_new < t_seed


def test_forest_fit_regression_vs_seed(power_ds):
    X, y = power_ds.X, power_ds.y
    t_seed = _best_of(lambda: SeedRandomForestRegressor(TREES, random_state=0).fit(X, y))
    t_new = _best_of(lambda: RandomForestRegressor(TREES, random_state=0).fit(X, y))

    a = SeedRandomForestRegressor(10, random_state=0).fit(X, y).predict(X)
    b = RandomForestRegressor(10, random_state=0).fit(X, y).predict(X)
    assert np.allclose(a, b)

    speedup = t_seed / max(t_new, 1e-12)
    _rows.append(("forest-fit", "power/cs-20", X.shape[0], X.shape[1],
                  t_seed, t_new, speedup))
    _summary["forest_fit_speedup"] = round(speedup, 2)
    print(f"\nforest fit (reg, {TREES} trees): seed {t_seed:.2f} s, "
          f"engine {t_new:.2f} s ({speedup:.1f}x)")
    assert speedup >= 2.0, f"forest fit speedup only {speedup:.2f}x"


def test_forest_fit_classification_vs_seed(fault_ds):
    X, y = fault_ds.X, fault_ds.y
    t_seed = _best_of(lambda: SeedRandomForestClassifier(TREES, random_state=0).fit(X, y))
    t_new = _best_of(lambda: RandomForestClassifier(TREES, random_state=0).fit(X, y))

    a = SeedRandomForestClassifier(10, random_state=0).fit(X, y).predict_proba(X)
    b = RandomForestClassifier(10, random_state=0).fit(X, y).predict_proba(X)
    assert np.array_equal(a, b), "exact-split forest must match the seed bit for bit"

    speedup = t_seed / max(t_new, 1e-12)
    _rows.append(("forest-fit", "fault/cs-all", X.shape[0], X.shape[1],
                  t_seed, t_new, speedup))
    _summary["forest_fit_speedup_classification"] = round(speedup, 2)
    print(f"\nforest fit (cls, {TREES} trees): seed {t_seed:.2f} s, "
          f"engine {t_new:.2f} s ({speedup:.1f}x)")
    assert speedup >= 2.0


def test_forest_predict_batched_vs_per_tree(fault_ds):
    X, y = fault_ds.X, fault_ds.y
    seed_rf = SeedRandomForestClassifier(TREES, random_state=0).fit(X, y)
    new_rf = RandomForestClassifier(TREES, random_state=0).fit(X, y)
    assert np.array_equal(seed_rf.predict_proba(X), new_rf.predict_proba(X))

    fold = max(1, X.shape[0] // 5)
    grains = {
        "inband": 1,           # one signature per ODA control-loop tick
        "batch32": 32,         # small monitoring batch
        "fold": fold,          # one CV test fold of the evaluation path
    }
    for kind, nrows in grains.items():
        Xs = X[:nrows]
        t_seed = _best_of(lambda: seed_rf.predict_proba(Xs), repeats=5)
        t_new = _best_of(lambda: new_rf.predict_proba(Xs), repeats=5)
        speedup = t_seed / max(t_new, 1e-12)
        _rows.append((f"forest-predict-{kind}", "fault/cs-all", nrows,
                      X.shape[1], t_seed, t_new, speedup))
        key = ("forest_predict_speedup" if kind == "inband"
               else f"forest_predict_speedup_{kind}")
        _summary[key] = round(speedup, 2)
        print(f"\npredict {kind} (n={nrows}): seed {t_seed*1e3:.2f} ms, "
              f"engine {t_new*1e3:.2f} ms ({speedup:.1f}x)")
    # Acceptance: the 50 sequential tree walks cost >= 10x the lockstep
    # walk at the in-band granularity the paper deploys at.
    assert _summary["forest_predict_speedup"] >= 10.0


def test_end_to_end_evaluation_vs_seed(fault_segment_bench, fault_ds):
    X, y = fault_ds.X, fault_ds.y
    repeats, trees = 5, TREES

    def seed_path():
        scores = []
        for r in range(repeats):
            splitter = StratifiedKFold(5, shuffle=True, random_state=r)
            fold_scores = []
            for train, test in splitter.split(X, y):
                model = SeedRandomForestClassifier(trees, random_state=r)
                model.fit(X[train], y[train])
                fold_scores.append(
                    ml_score_classification(y[test], model.predict(X[test]))
                )
            scores.append(np.mean(fold_scores))
        return float(np.mean(scores))

    start = time.perf_counter()
    seed_score = seed_path()
    t_seed = time.perf_counter() - start
    start = time.perf_counter()
    res = run_method_on_segment(
        fault_segment_bench, "cs-all", trees=trees, repeats=repeats, seed=0
    )
    t_new = time.perf_counter() - start

    assert res.ml_score == seed_score, "evaluation scores must match exactly"
    speedup = t_seed / max(t_new, 1e-12)
    _rows.append(("end-to-end", "fault/cs-all", X.shape[0], X.shape[1],
                  t_seed, t_new, speedup))
    _summary["end_to_end_speedup"] = round(speedup, 2)
    print(f"\nend-to-end 5x5 CV: seed {t_seed:.1f} s, engine {t_new:.1f} s "
          f"({speedup:.1f}x)")
    assert speedup >= 1.5


def test_hist_mode_large_m_vs_seed():
    # The histogram splitter's regime: paper-scale sample counts (the
    # full HPC-ODA segments run to hundreds of thousands of samples)
    # with deep leaf-regularized trees, where O(max_bins) candidate
    # positions per feature beat sorting every node's boundary scan.
    rng = np.random.default_rng(0)
    m = int(60000 * float(os.environ.get("REPRO_BENCH_SCALE", "1.0")))
    X = rng.random((m, 24))
    y = rng.integers(0, 6, m)
    kw = dict(max_features="sqrt", min_samples_leaf=50, random_state=0)
    t_seed = _best_of(
        lambda: SeedDecisionTreeClassifier(**kw).fit(X, y), repeats=2
    )
    t_hist = _best_of(
        lambda: DecisionTreeClassifier(splitter="hist", max_bins=64, **kw).fit(X, y),
        repeats=2,
    )
    speedup = t_seed / max(t_hist, 1e-12)
    _rows.append(("hist-fit", "synthetic", m, 24, t_seed, t_hist, speedup))
    _summary["hist_fit_speedup"] = round(speedup, 2)
    print(f"\nhist fit m={m}: seed {t_seed:.2f} s, hist {t_hist:.2f} s "
          f"({speedup:.1f}x)")
    assert speedup >= 1.2


def test_ml_scaling_rows(benchmark):
    """Persist the sweep + summary (and keep --benchmark-only happy)."""
    rng = np.random.default_rng(1)
    X = rng.random((200, 8))
    y = rng.integers(0, 3, 200)
    rf = RandomForestClassifier(5, random_state=0).fit(X, y)
    benchmark.pedantic(lambda: rf.predict(X[:16]), rounds=1, iterations=1)

    merge_csv(RESULTS_CSV, CSV_HEADERS, _rows, n_key_cols=3)
    SUMMARY_JSON.write_text(json.dumps(_summary, indent=2, sort_keys=True) + "\n")
    print(f"\nBENCH_ml summary: {json.dumps(_summary, sort_keys=True)}")

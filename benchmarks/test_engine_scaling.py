"""Benchmark: the unified engine vs the seed's execution strategies.

Three comparisons, each against a faithful re-implementation of the
seed's code path:

* **fleet** — ``FleetSignatureEngine.transform_fleet`` (one batched call
  for the whole fleet, nodes stacked into a ``(nodes, n, t)`` tensor)
  vs the seed's only option: a per-node Python loop over
  ``CorrelationWiseSmoothing.transform_series``.  Acceptance: >= 2x at
  fleet scale (the recorded speedups are far above that).
* **stream** — the incremental ``OnlineSignatureStream.push`` (running
  prefix sums, O(n) per emit) vs the seed's push (fancy-indexed window
  re-gather + full sort/smooth per emit, O(n * wl)).
* **series** — the engine's vectorized ``transform_batch`` route of
  ``transform_series`` vs the seed's default per-window ``transform``
  loop (exercised through the correlation-matrix baseline, which used
  that default in the seed).

Results merge into ``results/engine_scaling.csv`` and a summary is
written to ``BENCH_engine.json`` for the performance trajectory.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.baselines.corrmat import CorrelationMatrixSignature
from repro.core.pipeline import CorrelationWiseSmoothing
from repro.core.smoothing import smooth
from repro.core.sorting import sort_rows
from repro.engine.fleet import FleetSignatureEngine
from repro.engine.windows import windowed_view
from repro.monitoring.streaming import OnlineSignatureStream

from benchmarks.conftest import merge_csv

ROOT = Path(__file__).resolve().parent.parent
RESULTS_CSV = ROOT / "results" / "engine_scaling.csv"
SUMMARY_JSON = ROOT / "BENCH_engine.json"
CSV_HEADERS = (
    "Kind", "Nodes", "Sensors", "wl",
    "t", "Seed time [s]", "Engine time [s]", "Speedup",
)

# (nodes, sensors, t, wl, ws): fleet regimes where many nodes ship a
# bounded window of recent samples for one batched signature pass.
FLEET_GRID = [
    (32, 8, 400, 16, 8),
    (32, 24, 400, 48, 24),
    (128, 8, 400, 48, 24),
    (128, 16, 200, 32, 8),
    (192, 12, 256, 32, 8),
    (256, 8, 256, 16, 8),
]
#: The acceptance cell: >= 100 nodes, one batched call, >= 2x.
FLEET_ACCEPTANCE = (256, 8, 256, 16, 8)

_summary: dict = {}
_rows: list[tuple] = []


def _best_of(fn, repeats=3):
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# ----------------------------------------------------------------------
# Seed-equivalent reference implementations
# ----------------------------------------------------------------------
class _SeedStream:
    """The seed's OnlineSignatureStream push path, verbatim in spirit:
    ring buffer + np.arange % gather + full sort/smooth per emit."""

    def __init__(self, cs, wl, ws):
        self.cs, self.wl, self.ws = cs, wl, ws
        n = cs.model.n_sensors
        self._buf = np.empty((n, wl + 1))
        self._count = 0

    def push(self, sample):
        size = self._buf.shape[1]
        self._buf[:, self._count % size] = sample
        self._count += 1
        if self._count < self.wl or (self._count - self.wl) % self.ws != 0:
            return None
        cols = np.arange(self._count - self.wl, self._count) % size
        window = self._buf[:, cols]
        prev = None
        if self._count > self.wl:
            prev = self._buf[:, (self._count - self.wl - 1) % size].copy()
        return self.cs.transform(window, prev_column=prev)


def _seed_transform_series(method, S, wl, ws):
    """The seed SignatureMethod.transform_series default: a per-window
    Python loop over transform()."""
    n, t = S.shape
    starts = range(0, t - wl + 1, ws)
    return np.stack([method.transform(S[:, s : s + wl]) for s in starts])


def _seed_fleet_loop(data, blocks, wl, ws):
    """The seed's only fleet option: per-node fit-once models, then a
    Python loop of single-node transform_series calls."""
    out = {}
    for path, S in data.items():
        cs = CorrelationWiseSmoothing(blocks=blocks)
        cs.set_model(_seed_fleet_loop.models[path])
        out[path] = cs.transform_series(S, wl, ws)
    return out


_seed_fleet_loop.models = {}


# ----------------------------------------------------------------------
# Benchmarks
# ----------------------------------------------------------------------
@pytest.mark.parametrize("nodes,sensors,t,wl,ws", FLEET_GRID)
def test_fleet_batched_vs_per_node_loop(nodes, sensors, t, wl, ws):
    rng = np.random.default_rng(nodes * 1000 + sensors * 10 + wl)
    data = {f"rack{i % 8}/node{i}": rng.random((sensors, t)) for i in range(nodes)}
    blocks = max(2, sensors // 4)

    engine = FleetSignatureEngine(blocks=blocks, wl=wl, ws=ws)
    engine.fit_fleet(data)
    _seed_fleet_loop.models = {p: engine.model(p) for p in data}

    t_seed = _best_of(lambda: _seed_fleet_loop(data, blocks, wl, ws))
    t_engine = _best_of(lambda: engine.transform_fleet(data))

    # Same bits out of both paths.
    ref = _seed_fleet_loop(data, blocks, wl, ws)
    got = engine.transform_fleet(data)
    assert all(np.array_equal(ref[p], got[p]) for p in data)

    speedup = t_seed / max(t_engine, 1e-12)
    _rows.append(("fleet", nodes, sensors, wl, t, t_seed, t_engine, speedup))
    print(
        f"\nfleet {nodes}x{sensors}x{wl}: seed {t_seed * 1e3:.2f} ms, "
        f"engine {t_engine * 1e3:.2f} ms ({speedup:.1f}x)"
    )
    if (nodes, sensors, t, wl, ws) == FLEET_ACCEPTANCE:
        _summary["fleet_speedup_acceptance"] = round(speedup, 2)
        # Acceptance: >= 100 nodes in one batched call, >= 2x over the
        # seed's per-node loop.
        assert speedup >= 2.0, f"fleet speedup only {speedup:.2f}x"


def test_stream_incremental_vs_seed_push():
    # The in-band regime the paper targets: a node with ~100 sensors and
    # a dense emit schedule, where the seed's O(n * wl) re-gather +
    # re-normalize per emit dwarfs the incremental O(n) update.
    rng = np.random.default_rng(7)
    n, t, wl, ws = 96, 3000, 128, 4
    hist = rng.random((n, t))
    cs = CorrelationWiseSmoothing(blocks=12).fit(hist)

    def run_seed():
        stream = _SeedStream(cs, wl, ws)
        return [s for x in hist.T if (s := stream.push(x)) is not None]

    def run_engine():
        stream = OnlineSignatureStream(cs, wl=wl, ws=ws)
        return [s for x in hist.T if (s := stream.push(x)) is not None]

    a, b = run_seed(), run_engine()
    assert len(a) == len(b)
    assert all(np.allclose(x, y) for x, y in zip(a, b))

    t_seed = _best_of(run_seed)
    t_engine = _best_of(run_engine)
    speedup = t_seed / max(t_engine, 1e-12)
    _rows.append(("stream", 1, n, wl, t, t_seed, t_engine, speedup))
    _summary["stream_push_speedup"] = round(speedup, 2)
    print(
        f"\nstream n={n} wl={wl}: seed {t_seed * 1e3:.1f} ms, "
        f"engine {t_engine * 1e3:.1f} ms ({speedup:.1f}x)"
    )
    assert t_engine < t_seed, "incremental stream must beat the seed push path"


def test_stream_push_block_vs_seed_push():
    rng = np.random.default_rng(8)
    n, t, wl, ws = 96, 3000, 128, 4
    hist = rng.random((n, t))
    cs = CorrelationWiseSmoothing(blocks=12).fit(hist)

    def run_seed():
        stream = _SeedStream(cs, wl, ws)
        return [s for x in hist.T if (s := stream.push(x)) is not None]

    def run_block():
        return OnlineSignatureStream(cs, wl=wl, ws=ws).push_block(hist)

    t_seed = _best_of(run_seed)
    t_block = _best_of(run_block)
    speedup = t_seed / max(t_block, 1e-12)
    _rows.append(("stream-block", 1, n, wl, t, t_seed, t_block, speedup))
    _summary["stream_push_block_speedup"] = round(speedup, 2)
    print(
        f"\npush_block n={n} wl={wl}: seed {t_seed * 1e3:.1f} ms, "
        f"block {t_block * 1e3:.1f} ms ({speedup:.1f}x)"
    )
    assert t_block < t_seed


def test_series_vectorized_vs_seed_loop():
    rng = np.random.default_rng(9)
    n, t, wl, ws = 12, 600, 32, 4
    S = rng.random((n, t))
    method = CorrelationMatrixSignature()

    ref = _seed_transform_series(method, S, wl, ws)
    got = method.transform_series(S, wl, ws)
    assert np.allclose(ref, got)

    t_seed = _best_of(lambda: _seed_transform_series(method, S, wl, ws))
    t_engine = _best_of(lambda: method.transform_series(S, wl, ws))
    speedup = t_seed / max(t_engine, 1e-12)
    _rows.append(("series", 1, n, wl, t, t_seed, t_engine, speedup))
    _summary["transform_series_speedup"] = round(speedup, 2)
    print(
        f"\nseries n={n} wl={wl}: seed loop {t_seed * 1e3:.1f} ms, "
        f"engine {t_engine * 1e3:.1f} ms ({speedup:.1f}x)"
    )
    assert t_engine < t_seed


def test_engine_scaling_rows(benchmark):
    """Persist the sweep + summary (and keep --benchmark-only happy)."""
    rng = np.random.default_rng(10)
    S = rng.random((8, 200))
    cs = CorrelationWiseSmoothing(blocks=4).fit(S)
    benchmark.pedantic(lambda: cs.transform_series(S, 16, 8), rounds=1, iterations=1)

    merge_csv(RESULTS_CSV, CSV_HEADERS, _rows, n_key_cols=4)
    _summary["windowed_view_is_zero_copy"] = bool(
        np.shares_memory(windowed_view(S, 16, 8), S)
    )
    # Single-window sanity anchor: one smooth() call stays microseconds.
    sorted_w = sort_rows(S[:, :16], cs.model)
    t_single = _best_of(lambda: smooth(sorted_w, 4), repeats=5)
    _summary["single_smooth_us"] = round(t_single * 1e6, 1)
    SUMMARY_JSON.write_text(json.dumps(_summary, indent=2, sort_keys=True) + "\n")
    print(f"\nBENCH_engine summary: {json.dumps(_summary, sort_keys=True)}")

"""Benchmark: columnar telemetry store — ingest, scan, replay speedup.

The store claim: recording a fleet's feed into time-partitioned
column-major partitions costs streaming-write throughput (MB/s), the
zero-copy mmap scan reads it back at memory-bus-ish throughput without
materializing the store, and replaying a recorded window through the
detector — partition-sized blocks straight into the fused arena — beats
guarded live per-tick ingestion of the same window by >= 5x at 64 nodes
while producing a **byte-identical** alert stream (asserted here).

Results merge into ``results/store_replay.csv`` and a summary is
written to ``BENCH_store.json``; ``tests/test_bench_guard.py`` fails if
the recorded headline drops below the committed 2x floor or any
recorded speedup falls below 1x.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import SCALE, TREES, merge_csv
from repro.service.fastreplay import record_fleet, replay_from_store
from repro.service.replay import fleet_recipes, prepare_fleet, replay

ROOT = Path(__file__).resolve().parent.parent
RESULTS_CSV = ROOT / "results" / "store_replay.csv"
SUMMARY_JSON = ROOT / "BENCH_store.json"
CSV_HEADERS = (
    "Nodes",
    "Run",
    "Windows",
    "MB",
    "Time [s]",
    "MB/s",
    "Win/s",
    "Speedup",
    "Identical",
)

#: Live baseline cadence: one window step per tick, the serving loop.
LIVE_CHUNK = 10
PARTITION_TICKS = 1024
REPS = 3

#: (nodes, samples per node) — 64 is the headline, 256 shows scaling.
FLEETS = (
    (64, int(1500 * SCALE)),
    (256, int(900 * SCALE)),
)

_rows: list[tuple] = []
_summary: dict[str, float] = {}


def _setup(nodes: int, t: int):
    return prepare_fleet(
        fleet_recipes(nodes, t=t), blocks=20, trees=TREES, seed=0
    )


def _feed_mb(setup) -> float:
    return sum(m.nbytes for m in setup.eval_data.values()) / 1e6


@pytest.mark.parametrize("nodes,t", FLEETS)
def test_store_replay_beats_live(nodes, t, tmp_path_factory):
    headline = nodes == FLEETS[0][0]
    setup = _setup(nodes, t)
    mb = _feed_mb(setup)
    root = tmp_path_factory.mktemp(f"store{nodes}") / "fleet"

    # --- recorder ingest throughput -----------------------------------
    start = time.perf_counter()
    store = record_fleet(
        setup, root, partition_ticks=PARTITION_TICKS, chunk=LIVE_CHUNK
    )
    ingest_s = time.perf_counter() - start
    ingest_mb_s = mb / ingest_s

    # --- out-of-core mmap scan throughput -----------------------------
    scan_s = float("inf")
    for _ in range(REPS):
        start = time.perf_counter()
        checksum = 0.0
        for _, block in store.scan(mmap_mode="r"):
            for plane in block.values():
                checksum += float(np.asarray(plane).sum())
        scan_s = min(scan_s, time.perf_counter() - start)
    assert np.isfinite(checksum)
    scan_mb_s = mb / scan_s

    # --- live per-tick ingestion vs store replay ----------------------
    # Interleave repetitions so machine drift hits all paths equally;
    # keep the best of REPS per path.  The live baseline is the service
    # *default*: the guarded staged serving loop at per-tick cadence
    # (``replay()`` defaults to ``backend="staged"``).  The opt-in fused
    # live loop is recorded alongside as a transparency row so the
    # speedup attributable to the store (vs the fused arena itself)
    # stays visible.
    live_s = fused_s = fast_s = float("inf")
    live = fused = fast = None
    for _ in range(REPS):
        out = replay(
            setup, chunk=LIVE_CHUNK, backend="staged", guard=True
        )
        if out.replay_time_s < live_s:
            live_s, live = out.replay_time_s, out
        out = replay(
            setup, chunk=LIVE_CHUNK, backend="fused", guard=True
        )
        if out.replay_time_s < fused_s:
            fused_s, fused = out.replay_time_s, out
        out = replay_from_store(setup, store, backend="fused")
        if out.replay_time_s < fast_s:
            fast_s, fast = out.replay_time_s, out
    # The contract the speedup is only allowed to ride on: identical
    # alert JSONL, byte for byte, against both live backends.
    live_jsonl = "\n".join(json.dumps(e) for e in live.events)
    fused_jsonl = "\n".join(json.dumps(e) for e in fused.events)
    fast_jsonl = "\n".join(json.dumps(e) for e in fast.events)
    assert fast_jsonl == live_jsonl, (
        "store replay diverged from guarded staged live ingestion"
    )
    assert fast_jsonl == fused_jsonl, (
        "store replay diverged from guarded fused live ingestion"
    )
    assert fast.n_windows == live.n_windows > 0
    speedup = live_s / fast_s
    speedup_fused = fused_s / fast_s

    _rows.extend(
        [
            (nodes, "record", "", round(mb, 1), round(ingest_s, 4),
             round(ingest_mb_s, 1), "", "", ""),
            (nodes, "scan mmap", "", round(mb, 1), round(scan_s, 4),
             round(scan_mb_s, 1), "", "", ""),
            (nodes, f"live staged chunk={LIVE_CHUNK}", live.n_windows,
             "", round(live_s, 4), "",
             round(live.n_windows / live_s, 1), "", ""),
            (nodes, f"live fused chunk={LIVE_CHUNK}", fused.n_windows,
             "", round(fused_s, 4), "",
             round(fused.n_windows / fused_s, 1), "", ""),
            (nodes, "store fused", fast.n_windows, "", round(fast_s, 4),
             "", round(fast.n_windows / fast_s, 1), round(speedup, 2),
             "yes"),
        ]
    )
    suffix = "" if headline else f"_{nodes}"
    _summary[f"store_ingest_mb_s{suffix}"] = round(ingest_mb_s, 1)
    _summary[f"store_scan_mb_s{suffix}"] = round(scan_mb_s, 1)
    _summary[f"store_live_s{suffix}"] = round(live_s, 4)
    _summary[f"store_live_fused_s{suffix}"] = round(fused_s, 4)
    _summary[f"store_replay_s{suffix}"] = round(fast_s, 4)
    _summary[f"store_replay_speedup{suffix}"] = round(speedup, 2)
    _summary[f"store_replay_vs_fused_live{suffix}"] = round(
        speedup_fused, 2
    )
    # Noise floor, not the target: the committed headline is guarded at
    # >= 2x by tests/test_bench_guard.py; the issue's claim is >= 5x.
    assert speedup > 1.0, (
        f"{nodes}-node store replay slower than live ({speedup:.2f}x)"
    )


def test_zz_write_summary():
    """Persist the results (named so it runs after the benchmarks)."""
    assert _rows, "benchmarks did not run"
    merge_csv(RESULTS_CSV, CSV_HEADERS, _rows, n_key_cols=2)
    if "store_replay_speedup" not in _summary:
        pytest.skip(
            "headline case (64-node fleet) did not run; BENCH_store.json "
            "left untouched — run the full file to regenerate it"
        )
    SUMMARY_JSON.write_text(
        json.dumps(_summary, indent=2, sort_keys=True) + "\n"
    )
    print(f"\nBENCH_store summary: {json.dumps(_summary, sort_keys=True)}")

"""Future-work bench: CS on accelerator (GPU) sensor data.

Paper Section V, item 1: "Testing the CS method's effectiveness when
applied to accelerator sensor data (e.g., GPUs)."  Runs the standard
method comparison on the GPU extension segment and records the rows.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.datasets.generators import build_ml_dataset
from repro.datasets.gpu import generate_gpu
from repro.experiments.harness import make_method_factory
from benchmarks.conftest import SCALE, merge_csv
from repro.experiments.reporting import format_table
from repro.ml.forest import RandomForestClassifier
from repro.ml.model_selection import cross_validate_classifier

METHODS = ("tuncer", "lan", "cs-5", "cs-10", "cs-all")
HEADERS = ("Segment", "Method", "Sig. size", "CV time [s]", "F1 score")
RESULTS = Path(__file__).resolve().parent.parent / "results" / "gpu_futurework.csv"

_ROWS: list[tuple] = []


@pytest.fixture(scope="module")
def gpu_segment_bench():
    return generate_gpu(seed=0, t=int(1400 * SCALE), gpus=4)


@pytest.mark.parametrize("method", METHODS)
def test_gpu_cell(benchmark, gpu_segment_bench, method, bench_trees):
    factory = make_method_factory(method)
    dataset = benchmark.pedantic(
        lambda: build_ml_dataset(gpu_segment_bench, factory),
        rounds=1, iterations=1,
    )
    start = time.perf_counter()
    scores = cross_validate_classifier(
        lambda: RandomForestClassifier(bench_trees, random_state=0),
        dataset.X, dataset.y, random_state=0,
    )
    cv_time = time.perf_counter() - start
    row = ("gpu", method, dataset.signature_size, round(cv_time, 3),
           round(float(scores.mean()), 4))
    _ROWS.append(row)
    merge_csv(RESULTS, HEADERS, _ROWS)
    print()
    print(format_table(HEADERS, [row], title=f"GPU future-work — {method}"))
    # The claim: CS remains effective on accelerator telemetry.
    assert scores.mean() > 0.8

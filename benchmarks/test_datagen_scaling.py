"""Benchmark: batched scan generation engine vs the frozen seed path.

PR 3's artifact cache made *warm* runs fast by skipping generation; this
suite measures the *cold* path itself: the batched recurrence scans and
fleet-wide rendering in ``repro.datasets`` against the sample-by-sample
seed implementation frozen in ``repro.datasets._seed_reference``.  Both
paths consume identical RNG streams, so every comparison also asserts
bit-identical labels and ``rtol=1e-10`` numerics before it records a
time — a benchmark on diverging data would be meaningless.

Also measured: end-to-end cold generation of a registered scenario's
recipe set, and the zero-copy ``mmap_mode`` read path for cached
segment artifacts.

Results merge into ``results/datagen_scaling.csv`` and a summary is
written to ``BENCH_datagen.json``; ``tests/test_bench_guard.py`` fails
if the recorded headline drops below the committed 2x floors or any
recorded speedup falls below 1x.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import SCALE, merge_csv
from repro.datasets._seed_reference import reference_generate_segment
from repro.datasets.generators import generate_segment
from repro.datasets.gpu import generate_gpu
from repro.datasets.recipes import _perturb
from repro.monitoring.storage import load_segment_npz, save_segment_npz
from repro.scenarios.registry import get_scenario

ROOT = Path(__file__).resolve().parent.parent
RESULTS_CSV = ROOT / "results" / "datagen_scaling.csv"
SUMMARY_JSON = ROOT / "BENCH_datagen.json"
CSV_HEADERS = (
    "Path",
    "Data points",
    "Seed [s]",
    "Vectorized [s]",
    "Speedup",
)

#: (label, segment, generator kwargs) — Table I shapes at default sizes.
SEGMENT_CASES = (
    ("fault", "fault", {"t": int(20000 * SCALE)}),
    ("application", "application", {"t": int(1200 * SCALE), "nodes": 16}),
    ("power", "power", {"t": int(8000 * SCALE)}),
    ("infrastructure", "infrastructure", {"t": int(1400 * SCALE), "racks": 8}),
    ("cross-architecture", "cross-architecture", {"t": int(1600 * SCALE)}),
    ("gpu", "gpu", {"t": int(1400 * SCALE), "gpus": 4}),
)

_rows: list[tuple] = []
_summary: dict[str, float] = {}


def _generate_new(segment: str, **kwargs):
    if segment == "gpu":
        return generate_gpu(0, **kwargs)
    return generate_segment(segment, seed=0, **kwargs)


def _assert_equivalent(ref, new) -> None:
    assert len(ref.components) == len(new.components)
    for rc, nc in zip(ref.components, new.components):
        if rc.labels is not None:
            assert np.array_equal(rc.labels, nc.labels), "labels diverged"
        scale = max(1.0, float(np.max(np.abs(rc.matrix))))
        assert np.allclose(
            nc.matrix, rc.matrix, rtol=1e-10, atol=1e-12 * scale
        ), "matrix numerics diverged"
        if rc.target is not None:
            assert np.allclose(nc.target, rc.target, rtol=1e-10, atol=1e-12)


def _best_of(fn, repeats: int = 2) -> tuple[float, object]:
    best, result = np.inf, None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.mark.parametrize(
    "label,segment,kwargs",
    SEGMENT_CASES,
    ids=[c[0] for c in SEGMENT_CASES],
)
def test_vectorized_generation_beats_seed_path(label, segment, kwargs):
    seed_s, ref = _best_of(
        lambda: reference_generate_segment(segment, seed=0, **kwargs)
    )
    new_s, new = _best_of(lambda: _generate_new(segment, **kwargs))
    _assert_equivalent(ref, new)
    speedup = seed_s / new_s
    points = sum(c.matrix.size for c in new.components)
    _rows.append(
        (label, points, round(seed_s, 4), round(new_s, 4), round(speedup, 2))
    )
    _summary[f"{label.replace('-', '_')}_seed_s"] = round(seed_s, 4)
    _summary[f"{label.replace('-', '_')}_vectorized_s"] = round(new_s, 4)
    _summary[f"{label.replace('-', '_')}_gen_speedup"] = round(speedup, 2)
    # Noise floor, not the target: the committed headline is guarded at
    # >= 2x by tests/test_bench_guard.py.
    assert speedup > 1.0, (
        f"{label}: vectorized generation slower than the seed path "
        f"({speedup:.2f}x)"
    )


def test_cold_scenario_generation(tmp_path):
    """End-to-end cold generation of a registered scenario's recipes.

    Uses the ``table1`` smoke recipe set (all five Table I segments), the
    same datasets every cold `repro run table1 --smoke` or CI smoke job
    must generate before any signature work starts.
    """
    spec = get_scenario("table1")
    recipes = spec.smoke_dict().get("datasets", spec.datasets)
    assert recipes, "table1 has no dataset recipes"

    def generate_reference():
        out = []
        for r in recipes:
            segment = reference_generate_segment(
                r.segment, seed=r.seed, scale=r.scale, **r.params_dict()
            )
            if r.noise_std > 0.0 or r.drift != 0.0:
                _perturb(segment, r.noise_std, r.drift, r.noise_seed)
            out.append(segment)
        return out

    def generate_new():
        return [r.build() for r in recipes]

    seed_s, refs = _best_of(generate_reference)
    new_s, news = _best_of(generate_new)
    for ref, new in zip(refs, news):
        _assert_equivalent(ref, new)
    speedup = seed_s / new_s
    points = sum(c.matrix.size for s in news for c in s.components)
    _rows.append(
        (
            "cold-scenario(table1)",
            points,
            round(seed_s, 4),
            round(new_s, 4),
            round(speedup, 2),
        )
    )
    _summary["cold_scenario_seed_s"] = round(seed_s, 4)
    _summary["cold_scenario_vectorized_s"] = round(new_s, 4)
    _summary["cold_scenario_speedup"] = round(speedup, 2)
    assert speedup > 1.0


def test_mmap_segment_read(tmp_path):
    """Zero-copy cache hits: mmap'd npz open vs the eager full read."""
    segment = generate_segment("fault", seed=0, t=int(12000 * SCALE))
    path = save_segment_npz(segment, tmp_path / "segment.npz")

    eager_s, eager = _best_of(lambda: load_segment_npz(path), repeats=3)
    mapped_s, mapped = _best_of(
        lambda: load_segment_npz(path, mmap_mode="r"), repeats=3
    )
    # Same bytes either way (first touch faults the pages in).
    assert np.array_equal(eager.components[0].matrix, mapped.components[0].matrix)
    speedup = eager_s / mapped_s
    _rows.append(
        (
            "mmap-segment-read",
            segment.total_data_points,
            round(eager_s, 5),
            round(mapped_s, 5),
            round(speedup, 2),
        )
    )
    _summary["mmap_read_eager_s"] = round(eager_s, 5)
    _summary["mmap_read_mapped_s"] = round(mapped_s, 5)
    _summary["mmap_read_speedup"] = round(speedup, 2)
    assert speedup > 1.0, (
        f"mmap'd segment read slower than the eager load ({speedup:.2f}x)"
    )


def test_zz_write_summary():
    """Persist the results (named so it runs after the benchmarks)."""
    assert _rows, "benchmarks did not run"
    merge_csv(RESULTS_CSV, CSV_HEADERS, _rows, n_key_cols=1)
    per_segment = [
        v for k, v in _summary.items() if k.endswith("_gen_speedup")
    ]
    if not per_segment or "cold_scenario_speedup" not in _summary:
        pytest.skip(
            "headline cases did not all run; BENCH_datagen.json left "
            "untouched — run the full file to regenerate it"
        )
    _summary["segment_generation_speedup"] = max(per_segment)
    SUMMARY_JSON.write_text(
        json.dumps(_summary, indent=2, sort_keys=True) + "\n"
    )
    print(f"\nBENCH_datagen summary: {json.dumps(_summary, sort_keys=True)}")

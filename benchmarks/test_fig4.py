"""Benchmark: Figure 4 — JS divergence (a) and ML score (b) vs length.

For each segment, sweeps the signature length l over {5, 10, 20, 40, All}
and prints the JS divergence and ML score, plus the real-only (-R)
variants.  Expected shapes: JS falls and ML rises monotonically (up to
noise) with l; dropping the imaginary parts raises JS everywhere and
hurts Power/Fault scores most, Infrastructure not at all.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.datasets.generators import build_ml_dataset
from repro.experiments.fig4 import HEADERS, segment_js_divergence
from repro.experiments.harness import make_method_factory
from benchmarks.conftest import SEGMENT_FIXTURES, merge_csv
from repro.experiments.reporting import format_table
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.model_selection import (
    cross_validate_classifier,
    cross_validate_regressor,
)

LENGTHS = (5, 10, 20, 40, "all")

_ROWS: list[tuple] = []

RESULTS = Path(__file__).resolve().parent.parent / "results" / "fig4_sweep.csv"


def _ml_score(seg, method_factory, trees) -> tuple[float, int]:
    ds = build_ml_dataset(seg, method_factory)
    if ds.task == "classification":
        scores = cross_validate_classifier(
            lambda: RandomForestClassifier(trees, random_state=0),
            ds.X, ds.y, random_state=0,
        )
    else:
        scores = cross_validate_regressor(
            lambda: RandomForestRegressor(trees, random_state=0),
            ds.X, ds.y, random_state=0,
        )
    return float(scores.mean()), ds.signature_size


@pytest.mark.parametrize("length", LENGTHS)
@pytest.mark.parametrize("segment", list(SEGMENT_FIXTURES))
def test_fig4_point(benchmark, request, segment, length, bench_trees):
    seg = request.getfixturevalue(SEGMENT_FIXTURES[segment])
    # The benchmark target is the divergence computation itself.
    js = benchmark.pedantic(
        lambda: segment_js_divergence(seg, length, real_only=False),
        rounds=1, iterations=1,
    )
    score, size = _ml_score(seg, make_method_factory(f"cs-{length}"), bench_trees)
    js_r = segment_js_divergence(seg, length, real_only=True)
    score_r, _ = _ml_score(
        seg, make_method_factory(f"cs-{length}", real_only=True), bench_trees
    )
    rows = [
        (segment, str(length), False, round(js, 4), round(score, 4), size),
        (segment, str(length), True, round(js_r, 4), round(score_r, 4), size // 2),
    ]
    _ROWS.extend(rows)
    merge_csv(RESULTS, HEADERS, _ROWS, n_key_cols=3)
    print()
    print(format_table(HEADERS, rows, title=f"Figure 4 — {segment}, l={length}"))
    assert 0.0 <= js <= 1.0
    # Removing derivatives loses information; allow a hair of histogram
    # noise when the derivative distribution is itself near-degenerate.
    assert js_r >= js - 0.01


def test_fig4_summary_shapes():
    if not _ROWS:
        pytest.skip("grid incomplete")
    print()
    print(format_table(HEADERS, sorted(_ROWS), title="Figure 4 — full sweep"))
    segments = {r[0] for r in _ROWS}
    for segment in segments:
        full = {r[1]: r for r in _ROWS if r[0] == segment and not r[2]}
        if {"5", "all"} <= set(full):
            # Figure 4a: JS divergence decreases from l=5 to l=All.
            assert full["all"][3] < full["5"][3]
    # Infrastructure: real-only costs (almost) nothing in ML score.
    infra_pairs = [
        (r, next(q for q in _ROWS if q[:2] == r[:2] and q[2]))
        for r in _ROWS
        if r[0] == "infrastructure" and not r[2]
    ]
    if infra_pairs:
        drops = [full[4] - ronly[4] for full, ronly in infra_pairs]
        assert float(np.mean(drops)) < 0.05

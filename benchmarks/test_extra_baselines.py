"""Extended baseline comparison (related-work methods of Section I-A).

Evaluates the PCA, SAX and correlation-matrix signatures alongside CS on
the Fault and Application segments.  The paper's claim under test:
variance-based dimensionality reduction "has been proven to not work well
in ... fault detection, in which critical status indicators are not
found in the metrics that contribute to most of the variance" — so PCA
should trail CS clearly on Fault while remaining competitive on the
application-classification task, where the dominant workload signal *is*
the top variance direction.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.datasets.generators import build_ml_dataset
from repro.experiments.harness import make_method_factory
from benchmarks.conftest import merge_csv
from repro.experiments.reporting import format_table
from repro.ml.forest import RandomForestClassifier
from repro.ml.model_selection import cross_validate_classifier

METHODS = ("cs-20", "pca", "sax", "corrmat", "tuncer")
HEADERS = ("Segment", "Method", "Sig. size", "CV time [s]", "F1 score")

RESULTS = Path(__file__).resolve().parent.parent / "results" / "extra_baselines.csv"

_ROWS: list[tuple] = []


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("segment", ("fault", "application"))
def test_extra_baseline_cell(benchmark, request, segment, method, bench_trees):
    seg = request.getfixturevalue(f"{segment}_segment_bench")
    factory = make_method_factory(method)
    dataset = benchmark.pedantic(
        lambda: build_ml_dataset(seg, factory), rounds=1, iterations=1
    )
    start = time.perf_counter()
    scores = cross_validate_classifier(
        lambda: RandomForestClassifier(bench_trees, random_state=0),
        dataset.X, dataset.y, random_state=0,
    )
    cv_time = time.perf_counter() - start
    row = (segment, method, dataset.signature_size, round(cv_time, 3),
           round(float(scores.mean()), 4))
    _ROWS.append(row)
    merge_csv(RESULTS, HEADERS, _ROWS)
    print()
    print(format_table(HEADERS, [row],
                       title=f"Extra baselines — {segment}/{method}"))
    assert scores.mean() > 0.3  # every method must clear a sanity floor


def test_extra_baselines_fault_claim():
    """PCA trails full-resolution methods on fault detection.

    On the synthetic segment some fault channel effects do reach the top
    variance directions, so PCA is not as catastrophic as on the real
    traces — but it still loses to the per-sensor statistical method,
    which keeps every error counter intact.
    """
    by = {(r[0], r[1]): r[4] for r in _ROWS}
    if ("fault", "pca") not in by or ("fault", "tuncer") not in by:
        pytest.skip("grid incomplete")
    assert by[("fault", "pca")] < by[("fault", "tuncer")] + 0.01
    print(f"\nfault F1: tuncer {by[('fault', 'tuncer')]:.3f} "
          f"vs pca {by[('fault', 'pca')]:.3f}")

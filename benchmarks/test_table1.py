"""Benchmark: Table I — segment generation and overview rows.

Regenerates the dataset-collection overview (Table I of the paper) and
benchmarks the telemetry-simulator throughput for each segment.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SCALE
from repro.datasets.generators import generate_segment
from repro.experiments.table1 import HEADERS, segment_summary
from repro.experiments.reporting import format_table

SEGMENT_SIZES = {
    "fault": {"t": 4000},
    "application": {"t": 800, "nodes": 4},
    "power": {"t": 3000},
    "infrastructure": {"t": 800, "racks": 4},
    "cross-architecture": {"t": 1000},
}


@pytest.mark.parametrize("segment", list(SEGMENT_SIZES))
def test_table1_generation(benchmark, segment):
    kwargs = {
        k: (int(v * SCALE) if k == "t" else v)
        for k, v in SEGMENT_SIZES[segment].items()
    }
    seg = benchmark.pedantic(
        lambda: generate_segment(segment, seed=0, **kwargs), rounds=3, iterations=1
    )
    row = segment_summary(seg)
    print()
    print(format_table(HEADERS, [row], title=f"Table I row — {segment}"))
    assert seg.total_data_points > 0

#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml — run before pushing.
#
# Offline friendly: no network installs.  The repository runs straight
# off PYTHONPATH=src, so nothing needs to be pip-installed at all; when
# an editable install is wanted on a wheel-less environment, use
#
#     pip install -e . --no-build-isolation
#
# (plain `pip install -e .` needs the `wheel` package, which minimal
# containers lack; setup.py ships a shim that makes the legacy editable
# path work without it).
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 test suite (benchmarks deselected via -m 'not slow') =="
python -m pytest -x -q

echo "== bench guards (recorded speedup floors) =="
python -m pytest tests/test_bench_guard.py -q

# Opt-in benchmark refresh: regenerates results/*.csv + BENCH_*.json
# through the same entry point developers use (`repro bench`).  Off by
# default — the recorded summaries are committed and the guards above
# enforce their floors without paying benchmark runtime.
if [[ "${RUN_BENCH:-0}" == "1" ]]; then
    echo "== benchmark suite (repro bench) =="
    python -m repro bench
fi

echo "== service smoke: fused backend must match staged to the byte =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
python -m repro detect --smoke --cache-dir "$SMOKE_DIR/cache" \
    --alerts "$SMOKE_DIR/staged.jsonl"
python -m repro detect --smoke --cache-dir "$SMOKE_DIR/cache" \
    --backend fused --alerts "$SMOKE_DIR/fused.jsonl"
cmp "$SMOKE_DIR/staged.jsonl" "$SMOKE_DIR/fused.jsonl"

echo "== crash-recovery smoke: kill, resume, byte-identical alerts =="
# Twice, so a flaky pass can't hide: interrupt the guarded replay at
# tick 3 with per-tick checkpoints, resume from the snapshot, and the
# stitched alert stream must equal the uninterrupted run to the byte.
for attempt in 1 2; do
    rm -f "$SMOKE_DIR/ck.npz" "$SMOKE_DIR/resumed.jsonl"
    python -m repro detect --smoke --cache-dir "$SMOKE_DIR/cache" \
        --checkpoint "$SMOKE_DIR/ck.npz" --stop-after 3 \
        --alerts "$SMOKE_DIR/resumed.jsonl"
    python -m repro detect --smoke --cache-dir "$SMOKE_DIR/cache" \
        --checkpoint "$SMOKE_DIR/ck.npz" --resume \
        --alerts "$SMOKE_DIR/resumed.jsonl"
    cmp "$SMOKE_DIR/staged.jsonl" "$SMOKE_DIR/resumed.jsonl"
done

echo "== chaos scenario smoke (seeded faults + kill-and-restore) =="
python -m repro run fleet-detect-chaos --smoke --cache-dir "$SMOKE_DIR/cache"

echo "== telemetry store smoke: replay-from-store must match live =="
# Record the smoke window into a repro-telestore/v1 store, replay it
# through both backends, and the alert JSONL must equal live guarded
# ingestion of the same feed — byte for byte.
python -m repro store record "$SMOKE_DIR/telestore" --smoke \
    --cache-dir "$SMOKE_DIR/cache"
python -m repro store verify "$SMOKE_DIR/telestore"
python -m repro detect --smoke --cache-dir "$SMOKE_DIR/cache" \
    --from-store "$SMOKE_DIR/telestore" \
    --alerts "$SMOKE_DIR/store_staged.jsonl"
python -m repro detect --smoke --cache-dir "$SMOKE_DIR/cache" \
    --from-store "$SMOKE_DIR/telestore" --backend fused \
    --alerts "$SMOKE_DIR/store_fused.jsonl"
cmp "$SMOKE_DIR/staged.jsonl" "$SMOKE_DIR/store_staged.jsonl"
cmp "$SMOKE_DIR/staged.jsonl" "$SMOKE_DIR/store_fused.jsonl"
python -m repro run fleet-replay --smoke --cache-dir "$SMOKE_DIR/cache"

echo "== network serve smoke: loopback ingestion must match in-process =="
# A 50-node replicated smoke fleet served over a loopback socket: start
# the ingestion server on an ephemeral port, drive it with the CLI load
# generator, and the network-ingested alert JSONL must equal in-process
# replay of the same fleet — byte for byte.  (serve/loadgen default to
# the 30-sample serving burst; pin --chunk 200 to match detect --smoke.)
rm -f "$SMOKE_DIR/port" "$SMOKE_DIR/net.jsonl"
python -m repro serve --smoke --cache-dir "$SMOKE_DIR/cache" \
    --replicate 50 --chunk 200 --listen 127.0.0.1:0 \
    --port-file "$SMOKE_DIR/port" --exit-on-idle \
    --alerts "$SMOKE_DIR/net.jsonl" &
SERVE_PID=$!
for _ in $(seq 1 150); do
    [[ -s "$SMOKE_DIR/port" ]] && break
    sleep 0.2
done
[[ -s "$SMOKE_DIR/port" ]] || { echo "serve never wrote its port file"; exit 1; }
python -m repro loadgen --smoke --cache-dir "$SMOKE_DIR/cache" \
    --replicate 50 --chunk 200 \
    --connect "127.0.0.1:$(cat "$SMOKE_DIR/port")"
wait "$SERVE_PID"
python -m repro detect --smoke --cache-dir "$SMOKE_DIR/cache" \
    --replicate 50 --chunk 200 --alerts "$SMOKE_DIR/inproc.jsonl"
cmp "$SMOKE_DIR/net.jsonl" "$SMOKE_DIR/inproc.jsonl"
python -m repro run fleet-serve --smoke --cache-dir "$SMOKE_DIR/cache"

echo "== durable serve smoke: supervised kill -9 under network chaos =="
# The crash-durability claim end to end, against the real CLI: a
# supervised `repro serve` with a write-ahead journal and per-tick
# networked checkpoints, fed by a resuming loadgen through the seeded
# chaos proxy.  Mid-stream the serving child is SIGKILLed via its pid
# file; the supervisor respawns it, recovery replays checkpoint + WAL,
# the proxy and client follow the port file onto the fresh ephemeral
# port — and the final alert JSONL must still equal the in-process
# replay, byte for byte.
rm -rf "$SMOKE_DIR/wal"
rm -f "$SMOKE_DIR/dport" "$SMOKE_DIR/cport" "$SMOKE_DIR/serve.pid" \
    "$SMOKE_DIR/durable.jsonl" "$SMOKE_DIR/durable.npz"
python -m repro serve --smoke --cache-dir "$SMOKE_DIR/cache" \
    --chunk 200 --listen 127.0.0.1:0 --port-file "$SMOKE_DIR/dport" \
    --exit-on-idle --supervise --pid-file "$SMOKE_DIR/serve.pid" \
    --wal "$SMOKE_DIR/wal" --wal-fsync tick \
    --checkpoint "$SMOKE_DIR/durable.npz" --checkpoint-every 1 \
    --model "$SMOKE_DIR/fleet.npz" \
    --alerts "$SMOKE_DIR/durable.jsonl" &
SUP_PID=$!
for _ in $(seq 1 150); do
    [[ -s "$SMOKE_DIR/dport" ]] && break
    sleep 0.2
done
[[ -s "$SMOKE_DIR/dport" ]] || { echo "supervised serve never bound"; exit 1; }
python -m repro netchaos --listen 127.0.0.1:0 \
    --upstream-port-file "$SMOKE_DIR/dport" \
    --port-file "$SMOKE_DIR/cport" \
    --seed 0 --corrupt-per-mb 2 --truncate-per-mb 0.5 &
CHAOS_PID=$!
for _ in $(seq 1 50); do
    [[ -s "$SMOKE_DIR/cport" ]] && break
    sleep 0.2
done
[[ -s "$SMOKE_DIR/cport" ]] || { echo "chaos proxy never bound"; exit 1; }
# Pace the feed so the kill below reliably lands mid-stream.
python -m repro loadgen --smoke --cache-dir "$SMOKE_DIR/cache" \
    --chunk 200 --interval 0.25 --resume \
    --port-file "$SMOKE_DIR/cport" &
LOAD_PID=$!
# A checkpoint on disk proves durable progress; then kill -9 the child.
for _ in $(seq 1 300); do
    [[ -f "$SMOKE_DIR/durable.npz" ]] && break
    sleep 0.1
done
[[ -f "$SMOKE_DIR/durable.npz" ]] || { echo "no checkpoint before kill"; exit 1; }
kill -9 "$(cat "$SMOKE_DIR/serve.pid")"
wait "$LOAD_PID"
wait "$SUP_PID"
kill "$CHAOS_PID" 2>/dev/null || true
cmp "$SMOKE_DIR/staged.jsonl" "$SMOKE_DIR/durable.jsonl"
python -m repro run fleet-serve-chaos --smoke --cache-dir "$SMOKE_DIR/cache"

# Lint runs when ruff is available; the lint job in GitHub Actions is
# authoritative.  Installing ruff needs network access, so offline
# containers simply skip this step.
if command -v ruff >/dev/null 2>&1; then
    echo "== ruff lint =="
    ruff check src tests benchmarks examples
else
    echo "== ruff not installed; skipping lint (CI's lint job runs it) =="
fi

echo "CI mirror passed."

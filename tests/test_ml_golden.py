"""Golden-model tests: the presorted/batched CART engine vs the seed.

The optimized builder in :mod:`repro.ml.tree` and the batched forest
predictor in :mod:`repro.ml.forest` must reproduce the frozen seed
implementation (:mod:`repro.ml._seed_reference`) **bit for bit** in
exact-split mode: identical flat node arrays (feature, threshold,
children, values) and identical predictions, for classification and
regression, across both sorted-layout strategies (presorted-partitioned
for full-feature candidates, batched per-node subset sort for
feature-subsampled trees).

Regression fixtures use integer-valued targets so that every prefix sum
in the variance scan is exact; classification is exact by construction
(integer class counts).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml._seed_reference import (
    SeedDecisionTreeClassifier,
    SeedDecisionTreeRegressor,
    SeedRandomForestClassifier,
    SeedRandomForestRegressor,
)
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor


def assert_same_tree(seed_tree, new_tree):
    assert seed_tree.node_count == new_tree.node_count
    assert np.array_equal(seed_tree._feature, new_tree._feature)
    assert np.array_equal(seed_tree._threshold, new_tree._threshold)
    assert np.array_equal(seed_tree._left, new_tree._left)
    assert np.array_equal(seed_tree._right, new_tree._right)
    assert np.array_equal(seed_tree._values, new_tree._values)


@pytest.fixture
def cls_data():
    rng = np.random.default_rng(1234)
    X = rng.random((300, 12))
    y = rng.integers(0, 5, 300)
    return X, y


@pytest.fixture
def cls_ties_data():
    """Quantized features: heavy value ties exercise boundary handling."""
    rng = np.random.default_rng(99)
    X = np.round(rng.random((260, 9)), 1)
    y = rng.integers(0, 4, 260)
    return X, y


@pytest.fixture
def reg_data():
    """Integer targets keep every prefix-sum bit-exact."""
    rng = np.random.default_rng(77)
    X = rng.random((320, 8))
    y = rng.integers(0, 60, 320).astype(np.float64)
    return X, y


class TestGoldenClassifierTree:
    @pytest.mark.parametrize("max_features", [None, "sqrt", "log2", 4])
    def test_node_arrays_identical(self, cls_data, max_features):
        X, y = cls_data
        a = SeedDecisionTreeClassifier(max_features=max_features, random_state=5).fit(X, y)
        b = DecisionTreeClassifier(max_features=max_features, random_state=5).fit(X, y)
        assert_same_tree(a, b)

    @pytest.mark.parametrize("kw", [
        {"min_samples_leaf": 4},
        {"min_samples_split": 10},
        {"max_depth": 5},
        {"max_depth": 1},
    ])
    def test_hyperparameters_identical(self, cls_data, kw):
        X, y = cls_data
        a = SeedDecisionTreeClassifier(random_state=2, **kw).fit(X, y)
        b = DecisionTreeClassifier(random_state=2, **kw).fit(X, y)
        assert_same_tree(a, b)

    @pytest.mark.parametrize("max_features", [None, "sqrt"])
    def test_tied_values_identical(self, cls_ties_data, max_features):
        X, y = cls_ties_data
        a = SeedDecisionTreeClassifier(
            max_features=max_features, random_state=7, min_samples_leaf=3
        ).fit(X, y)
        b = DecisionTreeClassifier(
            max_features=max_features, random_state=7, min_samples_leaf=3
        ).fit(X, y)
        assert_same_tree(a, b)

    def test_predictions_identical(self, cls_data):
        X, y = cls_data
        rng = np.random.default_rng(0)
        X_test = rng.random((500, X.shape[1]))
        a = SeedDecisionTreeClassifier(max_features="sqrt", random_state=9).fit(X, y)
        b = DecisionTreeClassifier(max_features="sqrt", random_state=9).fit(X, y)
        assert np.array_equal(a.predict(X_test), b.predict(X_test))
        assert np.array_equal(a.predict_proba(X_test), b.predict_proba(X_test))


class TestGoldenRegressorTree:
    @pytest.mark.parametrize("max_features", [None, 1 / 3, "sqrt"])
    def test_node_arrays_identical(self, reg_data, max_features):
        X, y = reg_data
        a = SeedDecisionTreeRegressor(
            max_features=max_features, random_state=5, min_samples_leaf=5
        ).fit(X, y)
        b = DecisionTreeRegressor(
            max_features=max_features, random_state=5, min_samples_leaf=5
        ).fit(X, y)
        assert_same_tree(a, b)

    def test_depth_limited_identical(self, reg_data):
        X, y = reg_data
        a = SeedDecisionTreeRegressor(max_depth=4, random_state=1).fit(X, y)
        b = DecisionTreeRegressor(max_depth=4, random_state=1).fit(X, y)
        assert_same_tree(a, b)

    def test_predictions_identical(self, reg_data):
        X, y = reg_data
        X_test = np.random.default_rng(3).random((400, X.shape[1]))
        a = SeedDecisionTreeRegressor(random_state=4, min_samples_leaf=5).fit(X, y)
        b = DecisionTreeRegressor(random_state=4, min_samples_leaf=5).fit(X, y)
        assert np.array_equal(a.predict(X_test), b.predict(X_test))


class TestNumericalEdges:
    def test_offset_targets_do_not_collapse_regression_tree(self):
        # One-pass E[x^2]-E[x]^2 variance cancels catastrophically here;
        # the stop criterion must use the stable two-pass form.
        rng = np.random.default_rng(0)
        X = rng.random((200, 3))
        y = 1e8 + rng.random(200)
        a = SeedDecisionTreeRegressor(random_state=0, min_samples_leaf=5).fit(X, y)
        b = DecisionTreeRegressor(random_state=0, min_samples_leaf=5).fit(X, y)
        assert b.node_count == a.node_count
        assert b.node_count > 20

    def test_wide_data_more_features_than_samples(self):
        rng = np.random.default_rng(1)
        X = rng.random((6, 20))
        y = np.array([0, 1, 0, 1, 0, 1])
        a = SeedDecisionTreeClassifier(random_state=0).fit(X, y)
        b = DecisionTreeClassifier(random_state=0).fit(X, y)
        assert_same_tree(a, b)
        Xr = rng.random((10, 200))
        yr = rng.integers(0, 2, 10)
        rf_a = SeedRandomForestClassifier(3, random_state=0).fit(Xr, yr)
        rf_b = RandomForestClassifier(3, random_state=0).fit(Xr, yr)
        assert np.array_equal(rf_a.predict_proba(Xr), rf_b.predict_proba(Xr))

    def test_float_targets_predictions_match_seed_closely(self):
        # Tied feature values + float targets: tie order feeding the
        # cumsums differs from the seed's per-node sort, so agreement is
        # to rounding, not necessarily bit-exact.
        rng = np.random.default_rng(2)
        X = np.round(rng.random((300, 6)), 1)
        y = rng.random(300)
        a = SeedDecisionTreeRegressor(random_state=0, min_samples_leaf=5).fit(X, y)
        b = DecisionTreeRegressor(random_state=0, min_samples_leaf=5).fit(X, y)
        assert np.allclose(a.predict(X), b.predict(X), rtol=1e-12, atol=1e-12)


class TestGoldenForest:
    def test_classifier_proba_identical(self, cls_data):
        X, y = cls_data
        a = SeedRandomForestClassifier(20, random_state=0).fit(X, y)
        b = RandomForestClassifier(20, random_state=0).fit(X, y)
        for t_seed, t_new in zip(a.estimators_, b.estimators_):
            assert_same_tree(t_seed, t_new)
        assert np.array_equal(a.predict_proba(X), b.predict_proba(X))
        assert np.array_equal(a.predict(X), b.predict(X))

    def test_classifier_rare_class_identical(self):
        # A class so rare some bootstrap samples miss it: exercises the
        # fit-time class-column alignment against the seed's per-call
        # searchsorted.
        rng = np.random.default_rng(8)
        X = rng.random((120, 3))
        y = np.zeros(120, dtype=int)
        y[:5] = 1
        X[:5] += 10.0
        a = SeedRandomForestClassifier(15, random_state=3).fit(X, y)
        b = RandomForestClassifier(15, random_state=3).fit(X, y)
        assert np.array_equal(a.predict_proba(X), b.predict_proba(X))

    def test_regressor_predict_identical(self, reg_data):
        X, y = reg_data
        a = SeedRandomForestRegressor(15, random_state=0).fit(X, y)
        b = RandomForestRegressor(15, random_state=0).fit(X, y)
        assert np.array_equal(a.predict(X), b.predict(X))

    def test_no_bootstrap_identical(self, cls_data):
        X, y = cls_data
        a = SeedRandomForestClassifier(8, bootstrap=False, random_state=1).fit(X, y)
        b = RandomForestClassifier(8, bootstrap=False, random_state=1).fit(X, y)
        assert np.array_equal(a.predict_proba(X), b.predict_proba(X))


class TestBatchedPredictProperty:
    """Batched forest predict must equal the per-tree walk exactly."""

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        n_train=st.integers(30, 90),
        n_test=st.integers(1, 60),
        n_features=st.integers(2, 7),
        n_classes=st.integers(2, 5),
        n_trees=st.integers(1, 12),
    )
    def test_classifier_batched_equals_per_tree(
        self, seed, n_train, n_test, n_features, n_classes, n_trees
    ):
        rng = np.random.default_rng(seed)
        X = rng.random((n_train, n_features))
        y = rng.integers(0, n_classes, n_train)
        X_test = rng.random((n_test, n_features))
        rf = RandomForestClassifier(n_trees, random_state=seed % 1000).fit(X, y)
        # Reference: sequential per-tree accumulation with column alignment.
        ref = np.zeros((n_test, rf.classes_.shape[0]))
        for tree in rf.estimators_:
            cols = np.searchsorted(rf.classes_, tree.classes_)
            ref[:, cols] += tree.predict_proba(X_test)
        ref /= len(rf.estimators_)
        assert np.array_equal(rf.predict_proba(X_test), ref)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        n_train=st.integers(30, 80),
        n_test=st.integers(1, 40),
        n_trees=st.integers(1, 10),
    )
    def test_regressor_batched_equals_per_tree(self, seed, n_train, n_test, n_trees):
        rng = np.random.default_rng(seed)
        X = rng.random((n_train, 4))
        y = rng.random(n_train)
        X_test = rng.random((n_test, 4))
        rf = RandomForestRegressor(n_trees, random_state=seed % 1000).fit(X, y)
        ref = np.zeros(n_test)
        for tree in rf.estimators_:
            ref += tree.predict(X_test)
        ref /= len(rf.estimators_)
        assert np.array_equal(rf.predict(X_test), ref)


class TestHistogramMode:
    def test_learns_separable_blobs(self):
        rng = np.random.default_rng(0)
        X0 = rng.normal(0.0, 0.3, size=(80, 3))
        X1 = rng.normal(2.0, 0.3, size=(80, 3))
        X = np.vstack([X0, X1])
        y = np.array([0] * 80 + [1] * 80)
        tree = DecisionTreeClassifier(splitter="hist", max_bins=16, random_state=0).fit(X, y)
        assert (tree.predict(X) == y).mean() > 0.97

    def test_forest_hist_learns(self):
        rng = np.random.default_rng(1)
        X = rng.random((300, 5))
        y = ((X[:, 0] + X[:, 1]) > 1.0).astype(int)
        rf = RandomForestClassifier(
            15, random_state=0, splitter="hist", max_bins=32
        ).fit(X, y)
        assert (rf.predict(X) == y).mean() > 0.9

    def test_regression_hist(self):
        rng = np.random.default_rng(2)
        X = rng.random((400, 3))
        y = 3.0 * X[:, 0] + X[:, 1]
        tree = DecisionTreeRegressor(
            splitter="hist", max_bins=64, min_samples_leaf=5, random_state=0
        ).fit(X, y)
        assert np.corrcoef(tree.predict(X), y)[0, 1] > 0.95

    def test_deterministic(self):
        rng = np.random.default_rng(3)
        X = rng.random((200, 4))
        y = rng.integers(0, 3, 200)
        a = DecisionTreeClassifier(splitter="hist", max_features="sqrt", random_state=5).fit(X, y)
        b = DecisionTreeClassifier(splitter="hist", max_features="sqrt", random_state=5).fit(X, y)
        assert_same_tree(a, b)

    def test_thresholds_come_from_bin_edges(self):
        rng = np.random.default_rng(4)
        X = rng.random((250, 2))
        y = (X[:, 0] > 0.5).astype(int)
        max_bins = 8
        tree = DecisionTreeClassifier(splitter="hist", max_bins=max_bins, random_state=0).fit(X, y)
        from repro.ml.tree import _quantile_bin

        _, edges = _quantile_bin(X, max_bins)
        internal = tree._feature != -1
        for f, thr in zip(tree._feature[internal], tree._threshold[internal]):
            assert thr in edges[f]

    def test_bins_bound_distinct_thresholds(self):
        # With B bins a feature offers at most B-1 distinct cut points
        # across the entire tree.
        rng = np.random.default_rng(5)
        X = rng.random((400, 3))
        y = rng.integers(0, 4, 400)
        max_bins = 4
        tree = DecisionTreeClassifier(
            splitter="hist", max_bins=max_bins, random_state=0
        ).fit(X, y)
        internal = tree._feature != -1
        for f in range(X.shape[1]):
            thresholds = tree._threshold[internal & (tree._feature == f)]
            assert np.unique(thresholds).size <= max_bins - 1

    def test_rejects_bad_splitter_and_bins(self):
        X = np.random.default_rng(0).random((30, 2))
        y = np.zeros(30, dtype=int)
        with pytest.raises(ValueError, match="splitter"):
            DecisionTreeClassifier(splitter="bogus").fit(X, y)
        with pytest.raises(ValueError, match="max_bins"):
            DecisionTreeClassifier(splitter="hist", max_bins=1).fit(X, y)

"""Tests for the fleet-scale batched signature service."""

import numpy as np
import pytest

from repro.core.pipeline import CorrelationWiseSmoothing
from repro.engine.fleet import FleetSignatureEngine
from repro.experiments.harness import run_fleet_on_segment
from repro.monitoring.sensor_tree import SensorTree


def _fleet_data(rng, nodes, n=6, t=200):
    return {f"rack{i % 4}/node{i}": rng.random((n, t)) for i in range(nodes)}


class TestBatchedEquivalence:
    def test_hundred_nodes_bitwise_equal_per_node(self, rng):
        """Acceptance: >= 100 nodes in one batched call, bit-identical to
        the seed's per-node CorrelationWiseSmoothing loop."""
        data = _fleet_data(rng, 120)
        wl, ws, blocks = 20, 10, 3
        engine = FleetSignatureEngine(blocks=blocks, wl=wl, ws=ws)
        engine.fit_fleet(data)
        batched = engine.transform_fleet(data)
        assert len(batched) == 120
        for path, S in data.items():
            ref = CorrelationWiseSmoothing(blocks=blocks).fit(S).transform_series(
                S, wl, ws
            )
            assert np.array_equal(batched[path], ref), path

    def test_heterogeneous_geometries(self, rng):
        data = {
            "a/n0": rng.random((4, 100)),
            "a/n1": rng.random((4, 100)),
            "b/n0": rng.random((7, 150)),   # different geometry group
            "b/n1": rng.random((7, 60)),    # same n, different t
        }
        engine = FleetSignatureEngine(blocks=2, wl=10, ws=5)
        engine.fit_fleet(data)
        out = engine.transform_fleet(data)
        for path, S in data.items():
            ref = CorrelationWiseSmoothing(blocks=2).fit(S).transform_series(S, 10, 5)
            assert np.array_equal(out[path], ref), path

    def test_sharded_execution_identical(self, rng):
        data = _fleet_data(rng, 32)
        engine = FleetSignatureEngine(blocks="all", wl=16, ws=8)
        engine.fit_fleet(data)
        serial = engine.transform_fleet(data)
        sharded = engine.transform_fleet(data, shards=4)
        assert serial.keys() == sharded.keys()
        for path in serial:
            assert np.array_equal(serial[path], sharded[path])

    def test_transform_node_matches_fleet(self, rng):
        data = _fleet_data(rng, 3)
        engine = FleetSignatureEngine(blocks=3, wl=12, ws=4)
        engine.fit_fleet(data)
        fleet = engine.transform_fleet(data)
        for path, S in data.items():
            assert np.array_equal(engine.transform_node(path, S), fleet[path])

    def test_blocks_clamped_to_sensor_count(self, rng):
        S = rng.random((4, 80))
        engine = FleetSignatureEngine(blocks=40, wl=10, ws=5)
        engine.fit_node("n0", S)
        assert engine.signature_length("n0") == 4
        out = engine.transform_node("n0", S)
        ref = CorrelationWiseSmoothing(blocks="all").fit(S).transform_series(S, 10, 5)
        assert np.array_equal(out, ref)

    def test_short_series_empty(self, rng):
        S = rng.random((4, 5))
        engine = FleetSignatureEngine(blocks=2, wl=10, ws=5)
        engine.fit_node("n0", S)
        assert engine.transform_node("n0", S).shape == (0, 2)


class TestRegistry:
    def test_paths_select_contains(self, rng):
        engine = FleetSignatureEngine(blocks=2, wl=10, ws=5)
        engine.fit_fleet(_fleet_data(rng, 8))
        assert len(engine) == 8
        assert "rack0/node0" in engine
        assert engine.select("rack0/*") == sorted(
            p for p in engine.paths if p.startswith("rack0/")
        )
        assert engine.select("*/node3") == ["rack3/node3"]
        assert engine.select("rack0") == []  # per-segment matching

    def test_missing_model_raises(self, rng):
        engine = FleetSignatureEngine(blocks=2, wl=10, ws=5)
        with pytest.raises(KeyError):
            engine.transform_fleet({"ghost": rng.random((4, 50))})

    def test_mismatched_matrix_raises(self, rng):
        engine = FleetSignatureEngine(blocks=2, wl=10, ws=5)
        engine.fit_node("n0", rng.random((4, 50)))
        with pytest.raises(ValueError):
            engine.transform_fleet({"n0": rng.random((5, 50))})

    def test_set_model_roundtrip(self, rng):
        S = rng.random((5, 90))
        model = CorrelationWiseSmoothing(blocks=2).fit(S).model
        engine = FleetSignatureEngine(blocks=2, wl=10, ws=5)
        engine.set_model("shipped/node", model)
        ref = CorrelationWiseSmoothing(blocks=2).fit(S).transform_series(S, 10, 5)
        assert np.array_equal(engine.transform_node("shipped/node", S), ref)

    def test_validation(self):
        with pytest.raises(ValueError):
            FleetSignatureEngine(blocks=0, wl=10, ws=5)
        with pytest.raises(ValueError):
            FleetSignatureEngine(blocks="some", wl=10, ws=5)
        with pytest.raises(ValueError):
            FleetSignatureEngine(blocks=2, wl=0, ws=5)


class TestSensorTreeIntegration:
    def _tree(self):
        tree = SensorTree()
        for node in ("rack0/node0", "rack0/node1"):
            for sensor in ("power", "temp", "util"):
                tree.add(f"{node}/{sensor}", unit="x")
        return tree

    def test_names_taken_from_tree(self, rng):
        tree = self._tree()
        engine = FleetSignatureEngine(blocks=2, wl=10, ws=5, tree=tree)
        engine.fit_node("rack0/node0", rng.random((3, 80)))
        model = engine.model("rack0/node0")
        assert model.sensor_names == (
            "rack0/node0/power",
            "rack0/node0/temp",
            "rack0/node0/util",
        )

    def test_unknown_path_rejected(self, rng):
        engine = FleetSignatureEngine(blocks=2, wl=10, ws=5, tree=self._tree())
        with pytest.raises(ValueError):
            engine.fit_node("rack9/node0", rng.random((3, 80)))

    def test_row_count_mismatch_rejected(self, rng):
        engine = FleetSignatureEngine(blocks=2, wl=10, ws=5, tree=self._tree())
        with pytest.raises(ValueError):
            engine.fit_node("rack0/node0", rng.random((5, 80)))

    def test_parent_groups(self):
        tree = self._tree()
        groups = tree.parent_groups()
        assert set(groups) == {"rack0/node0", "rack0/node1"}
        assert groups["rack0/node0"] == [
            "rack0/node0/power",
            "rack0/node0/temp",
            "rack0/node0/util",
        ]
        filtered = tree.parent_groups("rack0/node1/*")
        assert set(filtered) == {"rack0/node1"}


class TestHarnessFleetRunner:
    def test_matches_per_component_loop(self, application_segment):
        result = run_fleet_on_segment(application_segment, blocks=4)
        spec = application_segment.spec
        assert result.n_nodes == application_segment.n_components
        for comp in application_segment.components:
            ref = CorrelationWiseSmoothing(blocks=4).fit(comp.matrix).transform_series(
                comp.matrix, spec.wl, spec.ws
            )
            assert np.array_equal(result.signatures[comp.name], ref)
        assert result.n_signatures == sum(
            s.shape[0] for s in result.signatures.values()
        )
        assert result.fit_time_s >= 0 and result.transform_time_s >= 0

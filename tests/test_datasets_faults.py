"""Tests for the fault-injection models."""

import numpy as np
import pytest

from repro.datasets.faults import FAULTS, HEALTHY_LABEL, FaultModel, fault_names


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestFaultCatalog:
    def test_eight_faults(self):
        assert len(FAULTS) == 8
        assert len({f.name for f in FAULTS}) == 8

    def test_two_settings_each(self):
        for f in FAULTS:
            assert len(f.intensities) == 2
            assert f.intensities[0] < f.intensities[1]

    def test_label_set_matches_paper(self):
        # 8 injected faults + healthy = 9 classes.
        names = fault_names(include_healthy=True)
        assert len(names) == 9
        assert names[0] == HEALTHY_LABEL

    def test_every_fault_has_an_effect(self):
        for f in FAULTS:
            assert f.channel_effects or f.sensor_effects, f.name


class TestChannelEffects:
    def test_applies_only_inside_interval(self, rng):
        latent = {"compute": np.full(100, 0.2)}
        fault = FaultModel("x", channel_effects={"compute": 0.5})
        fault.apply_channels(latent, 40, 60, setting=1, rng=rng)
        assert latent["compute"][:40].max() == pytest.approx(0.2)
        assert latent["compute"][60:].max() == pytest.approx(0.2)
        assert latent["compute"][40:60].mean() > 0.5

    def test_setting_scales_intensity(self, rng):
        lo = {"compute": np.full(50, 0.1)}
        hi = {"compute": np.full(50, 0.1)}
        fault = FaultModel("x", channel_effects={"compute": 0.5})
        fault.apply_channels(lo, 0, 50, setting=0, rng=np.random.default_rng(1))
        fault.apply_channels(hi, 0, 50, setting=1, rng=np.random.default_rng(1))
        assert hi["compute"].mean() > lo["compute"].mean()

    def test_missing_channel_ignored(self, rng):
        latent = {"memory": np.zeros(10)}
        FaultModel("x", channel_effects={"compute": 1.0}).apply_channels(
            latent, 0, 10, 0, rng
        )
        assert np.allclose(latent["memory"], 0.0)

    def test_values_stay_bounded(self, rng):
        latent = {"compute": np.full(50, 1.5)}
        FaultModel("x", channel_effects={"compute": 5.0}).apply_channels(
            latent, 0, 50, 1, rng
        )
        assert latent["compute"].max() <= 1.6


class TestSensorEffects:
    def test_targets_only_named_groups(self, rng):
        matrix = np.zeros((4, 30))
        groups = {"cache": np.array([1, 2]), "misc": np.array([0, 3])}
        fault = FaultModel("x", sensor_effects={"cache": 0.5})
        fault.apply_sensors(matrix, groups, 10, 20, setting=1, rng=rng)
        assert np.allclose(matrix[0], 0.0)
        assert np.allclose(matrix[3], 0.0)
        assert matrix[1, 10:20].mean() > 0.2
        assert np.allclose(matrix[1, :10], 0.0)

    def test_absent_group_is_noop(self, rng):
        matrix = np.zeros((2, 10))
        fault = FaultModel("x", sensor_effects={"ghost": 1.0})
        fault.apply_sensors(matrix, {}, 0, 10, 0, rng)
        assert np.allclose(matrix, 0.0)

    def test_localized_faults_touch_few_sensors(self):
        # Faults like memalloc must be visible in a narrow sensor subset —
        # the property that makes Fault classification need large l.
        memalloc = next(f for f in FAULTS if f.name == "memalloc")
        assert not memalloc.channel_effects
        assert set(memalloc.sensor_effects) == {"memerror"}

"""Property test: every execution mode emits bit-identical signatures.

The unified engine's core guarantee is that the offline batched path
(``CorrelationWiseSmoothing.transform_series``), the online incremental
path (``OnlineSignatureStream.push`` and ``push_block``) and the
fleet-batched path (``FleetSignatureEngine.transform_fleet``) perform
the same float operations in the same association order — so on the same
samples they emit the *same bits*, including at the exact-first-
derivative edge where the first window (no preceding sample) uses the
zero-difference convention while every later window references the
sample before its start.

Hypothesis drives geometry (n, t, wl, ws, blocks), data and the chunking
of the block path; every comparison is ``np.array_equal``, never
``allclose``.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import CorrelationWiseSmoothing
from repro.engine.fleet import FleetSignatureEngine
from repro.monitoring.streaming import OnlineSignatureStream


@st.composite
def stream_case(draw):
    n = draw(st.integers(2, 8))
    wl = draw(st.integers(1, 24))
    ws = draw(st.integers(1, 12))
    blocks = draw(st.integers(1, n))
    # Enough samples for several windows, plus a ragged tail.
    t = wl + ws * draw(st.integers(1, 6)) + draw(st.integers(0, 4))
    seed = draw(st.integers(0, 2**31 - 1))
    data = np.random.default_rng(seed).random((n, t))
    # Random chunk sizes for the push_block path.
    chunks = draw(st.lists(st.integers(1, max(1, t // 2)), min_size=1, max_size=6))
    return data, wl, ws, blocks, chunks


@given(stream_case())
@settings(max_examples=60, deadline=None)
def test_stream_block_fleet_bitwise_equal(case):
    data, wl, ws, blocks, chunks = case
    n, t = data.shape

    cs = CorrelationWiseSmoothing(blocks=blocks).fit(data)
    offline = cs.transform_series(data, wl, ws)

    # Per-push incremental path.
    stream = OnlineSignatureStream(cs, wl=wl, ws=ws)
    pushed = [s for x in data.T if (s := stream.push(x)) is not None]

    # Batched push_block path with arbitrary chunking.
    block_stream = OnlineSignatureStream(cs, wl=wl, ws=ws)
    blocked = []
    i, j = 0, 0
    while i < t:
        m = chunks[j % len(chunks)]
        j += 1
        blocked.extend(block_stream.push_block(data[:, i : i + m]))
        i += m

    # Fleet path (same model shipped in, one node).
    fleet = FleetSignatureEngine(blocks=blocks, wl=wl, ws=ws)
    fleet.set_model("node", cs.model)
    fleet_sigs = fleet.transform_fleet({"node": data})["node"]

    assert len(pushed) == offline.shape[0]
    assert len(blocked) == offline.shape[0]
    assert fleet_sigs.shape == offline.shape
    for k in range(offline.shape[0]):
        assert np.array_equal(pushed[k], offline[k]), f"push sig {k}"
        assert np.array_equal(blocked[k], offline[k]), f"block sig {k}"
    assert np.array_equal(fleet_sigs, offline)


@given(stream_case())
@settings(max_examples=25, deadline=None)
def test_first_derivative_boundary_property(case):
    """Window 0 uses the zero-difference convention; windows starting at
    s > 0 reference sample s-1 — on all paths simultaneously."""
    data, wl, ws, blocks, _ = case
    cs = CorrelationWiseSmoothing(blocks=blocks).fit(data)
    exact = cs.transform_series(data, wl, ws)
    inexact = cs.transform_series(data, wl, ws, exact_first_derivative=False)
    # The first window is identical under both conventions...
    assert np.array_equal(exact[0], inexact[0])
    # ...and the streamed signatures follow the exact convention.
    streamed = OnlineSignatureStream(cs, wl=wl, ws=ws).run(data.T)
    assert np.array_equal(np.asarray(streamed), exact)

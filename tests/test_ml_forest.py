"""Tests for the random forests."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier, RandomForestRegressor


@pytest.fixture
def cls_data(rng):
    X = rng.random((240, 5))
    y = ((X[:, 0] + X[:, 1]) > 1.0).astype(int)
    return X, y


@pytest.fixture
def reg_data(rng):
    X = rng.random((240, 5))
    y = 3.0 * X[:, 0] + X[:, 1] ** 2
    return X, y


class TestClassifierForest:
    def test_learns(self, cls_data):
        X, y = cls_data
        rf = RandomForestClassifier(20, random_state=0).fit(X, y)
        assert (rf.predict(X) == y).mean() > 0.95

    def test_proba_shape_and_sum(self, cls_data):
        X, y = cls_data
        rf = RandomForestClassifier(10, random_state=0).fit(X, y)
        proba = rf.predict_proba(X)
        assert proba.shape == (X.shape[0], 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_reproducible_with_seed(self, cls_data):
        X, y = cls_data
        a = RandomForestClassifier(8, random_state=42).fit(X, y).predict(X)
        b = RandomForestClassifier(8, random_state=42).fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_different_seeds_differ_somewhere(self, rng):
        X = rng.random((150, 4))
        y = (X[:, 0] + 0.3 * rng.standard_normal(150) > 0.5).astype(int)
        pa = RandomForestClassifier(5, random_state=1).fit(X, y).predict_proba(X)
        pb = RandomForestClassifier(5, random_state=2).fit(X, y).predict_proba(X)
        assert not np.allclose(pa, pb)

    def test_handles_rare_class_in_bootstrap(self, rng):
        # A class so rare some bootstrap samples will miss it entirely.
        X = rng.random((100, 3))
        y = np.zeros(100, dtype=int)
        y[:4] = 1
        X[:4] += 10.0
        rf = RandomForestClassifier(20, random_state=0).fit(X, y)
        proba = rf.predict_proba(X)
        assert proba.shape == (100, 2)
        assert (rf.predict(X[:4]) == 1).all()

    def test_string_classes(self, cls_data):
        X, y = cls_data
        labels = np.array(["ok", "bad"])[y]
        rf = RandomForestClassifier(10, random_state=0).fit(X, labels)
        assert set(rf.predict(X)) <= {"ok", "bad"}

    def test_rejects_zero_estimators(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            RandomForestClassifier(2).predict(np.zeros((1, 2)))

    def test_no_bootstrap_mode(self, cls_data):
        X, y = cls_data
        rf = RandomForestClassifier(5, bootstrap=False, random_state=0).fit(X, y)
        assert (rf.predict(X) == y).mean() > 0.95


class TestRegressorForest:
    def test_learns(self, reg_data):
        X, y = reg_data
        rf = RandomForestRegressor(20, random_state=0).fit(X, y)
        pred = rf.predict(X)
        assert np.corrcoef(pred, y)[0, 1] > 0.95

    def test_generalizes(self, rng):
        X = rng.random((400, 3))
        y = 2.0 * X[:, 0] + 0.05 * rng.standard_normal(400)
        rf = RandomForestRegressor(30, random_state=0).fit(X[:300], y[:300])
        test_err = np.mean((rf.predict(X[300:]) - y[300:]) ** 2)
        assert test_err < 0.05

    def test_prediction_is_tree_average(self, reg_data):
        X, y = reg_data
        rf = RandomForestRegressor(5, random_state=0).fit(X, y)
        manual = np.mean([t.predict(X) for t in rf.estimators_], axis=0)
        assert np.allclose(rf.predict(X), manual)

    def test_default_hyperparams(self):
        rf = RandomForestRegressor()
        assert rf.n_estimators == 50
        assert rf.max_features == pytest.approx(1 / 3)
        assert rf.min_samples_leaf == 5

    def test_reproducible(self, reg_data):
        X, y = reg_data
        a = RandomForestRegressor(6, random_state=7).fit(X, y).predict(X)
        b = RandomForestRegressor(6, random_state=7).fit(X, y).predict(X)
        assert np.allclose(a, b)

    def test_rejects_length_mismatch(self, reg_data):
        X, y = reg_data
        with pytest.raises(ValueError):
            RandomForestRegressor(3).fit(X, y[:-5])

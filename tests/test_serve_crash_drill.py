"""kill -9 drill against the real CLI server process.

The strongest durability claim in the PR: a ``repro serve --listen``
process with a WAL and networked checkpoints is SIGKILLed mid-stream
— no atexit, no flush, no warning — restarted with the same flags, fed
by a resuming client, and its final alert JSONL is byte-identical to
an uninterrupted in-process replay.  Parametrized across
``PYTHONHASHSEED`` values and both tick-path backends, because hash
randomization and the fused arena are exactly where hidden
iteration-order or buffering nondeterminism would surface.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service.api import ServiceConfig, build_setup, replay
from repro.service.alerts import JSONLAlertSink
from repro.service.net import loadgen

ROOT = Path(__file__).resolve().parent.parent
CFG = ServiceConfig.smoke()
KILL_AFTER_TICKS = 3


@pytest.fixture(scope="module")
def setup():
    return build_setup(CFG)


@pytest.fixture(scope="module")
def ref_bytes(setup, tmp_path_factory):
    path = tmp_path_factory.mktemp("ref") / "ref.jsonl"
    replay(CFG, setup, sinks=(JSONLAlertSink(path),))
    return path.read_bytes()


def _wait_for(pred, timeout: float, what: str):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if pred():
            return
        time.sleep(0.05)
    pytest.fail(f"timed out after {timeout:.0f}s waiting for {what}")


def _serve_cmd(tmp: Path, backend: str, *extra: str) -> list:
    return [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--smoke",
        "--backend",
        backend,
        "--listen",
        "127.0.0.1:0",
        "--port-file",
        str(tmp / "serve.port"),
        "--wal",
        str(tmp / "wal"),
        "--checkpoint",
        str(tmp / "ckpt.npz"),
        "--checkpoint-every",
        "1",
        "--alerts",
        str(tmp / "alerts.jsonl"),
        "--model",
        str(tmp / "fleet.npz"),
        "--cache-dir",
        str(tmp / "cache"),
        *extra,
    ]


def _spawn(cmd: list, hashseed: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["PYTHONHASHSEED"] = hashseed
    return subprocess.Popen(
        cmd,
        env=env,
        cwd=ROOT,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _port(port_file: Path) -> int:
    return int(port_file.read_text().strip())


@pytest.mark.parametrize(
    "hashseed,backend", [("0", "staged"), ("1", "fused")]
)
def test_sigkill_restart_is_byte_identical(
    setup, ref_bytes, tmp_path, hashseed, backend
):
    port_file = tmp_path / "serve.port"
    alerts = tmp_path / "alerts.jsonl"
    ckpt = tmp_path / "ckpt.npz"

    # -- first life: serve, ingest a few ticks, die by SIGKILL -------
    proc = _spawn(_serve_cmd(tmp_path, backend), hashseed)
    try:
        # First start trains the smoke fleet before binding.
        _wait_for(port_file.exists, 120, "first server to bind")
        loadgen(
            setup,
            ("127.0.0.1", _port(port_file)),
            chunk=CFG.chunk,
            max_ticks=KILL_AFTER_TICKS,
            send_eof=False,
        )
        # A checkpoint on disk proves at least one tick is durable;
        # beyond that the kill point is deliberately uncontrolled.
        _wait_for(ckpt.exists, 30, "a checkpoint to land")
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
    assert proc.returncode == -signal.SIGKILL
    # kill -9 leaves the stale port file behind; clear it so the
    # restart's bind is unambiguous.
    port_file.unlink()

    # -- second life: recover, resume the feed, drain, exit 0 --------
    proc = _spawn(
        _serve_cmd(tmp_path, backend, "--exit-on-idle"), hashseed
    )
    try:
        _wait_for(port_file.exists, 120, "restarted server to bind")
        stats = loadgen(
            setup,
            ("127.0.0.1", _port(port_file)),
            chunk=CFG.chunk,
            resume=True,
            total_timeout=120.0,
        )
        proc.wait(timeout=120)
    finally:
        if proc.poll() is None:
            proc.kill()
    assert proc.returncode == 0
    assert stats["acked_ticks"] == stats["ticks"]
    assert alerts.read_bytes() == ref_bytes
    # Clean shutdown removed the port file again.
    assert not port_file.exists()

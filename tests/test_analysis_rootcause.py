"""Tests for the root-cause drill-down helpers."""

import numpy as np
import pytest

from repro.analysis.rootcause import block_sensors, explain_difference
from repro.core.training import train_cs_model


@pytest.fixture
def model(correlated_matrix):
    names = [f"sensor{i}" for i in range(correlated_matrix.shape[0])]
    return train_cs_model(correlated_matrix, sensor_names=names)


class TestBlockSensors:
    def test_returns_names(self, model):
        sensors = block_sensors(model, 4, 0)
        assert len(sensors) == 3  # 12 rows / 4 blocks
        assert all(s.startswith("sensor") for s in sensors)

    def test_blocks_partition_all_sensors(self, model):
        seen = set()
        for b in range(4):
            seen.update(block_sensors(model, 4, b))
        assert seen == {f"sensor{i}" for i in range(12)}

    def test_matches_permutation_order(self, model):
        sensors = block_sensors(model, 12, 0)
        assert sensors == (f"sensor{model.permutation[0]}",)

    def test_rejects_out_of_range_block(self, model):
        with pytest.raises(ValueError):
            block_sensors(model, 4, 4)

    def test_rejects_model_without_names(self, correlated_matrix):
        model = train_cs_model(correlated_matrix)
        with pytest.raises(ValueError, match="names"):
            block_sensors(model, 4, 0)


class TestExplainDifference:
    def test_ranks_largest_deviation_first(self, model):
        ref = np.zeros(4, dtype=complex)
        obs = np.array([0.1, 0.0, 0.9, 0.3], dtype=complex)
        findings = explain_difference(model, ref, obs, top=4)
        assert [f.block for f in findings] == [2, 3, 0, 1]
        assert findings[0].magnitude == pytest.approx(0.9)

    def test_includes_imaginary_delta(self, model):
        ref = np.zeros(4, dtype=complex)
        obs = np.zeros(4, dtype=complex)
        obs[1] = 0.3j
        findings = explain_difference(model, ref, obs, top=1)
        assert findings[0].block == 1
        assert findings[0].delta_imag == pytest.approx(0.3)
        assert findings[0].delta_real == pytest.approx(0.0)

    def test_top_limits_output(self, model):
        ref = np.zeros(4, dtype=complex)
        obs = np.ones(4, dtype=complex)
        assert len(explain_difference(model, ref, obs, top=2)) == 2

    def test_findings_carry_sensors(self, model):
        findings = explain_difference(
            model, np.zeros(4, dtype=complex), np.ones(4, dtype=complex), top=1
        )
        assert len(findings[0].sensors) == 3

    def test_rejects_mismatched_signatures(self, model):
        with pytest.raises(ValueError):
            explain_difference(model, np.zeros(3, dtype=complex), np.zeros(4, dtype=complex))

    def test_rejects_bad_top(self, model):
        with pytest.raises(ValueError):
            explain_difference(
                model, np.zeros(4, dtype=complex), np.zeros(4, dtype=complex), top=0
            )

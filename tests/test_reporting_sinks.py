"""Tests for the pluggable reporting sinks and CSV robustness fixes."""

import json

import pytest

from repro.experiments.reporting import (
    CSVSink,
    JSONLSink,
    MarkdownSink,
    TableSink,
    make_sink,
    save_csv,
    save_jsonl,
    save_markdown,
)


class TestSaveCSV:
    def test_plain_cells_unchanged(self, tmp_path):
        """Cells without specials keep the historical byte format."""
        path = save_csv(tmp_path / "r.csv", ("a", "b"), [(1, 2.5)])
        assert path.read_text() == "a,b\n1,2.5\n"

    def test_creates_parent_directories(self, tmp_path):
        path = save_csv(
            tmp_path / "deep" / "nested" / "r.csv", ("a",), [(1,)]
        )
        assert path.exists()
        assert path.read_text() == "a\n1\n"

    def test_escapes_commas_and_quotes(self, tmp_path):
        path = save_csv(
            tmp_path / "r.csv",
            ("name", "note"),
            [("a,b", 'say "hi"'), ("plain", "x\ny")],
        )
        lines = path.read_text().splitlines()
        assert lines[0] == "name,note"
        assert lines[1] == '"a,b","say ""hi"""'
        # embedded newline stays inside one quoted cell
        assert '"x\ny"' in path.read_text()

    def test_escaped_header(self, tmp_path):
        path = save_csv(tmp_path / "r.csv", ("a,b",), [(1,)])
        assert path.read_text().splitlines()[0] == '"a,b"'


class TestJSONL:
    def test_round_trip_types(self, tmp_path):
        path = save_jsonl(
            tmp_path / "r.jsonl",
            ("name", "score", "flag"),
            [("x", 0.5, True), ("y,z", 2, False)],
        )
        records = [json.loads(l) for l in path.read_text().splitlines()]
        assert records == [
            {"name": "x", "score": 0.5, "flag": True},
            {"name": "y,z", "score": 2, "flag": False},
        ]


class TestMarkdown:
    def test_table_structure(self, tmp_path):
        path = save_markdown(
            tmp_path / "r.md",
            ("a", "b"),
            [(1, "x|y")],
            title="T",
            notes=("\nnote line",),
        )
        text = path.read_text()
        assert text.startswith("## T\n")
        assert "| a | b |" in text
        assert "x\\|y" in text  # pipes escaped
        assert "note line" in text


class _Result:
    headers = ("a", "b")
    rows = [(1, 2)]
    title = "T"
    notes = ["n1"]


class TestSinks:
    def test_table_sink_prints(self, capsys):
        TableSink().emit(_Result())
        out = capsys.readouterr().out
        assert "T" in out and "n1" in out

    def test_file_sinks_write(self, tmp_path):
        res = _Result()
        CSVSink(tmp_path / "r.csv").emit(res)
        JSONLSink(tmp_path / "r.jsonl").emit(res)
        MarkdownSink(tmp_path / "r.md").emit(res)
        assert (tmp_path / "r.csv").read_text() == "a,b\n1,2\n"
        assert json.loads((tmp_path / "r.jsonl").read_text()) == {"a": 1, "b": 2}
        assert "## T" in (tmp_path / "r.md").read_text()

    def test_make_sink_registry(self, tmp_path):
        assert isinstance(make_sink("table"), TableSink)
        assert isinstance(make_sink("csv", tmp_path / "x.csv"), CSVSink)
        with pytest.raises(KeyError):
            make_sink("nope")

"""Tests for heatmap rendering and image export."""

import numpy as np
import pytest

from repro.analysis.visualization import (
    add_boundaries,
    ascii_heatmap,
    save_pgm,
    save_ppm,
    signature_heatmaps,
    to_grayscale,
)


class TestToGrayscale:
    def test_range_and_dtype(self, rng):
        g = to_grayscale(rng.random((5, 8)))
        assert g.dtype == np.uint8
        assert g.min() >= 0 and g.max() <= 255

    def test_inversion_high_is_dark(self):
        g = to_grayscale(np.array([[0.0, 1.0]]))
        assert g[0, 0] == 255 and g[0, 1] == 0

    def test_no_inversion(self):
        g = to_grayscale(np.array([[0.0, 1.0]]), invert=False)
        assert g[0, 0] == 0 and g[0, 1] == 255

    def test_constant_matrix(self):
        g = to_grayscale(np.full((3, 3), 7.0))
        assert len(np.unique(g)) == 1

    def test_explicit_range(self):
        g = to_grayscale(np.array([[0.5]]), value_range=(0.0, 1.0), invert=False)
        assert g[0, 0] == 128

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            to_grayscale(np.zeros(4))


class TestImageExport:
    def test_pgm_roundtrip_header(self, tmp_path, rng):
        g = to_grayscale(rng.random((4, 6)))
        path = save_pgm(tmp_path / "x.pgm", g)
        data = path.read_bytes()
        assert data.startswith(b"P5\n6 4\n255\n")
        assert len(data) == len(b"P5\n6 4\n255\n") + 24

    def test_ppm(self, tmp_path, rng):
        rgb = (rng.random((3, 5, 3)) * 255).astype(np.uint8)
        path = save_ppm(tmp_path / "x.ppm", rgb)
        assert path.read_bytes().startswith(b"P6\n5 3\n255\n")

    def test_pgm_rejects_float(self, tmp_path):
        with pytest.raises(ValueError):
            save_pgm(tmp_path / "x.pgm", np.zeros((2, 2)))

    def test_ppm_rejects_grayscale(self, tmp_path):
        with pytest.raises(ValueError):
            save_ppm(tmp_path / "x.ppm", np.zeros((2, 2), dtype=np.uint8))


class TestAsciiHeatmap:
    def test_dimensions(self, rng):
        art = ascii_heatmap(rng.random((50, 200)), max_width=40, max_height=10)
        lines = art.splitlines()
        assert len(lines) == 10
        assert all(len(line) == 40 for line in lines)

    def test_small_matrix_kept(self):
        art = ascii_heatmap(np.array([[0.0, 1.0]]))
        assert len(art.splitlines()) == 1
        assert art[0] == " " and art[-1] == "@"

    def test_constant(self):
        art = ascii_heatmap(np.full((2, 2), 5.0))
        assert set(art.replace("\n", "")) <= set(" .:-=+*#%@")


class TestSignatureHeatmaps:
    def test_transposed_layout(self, rng):
        sigs = rng.random((7, 3)) + 1j * rng.random((7, 3))
        real, imag = signature_heatmaps(sigs)
        assert real.shape == (3, 7)  # (blocks, windows)
        assert np.allclose(real[:, 0], sigs[0].real)
        assert np.allclose(imag[:, 0], sigs[0].imag)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            signature_heatmaps(np.zeros(3, dtype=complex))


class TestAddBoundaries:
    def test_draws_columns(self):
        img = np.full((3, 5), 200, dtype=np.uint8)
        out = add_boundaries(img, [1, 3])
        assert (out[:, 1] == 0).all()
        assert (out[:, 3] == 0).all()
        assert (out[:, 0] == 200).all()

    def test_ignores_out_of_range(self):
        img = np.full((2, 2), 10, dtype=np.uint8)
        out = add_boundaries(img, [5, -1])
        assert np.array_equal(out, img)

    def test_does_not_mutate(self):
        img = np.full((2, 4), 9, dtype=np.uint8)
        add_boundaries(img, [0])
        assert (img[:, 0] == 9).all()

"""Smoke tests for the experiment CLI entry points (tiny configurations)."""

import numpy as np

from repro.experiments import crossarch, fig5, fig6, fig7, table1


class TestTable1CLI:
    def test_main_prints_all_segments(self, capsys):
        table1.main(["--scale", "0.2", "--seed", "1"])
        out = capsys.readouterr().out
        for name in ("fault", "application", "power", "infrastructure",
                     "cross-architecture"):
            assert name in out


class TestFig5CLI:
    def test_main_with_small_grids(self, capsys):
        fig5.main([
            "--wl-grid", "10", "20",
            "--n-grid", "10",
            "--methods", "lan", "cs-5",
            "--repeats", "2",
        ])
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "lan" in out and "cs-5" in out

    def test_csv_export(self, tmp_path, capsys):
        csv = tmp_path / "fig5.csv"
        fig5.main([
            "--wl-grid", "10", "--n-grid", "10",
            "--methods", "lan", "--repeats", "1",
            "--csv", str(csv),
        ])
        capsys.readouterr()
        assert csv.exists()
        lines = csv.read_text().splitlines()
        assert lines[0].startswith("Axis,")
        assert len(lines) == 3  # header + 2 points


class TestFig6CLI:
    def test_main_writes_images(self, tmp_path, capsys):
        # t must cover at least one run of every application (runs are
        # 250-500 samples, six applications plus idle gaps).
        fig6.main([
            "--apps", "Linpack",
            "--blocks", "8",
            "--t", "2600",
            "--nodes", "2",
            "--out", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert "Linpack" in out
        assert (tmp_path / "fig6_linpack_real.pgm").exists()
        assert (tmp_path / "fig6_linpack_imag.pgm").exists()


class TestFig7CLI:
    def test_main_writes_three_architectures(self, tmp_path, capsys):
        fig7.main([
            "--blocks", "8",
            "--t", "2600",
            "--out", str(tmp_path),
        ])
        capsys.readouterr()
        pgms = list(tmp_path.glob("fig7_*_real.pgm"))
        assert len(pgms) == 3


class TestCrossArchCLI:
    def test_main_reports_scores(self, capsys):
        crossarch.main(["--t", "900", "--trees", "5", "--blocks", "8"])
        out = capsys.readouterr().out
        assert "Random forest" in out
        assert "incompatible" in out


class TestRunIntervalHelpers:
    def test_fig6_interval_roundtrip_random(self, rng):
        labels = rng.integers(0, 3, size=200)
        for lid in range(3):
            covered = np.zeros(200, dtype=bool)
            for s, e in fig6.run_intervals(labels, lid):
                assert s < e
                covered[s:e] = True
            assert np.array_equal(covered, labels == lid)


class TestBenchCLI:
    """`repro bench` composes the pytest invocation; the suite itself
    runs out of process (it is the slow-marked benchmark run)."""

    def _invoke(self, argv, monkeypatch):
        from repro import cli

        calls = {}

        def fake_call(cmd, cwd=None, env=None):
            calls["cmd"], calls["cwd"], calls["env"] = cmd, cwd, env
            return 0

        monkeypatch.setattr("subprocess.call", fake_call)
        assert cli.main(argv) == 0
        return calls

    def test_default_runs_recorded_speedup_suites(self, monkeypatch, capsys):
        from repro import cli

        calls = self._invoke(["bench"], monkeypatch)
        capsys.readouterr()
        cmd = calls["cmd"]
        assert cmd[1:3] == ["-m", "pytest"]
        assert "slow" in cmd  # -m slow overrides the tier-1 deselection
        for name in cli.BENCH_SUITES.values():
            assert any(name in part for part in cmd)
        assert (calls["cwd"] / "benchmarks").is_dir()

    def test_suite_filter_and_scale_env(self, monkeypatch, capsys):
        calls = self._invoke(
            ["bench", "--suite", "datagen", "-k", "mmap", "--scale", "2.5"],
            monkeypatch,
        )
        capsys.readouterr()
        cmd = calls["cmd"]
        assert sum("test_" in part for part in cmd) == 1
        assert any("test_datagen_scaling.py" in part for part in cmd)
        assert cmd[-2:] == ["-k", "mmap"]
        assert calls["env"]["REPRO_BENCH_SCALE"] == "2.5"

    def test_all_conflicts_with_suite(self, monkeypatch, capsys):
        from repro import cli

        called = []
        monkeypatch.setattr("subprocess.call", lambda *a, **k: called.append(a) or 0)
        assert cli.main(["bench", "--all", "--suite", "datagen"]) == 2
        assert not called
        assert "mutually exclusive" in capsys.readouterr().err

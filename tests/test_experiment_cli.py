"""Smoke tests for the experiment CLI entry points (tiny configurations)."""

import numpy as np

from repro.experiments import crossarch, fig5, fig6, fig7, table1


class TestTable1CLI:
    def test_main_prints_all_segments(self, capsys):
        table1.main(["--scale", "0.2", "--seed", "1"])
        out = capsys.readouterr().out
        for name in ("fault", "application", "power", "infrastructure",
                     "cross-architecture"):
            assert name in out


class TestFig5CLI:
    def test_main_with_small_grids(self, capsys):
        fig5.main([
            "--wl-grid", "10", "20",
            "--n-grid", "10",
            "--methods", "lan", "cs-5",
            "--repeats", "2",
        ])
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "lan" in out and "cs-5" in out

    def test_csv_export(self, tmp_path, capsys):
        csv = tmp_path / "fig5.csv"
        fig5.main([
            "--wl-grid", "10", "--n-grid", "10",
            "--methods", "lan", "--repeats", "1",
            "--csv", str(csv),
        ])
        capsys.readouterr()
        assert csv.exists()
        lines = csv.read_text().splitlines()
        assert lines[0].startswith("Axis,")
        assert len(lines) == 3  # header + 2 points


class TestFig6CLI:
    def test_main_writes_images(self, tmp_path, capsys):
        # t must cover at least one run of every application (runs are
        # 250-500 samples, six applications plus idle gaps).
        fig6.main([
            "--apps", "Linpack",
            "--blocks", "8",
            "--t", "2600",
            "--nodes", "2",
            "--out", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert "Linpack" in out
        assert (tmp_path / "fig6_linpack_real.pgm").exists()
        assert (tmp_path / "fig6_linpack_imag.pgm").exists()


class TestFig7CLI:
    def test_main_writes_three_architectures(self, tmp_path, capsys):
        fig7.main([
            "--blocks", "8",
            "--t", "2600",
            "--out", str(tmp_path),
        ])
        capsys.readouterr()
        pgms = list(tmp_path.glob("fig7_*_real.pgm"))
        assert len(pgms) == 3


class TestCrossArchCLI:
    def test_main_reports_scores(self, capsys):
        crossarch.main(["--t", "900", "--trees", "5", "--blocks", "8"])
        out = capsys.readouterr().out
        assert "Random forest" in out
        assert "incompatible" in out


class TestRunIntervalHelpers:
    def test_fig6_interval_roundtrip_random(self, rng):
        labels = rng.integers(0, 3, size=200)
        for lid in range(3):
            covered = np.zeros(200, dtype=bool)
            for s, e in fig6.run_intervals(labels, lid):
                assert s < e
                covered[s:e] = True
            assert np.array_equal(covered, labels == lid)

"""Tests for window extraction and label/target alignment."""

import numpy as np
import pytest

from repro.datasets.windows import (
    future_mean_target,
    window_majority_labels,
    window_starts,
)


class TestWindowStarts:
    def test_basic(self):
        assert window_starts(100, 10, 10).tolist() == list(range(0, 91, 10))

    def test_overlapping(self):
        assert window_starts(20, 10, 5).tolist() == [0, 5, 10]

    def test_too_short(self):
        assert window_starts(5, 10, 1).size == 0

    def test_exact_fit(self):
        assert window_starts(10, 10, 3).tolist() == [0]

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            window_starts(10, 0, 1)
        with pytest.raises(ValueError):
            window_starts(10, 5, 0)


class TestMajorityLabels:
    def test_uniform_windows(self):
        labels = np.array([0] * 20 + [1] * 20)
        y = window_majority_labels(labels, 10, 10)
        assert y.tolist() == [0, 0, 1, 1]

    def test_majority_at_boundary(self):
        labels = np.array([0] * 6 + [1] * 4)
        assert window_majority_labels(labels, 10, 10).tolist() == [0]
        labels = np.array([0] * 4 + [1] * 6)
        assert window_majority_labels(labels, 10, 10).tolist() == [1]

    def test_tie_resolves_to_smallest(self):
        labels = np.array([1] * 5 + [0] * 5)
        assert window_majority_labels(labels, 10, 10).tolist() == [0]

    def test_count_matches_window_starts(self):
        labels = np.zeros(57, dtype=np.intp)
        y = window_majority_labels(labels, 12, 5)
        assert y.shape[0] == window_starts(57, 12, 5).shape[0]

    def test_rejects_non_integer(self):
        with pytest.raises(ValueError):
            window_majority_labels(np.zeros(10, dtype=float), 5, 5)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            window_majority_labels(np.zeros((2, 5), dtype=np.intp), 2, 2)


class TestFutureMeanTarget:
    def test_values(self):
        series = np.arange(20.0)
        targets, n = future_mean_target(series, wl=5, ws=5, horizon=3)
        # Window [0,5): target = mean(series[5:8]) = 6.0
        assert targets[0] == pytest.approx(6.0)
        assert targets[1] == pytest.approx(11.0)

    def test_drops_windows_without_full_horizon(self):
        series = np.arange(20.0)
        _, n = future_mean_target(series, wl=5, ws=5, horizon=3)
        # starts 0,5,10,15; start 15 needs samples up to 23 > 20 -> dropped.
        assert n == 3

    def test_empty_when_too_short(self):
        targets, n = future_mean_target(np.arange(5.0), wl=4, ws=1, horizon=5)
        assert n == 0 and targets.size == 0

    def test_horizon_one(self):
        series = np.array([1.0, 2.0, 3.0, 4.0])
        targets, n = future_mean_target(series, wl=2, ws=1, horizon=1)
        assert n == 2
        assert targets.tolist() == [3.0, 4.0]

    def test_rejects_bad_horizon(self):
        with pytest.raises(ValueError):
            future_mean_target(np.arange(10.0), 2, 1, 0)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            future_mean_target(np.zeros((2, 5)), 2, 1, 1)

"""ArtifactCache resilience: damaged entries regenerate, never traceback.

A cache is disposable state — a truncated write (power loss, full disk,
a killed CI job) or any other corruption must behave exactly like a
cache miss: log a warning, rebuild the artifact, repair the entry on
disk, and produce results identical to a run that never had a cache.
"""

import logging

import numpy as np
import pytest

from repro.datasets.recipes import recipe
from repro.scenarios.cache import (
    ArtifactCache,
    ExecutionContext,
    dataset_key,
    segment_key,
)

RECIPE = recipe("application", t=700, nodes=2)


def _segments_equal(a, b) -> bool:
    return all(
        np.array_equal(ca.matrix, cb.matrix)
        and np.array_equal(ca.labels, cb.labels)
        for ca, cb in zip(a.components, b.components)
    )


def _truncate(path, keep: float = 0.5) -> None:
    data = path.read_bytes()
    path.write_bytes(data[: int(len(data) * keep)])


class TestCorruptSegmentEntries:
    @pytest.mark.parametrize("keep", [0.0, 0.3, 0.9])
    def test_truncated_entry_regenerates_identically(self, tmp_path, keep, caplog):
        store = ArtifactCache(tmp_path)
        pristine = ExecutionContext(store).segment(RECIPE)
        key = segment_key(RECIPE)
        path = store._segment_path(key)
        _truncate(path, keep)

        context = ExecutionContext(store)
        with caplog.at_level(logging.WARNING, "repro.scenarios.cache"):
            recovered = context.segment(RECIPE)
        assert context.stats["segment_misses"] == 1
        assert context.stats["segment_hits"] == 0
        assert _segments_equal(pristine, recovered)
        assert any("regenerating" in r.message for r in caplog.records)
        # The damaged entry was repaired in place: next run hits again.
        after = ExecutionContext(store)
        assert _segments_equal(pristine, after.segment(RECIPE))
        assert after.stats["segment_hits"] == 1

    def test_garbage_entry_regenerates(self, tmp_path):
        store = ArtifactCache(tmp_path)
        ExecutionContext(store).segment(RECIPE)
        store._segment_path(segment_key(RECIPE)).write_bytes(b"not a zip")
        context = ExecutionContext(store)
        segment = context.segment(RECIPE)
        assert context.stats["segment_misses"] == 1
        assert segment.components[0].matrix.shape[1] == 700


class TestCorruptDatasetEntries:
    def test_truncated_dataset_regenerates_identically(self, tmp_path):
        store = ArtifactCache(tmp_path)
        pristine = ExecutionContext(store).dataset(RECIPE, "cs-5")
        path = store._dataset_path(dataset_key(RECIPE, "cs-5"))
        _truncate(path)

        context = ExecutionContext(store)
        recovered = context.dataset(RECIPE, "cs-5")
        assert context.stats["dataset_misses"] == 1
        assert np.array_equal(pristine.X, recovered.X)
        assert np.array_equal(pristine.y, recovered.y)
        # Repaired on disk: a fresh context now loads it as a hit.
        after = ExecutionContext(store)
        reloaded = after.dataset(RECIPE, "cs-5")
        assert after.stats["dataset_hits"] == 1
        assert np.array_equal(pristine.X, reloaded.X)


class TestMmapModePlumbing:
    def test_default_cache_reads_are_memory_mapped(self, tmp_path):
        store = ArtifactCache(tmp_path)
        ExecutionContext(store).segment(RECIPE)
        hit = ExecutionContext(store).segment(RECIPE)
        assert isinstance(hit.components[0].matrix, np.memmap)

    def test_eager_mode_returns_plain_arrays(self, tmp_path):
        store = ArtifactCache(tmp_path, mmap_mode=None)
        ExecutionContext(store).segment(RECIPE)
        hit = ExecutionContext(store).segment(RECIPE)
        assert not isinstance(hit.components[0].matrix, np.memmap)


def test_invalid_mmap_mode_rejected_at_construction(tmp_path):
    """A typo'd mode must fail loudly, not masquerade as permanent
    cache corruption via the damaged-entry fallback."""
    with pytest.raises(ValueError, match="mmap_mode"):
        ArtifactCache(tmp_path, mmap_mode="r+")

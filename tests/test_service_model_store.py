"""Fleet model persistence: round-trip fidelity and knob validation.

A saved fleet must replay to **byte-identical** alert streams — the CS
models round-trip as raw arrays and the forest through its flat node
arrays, so a loaded fleet is indistinguishable from the freshly trained
one.  Mismatched geometry must refuse to load rather than silently
mis-detect.
"""

import numpy as np
import pytest

from repro import cli
from repro.service.model_store import (
    FLEET_MODEL_FORMAT,
    ModelStoreError,
    load_fleet_npz,
    save_fleet_npz,
)
from repro.service.replay import fleet_recipes, prepare_fleet, replay


@pytest.fixture(scope="module")
def setup():
    return prepare_fleet(
        fleet_recipes(2, t=2000), blocks=8, trees=5, train_frac=0.5, seed=0
    )


@pytest.fixture(scope="module")
def saved(setup, tmp_path_factory):
    path = tmp_path_factory.mktemp("models") / "fleet.npz"
    save_fleet_npz(setup.trained, path)
    return path


class TestRoundTrip:
    def test_models_and_forest_bitwise_equal(self, setup, saved):
        loaded = load_fleet_npz(saved)
        engine = setup.trained.engine
        assert loaded.engine.paths == engine.paths
        assert loaded.engine.wl == engine.wl
        assert loaded.engine.ws == engine.ws
        assert loaded.engine.blocks == engine.blocks
        for p in engine.paths:
            a, b = engine.model(p), loaded.engine.model(p)
            assert a.permutation.tobytes() == b.permutation.tobytes()
            assert a.lower.tobytes() == b.lower.tobytes()
            assert a.upper.tobytes() == b.upper.tobytes()
            assert a.sensor_names == b.sensor_names
            assert (
                setup.trained.references[p].tobytes()
                == loaded.references[p].tobytes()
            )
        fa = setup.trained.classifier.forest.to_arrays()
        fb = loaded.classifier.forest.to_arrays()
        assert sorted(fa) == sorted(fb)
        for key in fa:
            assert fa[key].tobytes() == fb[key].tobytes(), key
        assert loaded.label_names == setup.trained.label_names
        assert loaded.healthy_label == setup.trained.healthy_label

    def test_loaded_fleet_replays_byte_identical(self, setup, saved):
        loaded = load_fleet_npz(saved)
        loaded_setup = type(setup)(
            trained=loaded,
            eval_data=setup.eval_data,
            truth=setup.truth,
            wl=setup.wl,
            ws=setup.ws,
        )
        for backend in ("staged", "fused"):
            fresh = replay(setup, chunk=200, backend=backend)
            reloaded = replay(loaded_setup, chunk=200, backend=backend)
            assert reloaded.events == fresh.events
            assert len(fresh.events) > 0

    def test_save_is_deterministic(self, setup, tmp_path):
        p1, p2 = tmp_path / "a.npz", tmp_path / "b.npz"
        save_fleet_npz(setup.trained, p1)
        save_fleet_npz(setup.trained, p2)
        assert p1.read_bytes() == p2.read_bytes()


class TestPrepareFleetModelPath:
    def test_trains_then_loads_on_second_run(self, tmp_path, monkeypatch):
        recipes = fleet_recipes(2, t=2000)
        model = tmp_path / "fleet.npz"
        first = prepare_fleet(
            recipes, blocks=8, trees=5, train_frac=0.5, seed=0,
            model_path=model,
        )
        assert model.exists()
        # Second run must load, not retrain.  (The module is shadowed by
        # the package's `replay` function export — go through importlib.)
        import importlib

        replay_mod = importlib.import_module("repro.service.replay")

        def boom(*a, **k):
            raise AssertionError("train_fleet called despite saved model")

        monkeypatch.setattr(replay_mod, "train_fleet", boom)
        second = prepare_fleet(
            recipes, blocks=8, trees=5, train_frac=0.5, seed=0,
            model_path=model,
        )
        assert (
            replay(second, chunk=200).events
            == replay(first, chunk=200).events
        )

    def test_geometry_mismatch_refuses_to_load(self, tmp_path):
        recipes = fleet_recipes(2, t=2000)
        model = tmp_path / "fleet.npz"
        prepare_fleet(
            recipes, blocks=8, trees=5, train_frac=0.5, seed=0,
            model_path=model,
        )
        with pytest.raises(ValueError, match="blocks"):
            prepare_fleet(
                recipes, blocks=12, trees=5, train_frac=0.5, seed=0,
                model_path=model,
            )
        with pytest.raises(ValueError, match="wl"):
            prepare_fleet(
                recipes, blocks=8, trees=5, train_frac=0.5, seed=0,
                wl=30, ws=10, model_path=model,
            )
        with pytest.raises(ValueError, match="nodes"):
            prepare_fleet(
                fleet_recipes(3, t=2000), blocks=8, trees=5,
                train_frac=0.5, seed=0, model_path=model,
            )

    def test_not_a_model_archive_raises(self, tmp_path):
        bogus = tmp_path / "bogus.npz"
        np.savez(bogus, x=np.arange(3))
        with pytest.raises(ValueError, match="manifest"):
            load_fleet_npz(bogus)
        assert FLEET_MODEL_FORMAT == "repro-fleet-model/v1"


class TestCorruptArchives:
    """Damaged model files are typed, diagnosable failures — never a raw
    zipfile/numpy/JSON traceback, never silently corrupted models."""

    def test_missing_file(self, tmp_path):
        with pytest.raises(ModelStoreError) as exc_info:
            load_fleet_npz(tmp_path / "nowhere.npz")
        assert exc_info.value.field == "path"

    def test_truncated_archive(self, saved, tmp_path):
        raw = saved.read_bytes()
        for frac in (0.25, 0.5, 0.9):
            clipped = tmp_path / f"trunc_{frac}.npz"
            clipped.write_bytes(raw[: int(len(raw) * frac)])
            with pytest.raises(ModelStoreError) as exc_info:
                load_fleet_npz(clipped)
            assert exc_info.value.field is not None

    def test_bit_flipped_archive(self, saved, tmp_path):
        """Single flipped bits anywhere in the file must be *caught* —
        the eager load path verifies each zip member's CRC-32."""
        raw = bytearray(saved.read_bytes())
        rng = np.random.default_rng(0)
        caught = 0
        for trial in range(8):
            flipped = bytearray(raw)
            # skip the first bytes (zip local header magic would just
            # change the error site, which is fine too)
            pos = int(rng.integers(64, len(raw) - 64))
            flipped[pos] ^= 1 << int(rng.integers(0, 8))
            mutant = tmp_path / f"flip_{trial}.npz"
            mutant.write_bytes(bytes(flipped))
            try:
                load_fleet_npz(mutant)
            except ModelStoreError:
                caught += 1
            # a flip in zip padding/slack may legitimately go unnoticed,
            # but it must never raise anything other than ModelStoreError
        assert caught >= 4, "most single-bit flips should be detected"

    def test_garbage_file(self, tmp_path):
        junk = tmp_path / "junk.npz"
        junk.write_bytes(b"this is not an npz archive at all")
        with pytest.raises(ModelStoreError) as exc_info:
            load_fleet_npz(junk)
        assert exc_info.value.field == "archive"

    def test_mangled_manifest(self, saved, tmp_path):
        import zipfile

        mangled = tmp_path / "mangled.npz"
        with zipfile.ZipFile(saved) as src, zipfile.ZipFile(
            mangled, "w"
        ) as dst:
            for item in src.namelist():
                data = src.read(item)
                if item == "manifest.npy":
                    data = data[:-8] + b"notjson}"
                dst.writestr(item, data)
        with pytest.raises(ModelStoreError) as exc_info:
            load_fleet_npz(mangled)
        assert exc_info.value.field == "manifest"

    def test_missing_node_arrays(self, setup, tmp_path):
        import zipfile

        full = tmp_path / "full.npz"
        save_fleet_npz(setup.trained, full)
        gutted = tmp_path / "gutted.npz"
        with zipfile.ZipFile(full) as src, zipfile.ZipFile(
            gutted, "w"
        ) as dst:
            for item in src.namelist():
                if item.startswith("node0_perm"):
                    continue
                dst.writestr(item, src.read(item))
        with pytest.raises(ModelStoreError) as exc_info:
            load_fleet_npz(gutted)
        assert exc_info.value.field == "arrays"

    def test_typed_error_is_a_value_error(self):
        assert issubclass(ModelStoreError, ValueError)


class TestDetectModelFlag:
    def test_detect_model_flag_round_trip(self, tmp_path, capsys):
        model = tmp_path / "fleet.npz"
        args = [
            "detect", "--smoke",
            "--cache-dir", str(tmp_path / "cache"),
            "--model", str(model),
        ]
        assert cli.main(args) == 0
        first = capsys.readouterr().out
        assert model.exists()
        assert cli.main(args) == 0  # loads the saved model this time
        second = capsys.readouterr().out
        assert first == second
        assert first.strip(), "expected alert events on stdout"

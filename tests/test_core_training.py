"""Tests for the CS training stage (correlations + Algorithm 1)."""

import numpy as np
import pytest

from repro.core.training import (
    correlation_ordering,
    global_correlation,
    shifted_correlation_matrix,
    train_cs_model,
)


class TestShiftedCorrelationMatrix:
    def test_range_and_symmetry(self, correlated_matrix):
        rho = shifted_correlation_matrix(correlated_matrix)
        assert rho.shape == (12, 12)
        assert np.all(rho >= 0.0) and np.all(rho <= 2.0)
        assert np.allclose(rho, rho.T)

    def test_diagonal_is_two_for_varying_rows(self, correlated_matrix):
        rho = shifted_correlation_matrix(correlated_matrix)
        assert np.allclose(np.diagonal(rho), 2.0)

    def test_perfect_positive_and_negative(self):
        x = np.linspace(0.0, 1.0, 50)
        S = np.stack([x, 2 * x + 1, -x])
        rho = shifted_correlation_matrix(S)
        assert rho[0, 1] == pytest.approx(2.0)
        assert rho[0, 2] == pytest.approx(0.0)

    def test_matches_numpy_corrcoef(self, rng):
        S = rng.standard_normal((6, 80))
        rho = shifted_correlation_matrix(S)
        expected = np.corrcoef(S) + 1.0
        assert np.allclose(rho, expected, atol=1e-10)

    def test_constant_row_is_neutral(self):
        S = np.vstack([np.linspace(0, 1, 30), np.full(30, 3.0)])
        rho = shifted_correlation_matrix(S)
        assert rho[0, 1] == pytest.approx(1.0)
        assert rho[1, 1] == pytest.approx(1.0)
        assert not np.isnan(rho).any()

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            shifted_correlation_matrix(np.zeros(5))
        with pytest.raises(ValueError):
            shifted_correlation_matrix(np.zeros((3, 1)))


class TestGlobalCorrelation:
    def test_excludes_diagonal(self):
        rho = np.array([[2.0, 1.0], [1.0, 2.0]])
        g = global_correlation(rho)
        assert np.allclose(g, [1.0, 1.0])

    def test_single_row(self):
        assert global_correlation(np.array([[2.0]]))[0] == pytest.approx(2.0)

    def test_identifies_descriptive_rows(self, correlated_matrix):
        rho = shifted_correlation_matrix(correlated_matrix)
        g = global_correlation(rho)
        # The dominant positively-correlated family (rows 0-5) outranks
        # the noise rows (9-11); the anti-correlated family (6-8) ranks
        # below the noise rows because its shifted correlations with the
        # majority are near zero.
        assert g[:6].min() > g[9:].max()
        assert g[6:9].max() < g[9:].min()

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            global_correlation(np.zeros((2, 3)))


class TestCorrelationOrdering:
    def test_is_permutation(self, correlated_matrix):
        rho = shifted_correlation_matrix(correlated_matrix)
        p = correlation_ordering(rho)
        assert sorted(p.tolist()) == list(range(12))

    def test_paper_ordering_semantics(self, correlated_matrix):
        # "Sensors at the beginning of p ... have an overall positive
        # correlation with other sensors.  Sensors at the middle of p have
        # little correlation with other sensors and are akin to noise.
        # Sensors at the end of p are ... negatively correlated with those
        # at the beginning."
        rho = shifted_correlation_matrix(correlated_matrix)
        p = correlation_ordering(rho)
        position = {int(row): pos for pos, row in enumerate(p)}
        pos_family = [position[i] for i in range(6)]
        neg_family = [position[i] for i in range(6, 9)]
        noise = [position[i] for i in range(9, 12)]
        assert sorted(pos_family) == [0, 1, 2, 3, 4, 5]
        assert sorted(neg_family) == [9, 10, 11]
        assert sorted(noise) == [6, 7, 8]

    def test_families_stay_contiguous(self, correlated_matrix):
        rho = shifted_correlation_matrix(correlated_matrix)
        p = correlation_ordering(rho)
        position = {int(row): pos for pos, row in enumerate(p)}
        pos_family = [position[i] for i in range(6)]
        assert max(pos_family) - min(pos_family) == 5

    def test_starts_at_max_global(self, correlated_matrix):
        rho = shifted_correlation_matrix(correlated_matrix)
        g = global_correlation(rho)
        p = correlation_ordering(rho, g)
        assert p[0] == int(np.argmax(g))

    def test_deterministic(self, rng):
        S = rng.standard_normal((10, 60))
        rho = shifted_correlation_matrix(S)
        assert np.array_equal(correlation_ordering(rho), correlation_ordering(rho))

    def test_single_row(self):
        p = correlation_ordering(np.array([[2.0]]))
        assert p.tolist() == [0]

    def test_rejects_mismatched_global(self):
        rho = np.full((3, 3), 1.0)
        with pytest.raises(ValueError):
            correlation_ordering(rho, np.zeros(2))


class TestTrainCSModel:
    def test_bounds_match_data(self, correlated_matrix):
        model = train_cs_model(correlated_matrix)
        assert np.allclose(model.lower, correlated_matrix.min(axis=1))
        assert np.allclose(model.upper, correlated_matrix.max(axis=1))

    def test_stores_names(self, correlated_matrix):
        names = [f"s{i}" for i in range(12)]
        model = train_cs_model(correlated_matrix, sensor_names=names)
        assert model.sensor_names == tuple(names)

    def test_rejects_nan(self):
        S = np.ones((3, 10))
        S[1, 4] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            train_cs_model(S)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            train_cs_model(np.arange(10.0))

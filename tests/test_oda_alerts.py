"""ODA loop → alert pipeline coverage.

Drives :class:`repro.oda.loop.ODAControlLoop` records through the
service's :class:`~repro.service.alerts.AlertPolicy` — a healthy plant
raises no alerts, a plant with an injected fault from
:mod:`repro.datasets.faults` does — and asserts that
:func:`repro.analysis.rootcause.explain_difference` attributes the alert
back to the sensors the fault actually perturbs.
"""

import numpy as np
import pytest

from repro.core.pipeline import CorrelationWiseSmoothing, signature_features
from repro.datasets.faults import FAULTS
from repro.ml.forest import RandomForestClassifier
from repro.monitoring.streaming import OnlineSignatureStream
from repro.oda.loop import ODAControlLoop
from repro.oda.plant import SimulatedNodePlant
from repro.service.alerts import AlertPolicy

WL, WS = 30, 5
BLOCKS = 8
MEMALLOC = next(f for f in FAULTS if f.name == "memalloc")


def _plant(total_t=4000, seed=3) -> SimulatedNodePlant:
    return SimulatedNodePlant(n_sensors=32, total_t=total_t, seed=seed)


@pytest.fixture(scope="module")
def trained():
    """CS model + healthy-vs-memalloc classifier from one plant's data.

    The healthy class covers the whole tick range the loop tests replay
    (a fresh same-seed plant reproduces the same samples), so a healthy
    control loop is in-distribution and must stay alert-free.
    """
    plant = _plant()
    healthy = plant.run_open_loop(3200)
    cs = CorrelationWiseSmoothing(blocks=BLOCKS).fit(
        healthy, sensor_names=plant.sensor_names
    )
    faulty = healthy.copy()
    groups = {
        g: plant.bank.indices_of_group(g) for g in set(plant.bank.groups)
    }
    MEMALLOC.apply_sensors(
        faulty, groups, 0, faulty.shape[1], 1, np.random.default_rng(5)
    )
    sig_h = cs.transform_series(healthy, WL, WS)
    sig_f = cs.transform_series(faulty, WL, WS)
    X = signature_features(np.concatenate([sig_h, sig_f]))
    y = np.concatenate(
        [np.zeros(sig_h.shape[0], np.intp), np.ones(sig_f.shape[0], np.intp)]
    )
    forest = RandomForestClassifier(10, random_state=0).fit(X, y)
    reference = sig_h.mean(axis=0)
    fault_rows = groups["memerror"]
    fault_sensors = {plant.bank.names[i] for i in fault_rows}
    return cs, forest, reference, fault_sensors


def _drive_policy(records, forest, policy):
    """Classify each loop record's signature and advance the policy."""
    events = []
    for window, record in enumerate(records):
        features = signature_features(record.signature[None, :])
        label, proba = forest.predict_with_proba(features)
        for kind, alert in policy.update(
            window, int(label[0]), float(proba[0].max())
        ):
            events.append((kind, window, alert))
    return events


class _FaultyPlant(SimulatedNodePlant):
    """A plant with a memalloc fault injected over a tick span."""

    def __init__(self, span, fault_rows, **kwargs):
        super().__init__(**kwargs)
        self._span = span
        self._fault_rows = np.asarray(fault_rows)
        self._fault_rng = np.random.default_rng(99)

    def step(self):
        sample = super().step()
        start, stop = self._span
        if start <= self.tick - 1 < stop:
            scale = MEMALLOC.intensities[1]
            delta = MEMALLOC.sensor_effects["memerror"] * scale
            sample[self._fault_rows] += delta * (
                1.0 + 0.15 * self._fault_rng.standard_normal(
                    self._fault_rows.size
                )
            )
        return sample


class TestLoopToAlertPath:
    def test_healthy_loop_raises_no_alerts(self, trained):
        cs, forest, _, _ = trained
        plant = _plant()
        loop = ODAControlLoop(plant, OnlineSignatureStream(cs, WL, WS))
        report = loop.run(600)
        assert report.n_signatures > 0
        policy = AlertPolicy(open_after=2, close_after=2)
        events = _drive_policy(report.records, forest, policy)
        assert [kind for kind, _, _ in events if kind == "open"] == []

    def test_injected_fault_opens_alert_inside_fault_span(self, trained):
        cs, forest, _, _ = trained
        fault_rows = [
            i for i, g in enumerate(_plant().bank.groups) if g == "memerror"
        ]
        span = (1500, 2400)
        plant = _FaultyPlant(
            span, fault_rows, n_sensors=32, total_t=4000, seed=3
        )
        loop = ODAControlLoop(plant, OnlineSignatureStream(cs, WL, WS))
        report = loop.run(3000)
        policy = AlertPolicy(open_after=2, close_after=2)
        events = _drive_policy(report.records, forest, policy)
        opens = [
            (window, alert)
            for kind, window, alert in events
            if kind == "open"
        ]
        assert opens, "injected memalloc fault raised no alert"
        # Loop records are one per emitted window; window w covers ticks
        # up to roughly WL + w*WS.  The first alert must open inside the
        # fault span (allowing the open_after debounce).
        first_open_tick = report.records[opens[0][0]].tick
        assert span[0] <= first_open_tick <= span[1] + WL

    def test_attribution_names_the_perturbed_sensors(self, trained):
        from repro.analysis.rootcause import explain_difference

        cs, forest, reference, fault_sensors = trained
        plant = _plant()
        healthy = plant.run_open_loop(600)
        faulty = healthy.copy()
        groups = {
            g: plant.bank.indices_of_group(g)
            for g in set(plant.bank.groups)
        }
        MEMALLOC.apply_sensors(
            faulty, groups, 0, faulty.shape[1], 1, np.random.default_rng(7)
        )
        stream = OnlineSignatureStream(cs, WL, WS)
        signatures = stream.push_block(faulty)
        assert signatures.shape[0] > 0
        findings = explain_difference(
            cs.model, reference, signatures[0], top=3
        )
        attributed = {s for f in findings for s in f.sensors}
        assert fault_sensors & attributed, (
            f"memalloc perturbs {fault_sensors} but attribution named "
            f"{attributed}"
        )
        # The top finding's block should be the one carrying the
        # perturbed sensors (the fault moves only that error counter).
        assert fault_sensors & set(findings[0].sensors)

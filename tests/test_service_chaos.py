"""Chaos harness: deterministic schedules and the kill-and-restore drill.

The injector's schedule must be a pure function of ``(seed, tick,
node)`` — that statelessness is what makes killed-and-resumed chaos
replays regenerate the same faults and hence the same alert bytes.  The
fault-matrix tests assert each injected fault class lands on its
documented guard policy, on both backends.
"""

import numpy as np
import pytest

from repro.service.chaos import ChaosConfig, ChaosInjector, run_with_kills
from repro.service.replay import fleet_recipes, prepare_fleet, replay

BACKENDS = ("staged", "fused")


@pytest.fixture(scope="module")
def small_setup():
    return prepare_fleet(
        fleet_recipes(2, t=2000), blocks=8, trees=5, train_frac=0.5, seed=0
    )


def sample_burst(paths, tick, m=32):
    rng = np.random.default_rng(tick)
    return {p: rng.normal(size=(5, m)) for p in paths}


class TestInjectorDeterminism:
    def test_schedule_pure_function_of_seed_tick_node(self):
        cfg = ChaosConfig(seed=5, drop=0.2, duplicate=0.2, reorder=0.2,
                          corrupt=0.2)
        paths = [f"rack0/node{i:02d}" for i in range(6)]
        a, b = ChaosInjector(cfg), ChaosInjector(cfg)
        for tick in range(10):
            burst = sample_burst(paths, tick)
            da = a.deliveries(tick, burst)
            db = b.deliveries(tick, burst)
            assert len(da) == len(db)
            for (ta, ba), (tb, bb) in zip(da, db):
                assert ta == tb and sorted(ba) == sorted(bb)
                for p in ba:
                    np.testing.assert_array_equal(ba[p], bb[p])
        assert a.stats == b.stats

    def test_schedule_independent_of_delivery_history(self):
        """Tick k's faults don't depend on which ticks ran before —
        the property a resumed segment relies on."""
        cfg = ChaosConfig(seed=5, drop=0.3, corrupt=0.3)
        paths = ["rack0/node00", "rack0/node01"]
        full = ChaosInjector(cfg)
        late = ChaosInjector(cfg)
        burst7 = sample_burst(paths, 7)
        for tick in range(7):
            full.deliveries(tick, sample_burst(paths, tick))
        d_full = full.deliveries(7, burst7)
        d_late = late.deliveries(7, burst7)  # cold injector, same tick
        assert len(d_full) == len(d_late)
        for (ta, ba), (tb, bb) in zip(d_full, d_late):
            assert ta == tb
            for p in ba:
                np.testing.assert_array_equal(ba[p], bb[p])

    def test_different_seeds_differ(self):
        paths = [f"rack0/node{i:02d}" for i in range(8)]
        patterns = []
        for seed in (0, 1):
            inj = ChaosInjector(ChaosConfig(seed=seed, drop=0.5))
            dropped = set()
            for tick in range(10):
                out = inj.deliveries(tick, sample_burst(paths, tick))
                dropped |= {
                    (tick, p) for p in paths if p not in out[0][1]
                }
            patterns.append(dropped)
        assert patterns[0] != patterns[1]

    def test_start_tick_delays_injection(self):
        inj = ChaosInjector(ChaosConfig(seed=0, drop=1.0, start_tick=3))
        paths = ["rack0/node00"]
        for tick in range(6):
            out = inj.deliveries(tick, sample_burst(paths, tick))
            delivered = bool(out[0][1])
            assert delivered == (tick < 3)

    def test_fraction_validation(self):
        with pytest.raises(ValueError, match="sum"):
            ChaosConfig(drop=0.5, duplicate=0.3, reorder=0.2, corrupt=0.1)
        with pytest.raises(ValueError, match="drop"):
            ChaosConfig(drop=-0.1)
        with pytest.raises(ValueError, match="corrupt_fraction"):
            ChaosConfig(corrupt=0.1, corrupt_fraction=0.0)


class TestFaultMapping:
    """Each single-fault config lands on its documented guard policy."""

    def guarded_replay(self, setup, backend, **chaos_kw):
        return replay(
            setup, chunk=200, guard=True, backend=backend,
            chaos=ChaosConfig(seed=1, **chaos_kw),
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_drop_thins_windows_without_guard_events(
        self, small_setup, backend
    ):
        out = self.guarded_replay(small_setup, backend, drop=0.3)
        clean = replay(small_setup, chunk=200, guard=True, backend=backend)
        assert out.chaos_stats["drop"] > 0
        assert out.n_windows < clean.n_windows
        assert not [e for e in out.events if e["event"] == "guard"]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_duplicate_coalesces(self, small_setup, backend):
        out = self.guarded_replay(small_setup, backend, duplicate=0.5)
        clean = replay(small_setup, chunk=200, guard=True, backend=backend)
        ge = [e for e in out.events if e["event"] == "guard"]
        assert out.chaos_stats["duplicate"] > 0
        assert ge and all(e["fault"] == "duplicate-tick" for e in ge)
        assert all(e["action"] == "coalesce" for e in ge)
        # coalescing re-deliveries never perturbs the detection output
        stripped = [e for e in out.events if e["event"] != "guard"]
        assert stripped == [e for e in clean.events if e["event"] != "guard"]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_reorder_maps_to_stale_tick(self, small_setup, backend):
        out = self.guarded_replay(small_setup, backend, reorder=0.5)
        ge = [e for e in out.events if e["event"] == "guard"]
        assert out.chaos_stats["reorder"] > 0
        assert ge and all(e["fault"] == "stale-tick" for e in ge)
        assert all(e["action"] == "reject" for e in ge)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_corrupt_maps_to_corrupt_values(self, small_setup, backend):
        from repro.service.guard import GuardConfig

        out = replay(
            small_setup, chunk=200, backend=backend,
            guard=GuardConfig(quarantine_after=2, backoff_ticks=2),
            chaos=ChaosConfig(seed=1, corrupt=0.9),
        )
        ge = [e for e in out.events if e["event"] == "guard"]
        assert out.chaos_stats["corrupt"] > 0
        faults = {e["fault"] for e in ge if "fault" in e}
        assert faults == {"corrupt-values"}
        # persistent corruption quarantines
        assert any(e["action"] == "quarantine" for e in ge)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_full_fault_mix_never_crashes(self, small_setup, backend):
        out = self.guarded_replay(
            small_setup, backend,
            drop=0.1, duplicate=0.1, reorder=0.1, corrupt=0.1,
        )
        assert out.n_events == len(out.events)
        assert out.health is not None


class TestKillAndRestore:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_chaos_kill_restore_identical(
        self, small_setup, tmp_path, backend
    ):
        chaos = ChaosConfig(seed=2, drop=0.05, duplicate=0.05,
                            reorder=0.05, corrupt=0.05)
        uninterrupted = replay(
            small_setup, chunk=200, guard=True, backend=backend, chaos=chaos
        )
        killed = run_with_kills(
            small_setup,
            checkpoint_path=tmp_path / "chaos.npz",
            kills=[2, 5],
            chunk=200, guard=True, backend=backend, chaos=chaos,
        )
        assert killed.events == uninterrupted.events
        assert killed.n_alerts == uninterrupted.n_alerts

    def test_sink_factory_yields_complete_stream(self, small_setup, tmp_path):
        from repro.service.alerts import JSONLAlertSink

        full_path = tmp_path / "full.jsonl"
        replay(
            small_setup, chunk=200, guard=True,
            sinks=[JSONLAlertSink(full_path)],
        )
        seg_path = tmp_path / "killed.jsonl"
        run_with_kills(
            small_setup,
            checkpoint_path=tmp_path / "ck.npz",
            kills=[3],
            chunk=200, guard=True,
            sink_factory=lambda: [JSONLAlertSink(seg_path)],
        )
        assert seg_path.read_bytes() == full_path.read_bytes()

    def test_kills_must_leave_tick_zero(self, small_setup, tmp_path):
        with pytest.raises(ValueError, match="tick 0"):
            run_with_kills(
                small_setup,
                checkpoint_path=tmp_path / "ck.npz",
                kills=[0],
                chunk=200, guard=True,
            )

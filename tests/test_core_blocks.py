"""Tests for the Equation 2 blocking scheme."""

import numpy as np
import pytest

from repro.core.blocks import block_bounds, block_sensor_map, block_widths


class TestBlockBounds:
    def test_even_division(self):
        starts, ends = block_bounds(8, 4)
        assert starts.tolist() == [0, 2, 4, 6]
        assert ends.tolist() == [2, 4, 6, 8]

    def test_matches_paper_formula(self):
        # Paper (1-indexed): b_i = 1 + floor((i-1)n/l), e_i = ceil(i n/l).
        for n, l in [(10, 4), (128, 5), (7, 3), (52, 20), (100, 7)]:
            starts, ends = block_bounds(n, l)
            for j in range(l):
                i = j + 1
                assert starts[j] == (1 + (i - 1) * n // l) - 1
                assert ends[j] == -(-i * n // l)

    def test_overlap_when_not_divisible(self):
        starts, ends = block_bounds(10, 4)
        # Blocks [0,3) and [2,5) overlap at row 2.
        assert starts.tolist() == [0, 2, 5, 7]
        assert ends.tolist() == [3, 5, 8, 10]

    def test_every_row_covered(self):
        for n, l in [(10, 3), (128, 40), (9, 9), (57, 13)]:
            starts, ends = block_bounds(n, l)
            covered = np.zeros(n, dtype=bool)
            for s, e in zip(starts, ends):
                covered[s:e] = True
            assert covered.all()

    def test_l_equals_n_is_identity(self):
        starts, ends = block_bounds(6, 6)
        assert starts.tolist() == [0, 1, 2, 3, 4, 5]
        assert ends.tolist() == [1, 2, 3, 4, 5, 6]

    def test_l_one_covers_all(self):
        starts, ends = block_bounds(9, 1)
        assert starts.tolist() == [0] and ends.tolist() == [9]

    def test_widened_blocks_spread_uniformly(self):
        # n % l != 0: block widths differ by at most one sensor and the
        # widened blocks are spread by the modulo periodicity, not
        # clustered at one end.
        widths = block_widths(11, 4).tolist()
        assert widths == [3, 4, 4, 3]
        for n, l in [(10, 4), (128, 5), (52, 20), (100, 7)]:
            w = block_widths(n, l)
            assert w.max() - w.min() <= 1
            assert w.sum() >= n  # overlap only ever adds coverage

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            block_bounds(5, 0)
        with pytest.raises(ValueError):
            block_bounds(0, 1)
        with pytest.raises(ValueError):
            block_bounds(3, 4)


class TestBlockSensorMap:
    def test_sorted_positions_without_permutation(self):
        blocks = block_sensor_map(6, 3)
        assert [b.tolist() for b in blocks] == [[0, 1], [2, 3], [4, 5]]

    def test_maps_to_original_rows_with_permutation(self):
        perm = np.array([3, 1, 0, 2])
        blocks = block_sensor_map(4, 2, perm)
        assert blocks[0].tolist() == [3, 1]
        assert blocks[1].tolist() == [0, 2]

    def test_rejects_bad_permutation_shape(self):
        with pytest.raises(ValueError):
            block_sensor_map(4, 2, np.array([0, 1]))

    def test_block_count(self):
        assert len(block_sensor_map(128, 40)) == 40

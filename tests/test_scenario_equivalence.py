"""Legacy script shims and the unified CLI must emit identical CSVs.

The per-figure ``main()`` entry points and ``python -m repro run <name>``
route through the same spec + runner, so for a fixed seed their CSV
outputs must be byte-identical.  Wall-clock columns (generation/CV time)
are made deterministic by freezing ``time.perf_counter`` to a counter —
both paths execute the same sequence of timed operations.
"""

import time

import pytest

from repro import cli
from repro.experiments import fig3, fig4, fig5


@pytest.fixture
def frozen_clock(monkeypatch):
    """Deterministic perf_counter: each call advances 1 ms."""
    state = {"now": 0.0}

    def tick() -> float:
        state["now"] += 1e-3
        return state["now"]

    monkeypatch.setattr(time, "perf_counter", tick)
    return tick


CASES = [
    ("fig3", fig3.main),
    ("fig4", fig4.main),
    ("fig5", fig5.main),
]


@pytest.mark.parametrize("name,legacy_main", CASES)
def test_legacy_and_cli_csv_byte_identical(
    name, legacy_main, tmp_path, capsys, frozen_clock
):
    legacy_csv = tmp_path / f"{name}_legacy.csv"
    cli_csv = tmp_path / f"{name}_cli.csv"
    legacy_main(["--smoke", "--csv", str(legacy_csv)])
    assert cli.main(["run", name, "--smoke", "--csv", str(cli_csv)]) == 0
    capsys.readouterr()
    legacy_bytes = legacy_csv.read_bytes()
    assert legacy_bytes == cli_csv.read_bytes()
    assert len(legacy_bytes.splitlines()) >= 2


def test_fig3_legacy_flags_still_work(capsys):
    fig3.main([
        "--segments", "application", "--methods", "lan", "cs-5",
        "--trees", "4", "--scale", "0.25",
    ])
    out = capsys.readouterr().out
    assert "Figure 3" in out
    assert "lan" in out and "cs-5" in out


def test_fig4_no_real_only_flag(capsys):
    fig4.main(["--smoke", "--no-real-only"])
    out = capsys.readouterr().out
    assert "Figure 4" in out
    # No -R variants: the "Real only" column stays False everywhere.
    assert "True" not in out


def test_explicit_shim_flags_beat_smoke(capsys):
    """--smoke must not silently drop explicitly requested knobs."""
    fig5.main(["--smoke", "--wl-grid", "15"])
    out = capsys.readouterr().out
    rows = [l for l in out.splitlines() if l.startswith(("wl", "n "))]
    assert any(l.split("|")[2].strip() == "15" for l in rows)
    assert not any(l.split("|")[2].strip() == "10" and l.startswith("wl")
                   for l in rows)


def test_run_api_matches_cli_rows(tmp_path, capsys, frozen_clock):
    """fig5.run() and the CLI produce the same points for the same knobs."""
    points = fig5.run(methods=("lan", "cs-5"), wl_grid=(10,), n_grid=(10,),
                      repeats=2)
    csv = tmp_path / "fig5.csv"
    assert cli.main(["run", "fig5", "--smoke", "--csv", str(csv)]) == 0
    capsys.readouterr()
    rows = csv.read_text().splitlines()[1:]
    assert len(rows) == len(points) == 4
    for point, row in zip(points, rows):
        axis, method = row.split(",")[:2]
        assert (axis, method) == (point.axis, point.method)

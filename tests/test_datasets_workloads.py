"""Tests for the application workload models."""

import numpy as np
import pytest

from repro.datasets.workloads import (
    APPLICATIONS,
    CHANNELS,
    IDLE,
    WorkloadModel,
    application_names,
    build_schedule,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestModels:
    def test_six_applications(self):
        assert len(APPLICATIONS) == 6
        assert set(APPLICATIONS) == {
            "AMG", "Kripke", "LAMMPS", "Linpack", "Quicksilver", "Nekbone",
        }

    @pytest.mark.parametrize("name", list(APPLICATIONS))
    def test_all_channels_present_and_finite(self, name, rng):
        latent = APPLICATIONS[name].latent(300, 0, rng)
        assert set(latent) == set(CHANNELS)
        for ch, arr in latent.items():
            assert arr.shape == (300,)
            assert np.isfinite(arr).all(), f"{name}/{ch} has non-finite values"
            assert arr.min() >= 0.0

    @pytest.mark.parametrize("config", [0, 1, 2])
    def test_configs_valid(self, config, rng):
        latent = APPLICATIONS["AMG"].latent(200, config, rng)
        assert latent["compute"].max() <= 1.5

    def test_idle_is_light(self, rng):
        latent = IDLE.latent(300, 0, rng)
        busy = APPLICATIONS["Linpack"].latent(300, 0, rng)
        assert latent["compute"].mean() < 0.2
        assert latent["compute"].mean() < busy["compute"].mean() / 3

    def test_amg_memory_gradient(self, rng):
        # Figure 2: AMG shows increasing memory usage over the run.
        latent = APPLICATIONS["AMG"].latent(600, 0, rng)
        mem = latent["memory"]
        assert mem[-100:].mean() > mem[:100].mean() + 0.2

    def test_linpack_init_phase(self, rng):
        # Figure 6b: pronounced initialization phase, then constant load.
        latent = APPLICATIONS["Linpack"].latent(600, 0, rng)
        io = latent["io"]
        assert io[:30].mean() > io[-100:].mean() * 3
        compute = latent["compute"]
        assert compute[-300:].std() < 0.05

    def test_quicksilver_freq_oscillation(self, rng):
        # Figure 6c: oscillating CPU frequency unique to Quicksilver.
        qs = APPLICATIONS["Quicksilver"].latent(600, 0, rng)
        lp = APPLICATIONS["Linpack"].latent(600, 0, rng)
        assert qs["freq"].std() > 3 * lp["freq"].std()
        assert qs["compute"].mean() < 0.4  # light computational load

    def test_kripke_iterative(self, rng):
        # Clear bursts: compute spends time both high and low.
        latent = APPLICATIONS["Kripke"].latent(600, 0, rng)
        c = latent["compute"]
        assert (c > 0.7).mean() > 0.2
        assert (c < 0.5).mean() > 0.2

    def test_config_scales_period(self, rng):
        m = APPLICATIONS["Kripke"]
        base = m.base_period
        # config 1 stretches, config 2 shrinks (via _CONFIG_SCALES).
        from repro.datasets.workloads import _CONFIG_SCALES

        assert _CONFIG_SCALES[1][0] > 1.0 > _CONFIG_SCALES[2][0]
        assert base > 0

    def test_rejects_zero_length(self, rng):
        with pytest.raises(ValueError):
            APPLICATIONS["AMG"].latent(0, 0, rng)


class TestApplicationNames:
    def test_without_idle(self):
        assert len(application_names()) == 6

    def test_with_idle(self):
        names = application_names(include_idle=True)
        assert names[-1] == "idle"
        assert len(names) == 7


class TestBuildSchedule:
    def test_covers_total_length(self, rng):
        sched = build_schedule(5000, rng)
        assert sum(length for _, _, length in sched) == 5000

    def test_all_apps_present(self, rng):
        sched = build_schedule(6 * 450, rng, min_run=200, max_run=400)
        apps = {a for a, _, _ in sched}
        assert set(APPLICATIONS) <= apps | {"idle"} or len(apps) >= 5

    def test_no_idle_when_disabled(self, rng):
        sched = build_schedule(4000, rng, include_idle=False)
        assert all(a != "idle" for a, _, _ in sched)

    def test_configs_in_range(self, rng):
        sched = build_schedule(3000, rng)
        assert all(0 <= c <= 2 for _, c, _ in sched)

    def test_custom_app_pool(self, rng):
        sched = build_schedule(2000, rng, apps=("AMG",), include_idle=False)
        assert {a for a, _, _ in sched} == {"AMG"}

    def test_rejects_bad_params(self, rng):
        with pytest.raises(ValueError):
            build_schedule(0, rng)
        with pytest.raises(ValueError):
            build_schedule(100, rng, min_run=50, max_run=10)


class TestWorkloadModelDirect:
    def test_custom_model(self, rng):
        def synth(t, period, amp, mem, rng):
            return {"compute": np.full(t, 0.5 * amp)}

        model = WorkloadModel("custom", base_period=50.0, synth=synth)
        latent = model.latent(100, 0, rng)
        assert np.allclose(latent["compute"], 0.5)
        assert np.allclose(latent["io"], 0.0)  # missing channels are zero
        assert latent["freq"].mean() < 1.05  # freq response applied

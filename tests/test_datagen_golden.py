"""Golden-model tests: batched scan generators vs the frozen seed path.

The vectorization contract of ``repro.engine.scan`` +
``repro.datasets``: per-seed RNG draw *order* is preserved, so labels,
schedules and fault episodes are **bit-identical** to the frozen
implementation in ``repro.datasets._seed_reference``, while the
recurrence numerics (evaluated as chunked affine scans instead of
sample-by-sample loops) agree to ``rtol <= 1e-10``.

Hypothesis property tests pin the scan kernels against their sequential
definitions across parameter ranges well beyond what the generators use.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import _seed_reference as ref
from repro.datasets.generators import (
    DATAGEN_VERSION,
    generate_segment,
)
from repro.datasets.gpu import generate_gpu
from repro.datasets.recipes import recipe
from repro.engine.scan import (
    damped_oscillation_scan,
    ema_scan,
    first_order_affine_scan,
)

RTOL = 1e-10

#: (name, kwargs) for every generator at quick sizes; every per-arch /
#: per-component batching path is exercised.
GOLDEN_CASES = (
    ("fault", {"t": 3000}),
    ("application", {"t": 900, "nodes": 4}),
    ("power", {"t": 2500}),
    ("infrastructure", {"t": 900, "racks": 3}),
    ("cross-architecture", {"t": 900}),
    ("gpu", {"t": 900, "gpus": 3}),
)


def _generate(name: str, seed: int, **kwargs):
    if name == "gpu":
        return generate_gpu(seed, **kwargs)
    return generate_segment(name, seed=seed, **kwargs)


def _assert_segments_equivalent(reference, new):
    __tracebackhide__ = True
    assert len(reference.components) == len(new.components)
    assert reference.label_names == new.label_names
    for rc, nc in zip(reference.components, new.components):
        assert rc.name == nc.name
        assert rc.arch == nc.arch
        assert rc.sensor_names == nc.sensor_names
        assert rc.sensor_groups == nc.sensor_groups
        # Labels (and with them schedules + fault episodes) bit-identical.
        if rc.labels is None:
            assert nc.labels is None
        else:
            assert np.array_equal(rc.labels, nc.labels)
        scale = max(1.0, float(np.max(np.abs(rc.matrix))))
        np.testing.assert_allclose(
            nc.matrix, rc.matrix, rtol=RTOL, atol=1e-12 * scale
        )
        if rc.target is None:
            assert nc.target is None
        else:
            np.testing.assert_allclose(
                nc.target, rc.target, rtol=RTOL, atol=1e-12
            )


class TestGoldenSegments:
    @pytest.mark.parametrize(
        "name,kwargs", GOLDEN_CASES, ids=[c[0] for c in GOLDEN_CASES]
    )
    @pytest.mark.parametrize("seed", [0, 7])
    def test_matches_seed_reference(self, name, kwargs, seed):
        reference = ref.reference_generate_segment(name, seed=seed, **kwargs)
        new = _generate(name, seed, **kwargs)
        _assert_segments_equivalent(reference, new)

    def test_perturbed_recipe_matches_reference(self):
        """Noise/drift perturbations ride on equivalent base segments."""
        r = recipe(
            "application", t=900, nodes=2, noise_std=0.05, drift=0.1,
            noise_seed=5,
        )
        reference = ref.reference_generate_segment(
            "application", seed=0, t=900, nodes=2
        )
        from repro.datasets.recipes import _perturb

        _perturb(reference, 0.05, 0.1, 5)
        _assert_segments_equivalent(reference, r.build())

    def test_datagen_version_in_cache_identity(self):
        """The generator version keys cached artifacts: stale artifacts
        from another engine regenerate instead of mixing numerics."""
        data = recipe("fault", t=600).cache_dict()
        assert data["datagen"] == DATAGEN_VERSION
        # ... but it is not part of the recipe's serialized identity.
        assert "datagen" not in recipe("fault", t=600).to_dict()


class TestScanKernelProperties:
    @given(
        samples=st.integers(min_value=2, max_value=200),
        n_rows=st.integers(min_value=1, max_value=4),
        t=st.integers(min_value=1, max_value=600),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_ema_scan_matches_sequential(self, samples, n_rows, t, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(0.0, 1.5, size=(n_rows, t))
        got = ema_scan(x, samples)
        for row in range(n_rows):
            expected = ref.reference_ema(x[row], samples)
            np.testing.assert_allclose(
                got[row], expected, rtol=RTOL, atol=1e-13
            )

    @given(
        theta=st.floats(min_value=1e-4, max_value=0.9),
        mean=st.floats(min_value=-1.0, max_value=1.0),
        sigma=st.floats(min_value=0.0, max_value=0.2),
        t=st.integers(min_value=1, max_value=800),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_ou_scan_matches_sequential(self, theta, mean, sigma, t, seed):
        noise = sigma * np.random.default_rng(seed).standard_normal(t)
        got = first_order_affine_scan(1.0 - theta, theta * mean + noise, mean)
        expected = np.empty(t)
        expected[0] = mean
        for i in range(1, t):
            expected[i] = (
                expected[i - 1] + theta * (mean - expected[i - 1]) + noise[i]
            )
        np.testing.assert_allclose(got, expected, rtol=RTOL, atol=1e-12)

    @given(
        stiffness=st.floats(min_value=0.0, max_value=0.5),
        damping=st.floats(min_value=0.0, max_value=0.8),
        drive=st.floats(min_value=1e-4, max_value=0.1),
        t=st.integers(min_value=1, max_value=800),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_oscillation_scan_matches_sequential(
        self, stiffness, damping, drive, t, seed
    ):
        kicks = drive * np.random.default_rng(seed).standard_normal(t)
        got = damped_oscillation_scan(
            kicks, stiffness=stiffness, damping=damping
        )
        expected = ref.reference_damped_oscillation(
            t,
            np.random.default_rng(seed),
            stiffness=stiffness,
            damping=damping,
            drive=drive,
        )
        scale = max(1.0, float(np.max(np.abs(expected))))
        np.testing.assert_allclose(
            got, expected, rtol=1e-9, atol=1e-11 * scale
        )

    @given(
        a=st.floats(min_value=-0.999, max_value=0.999),
        t=st.integers(min_value=1, max_value=500),
        x0=st.floats(min_value=-5.0, max_value=5.0),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_first_order_scan_matches_sequential(self, a, t, x0, seed):
        u = np.random.default_rng(seed).normal(0.0, 1.0, size=t)
        got = first_order_affine_scan(a, u, x0)
        expected = np.empty(t)
        expected[0] = x0
        for i in range(1, t):
            expected[i] = a * expected[i - 1] + u[i]
        scale = max(1.0, float(np.max(np.abs(expected))))
        np.testing.assert_allclose(
            got, expected, rtol=RTOL, atol=1e-12 * scale
        )

    def test_first_order_scan_2d_initial_column(self):
        """Leading axes vectorize; each row keeps its own initial value."""
        rng = np.random.default_rng(0)
        u = rng.normal(size=(3, 50))
        x0 = np.array([1.0, -2.0, 0.5])
        got = first_order_affine_scan(0.7, u, x0)
        for row in range(3):
            expected = first_order_affine_scan(0.7, u[row], x0[row])
            np.testing.assert_allclose(got[row], expected, rtol=1e-12)

    def test_zero_coefficient_passthrough(self):
        u = np.arange(5, dtype=np.float64)
        got = first_order_affine_scan(0.0, u, 42.0)
        np.testing.assert_array_equal(got, [42.0, 1.0, 2.0, 3.0, 4.0])

    def test_ema_scan_short_series_is_copy(self):
        x = np.array([3.0, 1.0])
        out = ema_scan(x, 1)
        assert np.array_equal(out, x) and out is not x

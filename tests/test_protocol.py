"""Wire-protocol tests: repro-ticks/v1 framing (repro.service.protocol).

The contract under test: every well-formed frame round-trips exactly
through :class:`FrameDecoder` regardless of how the byte stream is
chunked; malformed input yields typed :class:`FrameError`\\ s (with the
node attached whenever the broken frame still named one) and the
decoder *resynchronizes* instead of dying.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.protocol import (
    MAGIC,
    MAX_FRAME_BYTES,
    Frame,
    FrameDecoder,
    FrameError,
    encode_binary,
    encode_eof,
    encode_json,
)


def _burst(n=3, m=5, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, m))


class TestEncodeDecode:
    def test_binary_round_trip(self):
        v = _burst()
        frames, errors = FrameDecoder().feed(
            encode_binary("rack0/node01", 42, v)
        )
        assert errors == []
        (f,) = frames
        assert f.node == "rack0/node01"
        assert f.tick == 42
        assert f.control is None
        np.testing.assert_array_equal(f.values, v)
        assert f.values.dtype == np.float64

    def test_json_round_trip(self):
        v = _burst()
        frames, errors = FrameDecoder().feed(encode_json("a/b", 7, v))
        assert errors == []
        (f,) = frames
        assert f.node == "a/b"
        assert f.tick == 7
        np.testing.assert_array_equal(np.asarray(f.values), v)

    def test_eof_control_frame(self):
        frames, errors = FrameDecoder().feed(encode_eof())
        assert errors == []
        assert frames == [Frame(node="", tick=-1, values=None, control="eof")]

    def test_mixed_encodings_share_one_stream(self):
        v = _burst()
        data = (
            encode_binary("n0", 0, v)
            + encode_json("n1", 0, v)
            + encode_binary("n0", 1, v)
            + encode_eof()
        )
        frames, errors = FrameDecoder().feed(data)
        assert errors == []
        assert [(f.node, f.tick, f.control) for f in frames] == [
            ("n0", 0, None),
            ("n1", 0, None),
            ("n0", 1, None),
            ("", -1, "eof"),
        ]

    def test_binary_rejects_non_2d(self):
        with pytest.raises(ValueError, match="bursts"):
            encode_binary("n", 0, np.zeros(5))

    @settings(max_examples=30, deadline=None)
    @given(
        node=st.text(
            alphabet=st.characters(
                codec="utf-8", exclude_characters="\x00"
            ),
            min_size=1,
            max_size=40,
        ),
        tick=st.integers(0, 2**63 - 1),
        n=st.integers(1, 8),
        m=st.integers(1, 16),
        seed=st.integers(0, 2**16),
        cut=st.integers(1, 64),
    )
    def test_round_trip_survives_any_chunking(
        self, node, tick, n, m, seed, cut
    ):
        """Property: frame bytes split at arbitrary points decode to the
        same frames as one contiguous feed."""
        rng = np.random.default_rng(seed)
        v = rng.standard_normal((n, m))
        data = encode_binary(node, tick, v) + encode_json(node, tick + 1, v)
        decoder = FrameDecoder()
        frames = []
        for lo in range(0, len(data), cut):
            got, errors = decoder.feed(data[lo : lo + cut])
            assert errors == []
            frames.extend(got)
        assert decoder.eof() == []
        assert len(frames) == 2
        assert frames[0].node == node and frames[0].tick == tick
        np.testing.assert_array_equal(frames[0].values, v)
        assert frames[1].node == node and frames[1].tick == tick + 1


class TestMalformedInput:
    def test_garbage_resyncs_to_next_frame(self):
        v = _burst()
        data = b"\x01\x02\xffnoise" + encode_binary("n0", 3, v)
        frames, errors = FrameDecoder().feed(data)
        assert len(frames) == 1
        assert frames[0].node == "n0"
        assert any(e.reason == "garbage" for e in errors)

    def test_truncated_binary_frame_at_eof(self):
        data = encode_binary("n0", 0, _burst())
        decoder = FrameDecoder()
        frames, errors = decoder.feed(data[:-10])
        assert frames == [] and errors == []
        (err,) = decoder.eof()
        assert err.reason == "truncated"
        assert decoder.pending == 0

    def test_bad_json_line(self):
        frames, errors = FrameDecoder().feed(b"{not json}\n")
        assert frames == []
        assert errors[0].reason == "bad-json"

    def test_json_missing_tick_keeps_node_attribution(self):
        """A frame that names a node but breaks otherwise must carry the
        node in the error — that's what routes it into the guard's
        quarantine path server-side."""
        line = json.dumps({"node": "rack0/node00", "values": [[1.0]]})
        frames, errors = FrameDecoder().feed(line.encode() + b"\n")
        assert frames == []
        assert errors[0].reason == "bad-json"
        assert errors[0].node == "rack0/node00"

    def test_json_missing_node(self):
        frames, errors = FrameDecoder().feed(b'{"tick": 1}\n')
        assert errors[0].reason == "bad-json"
        assert errors[0].node is None

    def test_bad_version_binary(self):
        v = _burst()
        frame = bytearray(encode_binary("n", 0, v))
        frame[len(MAGIC) + 4] = 99  # version byte
        frames, errors = FrameDecoder().feed(bytes(frame))
        assert frames == []
        assert errors[0].reason == "bad-frame"
        assert "version" in errors[0].detail

    def test_length_lie_is_bad_frame(self):
        """A body shorter than its header claims decodes to a typed
        error, never an exception."""
        v = _burst(2, 2)
        good = encode_binary("n", 0, v)
        # Rewrite n_sensors upward without extending the payload.
        import struct

        frame = bytearray(good)
        struct.pack_into("<H", frame, len(MAGIC) + 4 + 11, 64)
        frames, errors = FrameDecoder().feed(bytes(frame))
        assert frames == []
        assert errors[0].reason == "bad-frame"

    def test_oversized_length_prefix_is_garbage_not_buffering(self):
        bomb = MAGIC + (MAX_FRAME_BYTES + 1).to_bytes(4, "little")
        decoder = FrameDecoder()
        frames, errors = decoder.feed(bomb)
        assert frames == []
        assert errors[0].reason == "garbage"
        assert decoder.pending < len(bomb)

    def test_garbage_between_frames_loses_only_the_garbage(self):
        v = _burst()
        chunks = [
            encode_binary("n0", 0, v),
            b"\x00\x01\x02 junk without structure",
            encode_json("n1", 1, v),
        ]
        frames, errors = FrameDecoder().feed(b"".join(chunks))
        assert [(f.node, f.tick) for f in frames] == [("n0", 0), ("n1", 1)]
        assert all(e.reason == "garbage" for e in errors)

    @settings(max_examples=30, deadline=None)
    @given(junk=st.binary(min_size=1, max_size=200))
    def test_arbitrary_junk_never_raises_and_later_frames_decode(
        self, junk
    ):
        """Property: any byte junk before a valid frame leaves the
        decoder alive; a frame fed afterwards still decodes."""
        decoder = FrameDecoder()
        decoder.feed(junk)  # must not raise
        decoder.eof()  # drain whatever is pending
        v = _burst(2, 3)
        frames, _ = decoder.feed(encode_binary("n9", 5, v))
        assert any(
            f.node == "n9" and f.tick == 5 for f in frames
        )

"""Fused tick hot path: bit-exactness, raggedness, modes, allocations.

The :class:`~repro.engine.hotpath.TickArena` contract: in ``exact`` mode
every signature, label and confidence — and therefore every alert
event — is **bit-identical** to the staged
``FleetIngest → signature_features → forest`` pipeline, under uniform
bursts, ragged bursts, missing nodes and sub-chunk splitting alike; and
a steady-state tick retains zero new numpy memory.
"""

import gc
import tracemalloc

import numpy as np
import pytest

from repro.engine.hotpath import SIGNATURE_MODES, TickArena
from repro.service.detector import BACKENDS, FleetFaultDetector
from repro.service.replay import fleet_recipes, prepare_fleet, replay


@pytest.fixture(scope="module")
def small_setup():
    return prepare_fleet(
        fleet_recipes(3, t=2000), blocks=8, trees=5, train_frac=0.5, seed=0
    )


def _staged_signatures(setup, path, upto):
    stream = setup.trained.engine.stream(path)
    return stream.push_block(setup.eval_data[path][:, :upto])


def _arena_signatures(arena, feeds):
    """Run ``feeds`` (one dict per tick) and collect signatures per node."""
    got = {}
    for data in feeds:
        for path, labels, conf, row0 in arena.tick(data):
            bucket = got.setdefault(path, [])
            for j in range(labels.shape[0]):
                bucket.append(arena.signature(row0 + j))
    return got


class TestExactBitEquality:
    def test_uniform_bursts_match_staged_streams(self, small_setup):
        setup = small_setup
        t = min(m.shape[1] for m in setup.eval_data.values())
        arena = TickArena(
            setup.trained.engine,
            setup.trained.classifier.forest,
            mode="exact",
            max_chunk=64,
        )
        feeds = [
            {p: m[:, lo : lo + 64] for p, m in setup.eval_data.items()}
            for lo in range(0, t, 64)
        ]
        got = _arena_signatures(arena, feeds)
        for path in setup.eval_data:
            want = _staged_signatures(setup, path, t)
            assert len(got[path]) == len(want) > 0
            for a, b in zip(got[path], want):
                assert a.tobytes() == b.tobytes()
            assert arena.counts(path) == t
            assert arena.emitted(path) == len(want)

    def test_ragged_bursts_and_missing_nodes_match(self, small_setup):
        """Random burst lengths + node dropout degrade the shared FIFO
        to per-node FIFOs; output must not change by a bit."""
        setup = small_setup
        rng = np.random.default_rng(7)
        t = min(m.shape[1] for m in setup.eval_data.values())
        arena = TickArena(
            setup.trained.engine,
            setup.trained.classifier.forest,
            mode="exact",
            max_chunk=17,  # also forces sub-chunk splitting
        )
        pos = {p: 0 for p in setup.eval_data}
        feeds = []
        while min(pos.values()) < t:
            data = {}
            for p, m in setup.eval_data.items():
                if pos[p] >= t or rng.random() < 0.25:
                    continue
                c = min(int(rng.integers(1, 40)), t - pos[p])
                data[p] = m[:, pos[p] : pos[p] + c]
                pos[p] += c
            if data:
                feeds.append(data)
        got = _arena_signatures(arena, feeds)
        assert not all(g.uniform for g in arena.groups)
        for path in setup.eval_data:
            want = _staged_signatures(setup, path, pos[path])
            assert len(got[path]) == len(want) > 0
            for a, b in zip(got[path], want):
                assert a.tobytes() == b.tobytes()

    def test_replay_events_identical_to_staged(self, small_setup):
        staged = replay(small_setup, chunk=200, backend="staged")
        fused = replay(small_setup, chunk=200, backend="fused")
        assert fused.events == staged.events
        assert fused.n_windows == staged.n_windows
        assert len(staged.events) > 0

    def test_serving_chunk_events_identical(self, small_setup):
        """Small serving bursts split windows across many ticks."""
        staged = replay(small_setup, chunk=10, backend="staged")
        fused = replay(small_setup, chunk=10, backend="fused")
        assert fused.events == staged.events


class TestReducedPrecisionModes:
    @pytest.mark.parametrize("mode", ["float32", "quantized"])
    def test_mode_runs_and_mostly_agrees(self, small_setup, mode):
        exact = replay(small_setup, chunk=200, backend="fused")
        reduced = replay(small_setup, chunk=200, backend="fused", mode=mode)
        assert reduced.n_windows == exact.n_windows
        det_e = FleetFaultDetector(small_setup.trained, backend="fused")
        det_r = FleetFaultDetector(
            small_setup.trained, backend="fused", mode=mode
        )
        for det in (det_e, det_r):
            for lo in range(0, 600, 60):
                det.process_block(
                    {
                        p: m[:, lo : lo + 60]
                        for p, m in small_setup.eval_data.items()
                    }
                )
        agree = total = 0
        for p in det_e.paths:
            le, lr = det_e.history[p][0], det_r.history[p][0]
            assert len(le) == len(lr) > 0
            agree += sum(a == b for a, b in zip(le, lr))
            total += len(le)
        assert agree / total >= 0.95

    def test_quantized_signatures_are_bin_centers(self, small_setup):
        arena = TickArena(
            small_setup.trained.engine,
            small_setup.trained.classifier.forest,
            mode="quantized",
            max_chunk=100,
        )
        out = arena.tick(
            {p: m[:, :100] for p, m in small_setup.eval_data.items()}
        )
        rows = sum(labels.shape[0] for _, labels, _, _ in out)
        assert rows > 0
        l = arena.blocks
        for _, labels, _, row0 in out:
            for j in range(labels.shape[0]):
                sig = arena.signature(row0 + j)
                # real bins: q/255 for integer q in 0..255
                q = sig.real * 255.0
                assert np.allclose(q, np.rint(q), atol=1e-6)
                assert np.all((sig.real >= 0.0) & (sig.real <= 1.0))

    def test_staged_backend_rejects_reduced_modes(self, small_setup):
        with pytest.raises(ValueError, match="require backend='fused'"):
            FleetFaultDetector(small_setup.trained, mode="float32")

    def test_unknown_backend_and_mode_raise(self, small_setup):
        with pytest.raises(ValueError, match="unknown backend"):
            FleetFaultDetector(small_setup.trained, backend="turbo")
        with pytest.raises(ValueError, match="unknown signature mode"):
            FleetFaultDetector(
                small_setup.trained, backend="fused", mode="float16"
            )
        assert BACKENDS == ("staged", "fused")
        assert SIGNATURE_MODES == ("exact", "float32", "quantized")


class TestMemory:
    def test_memory_report_shape_and_mode_ordering(self, small_setup):
        reports = {}
        for mode in SIGNATURE_MODES:
            det = FleetFaultDetector(
                small_setup.trained, backend="fused", mode=mode
            )
            rep = det.memory_report()
            assert rep["mode"] == mode
            assert rep["nodes"] == len(det.paths)
            assert (
                rep["per_node_state_bytes"] > 0
                and rep["per_node_total_bytes"] >= rep["per_node_state_bytes"]
            )
            assert rep["total_bytes"] == (
                rep["state_bytes"]
                + rep["scratch_bytes"]
                + rep["classifier_bytes"]
            )
            reports[mode] = rep
        # float32 halves the floating-point state.
        assert (
            reports["float32"]["state_bytes"]
            < reports["exact"]["state_bytes"]
        )
        staged = FleetFaultDetector(small_setup.trained)
        with pytest.raises(ValueError, match="backend='fused'"):
            staged.memory_report()

    def test_steady_state_tick_retains_no_memory(self, small_setup):
        """The tracemalloc regression gate on the zero-allocation claim:
        after warm-up, a run of ticks must not grow traced memory (a
        single leaked column buffer would be tens of kilobytes here)."""
        detector = FleetFaultDetector(
            small_setup.trained,
            backend="fused",
            record_history=False,
            max_chunk=50,
        )

        def run(lo_start, n_ticks):
            for i in range(n_ticks):
                lo = lo_start + i * 50
                detector.process_block(
                    {
                        p: m[:, lo : lo + 50]
                        for p, m in small_setup.eval_data.items()
                    }
                )

        run(0, 4)  # warm-up: buffers sized, pending FIFOs filled
        gc.collect()
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        run(200, 10)
        gc.collect()
        after, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert after - before < 8192, (
            f"steady-state ticks retained {after - before} bytes"
        )


class TestArenaValidation:
    def test_unknown_node_and_bad_shape_raise(self, small_setup):
        arena = TickArena(
            small_setup.trained.engine,
            small_setup.trained.classifier.forest,
        )
        with pytest.raises(KeyError, match="unknown node"):
            arena.tick({"rack9/node99": np.zeros((4, 10))})
        path = next(iter(small_setup.eval_data))
        with pytest.raises(ValueError, match="does not match"):
            arena.tick({path: np.zeros((3, 10))})

    def test_bad_mode_and_chunk_raise(self, small_setup):
        engine = small_setup.trained.engine
        forest = small_setup.trained.classifier.forest
        with pytest.raises(ValueError, match="unknown signature mode"):
            TickArena(engine, forest, mode="double")
        with pytest.raises(ValueError, match="max_chunk"):
            TickArena(engine, forest, max_chunk=0)
        with pytest.raises(KeyError, match="no model"):
            TickArena(engine, forest, paths=["rack9/node99"])

    def test_empty_tick_is_a_noop(self, small_setup):
        arena = TickArena(
            small_setup.trained.engine,
            small_setup.trained.classifier.forest,
        )
        assert arena.tick({}) == []
        path = next(iter(small_setup.eval_data))
        out = arena.tick({path: np.zeros((128, 0))})
        assert [(p, list(l), list(c)) for p, l, c, _ in out] == [
            (path, [], [])
        ]

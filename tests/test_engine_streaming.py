"""Tests for the incremental streaming core and the engine-backed stream.

The strongest guarantees here are *exact* (``np.array_equal``, not
``allclose``): the incremental per-push path, the batched ``push_block``
path and the offline ``transform_series`` path must emit bit-identical
signatures because they perform the same float operations in the same
association order.
"""

import numpy as np
import pytest

from repro.core.pipeline import CorrelationWiseSmoothing
from repro.core.sorting import sort_rows
from repro.engine.streaming import IncrementalSignatureCore
from repro.monitoring.streaming import OnlineSignatureStream


def _fitted(rng, n=6, t=300, blocks=3):
    hist = rng.random((n, t))
    return hist, CorrelationWiseSmoothing(blocks=blocks).fit(hist)


class TestPushExactEquivalence:
    @pytest.mark.parametrize(
        "n,t,wl,ws,blocks",
        [
            (6, 300, 20, 10, 3),
            (4, 97, 13, 5, 4),   # wl > ws, ragged tail
            (5, 80, 7, 11, 1),   # ws > wl (gaps between windows)
            (3, 40, 40, 3, 2),   # single window spanning everything
        ],
    )
    def test_push_matches_offline_bitwise(self, rng, n, t, wl, ws, blocks):
        hist = rng.random((n, t))
        cs = CorrelationWiseSmoothing(blocks=blocks).fit(hist)
        offline = cs.transform_series(hist, wl, ws)
        stream = OnlineSignatureStream(cs, wl=wl, ws=ws)
        online = [s for x in hist.T if (s := stream.push(x)) is not None]
        assert len(online) == offline.shape[0]
        for k, sig in enumerate(online):
            assert np.array_equal(sig, offline[k]), f"signature {k}"

    def test_first_window_derivative_edge(self, rng):
        """The first window has no preceding sample: derivative ref is its
        own first column (zero first difference), matching the offline
        exact-first-derivative convention at the s=0 boundary."""
        hist, cs = _fitted(rng)
        stream = OnlineSignatureStream(cs, wl=30, ws=30)
        first = [s for x in hist.T[:30] if (s := stream.push(x)) is not None]
        offline = cs.transform_series(hist[:, :30], 30, 30)
        assert len(first) == 1
        assert np.array_equal(first[0], offline[0])
        # All later windows use the true preceding sample: differs from
        # the inexact convention, proving the exact path is exercised.
        inexact = cs.transform_series(hist, 30, 30, exact_first_derivative=False)
        exact = cs.transform_series(hist, 30, 30)
        assert not np.allclose(exact[1:], inexact[1:])


class TestPushBlock:
    @pytest.mark.parametrize("chunks", [[1], [3, 7, 1], [64], [13, 200]])
    def test_block_matches_push_bitwise(self, rng, chunks):
        hist, cs = _fitted(rng, t=311)
        wl, ws = 16, 6
        offline = cs.transform_series(hist, wl, ws)
        stream = OnlineSignatureStream(cs, wl=wl, ws=ws)
        got = []
        i, j = 0, 0
        while i < hist.shape[1]:
            m = chunks[j % len(chunks)]
            j += 1
            got.extend(stream.push_block(hist[:, i : i + m]))
            i += m
        assert len(got) == offline.shape[0]
        for k, sig in enumerate(got):
            assert np.array_equal(sig, offline[k]), f"signature {k}"

    def test_interleaved_push_and_block(self, rng):
        hist, cs = _fitted(rng, t=200)
        offline = cs.transform_series(hist, 16, 6)
        stream = OnlineSignatureStream(cs, 16, 6)
        got = []
        i = 0
        use_block = False
        while i < 200:
            if use_block:
                got.extend(stream.push_block(hist[:, i : i + 9]))
                i += 9
            else:
                sig = stream.push(hist[:, i])
                i += 1
                if sig is not None:
                    got.append(sig)
            use_block = not use_block
        assert len(got) == offline.shape[0]
        assert all(np.array_equal(a, b) for a, b in zip(got, offline))

    def test_empty_block(self, rng):
        hist, cs = _fitted(rng)
        stream = OnlineSignatureStream(cs, 10, 5)
        out = stream.push_block(hist[:, :0])
        assert out.shape == (0, 3)
        assert stream.count == 0

    def test_run_array_fast_path(self, rng):
        hist, cs = _fitted(rng)
        offline = cs.transform_series(hist, 20, 10)
        fast = OnlineSignatureStream(cs, 20, 10).run(hist.T)
        slow = OnlineSignatureStream(cs, 20, 10).run(iter(hist.T))
        assert len(fast) == len(slow) == offline.shape[0]
        for a, b, c in zip(fast, slow, offline):
            assert np.array_equal(a, b)
            assert np.array_equal(a, c)

    def test_rejects_bad_shapes(self, rng):
        hist, cs = _fitted(rng)
        stream = OnlineSignatureStream(cs, 10, 5)
        with pytest.raises(ValueError):
            stream.push(np.zeros(3))
        with pytest.raises(ValueError):
            stream.push_block(np.zeros((3, 10)))


class TestWindowView:
    def test_matches_sorted_offline_window(self, rng):
        """Satellite check: the ring-buffer window view (two contiguous
        slices, no modulo gather) stays in parity with transform_series's
        sorted data at every emit position."""
        hist, cs = _fitted(rng, n=5, t=120)
        wl, ws = 16, 7
        sorted_all = sort_rows(hist, cs.model)
        stream = OnlineSignatureStream(cs, wl=wl, ws=ws)
        checked = 0
        for i, x in enumerate(hist.T):
            if stream.push(x) is None:
                continue
            s = i + 1 - wl
            window, prev = stream.window_view()
            assert np.array_equal(window, sorted_all[:, s : s + wl])
            if s == 0:
                assert prev is None
            else:
                assert np.array_equal(prev, sorted_all[:, s - 1])
            checked += 1
        assert checked > wl // ws  # wrap-around cases were exercised

    def test_raises_before_first_window(self, rng):
        hist, cs = _fitted(rng)
        stream = OnlineSignatureStream(cs, 10, 5)
        stream.push(hist[:, 0])
        with pytest.raises(ValueError):
            stream.window_view()


class TestCoreDirect:
    def test_core_validates(self, rng):
        hist, cs = _fitted(rng)
        with pytest.raises(ValueError):
            IncrementalSignatureCore(cs.model, 3, 0, 1)
        with pytest.raises(ValueError):
            IncrementalSignatureCore(cs.model, 99, 10, 5)  # l > n

    def test_emitted_and_count_track(self, rng):
        hist, cs = _fitted(rng)
        core = IncrementalSignatureCore(cs.model, 3, 10, 5)
        core.push_block(hist[:, :40])
        assert core.count == 40
        assert core.emitted == 7  # windows at 0,5,...,30

    def test_constant_sensor_neutral(self, rng):
        hist = rng.random((4, 100))
        hist[2] = 1.5  # constant row -> degenerate bounds
        cs = CorrelationWiseSmoothing(blocks=2).fit(hist)
        offline = cs.transform_series(hist, 10, 5)
        stream = OnlineSignatureStream(cs, 10, 5)
        online = [s for x in hist.T if (s := stream.push(x)) is not None]
        assert all(np.array_equal(a, b) for a, b in zip(online, offline))


class TestReanchoring:
    def test_window_sums_correct_across_reanchor(self, rng):
        """Forcing a tiny re-anchor interval must leave every emitted
        signature correct (allclose to offline; re-anchoring trades bit
        parity for bounded long-run precision)."""
        hist, cs = _fitted(rng, t=400)
        offline = cs.transform_series(hist, 16, 6)
        stream = OnlineSignatureStream(cs, 16, 6)
        stream._core._REANCHOR_INTERVAL = 50  # several re-anchors in-run
        got = []
        i = 0
        while i < 400:  # alternate push and push_block across anchors
            got.extend(stream._core.push_block(hist[:, i : i + 7]))
            i += 7
            for _ in range(5):
                if i >= 400:
                    break
                sig = stream.push(hist[:, i])
                i += 1
                if sig is not None:
                    got.append(sig)
        assert len(got) == offline.shape[0]
        assert all(np.allclose(a, b) for a, b in zip(got, offline))
        assert stream._core._last_anchor > 0  # re-anchor actually fired

    def test_default_interval_preserves_bit_parity(self, rng):
        hist, cs = _fitted(rng, t=300)
        offline = cs.transform_series(hist, 16, 6)
        stream = OnlineSignatureStream(cs, 16, 6)
        got = [s for x in hist.T if (s := stream.push(x)) is not None]
        assert all(np.array_equal(a, b) for a, b in zip(got, offline))

"""Tests for the experiment harness and per-figure modules (small scale)."""

import numpy as np
import pytest

from repro.datasets.generators import generate_application
from repro.experiments import crossarch, fig3, fig4, fig5, fig6, fig7, table1
from repro.experiments.harness import (
    DEFAULT_METHODS,
    make_method_factory,
    run_method_on_segment,
)
from repro.experiments.reporting import format_table, format_value, save_csv


class TestReporting:
    def test_format_value(self):
        assert format_value(0.123456) == "0.1235"
        assert format_value(1234567.0) == "1.235e+06"
        assert format_value(3) == "3"
        assert format_value("x") == "x"
        assert format_value(True) == "True"
        assert format_value(0.0) == "0"

    def test_format_table_alignment(self):
        out = format_table(("A", "Method"), [(1, "tuncer"), (22, "cs")])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines[1:3])

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(("A",), [(1, 2)])

    def test_save_csv(self, tmp_path):
        path = save_csv(tmp_path / "r.csv", ("a", "b"), [(1, 2.5)])
        assert path.read_text() == "a,b\n1,2.5\n"


class TestHarness:
    def test_default_methods(self):
        assert DEFAULT_METHODS == (
            "tuncer", "bodik", "lan", "cs-5", "cs-10", "cs-20", "cs-40", "cs-all",
        )

    def test_make_method_factory_string(self):
        m = make_method_factory("cs-10")()
        assert m.name == "CS-10"

    def test_make_method_factory_real_only(self):
        m = make_method_factory("cs-10", real_only=True)()
        assert m.name == "CS-10-R"
        assert m.feature_length(52, 30) == 10

    def test_real_only_rejected_for_baselines(self):
        with pytest.raises(ValueError):
            make_method_factory("tuncer", real_only=True)

    def test_run_classification(self, application_segment):
        res = run_method_on_segment(
            application_segment, "cs-5", trees=8, seed=0
        )
        assert res.segment == "application"
        assert res.method == "cs-5"
        assert 0.0 <= res.ml_score <= 1.0
        assert res.ml_score > 0.8  # easy synthetic task
        assert res.signature_size == 10
        assert res.generation_time_s > 0
        assert res.cv_time_s > 0

    def test_run_regression(self, infrastructure_segment):
        res = run_method_on_segment(
            infrastructure_segment, "cs-5", trees=8, seed=0
        )
        assert res.ml_score > 0.5

    def test_repeats_average(self, application_segment):
        res = run_method_on_segment(
            application_segment, "cs-5", trees=4, repeats=2, seed=0
        )
        assert res.ml_score_std >= 0.0

    def test_row_shape(self, application_segment):
        res = run_method_on_segment(application_segment, "lan", trees=4)
        assert len(res.row()) == 7


class TestFig3:
    def test_small_grid(self, application_segment):
        results = fig3.run(
            segments=("application",),
            methods=("lan", "cs-5"),
            trees=4,
            scale=0.5,
            segment_kwargs={"t": 700, "nodes": 2},
        )
        assert len(results) == 2
        by_method = {r.method: r for r in results}
        # Figure 3b: CS-5 signatures much smaller than Lan's.
        assert by_method["cs-5"].signature_size < by_method["lan"].signature_size


class TestFig4:
    def test_points_and_monotonicity(self, application_segment):
        pts = fig4.run(
            segments=("application",),
            lengths=(5, 20),
            trees=4,
            scale=1.0,
            with_real_only=False,
        )
        assert len(pts) == 2
        js5 = next(p for p in pts if p.length == "5").js_divergence
        js20 = next(p for p in pts if p.length == "20").js_divergence
        assert js20 < js5  # Figure 4a: divergence falls with l

    def test_real_only_variants_present(self):
        pts = fig4.run(
            segments=("infrastructure",),
            lengths=(5,),
            trees=4,
            with_real_only=True,
        )
        assert {p.real_only for p in pts} == {False, True}
        full = next(p for p in pts if not p.real_only)
        ronly = next(p for p in pts if p.real_only)
        assert ronly.js_divergence > full.js_divergence


class TestFig5:
    def test_timing_points(self):
        pts = fig5.run(
            methods=("lan", "cs-5"),
            wl_grid=(10, 50),
            n_grid=(10, 50),
            repeats=3,
        )
        # 2 methods x 2 wl + 2 methods x 2 n = 8 points.
        assert len(pts) == 8
        assert all(p.median_time_s >= 0.0 for p in pts)

    def test_skips_infeasible_block_counts(self):
        pts = fig5.run(methods=("cs-40",), wl_grid=(10,), n_grid=(10, 100), repeats=1)
        # On the n axis, n=10 < 40 blocks is skipped; the wl axis uses
        # fixed_n=100, which is feasible.
        assert len(pts) == 2
        assert all(p.n == 100 for p in pts)

    def test_time_single_signature_positive(self):
        t = fig5.time_single_signature("tuncer", 20, 50, repeats=3)
        assert t > 0


class TestFig6:
    def test_run_intervals(self):
        labels = np.array([0, 0, 1, 1, 1, 0, 1, 1])
        assert fig6.run_intervals(labels, 1) == [(2, 5), (6, 8)]
        assert fig6.run_intervals(labels, 0) == [(0, 2), (5, 6)]
        assert fig6.run_intervals(labels, 7) == []

    def test_application_heatmaps(self, tmp_path):
        segment = generate_application(seed=0, t=900, nodes=2)
        res = fig6.application_heatmaps(segment, "Kripke", blocks=16)
        assert res.signatures.shape[1] == 16
        assert res.real_image.dtype == np.uint8
        assert res.real_image.shape[0] == 16
        assert res.boundaries.size >= 1

    def test_unknown_app_raises(self):
        segment = generate_application(seed=0, t=600, nodes=2)
        with pytest.raises(KeyError):
            fig6.application_heatmaps(segment, "NotAnApp", blocks=8)


class TestFig7:
    def test_run_produces_three_architectures(self, tmp_path):
        results = fig7.run(t=2600, blocks=10, out_dir=tmp_path)
        assert len(results) == 3
        assert {r.arch for r in results} == {
            "skylake", "knights-landing", "amd-rome",
        }
        # All heatmaps share the block count despite differing sensors.
        assert all(r.real_image.shape[0] == 10 for r in results)
        assert (tmp_path / "fig7_skylake_real.pgm").exists()


class TestCrossArch:
    def test_baseline_lengths_incompatible(self, crossarch_segment):
        lengths = crossarch.baseline_signature_lengths(crossarch_segment)
        assert len(set(lengths.values())) == 3  # all different

    def test_merged_classification(self):
        res = crossarch.run(blocks=10, trees=8, seed=0, t=900, mlp_max_iter=40)
        assert res.rf_f1 > 0.9
        assert res.mlp_f1 > 0.7
        assert res.signature_size == 20
        assert len(res.per_arch_counts) == 3


class TestTable1:
    def test_summary_row(self, application_segment):
        row = table1.segment_summary(application_segment)
        assert row[0] == "application"
        assert row[2] == 3  # components in the fixture
        assert row[-2:] == (30, 5)

    def test_cross_arch_sensor_string(self, crossarch_segment):
        row = table1.segment_summary(crossarch_segment)
        assert row[3] == "52/46/39"

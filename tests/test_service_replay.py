"""Replay determinism + service CLI tests.

The acceptance property of the online service: replaying a cached
segment set produces **byte-identical** alert JSONL — within a process,
and across separate processes with different hash seeds (the
PYTHONHASHSEED lesson of the artifact cache).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import cli
from repro.service.alerts import JSONLAlertSink, MarkdownAlertSink
from repro.service.replay import fleet_recipes, prepare_fleet, replay

SRC = Path(__file__).resolve().parent.parent / "src"


@pytest.fixture(scope="module")
def small_setup():
    return prepare_fleet(
        fleet_recipes(2, t=2000), blocks=8, trees=5, train_frac=0.5, seed=0
    )


class TestInProcessDeterminism:
    def test_two_replays_identical_events(self, small_setup):
        first = replay(small_setup, chunk=200)
        second = replay(small_setup, chunk=200)
        assert first.events == second.events
        assert first.n_windows == second.n_windows

    def test_jsonl_sink_bytes_identical(self, small_setup, tmp_path):
        paths = []
        for i in range(2):
            out = tmp_path / f"alerts{i}.jsonl"
            replay(small_setup, chunk=200, sinks=[JSONLAlertSink(out)])
            paths.append(out)
        assert paths[0].read_bytes() == paths[1].read_bytes()
        assert paths[0].stat().st_size > 0

    def test_jsonl_sink_truncates_stale_output(self, tmp_path):
        """An alert-free run must leave an empty file, not a stale one —
        otherwise two 'identical' replays can differ byte for byte."""
        out = tmp_path / "alerts.jsonl"
        out.write_text('{"event":"open","stale":true}\n')
        sink = JSONLAlertSink(out)
        sink.close()
        assert out.read_bytes() == b""

    def test_serve_record_history_off_keeps_detector_empty(
        self, small_setup
    ):
        from repro.service.alerts import AlertSink
        from repro.service.detector import FleetFaultDetector

        detector = FleetFaultDetector(
            small_setup.trained, record_history=False
        )
        detector.process_block(small_setup.eval_data)
        for path in detector.paths:
            assert detector.history[path] == ([], [])
            assert detector.policy(path).history == []

        class _Collect(AlertSink):
            def __init__(self):
                self.events = []

            def emit(self, event):
                self.events.append(event)

        collect = _Collect()
        outcome = replay(
            small_setup, chunk=200, record_history=False, sinks=[collect]
        )
        scored = replay(small_setup, chunk=200)
        assert collect.events == scored.events  # sinks see the full stream
        assert outcome.events == []  # ...but nothing is retained
        assert outcome.n_events == len(scored.events)
        assert outcome.n_alerts == scored.n_alerts
        assert outcome.window_accuracy == 0.0  # scores need history

    def test_markdown_sink_summarizes_events(self, small_setup, tmp_path):
        md = tmp_path / "alerts.md"
        outcome = replay(
            small_setup,
            chunk=200,
            sinks=[MarkdownAlertSink(md, title="Alerts")],
        )
        text = md.read_text()
        assert "## Alerts" in text
        # header + separator + one row per event
        assert len(text.splitlines()) == 2 + 2 + len(outcome.events)

    def test_fresh_setup_reproduces_events(self):
        outcomes = [
            replay(
                prepare_fleet(
                    fleet_recipes(2, t=2000),
                    blocks=8,
                    trees=5,
                    train_frac=0.5,
                    seed=0,
                ),
                chunk=200,
            )
            for _ in range(2)
        ]
        assert outcomes[0].events == outcomes[1].events


class TestCrossProcessDeterminism:
    def _run_detect(self, alerts: Path, cache: Path, hash_seed: str) -> None:
        subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "detect",
                "--smoke",
                "--alerts",
                str(alerts),
                "--cache-dir",
                str(cache),
            ],
            check=True,
            capture_output=True,
            env={
                **os.environ,
                "PYTHONPATH": str(SRC),
                "PYTHONHASHSEED": hash_seed,
            },
        )

    def test_detect_replay_byte_identical_across_processes(self, tmp_path):
        """The ISSUE acceptance criterion, verbatim: two separate
        ``repro detect`` processes replaying the same cached segment set
        write byte-identical alert JSONL."""
        cache = tmp_path / "cache"
        first = tmp_path / "alerts1.jsonl"
        second = tmp_path / "alerts2.jsonl"
        self._run_detect(first, cache, "0")
        self._run_detect(second, cache, "1")
        assert first.read_bytes() == second.read_bytes()
        events = [
            json.loads(line) for line in first.read_text().splitlines()
        ]
        assert any(e["event"] == "open" for e in events)


class TestDetectCLI:
    def test_detect_writes_alerts_csv_markdown(self, tmp_path, capsys):
        alerts = tmp_path / "alerts.jsonl"
        csv = tmp_path / "summary.csv"
        md = tmp_path / "alerts.md"
        code = cli.main([
            "detect",
            "--smoke",
            "--alerts", str(alerts),
            "--csv", str(csv),
            "--markdown", str(md),
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "Fleet detection replay" in captured.err
        assert alerts.exists() and md.exists()
        lines = csv.read_text().splitlines()
        assert lines[0].startswith("Fleet,")
        assert len(lines) == 2

    def test_detect_streams_events_to_stdout_by_default(self, capsys):
        assert cli.main(["detect", "--smoke"]) == 0
        out = capsys.readouterr().out
        events = [json.loads(line) for line in out.splitlines()]
        assert events, "expected alert events on stdout"
        assert {e["event"] for e in events} <= {"open", "close"}


class TestServeCLI:
    def test_serve_streams_events_and_summarizes(self, capsys):
        assert cli.main(["serve", "--smoke"]) == 0
        captured = capsys.readouterr()
        events = [json.loads(line) for line in captured.out.splitlines()]
        assert events
        for event in events:
            assert event["event"] in ("open", "close")
            assert event["node"].startswith("rack")
        assert "[serve] drained:" in captured.err

    def test_serve_matches_detect_alert_stream(self, capsys):
        """Live serving and batch replay are the same computation."""
        assert cli.main(["serve", "--smoke", "--chunk", "200"]) == 0
        serve_out = capsys.readouterr().out
        assert cli.main(["detect", "--smoke", "--chunk", "200"]) == 0
        detect_out = capsys.readouterr().out
        assert serve_out == detect_out


class TestLazyServiceImports:
    def test_listing_scenarios_does_not_import_service_stack(self):
        """`repro list` must stay light: registering the builtin catalog
        (including the fleet-detect specs) may not pull repro.service."""
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.scenarios.registry import list_scenarios\n"
                "import sys\n"
                "assert list_scenarios(), 'no scenarios registered'\n"
                "loaded = [m for m in sys.modules"
                " if m.startswith('repro.service')]\n"
                "assert not loaded, f'service imported eagerly: {loaded}'\n"
                "print('lazy')\n",
            ],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": str(SRC)},
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == "lazy"


class TestConsoleEntryPoint:
    def test_keyboard_interrupt_exits_130(self, monkeypatch):
        def boom():
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "main", boom)
        with pytest.raises(SystemExit) as excinfo:
            cli.console_main()
        assert excinfo.value.code == 130


class TestSinkFailureDegradation:
    """A failing alert sink must never crash the tick loop: the JSONL
    sink retries once through a fresh handle, then degrades to stderr
    behind an explicit data-loss warning."""

    def _failing_open(self, monkeypatch, fail_from: int):
        """Make Path.open start failing from the Nth call onward."""
        real_open = Path.open
        calls = {"n": 0}

        def flaky_open(self, *args, **kwargs):
            calls["n"] += 1
            if calls["n"] >= fail_from:
                raise OSError(28, "No space left on device")
            return real_open(self, *args, **kwargs)

        monkeypatch.setattr(Path, "open", flaky_open)
        return calls

    def test_write_failure_retries_then_degrades(
        self, tmp_path, monkeypatch, capsys
    ):
        sink = JSONLAlertSink(tmp_path / "alerts.jsonl")

        def exploding_write(line):
            raise OSError(5, "Input/output error")

        monkeypatch.setattr(sink._fh, "write", exploding_write)
        # retry path also fails -> degrade
        self._failing_open(monkeypatch, fail_from=1)
        sink.emit({"event": "open", "node": "rack0/node00"})
        err = capsys.readouterr().err
        assert "failed twice" in err
        assert "NOT written to disk" in err
        assert '"node":"rack0/node00"' in err
        # further events stream to stderr without raising
        sink.emit({"event": "close", "node": "rack0/node00"})
        assert '"event":"close"' in capsys.readouterr().err
        sink.close()

    def test_write_failure_recovers_via_retry(
        self, tmp_path, monkeypatch, capsys
    ):
        path = tmp_path / "alerts.jsonl"
        sink = JSONLAlertSink(path)
        first_fh = sink._fh

        def exploding_write(line):
            raise OSError(5, "Input/output error")

        monkeypatch.setattr(first_fh, "write", exploding_write)
        sink.emit({"event": "open", "node": "rack0/node00"})  # retry works
        sink.emit({"event": "close", "node": "rack0/node00"})
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["event"] == "open"
        assert capsys.readouterr().err == ""

    def test_replay_survives_dead_sink(self, small_setup, monkeypatch, capsys, tmp_path):
        """End to end: every sink write fails, the replay still finishes
        and the events land on stderr."""
        sink = JSONLAlertSink(tmp_path / "alerts.jsonl")

        def exploding_write(line):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(sink._fh, "write", exploding_write)
        self._failing_open(monkeypatch, fail_from=1)
        outcome = replay(small_setup, chunk=200, sinks=[sink])
        assert outcome.n_events == len(outcome.events) > 0
        err = capsys.readouterr().err
        assert "degraded" in err

    def test_markdown_close_failure_renders_to_stderr(
        self, tmp_path, monkeypatch, capsys
    ):
        sink = MarkdownAlertSink(tmp_path / "summary.md")
        sink.emit({"event": "open", "node": "rack0/node00", "window": 3,
                   "label": "leak", "confidence": 0.9})

        import repro.experiments.reporting as reporting

        def exploding_save(*a, **k):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(reporting, "save_markdown", exploding_save)
        sink.close()  # must not raise
        err = capsys.readouterr().err
        assert "failed" in err and "rack0/node00" in err

    def test_emit_after_close_still_raises(self, tmp_path):
        sink = JSONLAlertSink(tmp_path / "alerts.jsonl")
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            sink.emit({"event": "open"})

"""Golden alert-stream fixtures + cross-process backend determinism.

``tests/golden/detect_smoke_alerts.jsonl`` freezes the byte-exact alert
stream of ``repro detect --smoke``.  Every (PYTHONHASHSEED, backend)
combination must reproduce it exactly in a fresh interpreter: the fused
arena's exact mode is not allowed to drift from the staged pipeline by
a single byte, across processes, ever.  A diff here means either a real
regression or an intentional output change — in the latter case the
fixture is regenerated with::

    PYTHONPATH=src python -m repro detect --smoke \
        --alerts tests/golden/detect_smoke_alerts.jsonl
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

HERE = Path(__file__).resolve().parent
SRC = HERE.parent / "src"
GOLDEN = HERE / "golden" / "detect_smoke_alerts.jsonl"


def _run_detect(alerts: Path, cache: Path, hash_seed: str, backend: str):
    subprocess.run(
        [
            sys.executable, "-m", "repro", "detect", "--smoke",
            "--backend", backend,
            "--alerts", str(alerts),
            "--cache-dir", str(cache),
        ],
        check=True,
        capture_output=True,
        env={
            **os.environ,
            "PYTHONPATH": str(SRC),
            "PYTHONHASHSEED": hash_seed,
        },
    )


class TestGoldenAlertStream:
    def test_fixture_is_wellformed(self):
        lines = GOLDEN.read_text().splitlines()
        events = [json.loads(line) for line in lines]
        assert any(e["event"] == "open" for e in events)
        assert any(e["event"] == "close" for e in events)
        for e in events:
            assert e["node"].startswith("rack")

    @pytest.mark.parametrize("backend", ["staged", "fused"])
    @pytest.mark.parametrize("hash_seed", ["0", "31337"])
    def test_detect_matches_golden_bytes(
        self, tmp_path, backend, hash_seed
    ):
        """The ISSUE acceptance criterion: `repro detect` output is
        byte-identical from both backends, across hash seeds, in fresh
        processes — and equal to the committed golden stream."""
        alerts = tmp_path / "alerts.jsonl"
        _run_detect(alerts, tmp_path / "cache", hash_seed, backend)
        assert alerts.read_bytes() == GOLDEN.read_bytes()

"""Tests for the evaluation metrics."""

import numpy as np
import pytest

from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    f1_score,
    ml_score_classification,
    ml_score_regression,
    nrmse,
    precision_recall_f1,
    r2_score,
    rmse,
)


class TestConfusionMatrix:
    def test_basic(self):
        cm = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        assert cm.tolist() == [[1, 1], [0, 2]]

    def test_explicit_labels_include_absent_class(self):
        cm = confusion_matrix([0, 0], [0, 0], labels=np.array([0, 1]))
        assert cm.tolist() == [[2, 0], [0, 0]]

    def test_rejects_unknown_labels(self):
        with pytest.raises(ValueError):
            confusion_matrix([0, 2], [0, 0], labels=np.array([0, 1]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion_matrix([0, 1], [0])


class TestAccuracy:
    def test_perfect_and_zero(self):
        assert accuracy_score([1, 2], [1, 2]) == 1.0
        assert accuracy_score([1, 2], [2, 1]) == 0.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])


class TestF1:
    def test_perfect(self):
        assert f1_score([0, 1, 2], [0, 1, 2]) == pytest.approx(1.0)

    def test_binary_hand_computed(self):
        # tp=2, fp=1, fn=1 for class 1; tp=1, fp=1, fn=1 for class 0.
        y_true = [1, 1, 1, 0, 0]
        y_pred = [1, 1, 0, 1, 0]
        prec1, rec1 = 2 / 3, 2 / 3
        f1_1 = 2 * prec1 * rec1 / (prec1 + rec1)
        prec0, rec0 = 1 / 2, 1 / 2
        f1_0 = 2 * prec0 * rec0 / (prec0 + rec0)
        assert f1_score(y_true, y_pred) == pytest.approx((f1_0 + f1_1) / 2)

    def test_f1_is_harmonic_mean(self):
        # The paper: "harmonic mean between the precision and recall".
        y_true = [0, 0, 0, 1, 1, 1, 1, 1]
        y_pred = [0, 1, 1, 1, 1, 1, 0, 0]
        p, r, f = precision_recall_f1(y_true, y_pred, average="macro")
        # Verify per-class harmonic means aggregate correctly.
        cm = confusion_matrix(y_true, y_pred)
        for c in (0, 1):
            tp = cm[c, c]
            prec = tp / cm[:, c].sum()
            rec = tp / cm[c, :].sum()
            expected = 2 * prec * rec / (prec + rec)
            assert expected <= 1.0
        assert 0.0 <= f <= 1.0

    def test_zero_division_is_zero(self):
        # Class 1 never predicted: precision undefined -> 0.
        p, r, f = precision_recall_f1([0, 1], [0, 0], average="macro")
        assert f == pytest.approx(1 / 3)  # class0 f1=2/3, class1 f1=0

    def test_micro_equals_accuracy_multiclass(self):
        y_true = [0, 1, 2, 2, 1]
        y_pred = [0, 2, 2, 2, 1]
        p, r, f = precision_recall_f1(y_true, y_pred, average="micro")
        assert f == pytest.approx(accuracy_score(y_true, y_pred))

    def test_weighted_average(self):
        y_true = [0, 0, 0, 1]
        y_pred = [0, 0, 0, 0]
        _, _, fw = precision_recall_f1(y_true, y_pred, average="weighted")
        _, _, fm = precision_recall_f1(y_true, y_pred, average="macro")
        assert fw > fm  # majority class dominates the weighted score

    def test_unknown_average(self):
        with pytest.raises(ValueError):
            precision_recall_f1([0], [0], average="bogus")


class TestRegressionMetrics:
    def test_rmse_known(self):
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    def test_nrmse_normalizes_by_range(self):
        y_true = np.array([0.0, 10.0])
        y_pred = np.array([1.0, 9.0])
        assert nrmse(y_true, y_pred) == pytest.approx(0.1)

    def test_nrmse_constant_target_falls_back(self):
        assert nrmse([5.0, 5.0], [5.0, 5.0]) == 0.0

    def test_nrmse_scale_invariant(self, rng):
        y = rng.random(50)
        p = y + 0.01 * rng.standard_normal(50)
        assert nrmse(y, p) == pytest.approx(nrmse(y * 100, p * 100), rel=1e-9)

    def test_r2(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == 1.0
        assert r2_score(y, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_ml_scores(self):
        assert ml_score_classification([0, 1], [0, 1]) == 1.0
        assert ml_score_regression([0.0, 1.0], [0.0, 1.0]) == pytest.approx(1.0)
        # ML score = 1 - NRMSE (higher is better).
        assert ml_score_regression([0.0, 10.0], [1.0, 9.0]) == pytest.approx(0.9)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            rmse([], [])

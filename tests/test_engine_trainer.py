"""Tests for the incremental (streaming) CS trainer."""

import numpy as np
import pytest

from repro.core.training import shifted_correlation_matrix, train_cs_model
from repro.engine.trainer import IncrementalCSTrainer


def _chunked(S, sizes):
    out, i = [], 0
    while i < S.shape[1]:
        m = sizes[len(out) % len(sizes)]
        out.append(S[:, i : i + m])
        i += m
    return out


class TestIncrementalStatistics:
    def test_bounds_exact(self, rng):
        S = rng.standard_normal((5, 200))
        tr = IncrementalCSTrainer()
        for chunk in _chunked(S, [7, 31, 1, 64]):
            tr.update(chunk)
        assert tr.n_seen == 200
        model = tr.train()
        assert np.array_equal(model.lower, S.min(axis=1))
        assert np.array_equal(model.upper, S.max(axis=1))

    def test_correlation_matches_offline(self, rng):
        S = rng.standard_normal((6, 500))
        tr = IncrementalCSTrainer()
        for chunk in _chunked(S, [13, 50, 200]):
            tr.update(chunk)
        rho_stream = tr.shifted_correlation()
        rho_batch = shifted_correlation_matrix(S)
        assert np.allclose(rho_stream, rho_batch, atol=1e-10)

    def test_permutation_matches_offline(self, correlated_matrix):
        tr = IncrementalCSTrainer()
        for chunk in _chunked(correlated_matrix, [40, 100, 3]):
            tr.update(chunk)
        model = tr.train()
        reference = train_cs_model(correlated_matrix)
        assert np.array_equal(model.permutation, reference.permutation)

    def test_single_sample_updates(self, rng):
        S = rng.random((4, 60))
        tr = IncrementalCSTrainer()
        for col in S.T:
            tr.update(col)
        assert tr.n_seen == 60
        assert np.allclose(
            tr.shifted_correlation(), shifted_correlation_matrix(S), atol=1e-9
        )

    def test_constant_row_neutral(self, rng):
        S = rng.random((4, 100))
        S[1] = 2.0
        tr = IncrementalCSTrainer().update(S[:, :50]).update(S[:, 50:])
        rho = tr.shifted_correlation()
        assert np.allclose(rho[1, :], 1.0)
        assert np.allclose(rho[:, 1], 1.0)

    def test_sensor_names_stored(self, rng):
        names = ("a", "b", "c")
        tr = IncrementalCSTrainer(sensor_names=names).update(rng.random((3, 20)))
        assert tr.train().sensor_names == names


class TestMerge:
    def test_merge_equals_sequential(self, rng):
        S = rng.standard_normal((5, 300))
        left = IncrementalCSTrainer().update(S[:, :120])
        right = IncrementalCSTrainer().update(S[:, 120:])
        merged = left.merge(right)
        assert merged.n_seen == 300
        assert np.allclose(
            merged.shifted_correlation(), shifted_correlation_matrix(S), atol=1e-10
        )
        model = merged.train()
        assert np.array_equal(model.lower, S.min(axis=1))
        assert np.array_equal(model.upper, S.max(axis=1))

    def test_merge_into_empty(self, rng):
        S = rng.random((4, 80))
        full = IncrementalCSTrainer().update(S)
        empty = IncrementalCSTrainer()
        empty.merge(full)
        assert empty.n_seen == 80
        assert np.allclose(
            empty.shifted_correlation(), shifted_correlation_matrix(S), atol=1e-10
        )

    def test_merge_shape_mismatch(self, rng):
        a = IncrementalCSTrainer().update(rng.random((3, 10)))
        b = IncrementalCSTrainer().update(rng.random((4, 10)))
        with pytest.raises(ValueError):
            a.merge(b)


class TestValidation:
    def test_needs_two_samples(self, rng):
        tr = IncrementalCSTrainer().update(rng.random(4))
        with pytest.raises(ValueError):
            tr.train()

    def test_rejects_nan(self):
        tr = IncrementalCSTrainer()
        with pytest.raises(ValueError):
            tr.update(np.array([[np.nan, 1.0]]))

    def test_rejects_row_mismatch(self, rng):
        tr = IncrementalCSTrainer().update(rng.random((3, 5)))
        with pytest.raises(ValueError):
            tr.update(rng.random((4, 5)))

    def test_drift_retrain_workflow(self, rng):
        """The motivating use: keep absorbing post-deployment samples and
        retrain when drift is suspected — without re-reading history."""
        base = rng.random((5, 200))
        drifted = base.copy()
        drifted[0] = rng.random(200) * 10.0  # sensor 0 changes scale
        tr = IncrementalCSTrainer().update(base)
        model_before = tr.train()
        tr.update(drifted)
        model_after = tr.train()
        assert model_after.upper[0] > model_before.upper[0]

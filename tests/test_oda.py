"""Tests for the ODA control-loop substrate (knobs, plant, controllers, loop)."""

import numpy as np
import pytest

from repro.core import CorrelationWiseSmoothing, signature_features
from repro.datasets.windows import future_mean_target
from repro.ml import RandomForestRegressor
from repro.monitoring.streaming import OnlineSignatureStream
from repro.oda import (
    CPUFrequencyKnob,
    CoolingSetpointKnob,
    FaultResponseController,
    Knob,
    ODAControlLoop,
    PowerCapController,
    SimulatedNodePlant,
)


class TestKnob:
    def test_clamps_to_bounds(self):
        k = Knob("k", 0.0, 1.0)
        assert k.apply(5.0) == 1.0
        assert k.apply(-3.0) == 0.0

    def test_quantization(self):
        k = Knob("k", 0.0, 1.0, step=0.25)
        assert k.apply(0.6) == pytest.approx(0.5)
        assert k.apply(0.63) == pytest.approx(0.75)

    def test_history_records_changes_only(self):
        k = Knob("k", 0.0, 1.0, step=0.1, initial=1.0)
        k.apply(0.5, tick=3)
        k.apply(0.5, tick=4)  # no-op
        k.apply(0.4, tick=5)
        assert k.actuation_count == 2
        assert k.history == [(3, 0.5), (5, pytest.approx(0.4))]

    def test_nudge(self):
        k = Knob("k", 0.0, 1.0, initial=0.5)
        assert k.nudge(0.2) == pytest.approx(0.7)
        assert k.nudge(-1.0) == 0.0

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Knob("k", 1.0, 0.0)
        with pytest.raises(ValueError):
            Knob("k", 0.0, 1.0, step=0.0)

    def test_presets(self):
        f = CPUFrequencyKnob()
        assert f.setting == 1.0
        c = CoolingSetpointKnob()
        assert c.setting == pytest.approx(0.3)


class TestPlant:
    def test_step_shape_and_progress(self):
        plant = SimulatedNodePlant(seed=0, total_t=50, n_sensors=28)
        s = plant.step()
        assert s.shape == (28,)
        assert plant.tick == 1

    def test_rejects_too_few_sensors(self):
        with pytest.raises(ValueError, match="power_node"):
            SimulatedNodePlant(seed=0, total_t=10, n_sensors=10)

    def test_exhaustion(self):
        plant = SimulatedNodePlant(seed=0, total_t=5)
        for _ in range(5):
            plant.step()
        with pytest.raises(StopIteration):
            plant.step()

    def test_run_open_loop(self):
        plant = SimulatedNodePlant(seed=0, total_t=100)
        M = plant.run_open_loop(60)
        assert M.shape == (plant.n_sensors, 60)

    def test_frequency_cap_lowers_power(self):
        """The closed-loop property: capping frequency cuts power draw."""
        free = SimulatedNodePlant(seed=1, total_t=400)
        capped_knob = CPUFrequencyKnob(initial=0.5)
        capped = SimulatedNodePlant(seed=1, total_t=400, knob=capped_knob)
        free.run_open_loop(400)
        capped.run_open_loop(400)
        assert capped.true_power() <= free.true_power() + 0.02
        # Stronger: compare mean power over the run.
        f2 = SimulatedNodePlant(seed=1, total_t=400)
        c2 = SimulatedNodePlant(
            seed=1, total_t=400, knob=CPUFrequencyKnob(initial=0.5)
        )
        pf = [float(f2.step()[list(f2.sensor_names).index('power_node')])
              for _ in range(400)]
        pc = [float(c2.step()[list(c2.sensor_names).index('power_node')])
              for _ in range(400)]
        assert np.mean(pc) < np.mean(pf)


def _trained_stack(seed=0, total_t=1200, blocks=4, wl=10, ws=5, horizon=3):
    plant = SimulatedNodePlant(seed=seed, total_t=total_t)
    history = plant.run_open_loop(total_t)
    power_row = list(plant.sensor_names).index("power_node")
    cs = CorrelationWiseSmoothing(blocks=blocks).fit(history)
    sigs = cs.transform_series(history, wl, ws)
    targets, n_use = future_mean_target(history[power_row], wl, ws, horizon)
    model = RandomForestRegressor(10, random_state=0).fit(
        signature_features(sigs[:n_use]), targets
    )
    return cs, model


class TestPowerCapController:
    def test_steps_down_when_over_cap(self):
        cs, model = _trained_stack()
        knob = CPUFrequencyKnob()
        ctrl = PowerCapController(model, knob, power_cap=1e-6)  # always over
        sig = np.zeros(4, dtype=complex)
        applied = ctrl.decide(sig, tick=0)
        assert applied is not None and applied < 1.0

    def test_steps_up_with_headroom(self):
        cs, model = _trained_stack()
        knob = CPUFrequencyKnob(initial=0.5)
        ctrl = PowerCapController(model, knob, power_cap=100.0)  # never over
        applied = ctrl.decide(np.zeros(4, dtype=complex), tick=0)
        assert applied is not None and applied > 0.5

    def test_hysteresis_band_no_action(self):
        cs, model = _trained_stack()
        knob = CPUFrequencyKnob()
        ctrl = PowerCapController(model, knob, power_cap=100.0)
        # Already at upper bound and under cap -> no actuation.
        assert ctrl.decide(np.zeros(4, dtype=complex), tick=0) is None

    def test_rejects_bad_params(self):
        cs, model = _trained_stack()
        with pytest.raises(ValueError):
            PowerCapController(model, CPUFrequencyKnob(), power_cap=0.0)
        with pytest.raises(ValueError):
            PowerCapController(model, CPUFrequencyKnob(), power_cap=1.0,
                               headroom=1.5)


class _ConstantClassifier:
    def __init__(self, label):
        self.label = label

    def predict(self, X):
        return np.asarray([self.label] * len(X))


class TestFaultResponseController:
    def test_debounce(self):
        ctrl = FaultResponseController(
            _ConstantClassifier(3), min_consecutive=3
        )
        sig = np.zeros(2, dtype=complex)
        ctrl.decide(sig, 0)
        ctrl.decide(sig, 1)
        assert not ctrl.alerts
        ctrl.decide(sig, 2)
        assert len(ctrl.alerts) == 1
        assert ctrl.alerts[0] == (2, 3)

    def test_healthy_resets_streak(self):
        healthy = _ConstantClassifier(0)
        ctrl = FaultResponseController(healthy, min_consecutive=1)
        ctrl.decide(np.zeros(2, dtype=complex), 0)
        assert not ctrl.alerts

    def test_quarantine_knob(self):
        knob = CPUFrequencyKnob()
        ctrl = FaultResponseController(
            _ConstantClassifier(1), knob=knob, min_consecutive=1
        )
        applied = ctrl.decide(np.zeros(2, dtype=complex), 0)
        assert applied == knob.lower

    def test_knob_restored_on_healthy(self):
        knob = CPUFrequencyKnob(initial=0.5)
        ctrl = FaultResponseController(
            _ConstantClassifier(0), knob=knob, min_consecutive=1
        )
        applied = ctrl.decide(np.zeros(2, dtype=complex), 0)
        assert applied == knob.upper


class TestODAControlLoop:
    def test_loop_reduces_overshoot(self):
        cs, model = _trained_stack(seed=0, total_t=1500)
        cap = 0.6

        def run(with_controller):
            knob = CPUFrequencyKnob()
            plant = SimulatedNodePlant(seed=5, total_t=1200, knob=knob)
            stream = OnlineSignatureStream(cs, wl=10, ws=5)
            ctrl = (
                PowerCapController(model, knob, power_cap=cap)
                if with_controller else None
            )
            return ODAControlLoop(plant, stream, ctrl).run(1200)

        baseline = run(False)
        controlled = run(True)
        assert controlled.n_signatures == baseline.n_signatures
        assert controlled.power_overshoot(cap) < baseline.power_overshoot(cap)
        assert controlled.n_actuations > 0

    def test_monitoring_only_mode(self):
        cs, _ = _trained_stack(total_t=600)
        plant = SimulatedNodePlant(seed=2, total_t=300)
        stream = OnlineSignatureStream(cs, wl=10, ws=5)
        report = ODAControlLoop(plant, stream, None).run(300)
        assert report.n_signatures > 0
        assert report.n_actuations == 0

    def test_rejects_sensor_mismatch(self):
        cs, _ = _trained_stack(total_t=600)
        plant = SimulatedNodePlant(seed=2, total_t=100, n_sensors=28)
        stream = OnlineSignatureStream(cs, wl=10, ws=5)
        with pytest.raises(ValueError):
            ODAControlLoop(plant, stream, None)

    def test_report_metrics_empty(self):
        from repro.oda.loop import LoopReport

        r = LoopReport()
        assert r.power_overshoot(0.5) == 0.0
        assert r.time_above(0.5) == 0.0


class TestPrefill:
    def test_prefill_warms_stream(self):
        """A prefilled loop emits its first in-loop signature within ws
        ticks instead of waiting a full wl-sample warm-up."""
        cs, _ = _trained_stack(total_t=600)
        history = SimulatedNodePlant(seed=9, total_t=200).run_open_loop(200)

        cold_plant = SimulatedNodePlant(seed=3, total_t=100)
        cold = ODAControlLoop(cold_plant, OnlineSignatureStream(cs, wl=50, ws=5))
        cold_report = cold.run(20)

        warm_plant = SimulatedNodePlant(seed=3, total_t=100)
        warm = ODAControlLoop(warm_plant, OnlineSignatureStream(cs, wl=50, ws=5))
        discarded = warm.prefill(history)
        warm_report = warm.run(20)

        assert cold_report.n_signatures == 0      # still inside warm-up
        assert discarded > 0                      # prefill emitted and dropped
        assert warm_report.n_signatures >= 20 // 5 - 1

    def test_prefill_rejects_bad_shape(self):
        cs, _ = _trained_stack(total_t=600)
        plant = SimulatedNodePlant(seed=3, total_t=100)
        loop = ODAControlLoop(plant, OnlineSignatureStream(cs, wl=10, ws=5))
        with pytest.raises(ValueError):
            loop.prefill(np.zeros((3, 50)))

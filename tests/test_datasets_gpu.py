"""Tests for the future-work GPU segment extension."""

import numpy as np
import pytest

from repro.baselines import get_method
from repro.datasets.generators import build_ml_dataset
from repro.datasets.gpu import GPU_SPEC, generate_gpu, gpu_sensor_bank
from repro.ml import RandomForestClassifier, cross_validate_classifier


@pytest.fixture(scope="module")
def gpu_segment():
    return generate_gpu(seed=3, t=900, gpus=2)


class TestGpuSensorBank:
    def test_sensor_count(self):
        rng = np.random.default_rng(0)
        bank = gpu_sensor_bank(24, rng)
        assert len(bank) == 24

    def test_filler_beyond_templates(self):
        rng = np.random.default_rng(0)
        bank = gpu_sensor_bank(30, rng)
        assert len(bank) == 30
        assert any(n.startswith("gpu_misc") for n in bank.names)

    def test_key_groups_present(self):
        rng = np.random.default_rng(0)
        bank = gpu_sensor_bank(24, rng)
        groups = set(bank.groups)
        assert {"gpu", "gpumem", "gpupower", "gputemp", "gpuerror"} <= groups


class TestGpuSegment:
    def test_structure(self, gpu_segment):
        assert gpu_segment.n_components == 2
        for comp in gpu_segment.components:
            assert comp.n_sensors == GPU_SPEC.sensors
            assert comp.arch == "gpu"

    def test_labels_shared_across_devices(self, gpu_segment):
        a, b = gpu_segment.components
        assert np.array_equal(a.labels, b.labels)

    def test_cross_device_correlation(self, gpu_segment):
        a, b = gpu_segment.components
        row = list(a.sensor_names).index("gpu_utilization")
        assert np.corrcoef(a.matrix[row], b.matrix[row])[0, 1] > 0.8

    def test_cs_classifies_gpu_workloads(self, gpu_segment):
        """The future-work claim: CS works on accelerator telemetry too."""
        ds = build_ml_dataset(gpu_segment, lambda: get_method("cs-10"))
        scores = cross_validate_classifier(
            lambda: RandomForestClassifier(10, random_state=0),
            ds.X, ds.y, random_state=0,
        )
        assert scores.mean() > 0.85

    def test_reproducible(self):
        a = generate_gpu(seed=5, t=400, gpus=1)
        b = generate_gpu(seed=5, t=400, gpus=1)
        assert np.allclose(a.components[0].matrix, b.components[0].matrix)

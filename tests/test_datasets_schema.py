"""Tests for the Table I segment schema."""

import pytest

from repro.datasets.schema import ARCHITECTURES, SEGMENTS, get_segment_spec


class TestSegments:
    def test_five_segments(self):
        assert len(SEGMENTS) == 5
        assert set(SEGMENTS) == {
            "fault",
            "application",
            "power",
            "infrastructure",
            "cross-architecture",
        }

    def test_table1_parameters(self):
        # Nodes and sensors straight from Table I.
        assert SEGMENTS["fault"].nodes == 1
        assert SEGMENTS["fault"].sensors == 128
        assert SEGMENTS["application"].nodes == 16
        assert SEGMENTS["application"].sensors == 52
        assert SEGMENTS["power"].sensors == 47
        assert SEGMENTS["infrastructure"].nodes == 148
        assert SEGMENTS["infrastructure"].sensors == 31
        assert SEGMENTS["cross-architecture"].sensors == (52, 46, 39)

    def test_window_parameters_in_samples(self):
        # wl/ws converted from Table I wall-clock to samples.
        assert (SEGMENTS["fault"].wl, SEGMENTS["fault"].ws) == (60, 10)
        assert (SEGMENTS["application"].wl, SEGMENTS["application"].ws) == (30, 5)
        assert (SEGMENTS["power"].wl, SEGMENTS["power"].ws) == (10, 5)
        assert (SEGMENTS["infrastructure"].wl, SEGMENTS["infrastructure"].ws) == (30, 6)
        assert (SEGMENTS["cross-architecture"].wl, SEGMENTS["cross-architecture"].ws) == (30, 2)

    def test_tasks(self):
        assert SEGMENTS["fault"].is_classification
        assert SEGMENTS["application"].is_classification
        assert not SEGMENTS["power"].is_classification
        assert SEGMENTS["power"].horizon == 3
        assert SEGMENTS["infrastructure"].horizon == 30

    def test_sensors_for_cross_arch(self):
        spec = SEGMENTS["cross-architecture"]
        assert spec.sensors_for(0) == 52
        assert spec.sensors_for(1) == 46
        assert spec.sensors_for(2) == 39
        assert spec.sensors_for(3) == 52  # wraps

    def test_sensors_for_plain(self):
        assert SEGMENTS["fault"].sensors_for(5) == 128


class TestLookup:
    def test_case_insensitive(self):
        assert get_segment_spec("FAULT").name == "fault"

    def test_aliases(self):
        assert get_segment_spec("crossarch").name == "cross-architecture"
        assert get_segment_spec("cross_architecture").name == "cross-architecture"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_segment_spec("bogus")


class TestArchitectures:
    def test_three_architectures_with_paper_sensor_counts(self):
        assert len(ARCHITECTURES) == 3
        assert [a[1] for a in ARCHITECTURES] == [52, 46, 39]

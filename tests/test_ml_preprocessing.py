"""Tests for scalers and label encoding."""

import numpy as np
import pytest

from repro.ml.preprocessing import LabelEncoder, MinMaxScaler, StandardScaler


class TestStandardScaler:
    def test_zero_mean_unit_std(self, rng):
        X = rng.random((100, 4)) * 7 + 3
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-10)

    def test_constant_column_maps_to_zero(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z[:, 0], 0.0)

    def test_inverse_roundtrip(self, rng):
        X = rng.random((30, 3))
        sc = StandardScaler().fit(X)
        assert np.allclose(sc.inverse_transform(sc.transform(X)), X)

    def test_transform_uses_training_stats(self, rng):
        X = rng.random((50, 2))
        sc = StandardScaler().fit(X)
        Z = sc.transform(X + 100.0)
        assert Z.mean() > 50  # not re-centered on the new data

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.zeros(5))


class TestMinMaxScaler:
    def test_unit_range(self, rng):
        X = rng.random((40, 3)) * 9 - 4
        Z = MinMaxScaler().fit_transform(X)
        assert np.allclose(Z.min(axis=0), 0.0)
        assert np.allclose(Z.max(axis=0), 1.0)

    def test_custom_range(self, rng):
        X = rng.random((40, 2))
        Z = MinMaxScaler(feature_range=(-1.0, 1.0)).fit_transform(X)
        assert np.allclose(Z.min(axis=0), -1.0)
        assert np.allclose(Z.max(axis=0), 1.0)

    def test_inverse_roundtrip(self, rng):
        X = rng.random((25, 3))
        sc = MinMaxScaler().fit(X)
        assert np.allclose(sc.inverse_transform(sc.transform(X)), X)

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            MinMaxScaler(feature_range=(1.0, 0.0))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.zeros((2, 2)))


class TestLabelEncoder:
    def test_roundtrip(self):
        y = np.array(["b", "a", "c", "a"])
        enc = LabelEncoder().fit(y)
        codes = enc.transform(y)
        assert codes.tolist() == [1, 0, 2, 0]
        assert enc.inverse_transform(codes).tolist() == y.tolist()

    def test_rejects_unseen(self):
        enc = LabelEncoder().fit(np.array(["a", "b"]))
        with pytest.raises(ValueError, match="unseen"):
            enc.transform(np.array(["z"]))

    def test_rejects_out_of_range_codes(self):
        enc = LabelEncoder().fit(np.array(["a", "b"]))
        with pytest.raises(ValueError):
            enc.inverse_transform(np.array([5]))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LabelEncoder().transform(np.array(["a"]))

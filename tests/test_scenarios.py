"""Tests for the scenario subsystem: specs, registry, cache, runner."""

import numpy as np
import pytest

from repro.datasets.recipes import DatasetRecipe, recipe
from repro.scenarios import (
    ArtifactCache,
    ExecutionContext,
    RunOptions,
    ScenarioSpec,
    execute,
    get_scenario,
    list_scenarios,
    scenario_names,
)
from repro.scenarios.cache import dataset_key, segment_key
from repro.scenarios.runner import apply_options
from repro.scenarios.spec import canonical_json, content_key

PAPER_NAMES = {"table1", "fig3", "fig4", "fig5", "fig6", "fig7", "crossarch"}
EXTRA_NAMES = {
    "fleet-scaling",
    "fault-mix",
    "noise-robustness",
    "sensor-drift",
    "crossarch-lengths",
}


class TestRegistry:
    def test_paper_scenarios_registered(self):
        assert PAPER_NAMES <= set(scenario_names())

    def test_at_least_four_non_paper_scenarios(self):
        extras = [s for s in list_scenarios() if not s.paper]
        assert len(extras) >= 4
        assert EXTRA_NAMES <= {s.name for s in extras}

    def test_paper_scenarios_listed_first(self):
        names = scenario_names()
        paper_idx = [names.index(n) for n in PAPER_NAMES]
        extra_idx = [names.index(n) for n in EXTRA_NAMES]
        assert max(paper_idx) < min(extra_idx)

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("not-a-scenario")

    def test_tag_filter(self):
        robustness = scenario_names(tag="robustness")
        assert "noise-robustness" in robustness
        assert "fig3" not in robustness

    def test_every_scenario_has_smoke_config(self):
        for spec in list_scenarios():
            assert spec.smoke, f"{spec.name} lacks a smoke configuration"

    def test_extra_scenarios_use_generic_kinds_only(self):
        # "specs only, zero new bespoke runner code": every non-paper
        # scenario runs on an evaluation kind shared with the rest of
        # the subsystem.
        from repro.scenarios.evaluations import evaluation_kinds

        kinds = set(evaluation_kinds())
        for spec in list_scenarios():
            assert spec.kind in kinds


class TestSpecSerialization:
    def test_round_trip(self):
        for spec in list_scenarios():
            assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_round_trip_preserves_hash(self):
        for spec in list_scenarios():
            assert ScenarioSpec.from_dict(spec.to_dict()).spec_hash() == \
                spec.spec_hash()

    def test_canonical_json_sorts_keys(self):
        assert canonical_json({"b": 1, "a": (2, 3)}) == '{"a":[2,3],"b":1}'

    def test_any_field_change_changes_hash(self):
        spec = get_scenario("fig3")
        variants = [
            spec.with_evaluation(trees=51),
            spec.with_evaluation(seed=1),
            spec.with_methods(("cs-5",)),
            spec.with_datasets((recipe("fault", seed=1),)),
        ]
        hashes = {spec.spec_hash()} | {v.spec_hash() for v in variants}
        assert len(hashes) == len(variants) + 1

    def test_recipe_round_trip(self):
        r = recipe("application", t=700, nodes=2, noise_std=0.1,
                   noise_seed=3, label="app+n")
        assert DatasetRecipe.from_dict(r.to_dict()) == r

    def test_recipe_param_order_is_canonical(self):
        a = DatasetRecipe("application", params=(("t", 700), ("nodes", 2)))
        b = DatasetRecipe("application", params=(("nodes", 2), ("t", 700)))
        assert a == b
        assert content_key(a.to_dict()) == content_key(b.to_dict())

    def test_recipe_rejects_unknown_segment(self):
        with pytest.raises(KeyError):
            DatasetRecipe("not-a-segment")


class TestRecipeBuild:
    def test_deterministic(self):
        r = recipe("application", t=700, nodes=2)
        a, b = r.build(), r.build()
        for ca, cb in zip(a.components, b.components):
            assert np.array_equal(ca.matrix, cb.matrix)

    def test_matches_direct_generation(self):
        from repro.datasets.generators import generate_application

        r = recipe("application", t=700, nodes=2, seed=5)
        built = r.build()
        direct = generate_application(seed=5, t=700, nodes=2)
        for ca, cb in zip(built.components, direct.components):
            assert np.array_equal(ca.matrix, cb.matrix)

    def test_noise_perturbs_sensors_not_labels(self):
        clean = recipe("application", t=700, nodes=2).build()
        noisy = recipe(
            "application", t=700, nodes=2, noise_std=0.1, noise_seed=1
        ).build()
        assert not np.array_equal(
            clean.components[0].matrix, noisy.components[0].matrix
        )
        assert np.array_equal(
            clean.components[0].labels, noisy.components[0].labels
        )

    def test_drift_grows_over_time(self):
        clean = recipe("power", t=1500).build()
        drifted = recipe("power", t=1500, drift=0.5, noise_seed=2).build()
        delta = np.abs(drifted.components[0].matrix - clean.components[0].matrix)
        t = delta.shape[1]
        assert delta[:, : t // 4].mean() < delta[:, -t // 4:].mean()

    def test_display_label(self):
        assert recipe("fault").display == "fault"
        assert recipe("fault", label="fault#s1").display == "fault#s1"


class TestExecutionContext:
    def test_segment_memoized_in_run(self):
        ctx = ExecutionContext()
        r = recipe("application", t=700, nodes=2)
        assert ctx.segment(r) is ctx.segment(r)
        assert ctx.stats["segment_misses"] == 1

    def test_dataset_cache_round_trip(self, tmp_path):
        r = recipe("application", t=700, nodes=2)
        cold_ctx = ExecutionContext(ArtifactCache(tmp_path))
        cold = cold_ctx.dataset(r, "cs-5")
        assert cold_ctx.stats["dataset_misses"] == 1
        warm_ctx = ExecutionContext(ArtifactCache(tmp_path))
        warm = warm_ctx.dataset(r, "cs-5")
        assert warm_ctx.stats == {
            "segment_hits": 0,
            "segment_misses": 0,
            "dataset_hits": 1,
            "dataset_misses": 0,
        }
        assert np.array_equal(cold.X, warm.X)
        assert np.array_equal(cold.y, warm.y)
        assert np.array_equal(cold.groups, warm.groups)
        assert warm.task == cold.task
        assert warm.label_names == cold.label_names
        assert warm.signature_size == cold.signature_size
        assert warm.generation_time_s == cold.generation_time_s

    def test_segment_cache_round_trip(self, tmp_path):
        r = recipe("application", t=700, nodes=2)
        ExecutionContext(ArtifactCache(tmp_path)).segment(r)
        warm_ctx = ExecutionContext(ArtifactCache(tmp_path))
        seg = warm_ctx.segment(r)
        assert warm_ctx.stats["segment_hits"] == 1
        assert np.array_equal(seg.components[0].matrix, r.build().components[0].matrix)

    def test_cache_invalidated_by_any_recipe_field(self, tmp_path):
        base = recipe("application", t=700, nodes=2)
        ctx = ExecutionContext(ArtifactCache(tmp_path))
        ctx.dataset(base, "cs-5")
        variants = [
            recipe("application", t=700, nodes=2, seed=1),
            recipe("application", t=700, nodes=2, scale=2.0),
            recipe("application", t=800, nodes=2),
            recipe("application", t=700, nodes=2, noise_std=0.1),
        ]
        keys = {dataset_key(base, "cs-5")}
        keys |= {dataset_key(v, "cs-5") for v in variants}
        assert len(keys) == len(variants) + 1
        # method / windowing / real-only also re-address the artifact
        assert dataset_key(base, "cs-10") not in keys
        assert dataset_key(base, "cs-5", wl=20) != dataset_key(base, "cs-5")
        assert dataset_key(base, "cs-5", real_only=True) != dataset_key(base, "cs-5")
        assert segment_key(base) != segment_key(variants[0])
        # and a different-seed fetch is a miss, not a stale hit
        ctx2 = ExecutionContext(ArtifactCache(tmp_path))
        ctx2.dataset(variants[0], "cs-5")
        assert ctx2.stats["dataset_misses"] == 1

    def test_display_label_does_not_fragment_cache(self):
        """Recipes building bit-identical data share one content address."""
        plain = recipe("application")
        labelled = recipe("application", label="application+n0")
        assert segment_key(plain) == segment_key(labelled)
        assert dataset_key(plain, "cs-20") == dataset_key(labelled, "cs-20")
        # ... but a noise_seed only matters once a perturbation draws it
        assert segment_key(recipe("application", noise_seed=7)) == \
            segment_key(plain)
        assert segment_key(
            recipe("application", noise_std=0.1, noise_seed=7)
        ) != segment_key(recipe("application", noise_std=0.1, noise_seed=8))

    def test_callable_methods_bypass_store(self, tmp_path):
        from repro.baselines.base import get_method

        with pytest.raises(TypeError, match="cacheable"):
            dataset_key(recipe("application"), get_method)
        ctx = ExecutionContext(ArtifactCache(tmp_path))
        r = recipe("application", t=700, nodes=2)
        ds = ctx.dataset(r, lambda: get_method("cs-5"))
        assert ds.signature_size == 10
        assert ctx.stats["dataset_misses"] == 1
        assert not list((tmp_path / "datasets").iterdir())  # nothing stored


class TestRunnerOptions:
    def test_smoke_variant_applied(self):
        spec = apply_options(get_scenario("fig3"), RunOptions(smoke=True))
        assert spec.methods == ("lan", "cs-5")
        assert spec.evaluation_dict()["trees"] == 4

    def test_seed_override_reaches_recipes_and_evaluation(self):
        spec = apply_options(get_scenario("fig3"), RunOptions(seed=9))
        assert all(r.seed == 9 for r in spec.datasets)
        assert spec.evaluation_dict()["seed"] == 9

    def test_scale_and_repeats_overrides(self):
        spec = apply_options(
            get_scenario("fig3"), RunOptions(scale=0.5, repeats=3, trees=7)
        )
        assert all(r.scale == 0.5 for r in spec.datasets)
        ev = spec.evaluation_dict()
        assert ev["repeats"] == 3 and ev["trees"] == 7

    def test_segments_override_replaces_datasets(self):
        spec = apply_options(
            get_scenario("fig3"), RunOptions(segments=("fault",), seed=2)
        )
        assert [r.segment for r in spec.datasets] == ["fault"]
        assert spec.datasets[0].seed == 2

    def test_explicit_overrides_beat_smoke_replacements(self):
        """--smoke --segments keeps the user's recipes (full size) while
        still applying the smoke evaluation parameters."""
        spec = apply_options(
            get_scenario("fig3"), RunOptions(smoke=True, segments=("fault",))
        )
        assert [r.segment for r in spec.datasets] == ["fault"]
        assert spec.methods == ("lan", "cs-5")  # smoke methods still apply
        assert spec.evaluation_dict()["trees"] == 4
        spec = apply_options(
            get_scenario("fig3"), RunOptions(smoke=True, methods=("tuncer",))
        )
        assert spec.methods == ("tuncer",)
        assert [r.segment for r in spec.datasets] == ["application"]

    def test_overrides_change_spec_hash(self):
        base = get_scenario("fig3")
        assert apply_options(base, RunOptions(seed=1)).spec_hash() != \
            base.spec_hash()


class TestExecute:
    def test_grid_scores_stable_across_cache(self, tmp_path):
        """Cold and cached runs agree on everything but CV wall-clock."""
        spec = get_scenario("noise-robustness")
        opts = dict(smoke=True, cache_dir=tmp_path / "cache")
        cold = execute(spec, options=RunOptions(**opts))
        warm = execute(spec, options=RunOptions(**opts))
        assert warm.cache_stats["dataset_hits"] > 0
        assert warm.cache_stats["dataset_misses"] == 0

        def stable(rows):
            return [
                tuple(c for i, c in enumerate(r) if i != 4)  # drop CV time
                for r in rows
            ]

        assert stable(cold.rows) == stable(warm.rows)

    def test_fleet_kind_reports_throughput(self):
        result = execute(get_scenario("fleet-scaling"), options=RunOptions(smoke=True))
        assert len(result.rows) == 2
        nodes = [row[1] for row in result.rows]
        assert nodes == [2, 4]
        assert all(row[2] > 0 for row in result.rows)

    def test_noise_robustness_rows_labelled_by_variant(self):
        result = execute(
            get_scenario("noise-robustness"), options=RunOptions(smoke=True)
        )
        segments = {row[0] for row in result.rows}
        assert segments == {"application+n0", "application+n10%"}

    def test_crossarch_lengths_signature_sizes(self):
        result = execute(
            get_scenario("crossarch-lengths"), options=RunOptions(smoke=True)
        )
        by_method = {row[1]: row[2] for row in result.rows}
        assert by_method == {"cs-5": 10, "cs-10": 20}

"""The columnar telemetry store: round-trips, retention, durability."""

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.monitoring import storage
from repro.monitoring.storage import atomic_savez, load_npz_arrays
from repro.monitoring.telestore import (
    PARTITION_FORMAT,
    STORE_FORMAT,
    RetentionError,
    TelemetryRecorder,
    TeleStore,
    TeleStoreError,
)


def _write(root, planes, *, partition_ticks=8, meta=None):
    """Record ``{path: (n, T) matrix}`` in one shot and open the store."""
    nodes = {p: (m.shape[0], m.dtype) for p, m in planes.items()}
    with TelemetryRecorder.create(
        root, nodes, partition_ticks=partition_ticks, meta=meta
    ) as rec:
        rec.append(planes)
    return TeleStore(root)


def _fake_checkpoint(path, next_lo):
    manifest = {"format": "repro-detector-checkpoint/v1", "next_lo": next_lo}
    atomic_savez(
        path,
        manifest=np.frombuffer(
            json.dumps(manifest).encode("utf-8"), dtype=np.uint8
        ),
    )


class TestRoundTrip:
    def test_multi_partition_round_trip(self, tmp_path):
        rng = np.random.default_rng(0)
        planes = {
            "rack0/node00": rng.normal(size=(3, 21)),
            "rack0/node01": rng.normal(size=(5, 21)),
        }
        store = _write(tmp_path / "s", planes, partition_ticks=8)
        # 21 ticks / 8 per partition -> 8 + 8 + 5 (short tail)
        assert [p.ticks for p in store.partitions] == [8, 8, 5]
        assert store.t0 == 0 and store.t1 == 21
        back = store.read()
        for p, m in planes.items():
            assert np.array_equal(back[p], m)
            assert back[p].dtype == m.dtype

    def test_append_spans_partition_boundaries(self, tmp_path):
        m = np.arange(40, dtype=np.float64).reshape(2, 20)
        nodes = {"n": (2, m.dtype)}
        with TelemetryRecorder.create(
            tmp_path / "s", nodes, partition_ticks=6
        ) as rec:
            # bursts of 3 never line up with the 6-tick partitions' edges
            for lo in range(0, 20, 3):
                rec.append({"n": m[:, lo : lo + 3]})
        store = TeleStore(tmp_path / "s")
        assert [p.ticks for p in store.partitions] == [6, 6, 6, 2]
        assert np.array_equal(store.read()["n"], m)

    def test_eager_and_mmap_scans_identical(self, tmp_path):
        rng = np.random.default_rng(1)
        planes = {"a": rng.normal(size=(4, 17)).astype(np.float32)}
        store = _write(tmp_path / "s", planes, partition_ticks=5)
        eager = list(store.scan(mmap_mode=None))
        mapped = list(store.scan(mmap_mode="r"))
        assert [lo for lo, _ in eager] == [lo for lo, _ in mapped]
        for (_, e), (_, m) in zip(eager, mapped):
            assert np.array_equal(e["a"], np.asarray(m["a"]))

    def test_scan_clips_to_window(self, tmp_path):
        m = np.arange(30, dtype=np.int64).reshape(1, 30)
        store = _write(tmp_path / "s", {"n": m}, partition_ticks=10)
        blocks = list(store.scan(7, 24))
        assert [lo for lo, _ in blocks] == [7, 10, 20]
        got = np.concatenate([b["n"] for _, b in blocks], axis=1)
        assert np.array_equal(got, m[:, 7:24])

    def test_scan_outside_recorded_range_raises(self, tmp_path):
        store = _write(tmp_path / "s", {"n": np.zeros((1, 5))})
        with pytest.raises(TeleStoreError, match="outside recorded range"):
            list(store.scan(0, 9))

    def test_reopen_appends_at_t1(self, tmp_path):
        a = np.ones((2, 7))
        b = np.full((2, 4), 2.0)
        _write(tmp_path / "s", {"n": a}, partition_ticks=5)
        with TelemetryRecorder.open(tmp_path / "s") as rec:
            rec.append({"n": b})
        store = TeleStore(tmp_path / "s")
        assert store.t1 == 11
        assert np.array_equal(
            store.read()["n"], np.concatenate([a, b], axis=1)
        )

    def test_partition_manifest_format(self, tmp_path):
        store = _write(tmp_path / "s", {"n": np.zeros((1, 3))})
        arrays = load_npz_arrays(store.root / store.partitions[0].file)
        manifest = json.loads(bytes(arrays["manifest"]).decode("utf-8"))
        assert manifest["format"] == PARTITION_FORMAT
        assert store.stat()["format"] == STORE_FORMAT


class TestValidation:
    def test_create_refuses_existing_store(self, tmp_path):
        _write(tmp_path / "s", {"n": np.zeros((1, 3))})
        with pytest.raises(TeleStoreError, match="already holds"):
            TelemetryRecorder.create(tmp_path / "s", {"n": (1, np.float64)})

    def test_object_dtype_rejected(self, tmp_path):
        with pytest.raises(TeleStoreError, match="object dtypes"):
            TelemetryRecorder.create(
                tmp_path / "s", {"n": (1, np.dtype(object))}
            )

    def test_burst_node_set_must_match(self, tmp_path):
        rec = TelemetryRecorder.create(
            tmp_path / "s", {"a": (1, np.float64), "b": (1, np.float64)}
        )
        with pytest.raises(TeleStoreError, match="node set mismatch"):
            rec.append({"a": np.zeros((1, 2))})

    def test_burst_tick_counts_must_align(self, tmp_path):
        rec = TelemetryRecorder.create(
            tmp_path / "s", {"a": (1, np.float64), "b": (1, np.float64)}
        )
        with pytest.raises(TeleStoreError, match="tick counts differ"):
            rec.append({"a": np.zeros((1, 2)), "b": np.zeros((1, 3))})

    def test_burst_sensor_rows_must_match(self, tmp_path):
        rec = TelemetryRecorder.create(tmp_path / "s", {"a": (2, np.float64)})
        with pytest.raises(TeleStoreError, match="does not match"):
            rec.append({"a": np.zeros((3, 2))})

    def test_not_a_store(self, tmp_path):
        with pytest.raises(TeleStoreError, match="not a telemetry store"):
            TeleStore(tmp_path)


class TestVerify:
    def test_verify_clean(self, tmp_path):
        store = _write(tmp_path / "s", {"n": np.zeros((1, 12))})
        assert store.verify() == 2

    def test_verify_detects_corruption(self, tmp_path):
        store = _write(tmp_path / "s", {"n": np.zeros((1, 12))})
        victim = store.root / store.partitions[0].file
        data = bytearray(victim.read_bytes())
        data[len(data) // 2] ^= 0xFF
        victim.write_bytes(bytes(data))
        with pytest.raises(TeleStoreError, match="hash mismatch"):
            store.verify()

    def test_verify_detects_missing_file(self, tmp_path):
        store = _write(tmp_path / "s", {"n": np.zeros((1, 12))})
        (store.root / store.partitions[1].file).unlink()
        with pytest.raises(TeleStoreError, match="missing"):
            store.verify()


class TestCompact:
    def test_compact_merges_and_preserves(self, tmp_path):
        rng = np.random.default_rng(2)
        m = rng.normal(size=(3, 26))
        store = _write(tmp_path / "s", {"n": m}, partition_ticks=4)
        before = store.read()["n"]
        merged = store.compact(target_ticks=12)
        assert merged > 0
        assert [p.ticks for p in store.partitions] == [12, 12, 2]
        reopened = TeleStore(tmp_path / "s")
        assert np.array_equal(reopened.read()["n"], before)
        assert reopened.verify() == 3
        # superseded files are gone
        on_disk = sorted(p.name for p in store.root.glob("part-*.npz"))
        assert on_disk == sorted(p.file for p in reopened.partitions)

    def test_compact_noop_reaps_orphans(self, tmp_path):
        store = _write(tmp_path / "s", {"n": np.zeros((1, 4))})
        orphan = store.root / "part-0000000900-0000000990.npz"
        orphan.write_bytes(b"leftover of a crashed compaction")
        assert store.compact() == 0
        assert not orphan.exists()


class TestPrune:
    def test_prune_keep_last(self, tmp_path):
        m = np.arange(20, dtype=np.float64).reshape(1, 20)
        store = _write(tmp_path / "s", {"n": m}, partition_ticks=5)
        assert store.prune(keep_last=2) == 2
        assert store.t0 == 10 and store.t1 == 20
        reopened = TeleStore(tmp_path / "s")
        assert np.array_equal(reopened.read()["n"], m[:, 10:])
        with pytest.raises(TeleStoreError, match="outside recorded range"):
            reopened.read(0, 20)

    def test_prune_refuses_checkpointed_partition(self, tmp_path):
        store = _write(
            tmp_path / "s", {"n": np.zeros((1, 20))}, partition_ticks=5
        )
        ckpt = tmp_path / "resume.npz"
        # resumes at sample 7 -> partition [5, 10) is still needed
        _fake_checkpoint(ckpt, next_lo=7)
        with pytest.raises(RetentionError) as exc:
            store.prune(keep_last=2, checkpoints=[ckpt])
        assert exc.value.partition == store.partitions[1].file
        assert exc.value.next_lo == 7
        # refused atomically: nothing was dropped
        assert len(TeleStore(tmp_path / "s").partitions) == 4

    def test_prune_allows_fully_replayed_checkpoint(self, tmp_path):
        store = _write(
            tmp_path / "s", {"n": np.zeros((1, 20))}, partition_ticks=5
        )
        ckpt = tmp_path / "resume.npz"
        _fake_checkpoint(ckpt, next_lo=10)  # partitions [0,5),[5,10) done
        assert store.prune(keep_last=2, checkpoints=[ckpt]) == 2

    def test_prune_respects_store_checkpoint_dir(self, tmp_path):
        store = _write(
            tmp_path / "s", {"n": np.zeros((1, 20))}, partition_ticks=5
        )
        (store.root / "checkpoints").mkdir()
        _fake_checkpoint(store.root / "checkpoints" / "auto.npz", next_lo=3)
        with pytest.raises(RetentionError):
            store.prune(keep_last=1)

    def test_prune_rejects_unreadable_checkpoint(self, tmp_path):
        store = _write(
            tmp_path / "s", {"n": np.zeros((1, 10))}, partition_ticks=5
        )
        bogus = tmp_path / "bogus.npz"
        bogus.write_bytes(b"not an archive")
        with pytest.raises(TeleStoreError, match="unreadable checkpoint"):
            store.prune(keep_last=1, checkpoints=[bogus])


_DTYPES = st.sampled_from(
    [np.float64, np.float32, np.int64, np.int32, np.uint8, np.bool_]
)


class TestPropertyRoundTrip:
    @given(
        data=st.data(),
        n_nodes=st.integers(1, 3),
        ticks=st.integers(1, 40),
        partition_ticks=st.integers(1, 9),
    )
    @settings(max_examples=25, deadline=None)
    def test_arbitrary_fleets_round_trip(
        self, data, n_nodes, ticks, partition_ticks, tmp_path_factory
    ):
        """Ragged dtypes/shapes across partition boundaries: written
        once, read back bit-identical both eager and memory-mapped."""
        root = tmp_path_factory.mktemp("telestore")
        rng = np.random.default_rng(
            data.draw(st.integers(0, 2**32 - 1), label="seed")
        )
        planes = {}
        for i in range(n_nodes):
            dtype = np.dtype(data.draw(_DTYPES, label=f"dtype{i}"))
            sensors = data.draw(st.integers(1, 5), label=f"sensors{i}")
            raw = rng.normal(0.0, 100.0, size=(sensors, ticks))
            planes[f"node{i}"] = (
                raw > 0.0 if dtype == np.bool_ else raw.astype(dtype)
            )
        store = _write(
            root / "s", planes, partition_ticks=partition_ticks
        )
        assert store.ticks == ticks
        eager = store.read()
        for p, m in planes.items():
            assert eager[p].dtype == m.dtype
            assert np.array_equal(eager[p], m)
        pos = 0
        for lo, block in store.scan(mmap_mode="r"):
            assert lo == pos
            for p, view in block.items():
                width = view.shape[1]
                assert np.array_equal(
                    np.asarray(view), planes[p][:, lo : lo + width]
                )
            pos = lo + width
        assert pos == ticks


class TestAtomicSavezDurability:
    def test_fsync_ordering(self, tmp_path, monkeypatch):
        """File contents are fsynced before the rename becomes visible,
        and the parent directory entry is fsynced after it."""
        log = []
        real_fsync, real_replace = os.fsync, os.replace

        def spy_fsync(fd):
            log.append(("fsync_file", fd))
            return real_fsync(fd)

        def spy_replace(src, dst):
            log.append(("replace", str(src), str(dst)))
            return real_replace(src, dst)

        def spy_fsync_dir(path):
            log.append(("fsync_dir", str(path)))

        monkeypatch.setattr(storage.os, "fsync", spy_fsync)
        monkeypatch.setattr(storage.os, "replace", spy_replace)
        monkeypatch.setattr(storage, "_fsync_dir", spy_fsync_dir)
        target = tmp_path / "out.npz"
        atomic_savez(target, a=np.arange(4))
        kinds = [entry[0] for entry in log]
        assert kinds == ["fsync_file", "replace", "fsync_dir"]
        assert log[1][2] == str(target)
        assert log[2][1] == str(tmp_path)
        assert np.array_equal(load_npz_arrays(target)["a"], np.arange(4))

    def test_failed_replace_leaves_no_debris(self, tmp_path, monkeypatch):
        def boom(src, dst):
            raise OSError("disk gone")

        monkeypatch.setattr(storage.os, "replace", boom)
        target = tmp_path / "out.npz"
        with pytest.raises(OSError, match="disk gone"):
            atomic_savez(target, a=np.arange(4))
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []  # temp file cleaned up

    def test_torn_index_write_keeps_old_store(self, tmp_path, monkeypatch):
        """A crash mid index rewrite leaves the previous store intact."""
        m = np.arange(8, dtype=np.float64).reshape(1, 8)
        store = _write(tmp_path / "s", {"n": m}, partition_ticks=4)
        from repro.monitoring import telestore

        def boom(path, payload):
            raise OSError("power cut")

        monkeypatch.setattr(telestore, "_atomic_write_json", boom)
        with pytest.raises(OSError, match="power cut"):
            store.compact(target_ticks=8)
        monkeypatch.undo()
        reopened = TeleStore(tmp_path / "s")
        assert [p.ticks for p in reopened.partitions] == [4, 4]
        assert np.array_equal(reopened.read()["n"], m)
        # the merged-but-unreferenced file is reaped on next retention op
        assert reopened.compact(target_ticks=8) == 2
        assert np.array_equal(TeleStore(tmp_path / "s").read()["n"], m)

"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.analysis.similarity import (
    collapsed_distribution,
    js_divergence_2d,
    nearest_neighbor_upsample,
)
from repro.core.blocks import block_bounds
from repro.core.pipeline import CorrelationWiseSmoothing, signature_features
from repro.core.scaling import rescale_signature
from repro.core.smoothing import smooth
from repro.core.sorting import normalize_rows
from repro.core.training import (
    correlation_ordering,
    global_correlation,
    shifted_correlation_matrix,
)
from repro.datasets.windows import window_majority_labels, window_starts
from repro.ml.metrics import f1_score, nrmse

# Bounded-float matrices that keep correlations numerically sane.
matrices = arrays(
    np.float64,
    st.tuples(st.integers(2, 12), st.integers(3, 40)),
    elements=st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False),
)


@st.composite
def matrix_and_blocks(draw):
    n = draw(st.integers(1, 20))
    wl = draw(st.integers(1, 30))
    l = draw(st.integers(1, n))
    M = draw(
        arrays(
            np.float64,
            (n, wl),
            elements=st.floats(0.0, 1.0, allow_nan=False),
        )
    )
    return M, l


class TestBlockBoundsProperties:
    @given(st.integers(1, 500), st.data())
    @settings(max_examples=80, deadline=None)
    def test_coverage_monotone_and_bounded(self, n, data):
        l = data.draw(st.integers(1, n))
        starts, ends = block_bounds(n, l)
        assert starts[0] == 0
        assert ends[-1] == n
        # Starts/ends monotone non-decreasing, every block non-empty.
        assert np.all(np.diff(starts) >= 0)
        assert np.all(np.diff(ends) >= 0)
        assert np.all(ends > starts)
        # Widths differ by at most 1 sensor.
        widths = ends - starts
        assert widths.max() - widths.min() <= 1
        # Full coverage, no gaps.
        covered = np.zeros(n, dtype=bool)
        for s, e in zip(starts, ends):
            covered[s:e] = True
        assert covered.all()


class TestCorrelationProperties:
    @given(matrices)
    @settings(max_examples=50, deadline=None)
    def test_correlation_matrix_invariants(self, S):
        rho = shifted_correlation_matrix(S)
        assert rho.shape == (S.shape[0],) * 2
        assert np.all(rho >= -1e-12) and np.all(rho <= 2.0 + 1e-12)
        assert np.allclose(rho, rho.T)

    @given(matrices)
    @settings(max_examples=50, deadline=None)
    def test_ordering_is_permutation(self, S):
        rho = shifted_correlation_matrix(S)
        p = correlation_ordering(rho, global_correlation(rho))
        assert sorted(p.tolist()) == list(range(S.shape[0]))


class TestSmoothingProperties:
    @given(matrix_and_blocks())
    @settings(max_examples=80, deadline=None)
    def test_signature_bounded_by_window(self, mb):
        M, l = mb
        sig = smooth(M, l)
        assert sig.shape == (l,)
        assert np.all(sig.real >= M.min() - 1e-9)
        assert np.all(sig.real <= M.max() + 1e-9)
        # Derivative means are bounded by the value range over the window.
        assert np.all(np.abs(sig.imag) <= (M.max() - M.min()) + 1e-9)

    @given(matrix_and_blocks())
    @settings(max_examples=50, deadline=None)
    def test_global_mean_preserved_when_divisible(self, mb):
        M, l = mb
        n = M.shape[0]
        if n % l != 0:
            return  # overlapping blocks double-count some rows
        sig = smooth(M, l)
        # Equal-width non-overlapping blocks: the mean of block means is
        # the global mean.
        assert np.mean(sig.real) == pytest.approx(M.mean(), abs=1e-9)

    @given(
        arrays(np.float64, st.tuples(st.integers(1, 8), st.integers(2, 20)),
               elements=st.floats(0.0, 1.0, allow_nan=False).map(
                   lambda x: round(x, 3))),
        st.floats(-5.0, 5.0, allow_nan=False).map(lambda x: round(x, 3)),
        st.floats(0.1, 10.0, allow_nan=False).map(lambda x: round(x, 3)),
    )
    @settings(max_examples=50, deadline=None)
    def test_affine_invariance_of_normalized_signature(self, M, shift, scale):
        """Min-max normalization makes CS invariant to affine sensor scaling.

        Elements are rounded to three decimals so float absorption (tiny
        values vanishing when the shift is added) cannot manufacture a
        spurious constant row.
        """
        cs1 = CorrelationWiseSmoothing(blocks=1).fit(M)
        cs2 = CorrelationWiseSmoothing(blocks=1).fit(M * scale + shift)
        s1 = cs1.transform(M)
        s2 = cs2.transform(M * scale + shift)
        assert np.allclose(s1, s2, atol=1e-8)


class TestNormalizeProperties:
    @given(
        arrays(np.float64, st.tuples(st.integers(1, 10), st.integers(1, 30)),
               elements=st.floats(-1e6, 1e6, allow_nan=False)),
    )
    @settings(max_examples=60, deadline=None)
    def test_output_in_unit_interval(self, M):
        out = normalize_rows(M, M.min(axis=1), M.max(axis=1))
        assert np.all(out >= 0.0) and np.all(out <= 1.0)


class TestRescaleProperties:
    @given(
        arrays(np.complex128, st.integers(1, 30),
               elements=st.complex_numbers(max_magnitude=10.0, allow_nan=False,
                                           allow_infinity=False)),
        st.integers(1, 50),
    )
    @settings(max_examples=60, deadline=None)
    def test_rescale_stays_within_envelope(self, sig, L):
        out = rescale_signature(sig, L)
        assert out.shape == (L,)
        assert out.real.min() >= sig.real.min() - 1e-9
        assert out.real.max() <= sig.real.max() + 1e-9

    @given(
        arrays(np.complex128, st.integers(1, 20),
               elements=st.complex_numbers(max_magnitude=5.0, allow_nan=False,
                                           allow_infinity=False)),
    )
    @settings(max_examples=40, deadline=None)
    def test_rescale_identity(self, sig):
        assert np.allclose(rescale_signature(sig, sig.shape[0]), sig)


class TestFeatureProperties:
    @given(
        arrays(np.complex128, st.tuples(st.integers(1, 10), st.integers(1, 10)),
               elements=st.complex_numbers(max_magnitude=10.0, allow_nan=False,
                                           allow_infinity=False)),
    )
    @settings(max_examples=40, deadline=None)
    def test_feature_roundtrip(self, sigs):
        f = signature_features(sigs)
        l = sigs.shape[1]
        assert np.allclose(f[:, :l], sigs.real)
        assert np.allclose(f[:, l:], sigs.imag)


class TestWindowProperties:
    @given(st.integers(1, 200), st.integers(1, 50), st.integers(1, 50))
    @settings(max_examples=80, deadline=None)
    def test_window_count_formula(self, t, wl, ws):
        starts = window_starts(t, wl, ws)
        if t < wl:
            assert starts.size == 0
        else:
            assert starts.size == (t - wl) // ws + 1
            assert starts[-1] + wl <= t

    @given(
        arrays(np.int64, st.integers(10, 100), elements=st.integers(0, 4)),
        st.integers(2, 10),
        st.integers(1, 5),
    )
    @settings(max_examples=60, deadline=None)
    def test_majority_label_is_a_window_label(self, labels, wl, ws):
        y = window_majority_labels(labels, wl, ws)
        starts = window_starts(labels.shape[0], wl, ws)
        for k, s in enumerate(starts):
            window = labels[s : s + wl]
            assert y[k] in window
            # It really is (one of) the most frequent labels.
            counts = np.bincount(window, minlength=5)
            assert counts[y[k]] == counts.max()


class TestSimilarityProperties:
    @given(
        arrays(np.float64, st.tuples(st.integers(1, 6), st.integers(2, 40)),
               elements=st.floats(0.0, 1.0, allow_nan=False)),
    )
    @settings(max_examples=40, deadline=None)
    def test_distribution_sums_to_one(self, M):
        P = collapsed_distribution(M, bins=8)
        assert P.sum() == pytest.approx(1.0)

    @given(
        arrays(np.float64, st.tuples(st.integers(2, 5), st.integers(5, 30)),
               elements=st.floats(0.0, 1.0, allow_nan=False)),
        arrays(np.float64, st.tuples(st.integers(2, 5), st.integers(5, 30)),
               elements=st.floats(0.0, 1.0, allow_nan=False)),
    )
    @settings(max_examples=40, deadline=None)
    def test_js_bounded_and_symmetric(self, A, B):
        rows = min(A.shape[0], B.shape[0])
        A, B = A[:rows], B[:rows]
        ab = js_divergence_2d(A, B)
        ba = js_divergence_2d(B, A)
        assert 0.0 <= ab <= 1.0 + 1e-9
        assert ab == pytest.approx(ba, abs=1e-9)

    @given(st.integers(1, 10), st.integers(1, 40))
    @settings(max_examples=40, deadline=None)
    def test_upsample_preserves_value_set(self, l, n):
        X = np.arange(l, dtype=np.float64)[:, None]
        up = nearest_neighbor_upsample(X, n)
        assert set(np.unique(up)) <= set(range(l))


class TestMetricProperties:
    @given(
        arrays(np.int64, st.integers(2, 60), elements=st.integers(0, 3)),
    )
    @settings(max_examples=40, deadline=None)
    def test_perfect_prediction_scores_one(self, y):
        assert f1_score(y, y.copy()) == pytest.approx(1.0)

    @given(
        arrays(np.float64, st.integers(2, 50),
               elements=st.floats(-100.0, 100.0, allow_nan=False)),
    )
    @settings(max_examples=40, deadline=None)
    def test_nrmse_nonnegative_and_zero_iff_exact(self, y):
        assert nrmse(y, y.copy()) == pytest.approx(0.0)
        if y.max() > y.min():
            noisy = y + 1.0
            assert nrmse(y, noisy) > 0.0

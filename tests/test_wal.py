"""The ``repro-wal/v1`` write-ahead journal: round-trips, torn-tail
recovery (the property the kill -9 drill leans on), rotation, pruning
and the fsync policies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.wal import (
    _REC_HEADER,
    _SEG_HEADER,
    REC_ERROR,
    REC_FRAME,
    REC_WATERMARK,
    WalError,
    WalWriter,
    decode_frame_record,
    encode_frame_payload,
    recover_wal,
)


def _values(rng, rows=3, cols=4):
    return rng.standard_normal((rows, cols))


def _append_mixed(writer, rng, n_ticks=3, nodes=("node-00", "node-01")):
    """A realistic record mix; returns the expected (rtype, key) list."""
    expected = []
    for tick in range(n_ticks):
        for node in nodes:
            writer.append_frame(node, tick, _values(rng))
            expected.append((REC_FRAME, (node, tick)))
        if tick == 1:
            writer.append_error("bad-shape", nodes[0])
            expected.append((REC_ERROR, ("bad-shape", nodes[0])))
        writer.append_watermark(tick)
        expected.append((REC_WATERMARK, tick))
    return expected


def _check_records(records, expected):
    import json

    assert [r.rtype for r in records] == [e[0] for e in expected]
    assert [r.index for r in records] == list(range(len(expected)))
    for record, (rtype, key) in zip(records, expected):
        if rtype == REC_FRAME:
            frame = decode_frame_record(record.payload)
            assert (frame.node, frame.tick) == key
            assert frame.values.shape == (3, 4)
        elif rtype == REC_ERROR:
            obj = json.loads(record.payload)
            assert (obj["reason"], obj["node"]) == key
        else:
            assert json.loads(record.payload)["tick"] == key


def test_round_trip(tmp_path):
    rng = np.random.default_rng(0)
    writer = WalWriter(tmp_path / "wal")
    expected = _append_mixed(writer, rng)
    assert writer.appended == len(expected)
    writer.close()

    recovery = recover_wal(tmp_path / "wal")
    assert recovery.torn_bytes == 0
    assert recovery.torn_segment is None
    assert recovery.next_index == len(expected)
    _check_records(recovery.records, expected)


def test_frame_payload_round_trips_binary_and_json(tmp_path):
    rng = np.random.default_rng(1)
    values = _values(rng)
    frame = decode_frame_record(encode_frame_payload("n0", 7, values))
    assert frame.node == "n0" and frame.tick == 7
    np.testing.assert_array_equal(frame.values, values)
    # Non-2d values (poison blocks journal as JSON).
    frame = decode_frame_record(encode_frame_payload("n1", 3, None))
    assert frame.node == "n1" and frame.tick == 3 and frame.values is None


def test_open_resumes_at_next_index(tmp_path):
    rng = np.random.default_rng(2)
    writer = WalWriter(tmp_path / "wal")
    expected = _append_mixed(writer, rng)
    writer.close()

    writer, records = WalWriter.open(tmp_path / "wal")
    assert len(records) == len(expected)
    assert writer.next_index == len(expected)
    writer.append_watermark(99)
    writer.close()
    recovery = recover_wal(tmp_path / "wal")
    assert recovery.next_index == len(expected) + 1
    assert recovery.records[-1].rtype == REC_WATERMARK


def test_rotation_and_prune(tmp_path):
    rng = np.random.default_rng(3)
    # Tiny segments: every record rotates into its own file.
    writer = WalWriter(tmp_path / "wal", segment_bytes=256)
    for tick in range(6):
        writer.append_frame("n0", tick, _values(rng))
        writer.append_watermark(tick)
    segments = sorted((tmp_path / "wal").glob("wal-*.seg"))
    assert len(segments) > 1
    removed = writer.prune_through(6)
    assert removed > 0
    remaining = sorted((tmp_path / "wal").glob("wal-*.seg"))
    assert len(remaining) == len(segments) - removed
    writer.close()
    # Pruned history is gone; the rest still replays in order from the
    # surviving head segment's start index (filename-encoded).
    recovery = recover_wal(tmp_path / "wal")
    assert recovery.torn_bytes == 0
    first_index = int(remaining[0].name[len("wal-") : -len(".seg")])
    assert 0 < first_index <= 6
    assert recovery.records[0].index == first_index
    assert recovery.next_index == 12


def test_fsync_policies(tmp_path):
    rng = np.random.default_rng(4)
    values = _values(rng)

    always = WalWriter(tmp_path / "a", fsync="always")
    always.append_frame("n0", 0, values)
    always.append_frame("n0", 1, values)
    assert always.fsyncs == 2 and always.pending == 0
    always.close()

    tick = WalWriter(tmp_path / "t", fsync="tick")
    tick.append_frame("n0", 0, values)
    assert tick.fsyncs == 0 and tick.pending == 1
    tick.append_watermark(0)
    assert tick.fsyncs == 1 and tick.pending == 0
    tick.close()

    off = WalWriter(tmp_path / "o", fsync="off")
    off.append_frame("n0", 0, values)
    off.append_watermark(0)
    assert off.fsyncs == 0 and off.pending == 2
    off.close()  # close always makes the tail durable
    assert off.fsyncs == 1 and off.pending == 0

    with pytest.raises(WalError):
        WalWriter(tmp_path / "x", fsync="sometimes")


def test_min_index_floor(tmp_path):
    writer = WalWriter(tmp_path / "wal")
    writer.append_watermark(0)
    writer.close()
    writer, _ = WalWriter.open(tmp_path / "wal", min_index=40)
    assert writer.next_index == 40
    writer.close()


def test_mid_log_discontinuity_discards_tail(tmp_path):
    rng = np.random.default_rng(5)
    writer = WalWriter(tmp_path / "wal", segment_bytes=256)
    for tick in range(6):
        writer.append_frame("n0", tick, _values(rng))
        writer.append_watermark(tick)
    writer.close()
    segments = sorted((tmp_path / "wal").glob("wal-*.seg"))
    assert len(segments) >= 3
    hole_start = int(segments[1].name[len("wal-") : -len(".seg")])
    segments[1].unlink()  # hole in the middle

    recovery = recover_wal(tmp_path / "wal")
    # Only the prefix before the hole replays; the rest is torn.
    assert recovery.next_index == hole_start
    assert recovery.torn_segment == segments[2]
    assert recovery.torn_bytes > 0
    # open() cleans the unreachable files off disk entirely.
    writer, records = WalWriter.open(tmp_path / "wal")
    assert len(records) == hole_start
    remaining = sorted((tmp_path / "wal").glob("wal-*.seg"))
    assert segments[2] not in remaining
    writer.close()


# -- torn-tail property -------------------------------------------------
# The crash contract: cutting the byte stream at *any* point loses at
# most the records at and after the cut — never an earlier one, and
# recovery after truncation yields exactly the longest valid prefix.

record_specs = st.lists(
    st.one_of(
        st.tuples(
            st.just("frame"),
            st.integers(0, 3),  # node id
            st.integers(0, 50),  # tick
            st.integers(1, 4),  # rows
            st.integers(1, 5),  # cols
        ),
        st.tuples(st.just("error"), st.integers(0, 3)),
        st.tuples(st.just("watermark"), st.integers(0, 50)),
    ),
    min_size=1,
    max_size=12,
)


def _write_specs(root, specs):
    writer = WalWriter(root, fsync="off")
    boundaries = [writer.bytes_written]
    for spec in specs:
        if spec[0] == "frame":
            _, node, tick, rows, cols = spec
            values = np.full((rows, cols), float(node * 100 + tick))
            writer.append_frame(f"node-{node:02d}", tick, values)
        elif spec[0] == "error":
            writer.append_error("bad-shape", f"node-{spec[1]:02d}")
        else:
            writer.append_watermark(spec[1])
        boundaries.append(writer.bytes_written)
    writer.close()
    return boundaries


@settings(max_examples=40, deadline=None)
@given(specs=record_specs, data=st.data())
def test_truncation_recovers_longest_valid_prefix(tmp_path_factory, specs, data):
    root = tmp_path_factory.mktemp("wal")
    boundaries = _write_specs(root, specs)
    (segment,) = sorted(root.glob("wal-*.seg"))
    total = segment.stat().st_size
    assert total == _SEG_HEADER.size + boundaries[-1]

    cut = data.draw(st.integers(0, total), label="cut")
    with segment.open("r+b") as fh:
        fh.truncate(cut)

    if cut < _SEG_HEADER.size:
        # Not even a header (kill -9 during segment creation): the
        # segment is unusable and open() drops it from disk.
        recovery = recover_wal(root)
        assert recovery.records == ()
        assert recovery.torn_bytes == cut
        writer, records = WalWriter.open(root)
        assert records == ()
        assert writer.next_index == 0
        writer.close()
        return

    # Number of whole records that fit before the cut.
    survivors = sum(
        1 for b in boundaries[1:] if _SEG_HEADER.size + b <= cut
    )
    recovery = recover_wal(root)
    assert len(recovery.records) == survivors
    assert recovery.next_index == survivors
    expected_valid = _SEG_HEADER.size + boundaries[survivors]
    assert recovery.torn_bytes == cut - expected_valid
    for record, spec in zip(recovery.records, specs):
        if spec[0] == "frame":
            frame = decode_frame_record(record.payload)
            assert frame.node == f"node-{spec[1]:02d}"
            assert frame.tick == spec[2]
            assert frame.values.shape == (spec[3], spec[4])

    # Recovery is idempotent: open() truncates the torn tail, appending
    # resumes, and a second recovery sees everything.
    writer, records = WalWriter.open(root)
    assert len(records) == survivors
    writer.append_watermark(1234)
    writer.close()
    again = recover_wal(root)
    assert again.torn_bytes == 0
    assert len(again.records) == survivors + 1
    assert again.records[-1].rtype == REC_WATERMARK


@settings(max_examples=20, deadline=None)
@given(specs=record_specs, data=st.data())
def test_corruption_never_yields_wrong_records(tmp_path_factory, specs, data):
    """Flipping any byte either drops a suffix or touches nothing —
    recovered record payloads are always a prefix of what was written."""
    root = tmp_path_factory.mktemp("wal")
    _write_specs(root, specs)
    clean = recover_wal(root).records
    (segment,) = sorted(root.glob("wal-*.seg"))
    raw = bytearray(segment.read_bytes())

    pos = data.draw(
        st.integers(_SEG_HEADER.size, len(raw) - 1), label="pos"
    )
    raw[pos] ^= data.draw(st.integers(1, 255), label="xor")
    segment.write_bytes(bytes(raw))

    recovered = recover_wal(root).records
    assert len(recovered) <= len(clean)
    for got, want in zip(recovered, clean):
        assert (got.rtype, got.payload) == (want.rtype, want.payload)


def test_record_header_constant_matches_format():
    # The scan math above hard-codes the framing; pin it.
    assert _REC_HEADER.size == 9
    assert _SEG_HEADER.size == 16

"""Tests for the extra related-work baselines (PCA, SAX, CorrMat)."""

import numpy as np
import pytest

from repro.baselines import (
    CorrelationMatrixSignature,
    PCASignature,
    SAXSignature,
    get_method,
)


@pytest.fixture
def data(rng):
    t = 300
    sig = np.sin(np.linspace(0, 15, t))
    rows = [sig * g + 0.05 * rng.standard_normal(t) for g in (1.0, 0.8, -0.9)]
    rows += [rng.standard_normal(t) * 0.2 for _ in range(3)]
    return np.asarray(rows)


class TestPCASignature:
    def test_feature_length(self, data):
        m = PCASignature(n_components=3)
        m.fit(data)
        assert m.feature_length(6, 30) == 6  # mean + std per component

    def test_components_capped_by_sensors(self, data):
        m = PCASignature(n_components=50).fit(data)
        f = m.transform(data[:, :30])
        assert f.shape == (2 * 6,)

    def test_series_matches_single(self, data):
        m = PCASignature(n_components=3).fit(data)
        batch = m.transform_series(data, 30, 10)
        for k, s in enumerate(range(0, data.shape[1] - 29, 10)):
            assert np.allclose(batch[k], m.transform(data[:, s : s + 30]),
                               atol=1e-10)

    def test_auto_fit_on_series(self, data):
        m = PCASignature(n_components=2)
        F = m.transform_series(data, 30, 10)
        assert F.shape[1] == 4

    def test_rejects_sensor_count_mismatch(self, data):
        m = PCASignature(n_components=2).fit(data)
        with pytest.raises(ValueError):
            m.transform(data[:3, :30])

    def test_unfitted_transform_raises(self, data):
        with pytest.raises(RuntimeError):
            PCASignature().transform(data[:, :30])

    def test_rejects_bad_components(self):
        with pytest.raises(ValueError):
            PCASignature(n_components=0)


class TestSAXSignature:
    def test_symbols_in_alphabet(self, data):
        m = SAXSignature(segments=4, alphabet=6).fit(data)
        f = m.transform(data[:, :40])
        assert f.shape == (6 * 4,)
        assert f.min() >= 0 and f.max() <= 5
        assert np.allclose(f, np.round(f))  # integer symbols

    def test_monotone_in_value(self):
        # A high-value window must map to higher symbols than a low one.
        S = np.linspace(-3, 3, 300)[None, :]
        m = SAXSignature(segments=2, alphabet=8).fit(S)
        lo = m.transform(S[:, :50])
        hi = m.transform(S[:, -50:])
        assert hi.mean() > lo.mean()

    def test_series_matches_single(self, data):
        m = SAXSignature(segments=3, alphabet=5).fit(data)
        batch = m.transform_series(data, 20, 10)
        for k, s in enumerate(range(0, data.shape[1] - 19, 10)):
            assert np.allclose(batch[k], m.transform(data[:, s : s + 20]))

    def test_segments_capped_by_window(self, data):
        m = SAXSignature(segments=10, alphabet=4).fit(data)
        f = m.transform(data[:, :5])
        assert f.shape == (6 * 5,)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            SAXSignature(segments=0)
        with pytest.raises(ValueError):
            SAXSignature(alphabet=1)
        with pytest.raises(ValueError):
            SAXSignature(alphabet=27)


class TestCorrMatSignature:
    def test_feature_length_quadratic(self):
        m = CorrelationMatrixSignature()
        assert m.feature_length(6, 30) == 15
        assert m.feature_length(52, 30) == 52 * 51 // 2

    def test_values_in_range(self, data):
        f = CorrelationMatrixSignature().transform(data[:, :50])
        assert np.all(f >= -1.0 - 1e-9) and np.all(f <= 1.0 + 1e-9)

    def test_detects_correlation_structure(self, data):
        f = CorrelationMatrixSignature().transform(data[:, :100])
        # Rows 0 and 1 follow the same signal -> first coefficient high;
        # rows 0 and 2 are anti-correlated -> second coefficient low.
        assert f[0] > 0.8
        assert f[1] < -0.8

    def test_single_sample_window(self, data):
        f = CorrelationMatrixSignature().transform(data[:, :1])
        assert np.allclose(f, 0.0)

    def test_registered(self):
        assert isinstance(get_method("corrmat"), CorrelationMatrixSignature)
        assert isinstance(get_method("pca"), PCASignature)
        assert isinstance(get_method("sax"), SAXSignature)

"""Tests for the five segment generators and the ML dataset builder."""

import numpy as np
import pytest

from repro.baselines import get_method
from repro.datasets.faults import fault_names
from repro.datasets.generators import (
    build_ml_dataset,
    generate_segment,
)


class TestFaultSegment:
    def test_shape(self, fault_segment):
        assert fault_segment.n_components == 1
        comp = fault_segment.components[0]
        assert comp.n_sensors == 128
        assert len(comp.sensor_names) == 128

    def test_all_nine_classes_present(self, fault_segment):
        labels = fault_segment.components[0].labels
        assert set(np.unique(labels)) == set(range(9))
        assert fault_segment.label_names == fault_names(include_healthy=True)

    def test_healthy_dominates(self, fault_segment):
        labels = fault_segment.components[0].labels
        counts = np.bincount(labels)
        assert counts[0] > counts[1:].max()

    def test_finite_and_nonnegative_mostly(self, fault_segment):
        M = fault_segment.components[0].matrix
        assert np.isfinite(M).all()

    def test_reproducible(self):
        a = generate_segment("fault", seed=3, t=600)
        b = generate_segment("fault", seed=3, t=600)
        assert np.allclose(a.components[0].matrix, b.components[0].matrix)
        assert np.array_equal(a.components[0].labels, b.components[0].labels)

    def test_seed_changes_data(self):
        a = generate_segment("fault", seed=1, t=600)
        b = generate_segment("fault", seed=2, t=600)
        assert not np.allclose(a.components[0].matrix, b.components[0].matrix)

    def test_fault_visible_in_target_sensors(self, fault_segment):
        comp = fault_segment.components[0]
        labels = comp.labels
        names = list(comp.sensor_names)
        alloc_row = names.index("alloc_failures")
        memalloc_id = fault_segment.label_names.index("memalloc")
        during = comp.matrix[alloc_row, labels == memalloc_id].mean()
        healthy = comp.matrix[alloc_row, labels == 0].mean()
        assert during > healthy + 0.2


class TestApplicationSegment:
    def test_shape(self, application_segment):
        assert application_segment.n_components == 3  # fixture uses 3 nodes
        for comp in application_segment.components:
            assert comp.n_sensors == 52

    def test_labels_shared_across_nodes(self, application_segment):
        l0 = application_segment.components[0].labels
        l1 = application_segment.components[1].labels
        assert np.array_equal(l0, l1)

    def test_cross_node_correlation(self, application_segment):
        # The homogeneous-MPI property: the same sensor on two nodes is
        # strongly correlated.
        a = application_segment.components[0]
        b = application_segment.components[1]
        row = list(a.sensor_names).index("cpu_instructions")
        corr = np.corrcoef(a.matrix[row], b.matrix[row])[0, 1]
        assert corr > 0.8

    def test_stacked_matrix(self, application_segment):
        stacked = application_segment.stacked_matrix()
        assert stacked.shape[0] == 3 * 52
        names = application_segment.stacked_sensor_names()
        assert len(names) == 3 * 52
        assert names[0].startswith("node00.")


class TestPowerSegment:
    def test_target_is_power_sensor(self, power_segment):
        comp = power_segment.components[0]
        row = list(comp.sensor_names).index("power_node")
        assert np.allclose(comp.target, comp.matrix[row])

    def test_sensor_count(self, power_segment):
        assert power_segment.components[0].n_sensors == 47

    def test_has_core_level_sensors(self, power_segment):
        names = power_segment.components[0].sensor_names
        assert any(n.startswith("core0_") for n in names)

    def test_target_has_dynamics(self, power_segment):
        target = power_segment.components[0].target
        assert target.std() > 0.01


class TestInfrastructureSegment:
    def test_rack_count_and_sensors(self, infrastructure_segment):
        assert infrastructure_segment.n_components == 2
        for comp in infrastructure_segment.components:
            assert comp.n_sensors == 31

    def test_target_positive_and_smooth(self, infrastructure_segment):
        heat = infrastructure_segment.components[0].target
        assert heat.min() > 0.0
        # Slowly drifting: one-step changes are small vs overall range.
        assert np.abs(np.diff(heat)).mean() < 0.1 * (heat.max() - heat.min())

    def test_heat_tracks_rack_power(self, infrastructure_segment):
        comp = infrastructure_segment.components[0]
        row = list(comp.sensor_names).index("rack_power")
        corr = np.corrcoef(comp.matrix[row], comp.target)[0, 1]
        assert corr > 0.5


class TestCrossArchSegment:
    def test_paper_sensor_counts(self, crossarch_segment):
        assert [c.n_sensors for c in crossarch_segment.components] == [52, 46, 39]

    def test_six_classes_no_idle(self, crossarch_segment):
        assert len(crossarch_segment.label_names) == 6
        assert "idle" not in crossarch_segment.label_names

    def test_archs_differ(self, crossarch_segment):
        archs = [c.arch for c in crossarch_segment.components]
        assert len(set(archs)) == 3


class TestGenerateSegmentDispatch:
    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            generate_segment("bogus")

    def test_alias(self):
        seg = generate_segment("crossarch", seed=0, t=400)
        assert seg.spec.name == "cross-architecture"


class TestBuildMLDataset:
    def test_classification_dataset(self, application_segment):
        ds = build_ml_dataset(application_segment, lambda: get_method("cs-5"))
        assert ds.task == "classification"
        assert ds.X.shape[1] == 10  # 5 real + 5 imag
        assert ds.X.shape[0] == ds.y.shape[0] == ds.groups.shape[0]
        assert ds.generation_time_s > 0

    def test_regression_truncates_horizon(self, power_segment):
        ds = build_ml_dataset(power_segment, lambda: get_method("cs-5"))
        spec = power_segment.spec
        t = power_segment.components[0].t
        expected = len(
            [s for s in range(0, t - spec.wl + 1, spec.ws)
             if s + spec.wl + spec.horizon <= t]
        )
        assert ds.n_samples == expected

    def test_groups_identify_components(self, application_segment):
        ds = build_ml_dataset(application_segment, lambda: get_method("cs-5"))
        assert set(np.unique(ds.groups)) == {0, 1, 2}

    def test_custom_window_parameters(self, application_segment):
        ds_small = build_ml_dataset(
            application_segment, lambda: get_method("cs-5"), wl=60, ws=30
        )
        ds_default = build_ml_dataset(application_segment, lambda: get_method("cs-5"))
        assert ds_small.n_samples < ds_default.n_samples

    def test_baseline_method(self, application_segment):
        ds = build_ml_dataset(application_segment, lambda: get_method("lan"))
        lan = get_method("lan")
        assert ds.X.shape[1] == lan.feature_length(52, application_segment.spec.wl)

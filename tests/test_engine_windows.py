"""Tests for the engine's window plans and prefix-sum reductions."""

import numpy as np
import pytest

from repro.core.blocks import block_bounds
from repro.datasets.windows import window_starts
from repro.engine.windows import (
    WindowPlan,
    partition_bounds,
    prefix_sums,
    segment_means,
    segment_sums,
    window_means,
    window_sums,
    windowed_view,
)


class TestWindowPlan:
    def test_counts_match_window_starts(self):
        for t, wl, ws in [(100, 10, 5), (9, 10, 1), (10, 10, 10), (57, 13, 7)]:
            plan = WindowPlan(t, wl, ws)
            starts = window_starts(t, wl, ws)
            assert plan.num == starts.size
            assert np.array_equal(plan.starts, starts)

    def test_lasts(self):
        plan = WindowPlan(30, 10, 5)
        assert np.array_equal(plan.lasts, plan.starts + 9)

    def test_first_refs_exact(self):
        plan = WindowPlan(40, 10, 5)
        refs = plan.first_refs(True)
        assert refs[0] == 0  # first window has no preceding sample
        assert np.array_equal(refs[1:], plan.starts[1:] - 1)

    def test_first_refs_inexact(self):
        plan = WindowPlan(40, 10, 5)
        assert np.array_equal(plan.first_refs(False), plan.starts)

    def test_emit_rule_matches_offline_schedule(self):
        plan = WindowPlan(200, 12, 5)
        emits = [c for c in range(1, 201) if plan.emits_at(c)]
        # One emit per planned window, at start + wl samples.
        assert np.array_equal(np.asarray(emits), plan.starts + plan.wl)

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowPlan(10, 0, 1)
        with pytest.raises(ValueError):
            WindowPlan(10, 1, 0)
        with pytest.raises(ValueError):
            WindowPlan(-1, 1, 1)


class TestWindowedView:
    def test_matches_manual_slices(self, rng):
        S = rng.random((4, 37))
        view = windowed_view(S, 8, 3)
        starts = window_starts(37, 8, 3)
        assert view.shape == (starts.size, 4, 8)
        for k, s in enumerate(starts):
            assert np.array_equal(view[k], S[:, s : s + 8])

    def test_zero_copy(self, rng):
        S = rng.random((3, 50))
        view = windowed_view(S, 10, 2)
        assert np.shares_memory(view, np.ascontiguousarray(S))

    def test_short_series_empty(self, rng):
        S = rng.random((3, 5))
        assert windowed_view(S, 6, 1).shape == (0, 3, 6)

    def test_batched_leading_axis(self, rng):
        S = rng.random((5, 4, 30))
        view = windowed_view(S, 6, 4)
        for b in range(5):
            assert np.array_equal(view[b], windowed_view(S[b], 6, 4))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            windowed_view(np.arange(10.0), 2, 1)


class TestReductions:
    def test_prefix_sums(self, rng):
        X = rng.random((3, 10))
        csum = prefix_sums(X)
        assert csum.shape == (3, 11)
        assert np.allclose(csum[:, 0], 0.0)
        assert np.allclose(csum[:, -1], X.sum(axis=1))

    def test_window_sums_and_means(self, rng):
        X = rng.random((4, 25))
        plan = WindowPlan(25, 6, 3)
        sums = window_sums(X, plan)
        means = window_means(X, plan)
        for k, s in enumerate(plan.starts):
            assert np.allclose(sums[:, k], X[:, s : s + 6].sum(axis=1))
            assert np.allclose(means[:, k], X[:, s : s + 6].mean(axis=1))

    def test_segment_reductions(self, rng):
        X = rng.random((2, 9))
        starts = np.array([0, 3, 5])
        ends = np.array([3, 7, 9])
        sums = segment_sums(X, starts, ends)
        means = segment_means(X, starts, ends)
        for j, (s, e) in enumerate(zip(starts, ends)):
            assert np.allclose(sums[:, j], X[:, s:e].sum(axis=1))
            assert np.allclose(means[:, j], X[:, s:e].mean(axis=1))

    def test_overlapping_segments(self, rng):
        X = rng.random(10)
        starts, ends = partition_bounds(10, 3)
        means = segment_means(X, starts, ends)
        assert means.shape == (3,)
        for j, (s, e) in enumerate(zip(starts, ends)):
            assert means[j] == pytest.approx(X[s:e].mean())


class TestPartitionBounds:
    def test_is_block_bounds(self):
        for n, l in [(10, 3), (7, 7), (100, 1), (31, 20)]:
            ps, pe = partition_bounds(n, l)
            bs, be = block_bounds(n, l)
            assert np.array_equal(ps, bs)
            assert np.array_equal(pe, be)

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_bounds(3, 4)
        with pytest.raises(ValueError):
            partition_bounds(0, 1)
        with pytest.raises(ValueError):
            partition_bounds(3, 0)


class TestBatchKernels:
    """The ND kernels must match their 2-D core counterparts bitwise."""

    def test_sort_rows_batch_matches_sort_rows(self, rng):
        from repro.core.pipeline import CorrelationWiseSmoothing
        from repro.core.sorting import sort_rows
        from repro.engine.batch import sort_rows_batch

        mats = [rng.random((5, 40)) for _ in range(6)]
        models = [CorrelationWiseSmoothing().fit(S).model for S in mats]
        stack = np.stack(mats)
        out = sort_rows_batch(
            stack,
            np.stack([m.permutation for m in models]),
            np.stack([m.lower for m in models]),
            np.stack([m.upper for m in models]),
        )
        for k, (S, m) in enumerate(zip(mats, models)):
            assert np.array_equal(out[k], sort_rows(S, m))

    def test_normalize_rows_batch_matches_2d(self, rng):
        from repro.core.sorting import normalize_rows
        from repro.engine.batch import normalize_rows_batch

        X = rng.random((3, 4, 20)) * 4.0 - 1.0
        lower = X.min(axis=2) + 0.1   # force some clipping
        upper = X.max(axis=2) - 0.1
        upper[0, 0] = lower[0, 0]     # and one degenerate row
        out = normalize_rows_batch(X, lower, upper)
        for k in range(3):
            assert np.array_equal(out[k], normalize_rows(X[k], lower[k], upper[k]))

    def test_smooth_windows_batch_matches_2d(self, rng):
        from repro.core.smoothing import smooth_windows
        from repro.engine.batch import smooth_windows_batch

        X = rng.random((4, 6, 50))
        for exact in (True, False):
            out = smooth_windows_batch(X, 3, 10, 4, exact_first_derivative=exact)
            for k in range(4):
                ref = smooth_windows(X[k], 3, 10, 4, exact_first_derivative=exact)
                assert np.array_equal(out[k], ref)

    def test_smooth_windows_batch_validation(self):
        from repro.engine.batch import smooth_windows_batch

        with pytest.raises(ValueError):
            smooth_windows_batch(np.zeros(5), 1, 2, 1)
        with pytest.raises(ValueError):
            smooth_windows_batch(np.zeros((2, 10)), 3, 2, 1)  # l > n

"""Store replay vs live ingestion: byte-identity, lineage, memory."""

import json
import os
import subprocess
import sys
import tracemalloc
from pathlib import Path

import numpy as np
import pytest

from repro.monitoring.telestore import TelemetryRecorder, TeleStore
from repro.service.fastreplay import (
    FastReplayError,
    record_fleet,
    replay_from_store,
    slice_setup,
)
from repro.service.replay import fleet_recipes, prepare_fleet, replay

REPO = Path(__file__).resolve().parents[1]


def _jsonl(events):
    return "\n".join(json.dumps(e) for e in events)


@pytest.fixture(scope="module")
def small_setup():
    return prepare_fleet(
        fleet_recipes(3, t=2000), blocks=8, trees=5, train_frac=0.5, seed=0
    )


@pytest.fixture(scope="module")
def small_store(small_setup, tmp_path_factory):
    root = tmp_path_factory.mktemp("stores") / "fleet"
    return record_fleet(
        small_setup, root, partition_ticks=256, chunk=10, guarded=True
    )


class TestByteIdentity:
    @pytest.mark.parametrize("backend", ["staged", "fused"])
    def test_full_window_matches_guarded_live(
        self, small_setup, small_store, backend
    ):
        live = replay(small_setup, chunk=10, backend="staged", guard=True)
        fast = replay_from_store(small_setup, small_store, backend=backend)
        assert _jsonl(fast.events) == _jsonl(live.events)
        assert fast.events, "drill needs a non-empty alert stream"
        assert fast.n_windows == live.n_windows
        assert fast.window_accuracy == live.window_accuracy

    def test_unguarded_recording_matches_unguarded_live(
        self, small_setup, tmp_path
    ):
        store = record_fleet(
            small_setup,
            tmp_path / "raw",
            partition_ticks=300,
            chunk=10,
            guarded=False,
        )
        live = replay(small_setup, chunk=10, backend="fused", guard=False)
        fast = replay_from_store(small_setup, store, backend="fused")
        assert _jsonl(fast.events) == _jsonl(live.events)
        assert all("health" not in e for e in fast.events)

    @pytest.mark.parametrize("live_chunk", [10, 37, 256])
    def test_any_live_chunk_reproduced(
        self, small_setup, small_store, live_chunk
    ):
        live = replay(
            small_setup, chunk=live_chunk, backend="staged", guard=True
        )
        fast = replay_from_store(
            small_setup, small_store, live_chunk=live_chunk
        )
        assert _jsonl(fast.events) == _jsonl(live.events)

    def test_sub_window_matches_fresh_live_detector(
        self, small_setup, small_store
    ):
        t0, t1 = 200, 800
        live = replay(
            slice_setup(small_setup, t0, t1),
            chunk=10,
            backend="fused",
            guard=True,
        )
        fast = replay_from_store(
            small_setup, small_store, t0=t0, t1=t1, backend="staged"
        )
        assert _jsonl(fast.events) == _jsonl(live.events)
        assert fast.window_accuracy == live.window_accuracy

    def test_partitioning_never_changes_events(self, small_setup, tmp_path):
        reference = None
        for ticks in (100, 512, 4096):
            store = record_fleet(
                small_setup,
                tmp_path / f"p{ticks}",
                partition_ticks=ticks,
                chunk=10,
            )
            got = _jsonl(replay_from_store(small_setup, store).events)
            if reference is None:
                reference = got
            assert got == reference


class TestLineageAndValidation:
    def test_fingerprint_mismatch_is_typed_error(
        self, small_store, tmp_path
    ):
        other = prepare_fleet(
            fleet_recipes(3, t=2000), blocks=8, trees=5, seed=1
        )
        with pytest.raises(FastReplayError, match="fingerprint mismatch"):
            replay_from_store(other, small_store)

    def test_fingerprint_check_can_be_skipped(self, small_setup, tmp_path):
        store = record_fleet(small_setup, tmp_path / "s", chunk=10)
        store.meta.pop("fingerprint")
        with pytest.raises(FastReplayError, match="no recorded fleet"):
            replay_from_store(small_setup, store)
        outcome = replay_from_store(
            small_setup, store, verify_fingerprint=False
        )
        assert outcome.n_events > 0

    def test_node_set_mismatch_is_typed_error(self, small_setup, tmp_path):
        wider = prepare_fleet(
            fleet_recipes(4, t=2000), blocks=8, trees=5, seed=0
        )
        store = record_fleet(small_setup, tmp_path / "s", chunk=10)
        with pytest.raises(FastReplayError, match="node set"):
            replay_from_store(wider, store)

    def test_misaligned_t0_requires_no_truth(self, small_setup, small_store):
        with pytest.raises(FastReplayError, match="aligned"):
            slice_setup(small_setup, 7)
        outcome = replay_from_store(small_setup, small_store, t0=7, t1=500)
        assert outcome.window_accuracy == 0.0  # ran, but unscored
        assert outcome.n_windows > 0

    def test_store_path_accepted(self, small_setup, small_store):
        outcome = replay_from_store(small_setup, str(small_store.root))
        assert outcome.n_events > 0


class TestOutOfCore:
    def test_scan_memory_bounded_by_partition(self, tmp_path):
        """Scanning a store much larger than one partition allocates on
        the order of one partition, not the store (mmap'd planes)."""
        part_ticks, n_parts, sensors = 1500, 8, 64
        plane_bytes = sensors * part_ticks * 8
        rng = np.random.default_rng(0)
        with TelemetryRecorder.create(
            tmp_path / "big",
            {"n": (sensors, np.float64)},
            partition_ticks=part_ticks,
        ) as rec:
            for _ in range(n_parts):
                rec.append({"n": rng.normal(size=(sensors, part_ticks))})
        store = TeleStore(tmp_path / "big")
        assert store.nbytes > 4 * plane_bytes
        total = 0.0
        tracemalloc.start()
        for _, block in store.scan(mmap_mode="r"):
            total += float(np.asarray(block["n"]).sum())
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert np.isfinite(total)
        # one materialized partition + slack; far below the whole store
        assert peak < 2.5 * plane_bytes
        assert peak < store.nbytes / 2


class TestCliDeterminism:
    """`repro detect --from-store` byte-identity across processes,
    backends and hash seeds — the PR 6/7 determinism contract extended
    to the store path."""

    def _detect(self, alerts, cache, store, *, hash_seed, backend, extra=()):
        cmd = [
            sys.executable, "-m", "repro", "detect", "--smoke",
            "--cache-dir", str(cache), "--alerts", str(alerts),
            "--backend", backend, *extra,
        ]
        if store is not None:
            cmd += ["--from-store", str(store)]
        env = os.environ.copy()
        env["PYTHONPATH"] = str(REPO / "src")
        env["PYTHONHASHSEED"] = str(hash_seed)
        subprocess.run(
            cmd, cwd=REPO, env=env, check=True, capture_output=True
        )
        return alerts.read_bytes()

    def test_store_replay_deterministic_across_processes(self, tmp_path):
        cache = tmp_path / "cache"
        record = [
            sys.executable, "-m", "repro", "store", "record",
            str(tmp_path / "store"), "--smoke", "--cache-dir", str(cache),
            "--partition-ticks", "500",
        ]
        env = os.environ.copy()
        env["PYTHONPATH"] = str(REPO / "src")
        subprocess.run(
            record, cwd=REPO, env=env, check=True, capture_output=True
        )
        live = self._detect(
            tmp_path / "live.jsonl", cache, None,
            hash_seed=0, backend="staged",
        )
        runs = {
            (backend, seed): self._detect(
                tmp_path / f"{backend}-{seed}.jsonl", cache,
                tmp_path / "store", hash_seed=seed, backend=backend,
            )
            for backend in ("staged", "fused")
            for seed in (0, 31337)
        }
        assert live  # non-empty stream
        for key, payload in runs.items():
            assert payload == live, f"store replay diverged for {key}"

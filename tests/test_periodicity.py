"""Tests for the Section IV-E periodicity claim.

"Like in a periodic signal, CS signatures are able to highlight periodic
behaviors only where their period p > 2 * wl, in accordance with the
sampling rate of the original data."  Window averaging acts as a low-pass
filter: oscillations slower than two windows survive in the signature
series, faster ones are averaged away.
"""

import numpy as np

from repro.core.pipeline import CorrelationWiseSmoothing


def _signature_series_amplitude(period: float, wl: int, ws: int) -> float:
    """Peak-to-peak amplitude of the real signature series for a sine."""
    rng = np.random.default_rng(0)
    t = 2000
    x = np.arange(t)
    signal = 0.5 + 0.5 * np.sin(2 * np.pi * x / period)
    S = np.stack([
        signal + 0.01 * rng.standard_normal(t) for _ in range(6)
    ])
    cs = CorrelationWiseSmoothing(blocks=2).fit(S)
    sigs = cs.transform_series(S, wl, ws)
    series = sigs.real[:, 0]
    return float(series.max() - series.min())


class TestPeriodicityVisibility:
    def test_slow_oscillation_survives(self):
        # p = 8 * wl >> 2 * wl: clearly visible.
        amp = _signature_series_amplitude(period=160.0, wl=20, ws=5)
        assert amp > 0.5

    def test_fast_oscillation_averaged_away(self):
        # p = wl / 2 << 2 * wl: each window averages whole cycles.
        amp = _signature_series_amplitude(period=10.0, wl=20, ws=5)
        assert amp < 0.2

    def test_threshold_ordering(self):
        # Visibility decreases monotonically through the p = 2*wl regime.
        wl = 20
        amps = [
            _signature_series_amplitude(period=p, wl=wl, ws=5)
            for p in (8 * wl, 2 * wl, wl // 2)
        ]
        assert amps[0] > amps[1] > amps[2]

    def test_imaginary_parts_track_the_derivative_of_the_oscillation(self):
        rng = np.random.default_rng(1)
        t = 1200
        period = 200.0
        x = np.arange(t)
        signal = 0.5 + 0.4 * np.sin(2 * np.pi * x / period)
        S = np.stack([signal + 0.01 * rng.standard_normal(t) for _ in range(4)])
        cs = CorrelationWiseSmoothing(blocks=1).fit(S)
        sigs = cs.transform_series(S, wl=20, ws=5)
        # The imaginary series should lead the real one by ~a quarter
        # period (cosine vs sine): their correlation at zero lag is small,
        # but imag correlates with the real series' gradient.
        real = sigs.real[:, 0]
        imag = sigs.imag[:, 0]
        grad = np.gradient(real)
        corr = np.corrcoef(imag[5:-5], grad[5:-5])[0, 1]
        assert corr > 0.8

"""Shared fixtures: small synthetic data and tiny segments.

Segment fixtures are session-scoped because generation is the slowest
part of the suite; tests must not mutate them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.generators import (
    generate_application,
    generate_cross_architecture,
    generate_fault,
    generate_infrastructure,
    generate_power,
)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def correlated_matrix(rng) -> np.ndarray:
    """A 12x400 matrix shaped like monitoring data for ordering checks.

    Rows 0-5 follow +signal (the dominant, positively correlated family —
    as in real systems where most sensors respond to load), rows 6-8
    follow -signal, rows 9-11 are pure noise.  Under the shifted-
    correlation ordering the positive family should lead, the noise rows
    sit in the middle, and the anti-correlated family lands at the end.
    """
    t = 400
    signal = np.sin(np.linspace(0.0, 12.0, t))
    rows = []
    for i in range(6):
        rows.append(2.0 + signal * (1.0 + 0.1 * i) + 0.05 * rng.standard_normal(t))
    for i in range(3):
        rows.append(1.0 - signal * (1.0 + 0.1 * i) + 0.05 * rng.standard_normal(t))
    for _ in range(3):
        rows.append(rng.standard_normal(t))
    return np.asarray(rows)


@pytest.fixture(scope="session")
def fault_segment():
    return generate_fault(seed=7, t=5000)


@pytest.fixture(scope="session")
def application_segment():
    return generate_application(seed=7, t=900, nodes=3)


@pytest.fixture(scope="session")
def power_segment():
    return generate_power(seed=7, t=2500)


@pytest.fixture(scope="session")
def infrastructure_segment():
    return generate_infrastructure(seed=7, t=700, racks=2)


@pytest.fixture(scope="session")
def crossarch_segment():
    return generate_cross_architecture(seed=7, t=900)

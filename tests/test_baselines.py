"""Tests for the Tuncer, Bodik and Lan baseline signature methods."""

import numpy as np
import pytest

from repro.baselines import (
    BodikSignature,
    LanSignature,
    TuncerSignature,
    get_method,
    list_methods,
)


@pytest.fixture
def window(rng):
    return rng.random((6, 40))


class TestTuncer:
    def test_feature_length(self):
        assert TuncerSignature().feature_length(6, 40) == 66

    def test_known_values(self):
        Sw = np.array([[0.0, 1.0, 2.0, 3.0]])
        f = TuncerSignature().transform(Sw)
        assert f.shape == (11,)
        assert f[0] == pytest.approx(1.5)          # mean
        assert f[1] == pytest.approx(np.std([0, 1, 2, 3]))
        assert f[2] == pytest.approx(0.0)          # min
        assert f[3] == pytest.approx(3.0)          # max
        assert f[6] == pytest.approx(1.5)          # median
        assert f[9] == pytest.approx(3.0)          # sum of changes
        assert f[10] == pytest.approx(3.0)         # abs sum of changes

    def test_abs_sum_of_changes_differs_for_oscillation(self):
        Sw = np.array([[0.0, 1.0, 0.0, 1.0]])
        f = TuncerSignature().transform(Sw)
        assert f[9] == pytest.approx(1.0)
        assert f[10] == pytest.approx(3.0)

    def test_series_matches_single(self, rng):
        S = rng.random((4, 60))
        m = TuncerSignature()
        batch = m.transform_series(S, 15, 7)
        for k, s in enumerate(range(0, 46, 7)):
            assert np.allclose(batch[k], m.transform(S[:, s : s + 15]))

    def test_single_sample_window(self):
        f = TuncerSignature().transform(np.array([[5.0]]))
        assert f[0] == 5.0 and f[9] == 0.0 and f[10] == 0.0

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            TuncerSignature().transform(np.arange(4.0))


class TestBodik:
    def test_feature_length(self):
        assert BodikSignature().feature_length(6, 40) == 54

    def test_known_values(self):
        Sw = np.array([[0.0, 1.0, 2.0, 3.0]])
        f = BodikSignature().transform(Sw)
        assert f.shape == (9,)
        assert f[0] == pytest.approx(0.0)   # min
        assert f[1] == pytest.approx(3.0)   # max
        assert f[5] == pytest.approx(1.5)   # median (p50)

    def test_percentiles_monotone(self, window):
        f = BodikSignature().transform(window).reshape(6, 9)
        # min <= p5 <= p25 <= ... <= p95 <= max per sensor.
        ordered = np.column_stack(
            [f[:, 0], f[:, 2], f[:, 3], f[:, 4], f[:, 5], f[:, 6], f[:, 7], f[:, 8], f[:, 1]]
        )
        assert np.all(np.diff(ordered, axis=1) >= -1e-12)

    def test_series_matches_single(self, rng):
        S = rng.random((3, 50))
        m = BodikSignature()
        batch = m.transform_series(S, 10, 5)
        for k, s in enumerate(range(0, 41, 5)):
            assert np.allclose(batch[k], m.transform(S[:, s : s + 10]))


class TestLan:
    def test_feature_length(self):
        assert LanSignature(wr=5).feature_length(4, 40) == 20

    def test_mean_filter_values(self):
        Sw = np.array([[1.0, 1.0, 3.0, 3.0]])
        f = LanSignature(wr=2).transform(Sw)
        assert np.allclose(f, [1.0, 3.0])

    def test_short_window_shrinks(self):
        Sw = np.array([[1.0, 2.0, 3.0]])
        f = LanSignature(wr=5).transform(Sw)
        assert f.shape == (3,)
        assert np.allclose(f, [1.0, 2.0, 3.0])

    def test_preserves_coarse_time_order(self):
        ramp = np.linspace(0.0, 1.0, 30)[None, :]
        f = LanSignature(wr=5).transform(ramp)
        assert np.all(np.diff(f) > 0)

    def test_series_matches_single(self, rng):
        S = rng.random((3, 44))
        m = LanSignature(wr=4)
        batch = m.transform_series(S, 12, 6)
        for k, s in enumerate(range(0, 33, 6)):
            assert np.allclose(batch[k], m.transform(S[:, s : s + 12]))

    def test_rejects_bad_wr(self):
        with pytest.raises(ValueError):
            LanSignature(wr=0)


class TestRegistry:
    def test_lists_baselines(self):
        names = list_methods()
        assert {"tuncer", "bodik", "lan"} <= set(names)

    def test_get_by_name_case_insensitive(self):
        assert isinstance(get_method("TUNCER"), TuncerSignature)

    def test_cs_names(self):
        m = get_method("cs-20")
        assert m.name == "CS-20"
        m = get_method("cs-all")
        assert m.name == "CS-All"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_method("unknown-method")

    def test_signature_sizes_match_paper_formulas(self):
        # l = n*11 (Tuncer), n*9 (Bodik), n*wr (Lan).
        n, wl = 52, 30
        assert get_method("tuncer").feature_length(n, wl) == n * 11
        assert get_method("bodik").feature_length(n, wl) == n * 9
        lan = get_method("lan")
        assert lan.feature_length(n, wl) == n * lan.wr


class TestCompressionOrdering:
    def test_cs_is_smallest(self, rng):
        # Figure 3b: CS signatures are up to an order of magnitude
        # smaller than the baselines'.
        S = rng.random((52, 200))
        cs = get_method("cs-20")
        cs.fit(S)
        f_cs = cs.transform_series(S, 30, 5)
        f_tuncer = get_method("tuncer").transform_series(S, 30, 5)
        assert f_cs.shape[1] * 10 <= f_tuncer.shape[1]

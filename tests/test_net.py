"""Ingestion-server tests: backpressure, barrier, guard routing, ops API.

The headline contract: alert JSONL produced from frames ingested over a
real loopback socket is byte-identical to the in-process replay of the
same configuration — for both frame encodings.  Around it: the bounded
per-node queues enforce their drop-oldest/coalesce policies under
seeded bursty feeding, protocol garbage lands in the guard's
quarantine machinery instead of crashing the loop, and the HTTP ops
surface reads the same live state the sinks see.
"""

import json
import socket
import urllib.request

import numpy as np
import pytest

from repro.service.api import (
    ServiceConfig,
    build_detector,
    build_setup,
    replay,
)
from repro.service.net import (
    BackpressureConfig,
    FleetServer,
    ListAlertSink,
    NodeQueue,
    loadgen,
    parse_address,
)
from repro.service.protocol import (
    Frame,
    encode_binary,
    encode_eof,
    encode_json,
)

CFG = ServiceConfig.smoke()


@pytest.fixture(scope="module")
def setup():
    return build_setup(CFG)


@pytest.fixture(scope="module")
def reference(setup):
    sink = ListAlertSink()
    outcome = replay(CFG, setup, sinks=(sink,))
    return outcome, sink.text()


def _serve(setup, *, config=CFG, **kwargs):
    server = FleetServer(
        build_detector(config, setup), exit_on_idle=True, **kwargs
    )
    thread = server.start_background()
    assert server.ready.wait(10)
    return server, thread


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("127.0.0.1:7000") == ("127.0.0.1", 7000)

    def test_rejects_bare_port(self):
        with pytest.raises(ValueError):
            parse_address("7000")


class TestBackpressureQueue:
    def test_drop_oldest_evicts_head(self):
        q = NodeQueue(BackpressureConfig(queue_max=3, policy="drop-oldest"))
        for tick in range(5):
            q.push(tick, None, 0)
        assert [e[0] for e in q.entries] == [2, 3, 4]
        assert q.dropped == 2 and q.coalesced == 0

    def test_coalesce_replaces_tail(self):
        q = NodeQueue(BackpressureConfig(queue_max=3, policy="coalesce"))
        for tick in range(5):
            q.push(tick, None, 0)
        assert [e[0] for e in q.entries] == [0, 1, 4]
        assert q.coalesced == 2 and q.dropped == 0

    def test_queue_never_exceeds_bound_under_seeded_bursts(self):
        """Invariant: whatever a bursty feeder does, len(queue) <=
        queue_max and every overflow is accounted for in exactly one
        counter."""
        rng = np.random.default_rng(7)
        for policy in ("drop-oldest", "coalesce"):
            q = NodeQueue(BackpressureConfig(queue_max=8, policy=policy))
            pushed = 0
            for _ in range(50):
                for _ in range(int(rng.integers(0, 12))):  # burst
                    q.push(pushed, None, 1)
                    pushed += 1
                    assert len(q) <= 8
                for _ in range(int(rng.integers(0, 4))):  # partial drain
                    if q.entries:
                        q.entries.popleft()
            drained = pushed - len(q) - q.dropped - q.coalesced
            assert drained >= 0  # everything is in a queue or a counter

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            BackpressureConfig(policy="random-drop")
        with pytest.raises(ValueError, match="queue_max"):
            BackpressureConfig(queue_max=0)


class TestLoopbackIdentity:
    @pytest.mark.parametrize("fmt", ["binary", "json"])
    def test_network_alerts_byte_identical_to_inprocess(
        self, setup, reference, fmt
    ):
        _, ref_text = reference
        sink = ListAlertSink()
        server, thread = _serve(setup, sinks=(sink,))
        loadgen(setup, ("127.0.0.1", server.port), chunk=CFG.chunk, fmt=fmt)
        thread.join(60)
        assert not thread.is_alive()
        assert sink.text() == ref_text
        assert server.stats.garbage == 0
        assert server.stats.frames == server.stats.ticks * len(
            setup.eval_data
        )

    def test_one_socket_per_node_still_identical(self, setup, reference):
        """Frames arriving on separate connections (one agent per node,
        interleaved by tick) reassemble into the same tick bursts."""
        _, ref_text = reference
        sink = ListAlertSink()
        server, thread = _serve(setup, sinks=(sink,))
        paths = sorted(setup.eval_data)
        socks = {
            p: socket.create_connection(("127.0.0.1", server.port))
            for p in paths
        }
        horizon = max(m.shape[1] for m in setup.eval_data.values())
        for ti in range((horizon + CFG.chunk - 1) // CFG.chunk):
            lo = ti * CFG.chunk
            for p in paths:
                m = setup.eval_data[p]
                if lo < m.shape[1]:
                    socks[p].sendall(
                        encode_binary(p, ti, m[:, lo : lo + CFG.chunk])
                    )
        for p in paths:
            socks[p].sendall(encode_eof())
            socks[p].close()
        thread.join(60)
        assert not thread.is_alive()
        assert sink.text() == ref_text

    def test_port_file_written(self, setup, tmp_path):
        port_file = tmp_path / "sub" / "port"
        server, thread = _serve(setup, port_file=port_file)
        assert int(port_file.read_text()) == server.port
        assert not (tmp_path / "sub" / "port.ops").exists()
        server.request_stop()
        thread.join(30)
        assert not thread.is_alive()

    def test_ops_port_lands_in_companion_file(self, setup, tmp_path):
        """With an ephemeral --ops port, the bound port is discoverable
        via <port_file>.ops — the only channel a scripted caller has."""
        port_file = tmp_path / "port"
        server, thread = _serve(
            setup, port_file=port_file, ops_host="127.0.0.1", ops_port=0
        )
        ops_file = tmp_path / "port.ops"
        assert int(ops_file.read_text()) == server.ops_bound_port
        server.request_stop()
        thread.join(30)
        assert not thread.is_alive()


class TestGuardRouting:
    def test_garbage_frame_poisons_node_into_guard(self, setup):
        """A corrupt frame that still names a node must degrade that
        node through the PR 7 guard (shape-mismatch fault), and enough
        of them must quarantine it — never crash the pump."""
        sink = ListAlertSink()
        server, thread = _serve(setup, sinks=(sink,))
        paths = sorted(setup.eval_data)
        victim = paths[0]
        with socket.create_connection(
            ("127.0.0.1", server.port)
        ) as sock:
            for tick in range(4):
                # Valid JSON naming the victim but with no tick: the
                # decoder attributes the error, the server poisons the
                # victim's queue, the guard counts a fault.
                sock.sendall(
                    json.dumps({"node": victim, "values": []}).encode()
                    + b"\n"
                )
                # The other nodes tick normally so the barrier advances.
                for p in paths[1:]:
                    m = setup.eval_data[p]
                    sock.sendall(
                        encode_binary(p, tick, m[:, :CFG.chunk])
                    )
            sock.sendall(encode_eof())
        thread.join(60)
        assert not thread.is_alive()
        assert server.stats.poisoned == 4
        health = server.guarded.fleet_health()
        assert health["nodes"][victim]["state"] in (
            "degraded",
            "quarantined",
        )
        assert health["nodes"][victim]["fault_counts"]["shape-mismatch"] >= 1
        guard_events = [
            line for line in sink.lines if '"event":"guard"' in line
        ]
        assert guard_events, "guard degradation must surface in the stream"

    def test_unknown_node_surfaces_as_guard_reject(self, setup):
        sink = ListAlertSink()
        server, thread = _serve(setup, sinks=(sink,))
        paths = sorted(setup.eval_data)
        m0 = setup.eval_data[paths[0]]
        with socket.create_connection(
            ("127.0.0.1", server.port)
        ) as sock:
            sock.sendall(encode_binary("rack9/node99", 0, m0[:, :CFG.chunk]))
            for p in paths:
                sock.sendall(
                    encode_binary(p, 0, setup.eval_data[p][:, :CFG.chunk])
                )
            sock.sendall(encode_eof())
        thread.join(60)
        assert not thread.is_alive()
        assert server.stats.strays == 1
        assert any(
            '"fault":"unknown-node"' in line for line in sink.lines
        )

    def test_pure_garbage_connection_is_survived(self, setup):
        server, thread = _serve(setup)
        # Keepalive connection: with exit_on_idle, the garbage
        # connection closing must not race the server into drain-and-
        # exit before the real feed connects.
        keep = socket.create_connection(("127.0.0.1", server.port))
        try:
            with socket.create_connection(
                ("127.0.0.1", server.port)
            ) as sock:
                sock.sendall(b"\x00\x01\xfe\xfdGET / HTTP/1.1\r\n\r\n")
            # The garbage connection closed; feed a real run afterwards.
            loadgen(
                setup,
                ("127.0.0.1", server.port),
                chunk=CFG.chunk,
                fmt="binary",
            )
        finally:
            keep.close()
        thread.join(60)
        assert not thread.is_alive()
        assert server.stats.garbage >= 1
        assert server.stats.ticks > 0


class TestStrayBounds:
    def test_stray_flood_is_bounded(self, setup):
        """Unknown-node frames must not grow server memory without
        limit during a barrier stall: at most MAX_STRAY_NODES distinct
        paths are buffered, the rest are counted and dropped."""
        server = FleetServer(build_detector(CFG, setup))
        server.MAX_STRAY_NODES = 4
        values = np.zeros((2, 3))
        for i in range(10):
            server._route_frame(Frame(f"ghost/node{i}", 0, values))
        assert len(server._pending) == 4
        assert server.stats.strays == 10
        assert server.stats.stray_dropped == 6
        # A path already pending is refreshed in place, never dropped.
        server._route_frame(Frame("ghost/node0", 1, values))
        assert len(server._pending) == 4
        assert server.stats.stray_dropped == 6
        assert server.stats.snapshot()["protocol"]["stray_dropped"] == 6

    def test_empty_fleet_rejected_at_construction(self):
        """Zero registered paths would make the barrier trivially
        complete and busy-spin the pump; refuse it up front."""
        from repro.service.guard import GuardedDetector

        class _NoNodes(GuardedDetector):
            def __init__(self):  # only .paths is consulted before the raise
                pass

            @property
            def paths(self):
                return []

        with pytest.raises(ValueError, match="no registered node paths"):
            FleetServer(_NoNodes())


class TestAlertLog:
    def _open(self, node, window=0):
        return {"event": "open", "node": node, "window": window}

    def test_reopen_supersedes_stale_open(self):
        from repro.service.ops import AlertLog

        log = AlertLog()
        log.emit(self._open("n1"))
        log.emit(self._open("n1", window=5))
        assert [r["state"] for r in log.records()] == ["superseded", "open"]
        log.emit({"event": "close", "node": "n1", "window": 9})
        assert [r["state"] for r in log.records()] == [
            "superseded",
            "closed",
        ]

    def test_retention_bound_evicts_oldest(self):
        from repro.service.ops import AlertLog

        log = AlertLog()
        log.MAX_RECORDS = 3
        for i in range(5):
            log.emit(self._open(f"n{i}", window=i))
        records = log.records()
        assert len(records) == 3
        assert log.evicted == 2
        assert [r["id"] for r in records] == [
            "a000002",
            "a000003",
            "a000004",
        ]
        # Evicted records leave every index: ack misses, and a late
        # close for an evicted node is a no-op rather than a crash.
        assert log.ack("a000000") is False
        log.emit({"event": "close", "node": "n0"})
        assert all(r["state"] == "open" for r in log.records())
        assert log.ack("a000004") is True


class TestServeListenFlagConflicts:
    def test_interval_rejected_with_listen(self, capsys):
        """`--interval` only drives the in-process loop; combining it
        with --listen is an error, never a silent no-op (--checkpoint,
        by contrast, is now the networked-checkpoint path)."""
        from repro import cli

        rc = cli.main(
            ["serve", "--listen", "127.0.0.1:0", "--interval", "0.5"]
        )
        assert rc == 2
        assert "--listen" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "extra",
        [["--wal", "waldir"], ["--supervise"]],
    )
    def test_network_only_flags_require_listen(self, extra, capsys):
        """--wal journals network ingestion and --supervise wraps the
        network server; without --listen both are configuration errors."""
        from repro import cli

        assert cli.main(["serve", *extra]) == 2
        assert "--listen" in capsys.readouterr().err


class TestDrainAndTimeout:
    def test_chatty_live_node_cannot_postpone_timeout(self, setup):
        """The barrier deadline is absolute from when queued data first
        waited, not restarted per frame: a live node sending faster
        than tick_timeout must not let a dead node stall ticks."""
        import time

        server, thread = _serve(setup, tick_timeout=0.4)
        paths = sorted(setup.eval_data)
        live = paths[0]
        m = setup.eval_data[live]
        with socket.create_connection(
            ("127.0.0.1", server.port)
        ) as sock:
            deadline = time.monotonic() + 15
            tick = 0
            while server.stats.ticks < 2 and time.monotonic() < deadline:
                sock.sendall(encode_binary(live, tick, m[:, : CFG.chunk]))
                tick += 1
                time.sleep(0.05)
            assert server.stats.ticks >= 2
            sock.sendall(encode_eof())
        thread.join(60)
        assert not thread.is_alive()

    def test_partial_fleet_processed_after_tick_timeout(self, setup):
        """A dead agent must not stall the world: with one node silent
        and the connection held open, the barrier breaks after
        tick_timeout and the live node's frames are processed."""
        import time

        server, thread = _serve(setup, tick_timeout=0.2)
        paths = sorted(setup.eval_data)
        live = paths[0]
        m = setup.eval_data[live]
        with socket.create_connection(
            ("127.0.0.1", server.port)
        ) as sock:
            for tick in range(2):
                sock.sendall(
                    encode_binary(
                        live, tick, m[:, tick * CFG.chunk :][:, : CFG.chunk]
                    )
                )
            # No eof, connection stays open: only the timeout can fire.
            deadline = time.monotonic() + 15
            while server.stats.ticks < 1 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert server.stats.ticks >= 1
            sock.sendall(encode_eof())
        thread.join(60)
        assert not thread.is_alive()

    def test_late_frames_dropped(self, setup):
        server, thread = _serve(setup)
        paths = sorted(setup.eval_data)
        with socket.create_connection(
            ("127.0.0.1", server.port)
        ) as sock:
            for p in paths:  # tick 5 everywhere: cursor jumps to 5+1
                sock.sendall(
                    encode_binary(p, 5, setup.eval_data[p][:, :CFG.chunk])
                )
            # Wait until the barrier fired before sending the stale tick.
            import time

            deadline = time.monotonic() + 10
            while server.stats.ticks < 1 and time.monotonic() < deadline:
                time.sleep(0.01)
            sock.sendall(
                encode_binary(
                    paths[0], 2, setup.eval_data[paths[0]][:, :CFG.chunk]
                )
            )
            sock.sendall(encode_eof())
        thread.join(60)
        assert not thread.is_alive()
        assert server.stats.late_dropped >= 1


class TestOpsAPI:
    def _get(self, port, path):
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}{path}", timeout=10
            ) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as err:
            return err.code, json.loads(err.read())

    def _post(self, port, path):
        req = urllib.request.Request(
            f"http://127.0.0.1:{port}{path}", method="POST"
        )
        try:
            with urllib.request.urlopen(req, timeout=10) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as err:
            return err.code, json.loads(err.read())

    def test_ops_endpoints_against_live_server(self, setup):
        # exit_on_idle stays off: the server must survive the loadgen
        # connection closing so the ops queries below hit live state.
        server = FleetServer(
            build_detector(CFG, setup),
            ops_host="127.0.0.1",
            ops_port=0,
            tick_timeout=0.5,
        )
        thread = server.start_background()
        assert server.ready.wait(10)
        port = server.ops_bound_port

        status, health = self._get(port, "/health")
        assert status == 200
        assert health["status"] == "ok"
        assert health["nodes"] == len(setup.eval_data)

        status, fleet = self._get(port, "/fleet")
        assert status == 200
        assert set(fleet["fleet"]["nodes"]) == set(setup.eval_data)

        # Drive the full feed so alerts exist, then inspect them.
        loadgen(
            setup, ("127.0.0.1", server.port), chunk=CFG.chunk, fmt="binary",
            send_eof=False,
        )
        import time

        horizon = max(m.shape[1] for m in setup.eval_data.values())
        expected = -(-horizon // CFG.chunk)
        deadline = time.monotonic() + 30
        while (
            server.stats.ticks < expected and time.monotonic() < deadline
        ):
            time.sleep(0.05)

        status, alerts = self._get(port, "/alerts")
        assert status == 200
        assert alerts["schema"] == "repro-alerts/v1"
        assert alerts["alerts"], "smoke fleet must raise alerts"
        first = alerts["alerts"][0]
        assert first["open_event"]["event"] == "open"
        assert "attribution" in first["open_event"]

        aid = first["id"]
        status, body = self._post(port, f"/alerts/{aid}/ack")
        assert status == 200 and body["ack"] is True
        status, body = self._post(port, f"/alerts/{aid}/suppress")
        assert status == 200
        _, visible = self._get(port, "/alerts")
        assert aid not in [a["id"] for a in visible["alerts"]]
        _, everything = self._get(port, "/alerts?all=1")
        assert aid in [a["id"] for a in everything["alerts"]]

        status, _ = self._post(port, "/alerts/a999999/ack")
        assert status == 404
        status, _ = self._get(port, "/nope")
        assert status == 404

        status, stats = self._get(port, "/stats")
        assert status == 200
        assert stats["ticks"] == expected
        assert stats["samples_per_s"] > 0
        assert "backpressure" in stats

        server.request_stop()
        thread.join(30)
        assert not thread.is_alive()

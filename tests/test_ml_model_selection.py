"""Tests for K-fold splitters and cross-validation drivers."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.model_selection import (
    KFold,
    StratifiedKFold,
    cross_validate_classifier,
    cross_validate_regressor,
    repeated_cross_validate_classifier,
    repeated_cross_validate_regressor,
    train_test_split,
)


class TestKFold:
    def test_partitions_all_samples(self):
        folds = list(KFold(5).split(np.zeros(23)))
        assert len(folds) == 5
        all_test = np.concatenate([t for _, t in folds])
        assert sorted(all_test.tolist()) == list(range(23))

    def test_train_test_disjoint(self):
        for train, test in KFold(4).split(np.zeros(20)):
            assert len(np.intersect1d(train, test)) == 0
            assert len(train) + len(test) == 20

    def test_fold_sizes_uniform(self):
        sizes = [len(t) for _, t in KFold(5).split(np.zeros(23))]
        assert max(sizes) - min(sizes) <= 1

    def test_shuffle_reproducible(self):
        a = [t.tolist() for _, t in KFold(3, shuffle=True, random_state=1).split(np.zeros(12))]
        b = [t.tolist() for _, t in KFold(3, shuffle=True, random_state=1).split(np.zeros(12))]
        assert a == b

    def test_shuffle_changes_order(self):
        plain = [t.tolist() for _, t in KFold(3).split(np.zeros(12))]
        shuf = [t.tolist() for _, t in KFold(3, shuffle=True, random_state=0).split(np.zeros(12))]
        assert plain != shuf

    def test_rejects_too_few_samples(self):
        with pytest.raises(ValueError):
            list(KFold(5).split(np.zeros(3)))

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            KFold(1)


class TestStratifiedKFold:
    def test_preserves_class_ratio(self):
        y = np.array([0] * 40 + [1] * 10)
        for train, test in StratifiedKFold(5).split(np.zeros(50), y):
            # Every test fold carries 8 of class 0 and 2 of class 1.
            assert (y[test] == 0).sum() == 8
            assert (y[test] == 1).sum() == 2

    def test_partitions_all_samples(self):
        y = np.array([0, 1] * 15)
        all_test = np.concatenate(
            [t for _, t in StratifiedKFold(3).split(np.zeros(30), y)]
        )
        assert sorted(all_test.tolist()) == list(range(30))

    def test_rejects_too_small_class(self):
        y = np.array([0] * 10 + [1] * 2)
        with pytest.raises(ValueError, match="least populated"):
            list(StratifiedKFold(5).split(np.zeros(12), y))

    def test_shuffle_reproducible(self):
        y = np.array([0, 1] * 20)
        a = [t.tolist() for _, t in StratifiedKFold(4, shuffle=True, random_state=3).split(np.zeros(40), y)]
        b = [t.tolist() for _, t in StratifiedKFold(4, shuffle=True, random_state=3).split(np.zeros(40), y)]
        assert a == b

    def test_works_with_string_labels(self):
        y = np.array(["a", "b"] * 10)
        folds = list(StratifiedKFold(2).split(np.zeros(20), y))
        assert len(folds) == 2


class TestTrainTestSplit:
    def test_sizes(self):
        X = np.arange(100)[:, None]
        Xtr, Xte = train_test_split(X, test_size=0.2, random_state=0)
        assert len(Xte) == 20 and len(Xtr) == 80

    def test_multiple_arrays_consistent(self):
        X = np.arange(50)[:, None]
        y = np.arange(50)
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.3, random_state=0)
        assert np.array_equal(Xtr[:, 0], ytr)
        assert np.array_equal(Xte[:, 0], yte)

    def test_stratified_preserves_ratio(self):
        y = np.array([0] * 80 + [1] * 20)
        _, _, ytr, yte = train_test_split(
            np.zeros((100, 1)), y, test_size=0.25, random_state=0, stratify=y
        )
        assert (yte == 1).sum() == 5

    def test_rejects_inconsistent_lengths(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros(5), np.zeros(4))

    def test_rejects_bad_test_size(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros(5), test_size=1.5)


class TestCrossValidateDrivers:
    def test_classifier_scores_high_on_separable(self, rng):
        X = rng.random((150, 4))
        y = (X[:, 0] > 0.5).astype(int)
        scores = cross_validate_classifier(
            lambda: RandomForestClassifier(10, random_state=0),
            X, y, random_state=0,
        )
        assert scores.shape == (5,)
        assert scores.mean() > 0.9

    def test_regressor_scores(self, rng):
        X = rng.random((150, 3))
        y = X[:, 0] * 2.0
        scores = cross_validate_regressor(
            lambda: RandomForestRegressor(10, random_state=0),
            X, y, random_state=0,
        )
        assert scores.shape == (5,)
        assert scores.mean() > 0.8

    def test_fresh_model_per_fold(self, rng):
        X = rng.random((60, 2))
        y = (X[:, 0] > 0.5).astype(int)
        built = []

        def factory():
            m = RandomForestClassifier(2, random_state=0)
            built.append(m)
            return m

        cross_validate_classifier(factory, X, y, n_splits=3, random_state=0)
        assert len(built) == 3


class TestRepeatedCrossValidate:
    """The repeats API must equal a fresh splitter per repeat exactly."""

    def test_classifier_matches_per_repeat_loop(self, rng):
        X = rng.random((120, 5))
        y = (X[:, 0] + X[:, 1] > 1.0).astype(int)
        rep = repeated_cross_validate_classifier(
            lambda s: RandomForestClassifier(6, random_state=s),
            X, y, repeats=3, random_state=11,
        )
        loop = np.stack([
            cross_validate_classifier(
                lambda: RandomForestClassifier(6, random_state=11 + r),
                X, y, random_state=11 + r,
            )
            for r in range(3)
        ])
        assert rep.shape == (3, 5)
        assert np.array_equal(rep, loop)

    def test_regressor_matches_per_repeat_loop(self, rng):
        X = rng.random((110, 4))
        y = 2.0 * X[:, 0] + X[:, 2]
        rep = repeated_cross_validate_regressor(
            lambda s: RandomForestRegressor(6, random_state=s),
            X, y, repeats=3, random_state=4,
        )
        loop = np.stack([
            cross_validate_regressor(
                lambda: RandomForestRegressor(6, random_state=4 + r),
                X, y, random_state=4 + r,
            )
            for r in range(3)
        ])
        assert np.array_equal(rep, loop)

    def test_repeats_differ_from_each_other(self, rng):
        X = rng.random((100, 4))
        y = (X[:, 0] > 0.5).astype(int)
        rep = repeated_cross_validate_classifier(
            lambda s: RandomForestClassifier(4, random_state=s),
            X, y, repeats=2, random_state=0,
        )
        assert not np.array_equal(rep[0], rep[1])

    def test_rejects_too_small_class(self):
        y = np.array([0] * 20 + [1] * 3)
        with pytest.raises(ValueError, match="least populated"):
            repeated_cross_validate_classifier(
                lambda s: RandomForestClassifier(2, random_state=s),
                np.zeros((23, 2)), y, repeats=2, random_state=0,
            )

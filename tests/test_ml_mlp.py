"""Tests for the multi-layer perceptrons."""

import numpy as np
import pytest

from repro.ml.mlp import MLPClassifier, MLPRegressor


class TestMLPClassifier:
    def test_learns_linear_boundary(self, rng):
        X = rng.standard_normal((300, 4))
        y = (X[:, 0] + X[:, 1] > 0).astype(int)
        mlp = MLPClassifier(
            hidden_layer_sizes=(32,), max_iter=100, random_state=0
        ).fit(X, y)
        assert (mlp.predict(X) == y).mean() > 0.9

    def test_learns_xor(self, rng):
        X = rng.uniform(-1, 1, size=(400, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        mlp = MLPClassifier(
            hidden_layer_sizes=(32, 32), max_iter=300, random_state=0
        ).fit(X, y)
        assert (mlp.predict(X) == y).mean() > 0.9

    def test_paper_architecture_default(self):
        mlp = MLPClassifier()
        assert mlp.hidden_layer_sizes == (100, 100)

    def test_proba_sums_to_one(self, rng):
        X = rng.standard_normal((120, 3))
        y = (X[:, 0] > 0).astype(int)
        mlp = MLPClassifier(hidden_layer_sizes=(16,), max_iter=30, random_state=0)
        mlp.fit(X, y)
        proba = mlp.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.all(proba >= 0)

    def test_multiclass(self, rng):
        X = rng.standard_normal((450, 2))
        y = np.digitize(X[:, 0], [-0.5, 0.5])
        mlp = MLPClassifier(
            hidden_layer_sizes=(32,), max_iter=200, random_state=0
        ).fit(X, y)
        assert (mlp.predict(X) == y).mean() > 0.85

    def test_loss_decreases(self, rng):
        X = rng.standard_normal((200, 3))
        y = (X[:, 0] > 0).astype(int)
        mlp = MLPClassifier(hidden_layer_sizes=(16,), max_iter=50, random_state=0)
        mlp.fit(X, y)
        assert mlp.loss_curve_[-1] < mlp.loss_curve_[0]

    def test_early_stopping(self, rng):
        X = rng.standard_normal((100, 2))
        y = (X[:, 0] > 0).astype(int)
        mlp = MLPClassifier(
            hidden_layer_sizes=(8,),
            max_iter=500,
            tol=10.0,           # absurdly large tolerance...
            n_iter_no_change=3,  # ...stops after 3 stalled epochs
            random_state=0,
        ).fit(X, y)
        assert len(mlp.loss_curve_) <= 10

    def test_string_labels(self, rng):
        X = rng.standard_normal((100, 2))
        y = np.where(X[:, 0] > 0, "up", "down")
        mlp = MLPClassifier(hidden_layer_sizes=(8,), max_iter=40, random_state=0)
        mlp.fit(X, y)
        assert set(mlp.predict(X)) <= {"up", "down"}

    def test_reproducible(self, rng):
        X = rng.standard_normal((100, 2))
        y = (X[:, 0] > 0).astype(int)
        a = MLPClassifier(hidden_layer_sizes=(8,), max_iter=20, random_state=5).fit(X, y)
        b = MLPClassifier(hidden_layer_sizes=(8,), max_iter=20, random_state=5).fit(X, y)
        assert np.allclose(a.predict_proba(X), b.predict_proba(X))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            MLPClassifier().predict(np.zeros((1, 2)))

    def test_rejects_bad_hidden_sizes(self):
        with pytest.raises(ValueError):
            MLPClassifier(hidden_layer_sizes=(0,))


class TestMLPRegressor:
    def test_learns_linear_map(self, rng):
        X = rng.standard_normal((400, 3))
        y = 2.0 * X[:, 0] - X[:, 2]
        mlp = MLPRegressor(
            hidden_layer_sizes=(32,), max_iter=300, random_state=0
        ).fit(X, y)
        pred = mlp.predict(X)
        assert np.corrcoef(pred, y)[0, 1] > 0.95

    def test_learns_nonlinear_map(self, rng):
        X = rng.uniform(-1, 1, (500, 1))
        y = np.sin(3 * X[:, 0])
        mlp = MLPRegressor(
            hidden_layer_sizes=(64, 64), max_iter=400, random_state=0
        ).fit(X, y)
        assert np.mean((mlp.predict(X) - y) ** 2) < 0.05

    def test_output_shape_1d(self, rng):
        X = rng.standard_normal((50, 2))
        mlp = MLPRegressor(hidden_layer_sizes=(8,), max_iter=10, random_state=0)
        mlp.fit(X, X[:, 0])
        assert mlp.predict(X).shape == (50,)

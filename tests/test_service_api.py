"""Facade tests: ServiceConfig, the legacy-kwarg adapter, fleet
replication, the repro-alerts/v1 canonical payload, and the graceful
SIGINT path (finish the in-flight tick, flush open alerts, write a
final checkpoint, exit 130)."""

import json
import os
import signal
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.service.alerts import (
    ALERTS_SCHEMA,
    event_line,
    to_payload,
)
from repro.service.api import (
    ServiceConfig,
    build_detector,
    build_setup,
    config_from_kwargs,
    replay,
    replicate_setup,
)
from repro.service.net import ListAlertSink
from repro.service.replay import SERVICE_DEFAULTS, flush_open_alerts

SRC = Path(__file__).resolve().parent.parent / "src"
CFG = ServiceConfig.smoke()


@pytest.fixture(scope="module")
def setup():
    return build_setup(CFG)


class TestServiceConfig:
    def test_defaults_match_service_defaults(self):
        config = ServiceConfig()
        for knob, value in SERVICE_DEFAULTS.items():
            assert getattr(config, knob) == value
        assert config.guard is True
        assert config.backend == "staged"

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ServiceConfig().chunk = 1

    @pytest.mark.parametrize(
        "bad",
        [
            {"nodes": 0},
            {"t": 0},
            {"train_frac": 1.0},
            {"chunk": 0},
            {"open_after": 0},
            {"min_confidence": 1.5},
            {"backend": "gpu"},
            {"mode": "approximate"},
            {"replicate": -1},
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            ServiceConfig(**bad)

    def test_smoke_preset_matches_cli(self):
        smoke = ServiceConfig.smoke()
        assert (smoke.nodes, smoke.t, smoke.blocks, smoke.trees,
                smoke.chunk) == (2, 2500, 8, 6, 200)

    def test_replace_revalidates(self):
        config = ServiceConfig().replace(chunk=64)
        assert config.chunk == 64
        with pytest.raises(ValueError):
            config.replace(chunk=0)

    def test_from_evaluation_ignores_kind_extras(self):
        ev = {"blocks": 8, "trees": 6, "chunk": 200,
              "fleet_sizes": (2, 4), "kills": (3,), "formats": ("json",)}
        config = ServiceConfig.from_evaluation(ev, guard=False)
        assert config.blocks == 8 and config.chunk == 200
        assert config.guard is False

    def test_noise_seed_convention(self):
        assert ServiceConfig().noise_seed == 0
        assert ServiceConfig(noise_std=0.05).noise_seed == 11


class TestLegacyAdapter:
    def test_warns_and_maps_old_spellings(self):
        with pytest.warns(DeprecationWarning):
            config = config_from_kwargs(
                nodes=2, t=2500, model="fleet.npz", no_guard=True
            )
        assert config.model_path == "fleet.npz"
        assert config.guard is False
        assert config.nodes == 2

    def test_unknown_kwarg_is_typed_error(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="window_len"):
                config_from_kwargs(window_len=30)


class TestReplicateSetup:
    def test_replicas_share_arrays_by_reference(self, setup):
        big = replicate_setup(setup, 10)
        assert len(big.eval_data) == 10
        bases = sorted(setup.eval_data)
        reps = sorted(big.eval_data)
        for i, rep in enumerate(
            sorted(reps, key=lambda p: int(p.split("/")[0][4:]))
        ):
            base = bases[i % len(bases)]
            assert big.eval_data[rep] is setup.eval_data[base]
            assert big.trained.references[rep] is (
                setup.trained.references[base]
            )
        assert big.trained.classifier is setup.trained.classifier

    def test_replicated_fleet_replays(self, setup):
        big = replicate_setup(setup, 6)
        config = CFG.replace(nodes=6)
        sink = ListAlertSink()
        outcome = replay(config, big, sinks=(sink,))
        assert outcome.n_nodes == 6
        nodes_seen = {json.loads(line)["node"] for line in sink.lines}
        assert nodes_seen <= set(big.eval_data)
        # Replicas of the same base must alert identically (same data,
        # same model): group events by base index.
        by_node: dict[str, list] = {}
        for line in sink.lines:
            e = json.loads(line)
            by_node.setdefault(e.pop("node"), []).append(e)
        for i in range(6):
            base_like = f"rack{i % 2}/node00"
            rep = f"rack{i}/node00"
            if rep in by_node or base_like in by_node:
                assert by_node.get(rep) == by_node.get(base_like)

    def test_build_setup_applies_replicate(self):
        config = CFG.replace(replicate=5)
        setup = build_setup(config)
        assert len(setup.eval_data) == 5


class TestAlertSchema:
    def test_canonical_key_orders(self):
        open_event = {
            "health": "healthy", "attribution": [], "confidence": 0.9,
            "label": 2, "first_faulty": 3, "window": 4,
            "node": "a", "event": "open",
        }
        assert list(to_payload(open_event)) == [
            "event", "node", "window", "first_faulty", "label",
            "confidence", "attribution", "health",
        ]
        guard_event = {
            "until": 9, "state": "quarantined", "fault": "shape-mismatch",
            "severity": "critical", "action": "quarantine",
            "tick": 2, "node": "a", "event": "guard",
        }
        assert list(to_payload(guard_event)) == [
            "event", "node", "tick", "action", "severity", "fault",
            "state", "until",
        ]

    def test_unknown_keys_appended_not_dropped(self):
        event = {"event": "open", "node": "a", "custom": 1}
        payload = to_payload(event)
        assert payload["custom"] == 1

    def test_event_line_is_canonical_compact_json(self):
        event = {"node": "a", "event": "open", "window": 1}
        assert event_line(event) == (
            '{"event":"open","node":"a","window":1}'
        )

    def test_checkpoint_manifest_stamps_schema(self, setup, tmp_path):
        from repro.service.checkpoint import load_checkpoint

        ckpt = tmp_path / "stamp.npz"
        replay(
            CFG, setup, record_history=True,
            checkpoint_path=ckpt, checkpoint_every=1, stop_after=2,
        )
        manifest = load_checkpoint(ckpt).manifest
        assert manifest["alerts_schema"] == ALERTS_SCHEMA


class TestGracefulInterrupt:
    def test_flush_open_alerts_emits_canonical_flush_events(self, setup):
        detector = build_detector(CFG, setup, record_history=True)
        horizon = max(m.shape[1] for m in setup.eval_data.values())
        opened = False
        for ti in range(-(-horizon // CFG.chunk)):
            lo = ti * CFG.chunk
            burst = {
                p: m[:, lo : lo + CFG.chunk]
                for p, m in setup.eval_data.items()
                if lo < m.shape[1]
            }
            detector.process_block(burst, tick=ti)
            if detector.open_alerts():
                opened = True
                break
        assert opened, "smoke fleet must open an alert at some tick"
        events = flush_open_alerts(detector)
        assert events
        for event in events:
            assert event["event"] == "flush"
            assert list(to_payload(event)) == [
                "event", "node", "window", "opened", "label",
                "windows", "peak_confidence", "health",
            ]

    def test_sigint_finishes_tick_flushes_and_checkpoints(
        self, setup, tmp_path
    ):
        ckpt = tmp_path / "interrupt.npz"
        sink = ListAlertSink()
        timer = threading.Timer(
            0.4, lambda: os.kill(os.getpid(), signal.SIGINT)
        )
        timer.start()
        try:
            outcome = replay(
                CFG, setup, interval=0.2, record_history=True,
                checkpoint_path=ckpt, checkpoint_every=1, sinks=(sink,),
            )
        finally:
            timer.cancel()
        assert outcome.interrupted
        assert ckpt.exists()
        # Resume replays the remaining ticks; the resumed sink stream
        # must be byte-identical to an uninterrupted run (flush events
        # are sink-only and excluded from the checkpoint).
        resumed_sink = ListAlertSink()
        replay(
            CFG, setup, record_history=True,
            checkpoint_path=ckpt, resume=True, sinks=(resumed_sink,),
        )
        full_sink = ListAlertSink()
        replay(CFG, setup, sinks=(full_sink,))
        assert resumed_sink.text() == full_sink.text()

    def test_cli_serve_ctrl_c_exits_130_with_flush_and_checkpoint(
        self, tmp_path
    ):
        """The satellite contract end to end: SIGINT to a live `repro
        serve` exits 130, the alert JSONL ends cleanly (flushed open
        alerts included) and a final checkpoint exists."""
        alerts = tmp_path / "serve_alerts.jsonl"
        ckpt = tmp_path / "serve_ckpt.npz"
        env = dict(os.environ, PYTHONPATH=str(SRC))
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", "--smoke",
                "--interval", "0.3", "--alerts", str(alerts),
                "--checkpoint", str(ckpt),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        import time

        deadline = time.monotonic() + 60
        while time.monotonic() < deadline and not ckpt.exists():
            time.sleep(0.1)  # wait for the first tick's checkpoint
        assert ckpt.exists(), "server never processed a tick"
        proc.send_signal(signal.SIGINT)
        _, stderr = proc.communicate(timeout=60)
        assert proc.returncode == 130, stderr.decode()
        assert ckpt.exists()
        # Every emitted line parses and any open alert was flushed.
        lines = [
            json.loads(line)
            for line in alerts.read_text().splitlines()
            if line
        ]
        opens = sum(e["event"] == "open" for e in lines)
        closes = sum(e["event"] in ("close", "flush") for e in lines)
        assert opens == closes, "open alerts must be flushed on Ctrl-C"
"""Unit + equivalence tests for the online detection service layers.

Covers sharded ingestion (bit-parity with the offline fleet transform),
the threshold + hysteresis alert policy state machine, fleet training,
and the batched detector's equivalence with the naive per-node loop.
"""

import numpy as np
import pytest

from repro.analysis.rootcause import explain_difference, findings_payload
from repro.ml.forest import RandomForestClassifier
from repro.service.alerts import AlertPolicy, event_line
from repro.service.classify import train_fleet
from repro.service.detector import FleetFaultDetector, detect_naive
from repro.service.ingest import FleetIngest, shard_of
from repro.service.replay import fleet_recipes, node_path, prepare_fleet, replay


@pytest.fixture(scope="module")
def small_setup():
    """A trained 2-node fault fleet plus its held-out replay data."""
    return prepare_fleet(
        fleet_recipes(2, t=2000), blocks=8, trees=5, train_frac=0.5, seed=0
    )


def _event_key(event):
    return (event["node"], event["window"], event["event"])


class TestFleetIngest:
    def test_push_blocks_matches_offline_transform(self, small_setup):
        engine = small_setup.trained.engine
        ingest = FleetIngest(engine)
        sigs = ingest.push_blocks(small_setup.eval_data)
        for path, matrix in small_setup.eval_data.items():
            offline = engine.transform_node(path, matrix)
            np.testing.assert_array_equal(sigs[path], offline)

    def test_chunked_pushes_match_one_block(self, small_setup):
        engine = small_setup.trained.engine
        whole = FleetIngest(engine).push_blocks(small_setup.eval_data)
        chunked = FleetIngest(engine)
        parts = {}
        horizon = max(m.shape[1] for m in small_setup.eval_data.values())
        for lo in range(0, horizon, 97):  # awkward burst size on purpose
            got = chunked.push_blocks(
                {
                    p: m[:, lo : lo + 97]
                    for p, m in small_setup.eval_data.items()
                    if lo < m.shape[1]
                }
            )
            for p, s in got.items():
                parts.setdefault(p, []).append(s)
        for path in whole:
            np.testing.assert_array_equal(
                np.concatenate(parts[path]), whole[path]
            )

    def test_sharded_ingestion_is_bit_identical(self, small_setup):
        engine = small_setup.trained.engine
        plain = FleetIngest(engine).push_blocks(small_setup.eval_data)
        sharded = FleetIngest(engine, shards=3).push_blocks(
            small_setup.eval_data
        )
        assert sorted(plain) == sorted(sharded)
        for path in plain:
            np.testing.assert_array_equal(plain[path], sharded[path])

    def test_shard_assignment_is_stable(self):
        assert shard_of("rack0/node00", 4) == shard_of("rack0/node00", 4)
        with pytest.raises(ValueError):
            shard_of("rack0/node00", 0)

    def test_unknown_path_raises(self, small_setup):
        ingest = FleetIngest(small_setup.trained.engine)
        with pytest.raises(KeyError):
            ingest.push_blocks({"rack9/node99": np.zeros((3, 4))})
        with pytest.raises(KeyError):
            FleetIngest(small_setup.trained.engine, ["rack9/node99"])


class TestAlertPolicy:
    def test_opens_after_threshold_and_closes_after_hysteresis(self):
        policy = AlertPolicy(open_after=2, close_after=2)
        assert policy.update(0, 3, 0.9) == []  # one faulty window: debounced
        events = policy.update(1, 3, 0.8)
        assert [kind for kind, _ in events] == ["open"]
        alert = events[0][1]
        assert alert.opened == 1
        assert alert.first_faulty == 0
        assert alert.label == 3
        assert policy.update(2, 0, 0.9) == []  # one healthy: hysteresis
        assert policy.update(3, 3, 0.9) == []  # still the same alert
        assert policy.update(4, 0, 0.9) == []
        events = policy.update(5, 0, 0.9)
        assert [kind for kind, _ in events] == ["close"]
        assert events[0][1].closed == 5
        assert policy.alert is None

    def test_flicker_is_one_alert_not_a_storm(self):
        policy = AlertPolicy(open_after=1, close_after=3)
        opens = 0
        for w, label in enumerate([1, 0, 1, 0, 1, 0, 0, 0]):
            for kind, _ in policy.update(w, label, 1.0):
                opens += kind == "open"
        assert opens == 1
        assert policy.history[0].closed == 7

    def test_min_confidence_gates_faulty_windows(self):
        policy = AlertPolicy(open_after=1, close_after=1, min_confidence=0.6)
        assert policy.update(0, 2, 0.5) == []  # low-confidence flicker
        events = policy.update(1, 2, 0.7)
        assert [kind for kind, _ in events] == ["open"]

    def test_opening_alert_credits_the_whole_streak(self):
        policy = AlertPolicy(open_after=3, close_after=1)
        policy.update(0, 2, 0.9)
        policy.update(1, 2, 0.5)
        events = policy.update(2, 5, 0.7)
        assert [kind for kind, _ in events] == ["open"]
        alert = events[0][1]
        assert alert.n_windows == 3
        assert alert.label == 5  # the window that tipped the threshold
        assert alert.label_counts == {2: 2, 5: 1}
        assert alert.dominant_label() == 2  # majority of the episode
        assert alert.peak_confidence == 0.9  # max over the streak

    def test_interrupted_streak_resets(self):
        policy = AlertPolicy(open_after=2, close_after=1)
        policy.update(0, 1, 1.0)
        policy.update(1, 0, 1.0)  # healthy: streak resets
        assert policy.update(2, 1, 1.0) == []
        events = policy.update(3, 1, 1.0)
        assert [kind for kind, _ in events] == ["open"]
        assert events[0][1].first_faulty == 2

    def test_dominant_label_breaks_ties_deterministically(self):
        policy = AlertPolicy(open_after=1, close_after=1)
        policy.update(0, 5, 1.0)
        policy.update(1, 2, 1.0)
        assert policy.alert.dominant_label() == 2  # 5 and 2 tied: smallest

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AlertPolicy(open_after=0)
        with pytest.raises(ValueError):
            AlertPolicy(min_confidence=1.5)


class TestFleetRecipes:
    def test_builtin_fault_fleet_matches_service_helper(self):
        """builtin._fault_fleet duplicates fleet_recipes on purpose (so
        listing scenarios doesn't import the service stack); the two
        must never drift apart."""
        from repro.scenarios.builtin import _fault_fleet

        assert _fault_fleet(4, t=6000) == fleet_recipes(4, t=6000)
        assert _fault_fleet(
            2, t=2500, noise_std=0.05, noise_seed=11
        ) == fleet_recipes(2, t=2500, noise_std=0.05, noise_seed=11)

    def test_fleet_needs_a_node(self):
        with pytest.raises(ValueError):
            fleet_recipes(0, t=1000)


class TestTrainFleet:
    def test_trained_fleet_shape(self, small_setup):
        trained = small_setup.trained
        assert trained.paths == [node_path(0, 0), node_path(1, 0)]
        assert trained.label_names[0] == "healthy"
        for path in trained.paths:
            ref = trained.references[path]
            assert ref.shape == (8,)
            assert np.iscomplexobj(ref)

    def test_unlabeled_node_rejected(self):
        from repro.datasets.generators import ComponentData

        bad = ComponentData(
            name="n",
            matrix=np.random.default_rng(0).random((4, 100)),
            sensor_names=tuple(f"s{i}" for i in range(4)),
            sensor_groups=("g",) * 4,
        )
        with pytest.raises(ValueError, match="labels"):
            train_fleet({"a": bad}, blocks=2, wl=10, ws=5, trees=2)


class TestDetectorEquivalence:
    def test_batched_equals_naive_per_node_loop(self, small_setup):
        outcome = replay(small_setup, chunk=173)
        naive = detect_naive(small_setup.trained, small_setup.eval_data)
        assert sorted(outcome.events, key=_event_key) == sorted(
            naive, key=_event_key
        )

    def test_sharded_detector_equals_default(self, small_setup):
        plain = replay(small_setup, chunk=200)
        sharded = replay(small_setup, chunk=200, shards=2)
        assert plain.events == sharded.events

    def test_history_and_window_counts(self, small_setup):
        detector = FleetFaultDetector(small_setup.trained)
        detector.process_block(small_setup.eval_data)
        for path, truth in small_setup.truth.items():
            assert detector.windows_seen(path) == truth.shape[0]
            labels, confidences = detector.history[path]
            assert len(labels) == truth.shape[0]
            assert all(0.0 <= c <= 1.0 for c in confidences)

    def test_open_events_carry_attribution(self, small_setup):
        outcome = replay(small_setup, chunk=200)
        opens = [e for e in outcome.events if e["event"] == "open"]
        assert opens, "expected at least one alert on a fault segment"
        for event in opens:
            assert event["label"] != "healthy"
            assert len(event["attribution"]) == 3
            for finding in event["attribution"]:
                assert finding["sensors"]
        closes = [e for e in outcome.events if e["event"] == "close"]
        for event in closes:
            assert event["windows"] >= 1
            assert event["opened"] <= event["window"]

    def test_event_lines_are_valid_json(self, small_setup):
        import json

        outcome = replay(small_setup, chunk=200)
        for event in outcome.events:
            assert json.loads(event_line(event)) == event


class TestPredictWithProba:
    def test_consistent_with_predict_and_predict_proba(self):
        rng = np.random.default_rng(0)
        X = rng.random((80, 6))
        y = (X[:, 0] + X[:, 1] > 1.0).astype(np.intp)
        forest = RandomForestClassifier(8, random_state=0).fit(X, y)
        labels, proba = forest.predict_with_proba(X)
        np.testing.assert_array_equal(labels, forest.predict(X))
        np.testing.assert_array_equal(proba, forest.predict_proba(X))


class TestFindingsPayload:
    def test_payload_matches_findings(self, small_setup):
        trained = small_setup.trained
        path = trained.paths[0]
        sigs = trained.engine.transform_node(
            path, small_setup.eval_data[path]
        )
        findings = explain_difference(
            trained.engine.model(path), trained.references[path], sigs[0]
        )
        payload = findings_payload(findings, ndigits=6)
        assert [p["block"] for p in payload] == [f.block for f in findings]
        for p, f in zip(payload, findings):
            assert p["sensors"] == list(f.sensors)
            assert p["magnitude"] == round(f.magnitude, 6)
            assert list(p) == [
                "block", "delta_real", "delta_imag", "magnitude", "sensors",
            ]

"""Subprocess driver for the crash-recovery contract sweep.

Invoked by ``tests/test_checkpoint_contract.py`` as::

    python tests/_checkpoint_driver.py SCENARIO BACKEND CACHE_DIR OUT DIR MODE

Builds the named registered scenario's **smoke** fleet (through the
shared artifact cache), then either:

* ``full``   — one uninterrupted guarded replay, alert JSONL to OUT;
* ``resume`` — replay killed before the middle tick with per-tick
  checkpoints, then a second replay in the *same process family* (fresh
  detector, fresh sinks) restoring the checkpoint and finishing.  OUT
  ends up holding the complete stream because resume re-emits the
  checkpointed prefix into the truncating sink.

Chaos-kind scenarios replay under their configured fault injection in
both modes, so the contract is exercised on hostile input too.  The
test compares OUT bytes across modes, backends and PYTHONHASHSEED
values.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.scenarios.cache import ArtifactCache, ExecutionContext
from repro.scenarios.registry import get_scenario
from repro.service.alerts import JSONLAlertSink
from repro.service.chaos import ChaosConfig
from repro.service.replay import SERVICE_DEFAULTS, prepare_fleet, replay


def main() -> int:
    scenario_name, backend, cache_dir, out, workdir, run_mode = sys.argv[1:7]
    spec = get_scenario(scenario_name)
    smoke = spec.smoke_dict()
    if "datasets" in smoke:
        spec = spec.with_datasets(smoke["datasets"])
    if "evaluation" in smoke:
        spec = spec.with_evaluation(**dict(smoke["evaluation"]))
    ev = spec.evaluation_dict()

    def param(name):
        return ev.get(name, SERVICE_DEFAULTS[name])

    context = ExecutionContext(ArtifactCache(cache_dir))
    setup = prepare_fleet(
        spec.datasets,
        context=context,
        blocks=int(param("blocks")),
        trees=int(param("trees")),
        train_frac=float(param("train_frac")),
        seed=int(param("seed")),
        healthy_label=int(param("healthy_label")),
    )
    chunk = int(param("chunk"))
    chaos = None
    if spec.kind == "fleet-detect-chaos":
        chaos = ChaosConfig(
            seed=int(ev.get("chaos_seed", 0)),
            drop=float(ev.get("drop", 0.05)),
            duplicate=float(ev.get("duplicate", 0.05)),
            reorder=float(ev.get("reorder", 0.05)),
            corrupt=float(ev.get("corrupt", 0.05)),
        )
    kwargs = dict(
        chunk=chunk,
        open_after=int(param("open_after")),
        close_after=int(param("close_after")),
        min_confidence=float(param("min_confidence")),
        top_blocks=int(param("top_blocks")),
        backend=backend,
        mode=str(ev.get("mode", "exact")),
        guard=True,
        chaos=chaos,
    )
    if run_mode == "full":
        replay(setup, sinks=[JSONLAlertSink(out)], **kwargs)
        return 0
    if run_mode != "resume":
        raise SystemExit(f"unknown run mode {run_mode!r}")
    horizon = max(m.shape[1] for m in setup.eval_data.values())
    n_ticks = -(-horizon // chunk)
    checkpoint = Path(workdir) / "contract_checkpoint.npz"
    replay(
        setup,
        sinks=[JSONLAlertSink(out)],
        checkpoint_path=checkpoint,
        checkpoint_every=1,
        stop_after=max(1, n_ticks // 2),
        **kwargs,
    )
    replay(
        setup,
        sinks=[JSONLAlertSink(out)],
        checkpoint_path=checkpoint,
        resume=True,
        **kwargs,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Tests for the CS sorting stage (normalization + permutation)."""

import numpy as np
import pytest

from repro.core.model import CSModel
from repro.core.sorting import normalize_rows, sort_rows
from repro.core.training import train_cs_model


class TestNormalizeRows:
    def test_maps_training_range_to_unit(self):
        Sw = np.array([[0.0, 5.0, 10.0], [2.0, 3.0, 4.0]])
        out = normalize_rows(Sw, Sw.min(axis=1), Sw.max(axis=1))
        assert np.allclose(out[0], [0.0, 0.5, 1.0])
        assert np.allclose(out[1], [0.0, 0.5, 1.0])

    def test_clips_out_of_range(self):
        Sw = np.array([[-1.0, 0.5, 2.0]])
        out = normalize_rows(Sw, np.array([0.0]), np.array([1.0]))
        assert np.allclose(out, [[0.0, 0.5, 1.0]])

    def test_no_clip_option(self):
        Sw = np.array([[2.0]])
        out = normalize_rows(Sw, np.array([0.0]), np.array([1.0]), clip=False)
        assert out[0, 0] == pytest.approx(2.0)

    def test_degenerate_row_maps_to_half(self):
        Sw = np.array([[3.0, 3.0, 3.0]])
        out = normalize_rows(Sw, np.array([3.0]), np.array([3.0]))
        assert np.allclose(out, 0.5)

    def test_does_not_mutate_input(self):
        Sw = np.array([[0.0, 1.0]])
        original = Sw.copy()
        normalize_rows(Sw, np.array([0.0]), np.array([1.0]))
        assert np.array_equal(Sw, original)

    def test_in_place_via_out(self):
        Sw = np.array([[0.0, 2.0]])
        result = normalize_rows(Sw, np.array([0.0]), np.array([2.0]), out=Sw)
        assert result is Sw
        assert np.allclose(Sw, [[0.0, 1.0]])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            normalize_rows(np.zeros((2, 3)), np.zeros(3), np.ones(3))
        with pytest.raises(ValueError):
            normalize_rows(np.zeros(3), np.zeros(3), np.ones(3))


class TestSortRows:
    def test_applies_permutation(self):
        Sw = np.array([[0.0, 1.0], [10.0, 20.0], [5.0, 6.0]])
        model = CSModel(
            np.array([2, 0, 1]),
            Sw.min(axis=1),
            Sw.max(axis=1),
        )
        out = sort_rows(Sw, model)
        # Row 0 of output is original row 2, normalized.
        assert np.allclose(out[0], [0.0, 1.0])
        assert np.allclose(out[1], [0.0, 1.0])
        assert out.shape == (3, 2)

    def test_values_in_unit_interval(self, correlated_matrix):
        model = train_cs_model(correlated_matrix)
        out = sort_rows(correlated_matrix, model)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_groups_correlated_rows_adjacent(self, correlated_matrix, rng):
        model = train_cs_model(correlated_matrix)
        out = sort_rows(correlated_matrix, model)

        # Adjacent-row (signed) correlation after sorting should beat a
        # random arrangement: that is the point of the stage.
        def mean_adjacent_corr(M):
            cc = np.corrcoef(M)
            return np.nanmean([cc[i, i + 1] for i in range(M.shape[0] - 1)])

        shuffled = correlated_matrix[rng.permutation(correlated_matrix.shape[0])]
        assert mean_adjacent_corr(out) >= mean_adjacent_corr(shuffled)
        # The positive family leads, so the first rows are near-perfectly
        # correlated with one another.
        cc = np.corrcoef(out[:4])
        assert cc[np.triu_indices(4, 1)].min() > 0.9

    def test_rejects_row_count_mismatch(self, correlated_matrix):
        model = train_cs_model(correlated_matrix)
        with pytest.raises(ValueError, match="rows"):
            sort_rows(correlated_matrix[:5], model)

    def test_new_window_uses_training_bounds(self, correlated_matrix):
        model = train_cs_model(correlated_matrix)
        window = correlated_matrix[:, 100:150] + 100.0  # far outside bounds
        out = sort_rows(window, model)
        assert np.allclose(out, 1.0)  # clipped to the training maximum

"""Tests for the monitoring substrate: tree, storage, alignment, streaming."""

import numpy as np
import pytest

from repro.core.pipeline import CorrelationWiseSmoothing
from repro.monitoring.alignment import align_series, build_sensor_matrix
from repro.monitoring.sensor_tree import SensorTree
from repro.monitoring.storage import (
    load_segment,
    load_sensor_csv,
    save_segment,
    save_sensor_csv,
)
from repro.monitoring.streaming import OnlineSignatureStream


class TestSensorTree:
    def test_add_and_get(self):
        tree = SensorTree()
        tree.add("rack0/chassis1/node2/power", unit="W")
        node = tree.get("rack0/chassis1/node2/power")
        assert node.is_sensor
        assert node.metadata["unit"] == "W"

    def test_contains(self):
        tree = SensorTree()
        tree.add("a/b/c")
        assert "a/b/c" in tree
        assert "a/b" not in tree  # intermediate node, not a sensor
        assert "x/y" not in tree

    def test_duplicate_rejected(self):
        tree = SensorTree()
        tree.add("a/b")
        with pytest.raises(ValueError, match="already"):
            tree.add("a/b")

    def test_sensors_sorted(self):
        tree = SensorTree()
        tree.add("b/s2")
        tree.add("a/s1")
        tree.add("a/s0")
        assert tree.sensors() == ["a/s0", "a/s1", "b/s2"]
        assert len(tree) == 3

    def test_subtree_listing(self):
        tree = SensorTree()
        tree.add("rack0/node0/power")
        tree.add("rack0/node1/power")
        tree.add("rack1/node0/power")
        assert len(tree.sensors("rack0")) == 2

    def test_glob(self):
        tree = SensorTree()
        tree.add("rack0/node0/power")
        tree.add("rack0/node1/power")
        tree.add("rack0/node1/temp")
        tree.add("rack1/node0/power")
        assert tree.glob("rack0/*/power") == [
            "rack0/node0/power",
            "rack0/node1/power",
        ]
        assert tree.glob("*/node0/*") == [
            "rack0/node0/power",
            "rack1/node0/power",
        ]

    def test_invalid_path(self):
        tree = SensorTree()
        with pytest.raises(ValueError):
            tree.add("///")


class TestCSVStorage:
    def test_roundtrip(self, tmp_path):
        ts = np.arange(10.0)
        vals = np.linspace(0.0, 1.0, 10)
        save_sensor_csv(tmp_path / "s.csv", ts, vals)
        ts2, vals2 = load_sensor_csv(tmp_path / "s.csv")
        assert np.allclose(ts2, ts)
        assert np.allclose(vals2, vals, atol=1e-7)

    def test_header_format(self, tmp_path):
        save_sensor_csv(tmp_path / "s.csv", np.arange(2.0), np.arange(2.0))
        first = (tmp_path / "s.csv").read_text().splitlines()[0]
        assert first == "timestamp,value"

    def test_rejects_mismatch(self, tmp_path):
        with pytest.raises(ValueError):
            save_sensor_csv(tmp_path / "s.csv", np.arange(3.0), np.arange(2.0))


class TestSegmentStorage:
    def test_roundtrip(self, tmp_path, infrastructure_segment):
        root = save_segment(infrastructure_segment, tmp_path / "seg")
        loaded = load_segment(root)
        assert loaded.spec.name == infrastructure_segment.spec.name
        assert loaded.n_components == infrastructure_segment.n_components
        orig = infrastructure_segment.components[0]
        got = loaded.components[0]
        assert got.sensor_names == orig.sensor_names
        assert np.allclose(got.matrix, orig.matrix, atol=1e-6, rtol=1e-6)
        assert np.allclose(got.target, orig.target, atol=1e-6)

    def test_roundtrip_with_labels(self, tmp_path, application_segment):
        root = save_segment(application_segment, tmp_path / "seg")
        loaded = load_segment(root)
        assert np.array_equal(
            loaded.components[0].labels, application_segment.components[0].labels
        )
        assert loaded.label_names == application_segment.label_names


class TestAlignment:
    def test_linear_interpolation(self):
        ts = np.array([0.0, 10.0])
        vals = np.array([0.0, 1.0])
        out = align_series(ts, vals, np.array([0.0, 5.0, 10.0]))
        assert np.allclose(out, [0.0, 0.5, 1.0])

    def test_previous_value_hold(self):
        ts = np.array([0.0, 10.0])
        vals = np.array([1.0, 2.0])
        out = align_series(ts, vals, np.array([0.0, 9.9, 10.0]), kind="previous")
        assert np.allclose(out, [1.0, 1.0, 2.0])

    def test_extends_edges(self):
        out = align_series(
            np.array([5.0, 6.0]), np.array([1.0, 2.0]), np.array([0.0, 10.0])
        )
        assert np.allclose(out, [1.0, 2.0])

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            align_series(np.array([1.0, 0.0]), np.array([0.0, 1.0]), np.array([0.5]))

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            align_series(np.array([0.0]), np.array([1.0]), np.array([0.0]), kind="cubic")

    def test_build_sensor_matrix(self):
        series = {
            "b": (np.array([0.0, 1.0, 2.0, 3.0]), np.array([0.0, 1.0, 2.0, 3.0])),
            "a": (np.array([0.5, 1.5, 2.5]), np.array([5.0, 5.0, 5.0])),
        }
        matrix, names, clock = build_sensor_matrix(series)
        assert names == ["a", "b"]  # sorted
        assert matrix.shape == (2, clock.shape[0])
        # Clock spans the intersection [0.5, 2.5].
        assert clock[0] == pytest.approx(0.5)
        assert clock[-1] <= 2.5 + 1e-9
        assert np.allclose(matrix[0], 5.0)

    def test_build_rejects_disjoint_ranges(self):
        series = {
            "a": (np.array([0.0, 1.0]), np.array([0.0, 1.0])),
            "b": (np.array([5.0, 6.0]), np.array([0.0, 1.0])),
        }
        with pytest.raises(ValueError, match="overlap"):
            build_sensor_matrix(series)

    def test_build_rejects_empty(self):
        with pytest.raises(ValueError):
            build_sensor_matrix({})


class TestOnlineStream:
    def test_matches_offline_pipeline(self, rng):
        hist = rng.random((6, 300))
        cs = CorrelationWiseSmoothing(blocks=3).fit(hist)
        wl, ws = 20, 10
        offline = cs.transform_series(hist, wl, ws)
        stream = OnlineSignatureStream(cs, wl=wl, ws=ws)
        online = stream.run(hist.T)
        assert len(online) == offline.shape[0]
        for k in range(len(online)):
            assert np.allclose(online[k], offline[k]), f"signature {k}"

    def test_emission_schedule(self, rng):
        hist = rng.random((4, 100))
        cs = CorrelationWiseSmoothing(blocks=2).fit(hist)
        stream = OnlineSignatureStream(cs, wl=10, ws=5)
        emitted_at = [
            i for i, x in enumerate(hist.T) if stream.push(x) is not None
        ]
        assert emitted_at[0] == 9           # first full window
        assert all(b - a == 5 for a, b in zip(emitted_at, emitted_at[1:]))

    def test_rejects_unfitted(self):
        with pytest.raises(ValueError):
            OnlineSignatureStream(CorrelationWiseSmoothing(blocks=2), 5, 2)

    def test_rejects_wrong_sample_shape(self, rng):
        hist = rng.random((4, 50))
        cs = CorrelationWiseSmoothing(blocks=2).fit(hist)
        stream = OnlineSignatureStream(cs, wl=5, ws=2)
        with pytest.raises(ValueError):
            stream.push(np.zeros(3))

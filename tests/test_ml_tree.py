"""Tests for the CART decision trees."""

import numpy as np
import pytest

from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor


@pytest.fixture
def blob_data(rng):
    """Two well-separated 2-D blobs."""
    X0 = rng.normal(0.0, 0.3, size=(60, 2))
    X1 = rng.normal(2.0, 0.3, size=(60, 2))
    X = np.vstack([X0, X1])
    y = np.array([0] * 60 + [1] * 60)
    return X, y


class TestClassifier:
    def test_fits_separable_data_perfectly(self, blob_data):
        X, y = blob_data
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        assert (tree.predict(X) == y).all()

    def test_predict_proba_rows_sum_to_one(self, blob_data):
        X, y = blob_data
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        proba = tree.predict_proba(X)
        assert proba.shape == (120, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_pure_node_stops_splitting(self):
        X = np.arange(10.0)[:, None]
        y = np.zeros(10, dtype=int)
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        assert tree.node_count == 1

    def test_max_depth_limits_tree(self, blob_data):
        X, y = blob_data
        tree = DecisionTreeClassifier(max_depth=1, random_state=0).fit(X, y)
        assert tree.depth <= 1
        assert tree.node_count <= 3

    def test_min_samples_leaf(self, rng):
        X = rng.random((50, 3))
        y = (X[:, 0] > 0.5).astype(int)
        tree = DecisionTreeClassifier(min_samples_leaf=10, random_state=0).fit(X, y)
        # Count samples reaching each leaf.
        leaves = tree._apply(X)
        _, counts = np.unique(leaves, return_counts=True)
        assert counts.min() >= 10

    def test_multiclass(self, rng):
        X = rng.random((90, 2))
        y = np.digitize(X[:, 0], [0.33, 0.66])
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        assert (tree.predict(X) == y).mean() > 0.95

    def test_string_labels(self, blob_data):
        X, y = blob_data
        labels = np.array(["healthy", "faulty"])[y]
        tree = DecisionTreeClassifier(random_state=0).fit(X, labels)
        preds = tree.predict(X)
        assert set(preds) <= {"healthy", "faulty"}
        assert (preds == labels).all()

    def test_xor_needs_depth_two(self, rng):
        X = rng.random((200, 2))
        y = ((X[:, 0] > 0.5) ^ (X[:, 1] > 0.5)).astype(int)
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        assert (tree.predict(X) == y).mean() > 0.95

    def test_rejects_mismatched_y(self, blob_data):
        X, _ = blob_data
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(X, np.zeros(3))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict(np.zeros((2, 2)))


class TestRegressor:
    def test_fits_step_function(self):
        X = np.linspace(0.0, 1.0, 100)[:, None]
        y = (X[:, 0] > 0.5).astype(float) * 3.0
        tree = DecisionTreeRegressor(random_state=0).fit(X, y)
        pred = tree.predict(X)
        assert np.abs(pred - y).max() < 1e-9

    def test_approximates_linear_function(self, rng):
        X = rng.random((300, 1))
        y = 2.0 * X[:, 0]
        tree = DecisionTreeRegressor(min_samples_leaf=5, random_state=0).fit(X, y)
        pred = tree.predict(X)
        assert np.mean((pred - y) ** 2) < 0.01

    def test_constant_target_single_node(self):
        X = np.random.default_rng(0).random((20, 2))
        tree = DecisionTreeRegressor(random_state=0).fit(X, np.full(20, 5.0))
        assert tree.node_count == 1
        assert np.allclose(tree.predict(X), 5.0)

    def test_max_features_subsampling_still_learns(self, rng):
        X = rng.random((200, 10))
        y = X[:, 3] * 4.0
        tree = DecisionTreeRegressor(
            max_features="sqrt", min_samples_leaf=5, random_state=0
        ).fit(X, y)
        pred = tree.predict(X)
        assert np.corrcoef(pred, y)[0, 1] > 0.8

    def test_depth_property(self):
        X = np.linspace(0, 1, 32)[:, None]
        y = np.arange(32.0)
        tree = DecisionTreeRegressor(random_state=0).fit(X, y)
        assert tree.depth >= 5  # needs 32 leaves


class TestMaxFeaturesSpec:
    def test_specs(self):
        from repro.ml.tree import _resolve_max_features

        assert _resolve_max_features(None, 16) == 16
        assert _resolve_max_features("sqrt", 16) == 4
        assert _resolve_max_features("log2", 16) == 4
        assert _resolve_max_features(0.5, 16) == 8
        assert _resolve_max_features(5, 16) == 5
        assert _resolve_max_features(99, 16) == 16

    def test_invalid_specs(self):
        from repro.ml.tree import _resolve_max_features

        with pytest.raises(ValueError):
            _resolve_max_features("bogus", 4)
        with pytest.raises(ValueError):
            _resolve_max_features(0.0, 4)
        with pytest.raises(ValueError):
            _resolve_max_features(0, 4)

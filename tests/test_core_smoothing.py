"""Tests for the smoothing stage (Equation 3)."""

import numpy as np
import pytest

from repro.core.smoothing import smooth, smooth_windows


class TestSmooth:
    def test_real_part_is_block_window_mean(self):
        W = np.array(
            [
                [0.0, 0.2, 0.4],
                [1.0, 1.0, 1.0],
                [0.5, 0.5, 0.5],
                [0.1, 0.2, 0.3],
            ]
        )
        sig = smooth(W, 2)
        assert sig.shape == (2,)
        assert sig.real[0] == pytest.approx(np.mean(W[:2]))
        assert sig.real[1] == pytest.approx(np.mean(W[2:]))

    def test_imag_part_telescopes_backward_differences(self):
        # mean of backward diffs (first diff 0) == (last - first) / wl.
        W = np.array([[0.0, 0.3, 0.9], [0.5, 0.1, 0.2]])
        sig = smooth(W, 1)
        expected = ((0.9 - 0.0) / 3 + (0.2 - 0.5) / 3) / 2
        assert sig.imag[0] == pytest.approx(expected)
        # And explicitly equals the mean of the diff matrix with a zero
        # first column.
        diffs = np.diff(W, axis=1, prepend=W[:, :1])
        assert sig.imag[0] == pytest.approx(diffs.mean())

    def test_prev_column_changes_first_difference(self):
        W = np.array([[0.5, 0.5], [0.5, 0.5]])
        no_prev = smooth(W, 1)
        with_prev = smooth(W, 1, prev_column=np.array([0.0, 0.0]))
        assert no_prev.imag[0] == pytest.approx(0.0)
        assert with_prev.imag[0] == pytest.approx(0.25)

    def test_constant_window_zero_imag(self):
        W = np.full((5, 8), 0.7)
        sig = smooth(W, 3)
        assert np.allclose(sig.real, 0.7)
        assert np.allclose(sig.imag, 0.0)

    def test_overlapping_blocks(self):
        W = np.arange(10.0).reshape(5, 2)
        sig = smooth(W, 2)  # blocks [0,3) and [2,5): row 2 in both
        assert sig.real[0] == pytest.approx(W[0:3].mean())
        assert sig.real[1] == pytest.approx(W[2:5].mean())

    def test_l_all_keeps_rows_separate(self):
        W = np.array([[0.1, 0.1], [0.9, 0.9]])
        sig = smooth(W, 2)
        assert np.allclose(sig.real, [0.1, 0.9])

    def test_single_sample_window(self):
        W = np.array([[0.4], [0.6]])
        sig = smooth(W, 1)
        assert sig.real[0] == pytest.approx(0.5)
        assert sig.imag[0] == pytest.approx(0.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            smooth(np.zeros(4), 1)
        with pytest.raises(ValueError):
            smooth(np.zeros((2, 3)), 3)
        with pytest.raises(ValueError):
            smooth(np.zeros((2, 3)), 1, prev_column=np.zeros(5))


class TestSmoothWindows:
    def test_matches_single_window_loop(self, rng):
        X = rng.random((7, 60))
        wl, ws, l = 12, 5, 3
        batch = smooth_windows(X, l, wl, ws)
        starts = range(0, X.shape[1] - wl + 1, ws)
        for k, s in enumerate(starts):
            prev = X[:, s - 1] if s > 0 else None
            single = smooth(X[:, s : s + wl], l, prev_column=prev)
            assert np.allclose(batch[k], single), f"window {k} mismatch"

    def test_without_exact_first_derivative(self, rng):
        X = rng.random((4, 40))
        batch = smooth_windows(X, 2, 8, 4, exact_first_derivative=False)
        for k, s in enumerate(range(0, 33, 4)):
            single = smooth(X[:, s : s + 8], 2)
            assert np.allclose(batch[k], single)

    def test_window_count(self, rng):
        X = rng.random((3, 100))
        assert smooth_windows(X, 2, 10, 10).shape == (10, 2)
        assert smooth_windows(X, 2, 10, 3).shape == (31, 2)

    def test_short_series_empty(self, rng):
        X = rng.random((3, 5))
        out = smooth_windows(X, 2, 10, 2)
        assert out.shape == (0, 2)

    def test_rejects_invalid_params(self, rng):
        X = rng.random((3, 30))
        with pytest.raises(ValueError):
            smooth_windows(X, 2, 0, 1)
        with pytest.raises(ValueError):
            smooth_windows(X, 2, 5, 0)
        with pytest.raises(ValueError):
            smooth_windows(np.zeros(3), 1, 2, 1)

"""Lightweight performance-regression guards for recorded benchmarks.

``benchmarks/test_ml_scaling.py`` records the speedups of the
presorted/batched ML engine over the frozen seed implementation in
``BENCH_ml.json``; ``benchmarks/test_scenario_cache.py`` records cold vs
cached scenario runtimes in ``BENCH_scenarios.json``;
``benchmarks/test_service_scaling.py`` records batched vs per-node fleet
detection in ``BENCH_service.json`` (``benchmarks/test_net_serve.py``
adds the loopback network-serving headline to the same file); ``benchmarks/test_datagen_scaling.py``
records the vectorized cold generation path vs the frozen seed
recurrences in ``BENCH_datagen.json``; ``benchmarks/test_tick_hotpath.py``
records the fused single-pass tick arena vs the staged pipeline in
``BENCH_tick.json``; ``benchmarks/test_store_scaling.py`` records
columnar-store ingest/scan throughput and replay-from-store vs guarded
live per-tick ingestion in ``BENCH_store.json`` (all run with
``pytest benchmarks -m slow`` or ``repro bench``).  These tier-1 tests fail if a recorded
speedup has fallen below
its floor — i.e. if a change made an "optimized" path slower than what
it replaced — without costing tier-1 any benchmark runtime.
"""

import json
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
ML_SUMMARY_JSON = ROOT / "BENCH_ml.json"
SCENARIO_SUMMARY_JSON = ROOT / "BENCH_scenarios.json"
SERVICE_SUMMARY_JSON = ROOT / "BENCH_service.json"
DATAGEN_SUMMARY_JSON = ROOT / "BENCH_datagen.json"
TICK_SUMMARY_JSON = ROOT / "BENCH_tick.json"
STORE_SUMMARY_JSON = ROOT / "BENCH_store.json"


def _load_summary(path: Path) -> dict:
    if not path.exists():
        pytest.skip(
            f"{path.name} not generated yet (run pytest benchmarks -m slow)"
        )
    return json.loads(path.read_text())


class TestMLEngineGuard:
    def test_summary_has_headline_speedups(self):
        summary = _load_summary(ML_SUMMARY_JSON)
        for key in ("forest_fit_speedup", "forest_predict_speedup", "tree_fit_speedup"):
            assert key in summary, f"BENCH_ml.json is missing {key}"

    def test_no_speedup_regressed_below_one(self):
        summary = _load_summary(ML_SUMMARY_JSON)
        speedups = {
            k: v
            for k, v in summary.items()
            if k.endswith("_speedup") or "_speedup_" in k
        }
        assert speedups, "BENCH_ml.json records no speedups"
        slow = {k: v for k, v in speedups.items() if v < 1.0}
        assert not slow, f"ML engine slower than the seed path: {slow}"


class TestScenarioCacheGuard:
    def test_headline_cached_speedup_at_least_5x(self):
        """Acceptance floor: a cached scenario re-run is >= 5x faster."""
        summary = _load_summary(SCENARIO_SUMMARY_JSON)
        assert "cached_speedup" in summary, (
            "BENCH_scenarios.json is missing the cached_speedup headline"
        )
        assert summary["cached_speedup"] >= 5.0, (
            f"cached scenario re-run only {summary['cached_speedup']}x "
            "faster than cold (floor: 5x)"
        )

    def test_no_cached_run_slower_than_cold(self):
        summary = _load_summary(SCENARIO_SUMMARY_JSON)
        ratios = {
            k: v for k, v in summary.items() if k.endswith("_speedup_ratio")
        }
        assert ratios, "BENCH_scenarios.json records no cached/cold ratios"
        slow = {k: v for k, v in ratios.items() if v < 1.0}
        assert not slow, f"artifact cache is a pessimization for: {slow}"


class TestDatagenGuard:
    def test_headline_segment_generation_at_least_2x(self):
        """Acceptance floor: the vectorized cold generation path is
        >= 2x the frozen seed recurrences on its best segment (the
        recorded headline targets >= 5x)."""
        summary = _load_summary(DATAGEN_SUMMARY_JSON)
        assert "segment_generation_speedup" in summary, (
            "BENCH_datagen.json is missing the "
            "segment_generation_speedup headline"
        )
        assert summary["segment_generation_speedup"] >= 2.0, (
            f"vectorized segment generation only "
            f"{summary['segment_generation_speedup']}x the seed path "
            "(floor: 2x)"
        )

    def test_cold_scenario_generation_at_least_2x(self):
        """Acceptance floor: generating a whole registered scenario's
        recipe set cold is >= 2x faster than the seed path."""
        summary = _load_summary(DATAGEN_SUMMARY_JSON)
        assert summary.get("cold_scenario_speedup", 0.0) >= 2.0, (
            f"cold scenario generation only "
            f"{summary.get('cold_scenario_speedup')}x the seed path "
            "(floor: 2x)"
        )

    def test_no_datagen_speedup_below_one(self):
        summary = _load_summary(DATAGEN_SUMMARY_JSON)
        speedups = {
            k: v for k, v in summary.items() if k.endswith("_speedup")
        }
        assert speedups, "BENCH_datagen.json records no speedups"
        slow = {k: v for k, v in speedups.items() if v < 1.0}
        assert not slow, (
            f"vectorized generation slower than the seed path: {slow}"
        )


class TestServiceGuard:
    def test_headline_batched_detection_at_least_2x(self):
        """Acceptance floor: batched fleet detection is >= 2x the naive
        per-node push/predict loop."""
        summary = _load_summary(SERVICE_SUMMARY_JSON)
        assert "batched_detect_speedup" in summary, (
            "BENCH_service.json is missing the batched_detect_speedup "
            "headline"
        )
        assert summary["batched_detect_speedup"] >= 2.0, (
            f"batched fleet detection only "
            f"{summary['batched_detect_speedup']}x the per-node loop "
            "(floor: 2x)"
        )

    def test_guard_overhead_within_budget(self):
        """Acceptance floor: the input-hardening guard costs <= 5% of
        the unguarded 64-node tick at serving cadence.  (The guard keys
        are durations/fractions, not ``*_speedup`` — the sweep below
        deliberately doesn't see them.)"""
        summary = _load_summary(SERVICE_SUMMARY_JSON)
        assert "guard64_overhead_frac" in summary, (
            "BENCH_service.json is missing the guard64_overhead_frac "
            "headline (run pytest benchmarks -m slow -k guard)"
        )
        assert summary["guard64_overhead_frac"] <= 0.05, (
            f"input-hardening guard costs "
            f"{summary['guard64_overhead_frac']:.1%} of the unguarded "
            "64-node tick (budget: 5%)"
        )

    def test_network_serve_sustains_thousand_nodes(self):
        """Acceptance floor: the loopback fleet server sustains >= 1000
        simulated nodes at 1 Hz serving cadence on one CPU
        (``benchmarks/test_net_serve.py`` records aggregate
        node-samples/s, which at 1 sample/s/node *is* the node count),
        and the network-ingested alert stream stayed byte-identical to
        the in-process replay."""
        summary = _load_summary(SERVICE_SUMMARY_JSON)
        assert "net_nodes_sustained" in summary, (
            "BENCH_service.json is missing the net_nodes_sustained "
            "headline (run pytest benchmarks/test_net_serve.py -m slow)"
        )
        assert summary["net_nodes_sustained"] >= 1000, (
            f"loopback fleet server sustained only "
            f"{summary['net_nodes_sustained']} node-samples/s "
            "(floor: 1000 nodes at 1 Hz)"
        )
        assert summary.get("net_byte_identical") == 1, (
            "network-ingested alert stream diverged from the in-process "
            "replay"
        )
        for key in ("net_tick_p50_ms", "net_tick_p99_ms"):
            assert summary.get(key, 0.0) > 0.0, (
                f"BENCH_service.json is missing {key}"
            )

    def test_wal_overhead_within_budget(self):
        """Acceptance floors for serving with the write-ahead frame
        journal (fsync policy ``tick``):

        * the *steady-state* durability claim — a journaled server
          still sustains >= 4x the 1000-node 1 Hz serving cadence
          (the journal needs ~1 MB/s at that cadence, so the claim
          holds with wide margin on any disk);
        * the *saturation* keep ratio — at max replay speed every
          node-sample drags ~1 KiB through the kernel write path, so
          the ratio measures detector-compute-per-byte against
          kernel-write-cost-per-byte.  On virtualized CI (free-page
          reporting returns freed guest pages to the host; fresh page
          allocations pay a hypervisor round-trip) the write path
          sustains only ~25-130 MB/s, capping the ratio well below
          the >= 0.8 a bare-metal page cache reaches.  The floor
          guards code regressions on the journaling path, not the
          host's paging behavior;
        * byte-identity of the journaled alert stream.
        """
        summary = _load_summary(SERVICE_SUMMARY_JSON)
        assert "net_wal_keep_ratio" in summary, (
            "BENCH_service.json is missing the net_wal_keep_ratio "
            "headline (run pytest benchmarks/test_net_serve.py -m slow)"
        )
        assert summary.get("net_wal_samples_per_s", 0.0) >= 4000, (
            f"journaled server sustained only "
            f"{summary.get('net_wal_samples_per_s')} node-samples/s "
            "(floor: 4x the 1000-node 1 Hz serving cadence)"
        )
        assert summary["net_wal_keep_ratio"] >= 0.3, (
            f"WAL (fsync=tick) kept only "
            f"{summary['net_wal_keep_ratio']:.0%} of the no-WAL "
            "serving throughput (floor: 30% at saturation)"
        )
        assert summary.get("net_wal_byte_identical") == 1, (
            "journaled alert stream diverged from the in-process replay"
        )

    def test_no_service_speedup_below_one(self):
        summary = _load_summary(SERVICE_SUMMARY_JSON)
        speedups = {
            k: v for k, v in summary.items() if k.endswith("_speedup")
        }
        assert speedups, "BENCH_service.json records no speedups"
        slow = {k: v for k, v in speedups.items() if v < 1.0}
        assert not slow, (
            f"service hot path slower than the per-node baseline: {slow}"
        )


class TestTickGuard:
    def test_headline_fused_tick_at_least_2x(self):
        """Acceptance floor: the fused exact-mode tick path is >= 2x the
        staged pipeline at serving cadence on the 64-node fleet."""
        summary = _load_summary(TICK_SUMMARY_JSON)
        assert "tick_fused_speedup" in summary, (
            "BENCH_tick.json is missing the tick_fused_speedup headline"
        )
        assert summary["tick_fused_speedup"] >= 2.0, (
            f"fused tick path only {summary['tick_fused_speedup']}x the "
            "staged pipeline (floor: 2x)"
        )

    def test_memory_per_node_recorded_for_every_mode(self):
        summary = _load_summary(TICK_SUMMARY_JSON)
        for mode in ("exact", "float32", "quantized"):
            key = f"memory_per_node_{mode}_bytes"
            assert summary.get(key, 0) > 0, (
                f"BENCH_tick.json is missing {key}"
            )
        assert (
            summary["memory_per_node_float32_bytes"]
            < summary["memory_per_node_exact_bytes"]
        ), "float32 mode did not shrink per-node memory"

    def test_no_tick_speedup_below_one(self):
        summary = _load_summary(TICK_SUMMARY_JSON)
        speedups = {
            k: v for k, v in summary.items() if k.endswith("_speedup")
        }
        assert speedups, "BENCH_tick.json records no speedups"
        slow = {k: v for k, v in speedups.items() if v < 1.0}
        assert not slow, (
            f"fused tick path slower than the staged pipeline: {slow}"
        )


class TestStoreGuard:
    def test_headline_store_replay_at_least_2x(self):
        """Acceptance floor: replaying a recorded 64-node window from
        the columnar store is >= 2x the guarded staged live serving loop
        (the recorded headline targets >= 5x; the floor absorbs machine
        noise without letting a real regression through)."""
        summary = _load_summary(STORE_SUMMARY_JSON)
        assert "store_replay_speedup" in summary, (
            "BENCH_store.json is missing the store_replay_speedup "
            "headline"
        )
        assert summary["store_replay_speedup"] >= 2.0, (
            f"store replay only {summary['store_replay_speedup']}x the "
            "guarded live serving loop (floor: 2x)"
        )

    def test_no_store_ratio_below_one(self):
        """Every recorded store ratio — replay vs staged live at every
        fleet size, and replay vs the fused live loop — must stay a
        speedup, not a pessimization."""
        summary = _load_summary(STORE_SUMMARY_JSON)
        ratios = {
            k: v
            for k, v in summary.items()
            if "_speedup" in k or "_vs_fused_live" in k
        }
        assert ratios, "BENCH_store.json records no speedups"
        slow = {k: v for k, v in ratios.items() if v < 1.0}
        assert not slow, (
            f"store replay slower than live ingestion: {slow}"
        )

    def test_scan_throughput_recorded(self):
        summary = _load_summary(STORE_SUMMARY_JSON)
        for key in ("store_ingest_mb_s", "store_scan_mb_s"):
            assert summary.get(key, 0.0) > 0.0, (
                f"BENCH_store.json is missing {key}"
            )

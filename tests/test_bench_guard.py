"""Lightweight performance-regression guard for the ML engine.

``benchmarks/test_ml_scaling.py`` (run with ``pytest benchmarks -m
slow``) records the speedups of the presorted/batched ML engine over the
frozen seed implementation in ``BENCH_ml.json``.  This tier-1 test fails
if any recorded speedup has fallen below 1.0 — i.e. if a change made the
"optimized" path slower than the seed path it replaced — without costing
tier-1 any benchmark runtime.
"""

import json
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
SUMMARY_JSON = ROOT / "BENCH_ml.json"


def _load_summary() -> dict:
    if not SUMMARY_JSON.exists():
        pytest.skip("BENCH_ml.json not generated yet (run pytest benchmarks -m slow)")
    return json.loads(SUMMARY_JSON.read_text())


def test_summary_has_headline_speedups():
    summary = _load_summary()
    for key in ("forest_fit_speedup", "forest_predict_speedup", "tree_fit_speedup"):
        assert key in summary, f"BENCH_ml.json is missing {key}"


def test_no_speedup_regressed_below_one():
    summary = _load_summary()
    speedups = {k: v for k, v in summary.items() if k.endswith("_speedup") or "_speedup_" in k}
    assert speedups, "BENCH_ml.json records no speedups"
    slow = {k: v for k, v in speedups.items() if v < 1.0}
    assert not slow, f"ML engine slower than the seed path: {slow}"

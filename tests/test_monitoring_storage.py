"""Round-trip and cache-key tests for ``repro.monitoring.storage``."""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.datasets.generators import ComponentData, SegmentData
from repro.datasets.recipes import recipe
from repro.datasets.schema import get_segment_spec
from repro.monitoring.storage import (
    load_segment,
    load_segment_npz,
    load_sensor_csv,
    save_segment,
    save_segment_npz,
    save_sensor_csv,
)
from repro.scenarios.cache import dataset_key, segment_key


def _tiny_segment(*, with_labels=True, with_target=False) -> SegmentData:
    """A hand-built two-component segment with awkward sensor names."""
    rng = np.random.default_rng(3)
    spec = get_segment_spec("application")
    components = []
    for i, name in enumerate(("node/a", "node.b")):
        matrix = rng.normal(1.0, 0.25, size=(3, 40))
        components.append(
            ComponentData(
                name=name,
                matrix=matrix,
                sensor_names=("cpu/0/load", "mem used", "temp,core"),
                sensor_groups=("cpu", "mem", "temp"),
                labels=rng.integers(0, 3, size=40).astype(np.intp)
                if with_labels else None,
                target=rng.random(40) if with_target else None,
                arch=f"arch{i}",
            )
        )
    return SegmentData(spec, components, label_names=("a", "b", "c"), seed=11)


class TestSensorCSV:
    def test_round_trip(self, tmp_path):
        ts = np.arange(5) * 0.5
        values = np.array([1.0, -2.25, 0.0, 3.5e-4, 1e6])
        save_sensor_csv(tmp_path / "s.csv", ts, values)
        ts2, v2 = load_sensor_csv(tmp_path / "s.csv")
        assert np.array_equal(ts, ts2)
        assert np.array_equal(values, v2)

    def test_rejects_mismatched_shapes(self, tmp_path):
        with pytest.raises(ValueError):
            save_sensor_csv(tmp_path / "s.csv", np.arange(3), np.arange(4))


class TestSegmentCSVFormat:
    def test_round_trip_with_sanitized_names(self, tmp_path):
        segment = _tiny_segment(with_labels=True)
        root = save_segment(segment, tmp_path / "seg")
        # '/' in component and sensor names must be sanitized on disk ...
        assert (root / "node_a" / "cpu_0_load.csv").exists()
        loaded = load_segment(root)
        # ... but restored verbatim from the manifest.
        assert [c.name for c in loaded.components] == ["node/a", "node.b"]
        assert loaded.components[0].sensor_names == (
            "cpu/0/load", "mem used", "temp,core",
        )
        assert loaded.label_names == ("a", "b", "c")
        assert loaded.seed == 11
        for orig, back in zip(segment.components, loaded.components):
            # CSV stores %.9g: values survive to ~9 significant digits.
            np.testing.assert_allclose(back.matrix, orig.matrix, rtol=1e-8)
            assert np.array_equal(back.labels, orig.labels)
            assert back.arch == orig.arch
            assert back.sensor_groups == orig.sensor_groups

    def test_timestamps_follow_sampling_interval(self, tmp_path):
        segment = _tiny_segment()
        root = save_segment(segment, tmp_path / "seg")
        ts, _ = load_sensor_csv(root / "node_a" / "mem used.csv")
        interval = segment.spec.sampling_interval_s
        assert np.array_equal(ts, np.arange(40) * interval)


class TestSegmentNPZFormat:
    @pytest.mark.parametrize("with_labels,with_target", [
        (True, False), (False, True), (True, True),
    ])
    def test_bit_exact_round_trip(self, tmp_path, with_labels, with_target):
        segment = _tiny_segment(
            with_labels=with_labels, with_target=with_target
        )
        path = save_segment_npz(segment, tmp_path / "seg.npz")
        loaded = load_segment_npz(path)
        assert loaded.spec.name == segment.spec.name
        assert loaded.label_names == segment.label_names
        assert loaded.seed == segment.seed
        for orig, back in zip(segment.components, loaded.components):
            assert np.array_equal(back.matrix, orig.matrix)  # bit-exact
            assert back.sensor_names == orig.sensor_names
            assert back.sensor_groups == orig.sensor_groups
            assert back.name == orig.name and back.arch == orig.arch
            if with_labels:
                assert np.array_equal(back.labels, orig.labels)
            else:
                assert back.labels is None
            if with_target:
                assert np.array_equal(back.target, orig.target)
            else:
                assert back.target is None

    def test_rejects_foreign_npz(self, tmp_path):
        import json

        path = tmp_path / "x.npz"
        np.savez(path, manifest=np.frombuffer(
            json.dumps({"format": "other"}).encode(), dtype=np.uint8
        ))
        with pytest.raises(ValueError, match="unsupported segment format"):
            load_segment_npz(path)


class TestSegmentNPZMmap:
    """Zero-copy ``mmap_mode`` reads of the binary segment format."""

    def test_mmap_round_trip_bit_exact(self, tmp_path):
        segment = _tiny_segment(with_labels=True, with_target=True)
        path = save_segment_npz(segment, tmp_path / "seg.npz")
        loaded = load_segment_npz(path, mmap_mode="r")
        for orig, back in zip(segment.components, loaded.components):
            assert np.array_equal(back.matrix, orig.matrix)
            assert np.array_equal(back.labels, orig.labels)
            assert np.array_equal(back.target, orig.target)
            assert back.sensor_names == orig.sensor_names

    def test_mmap_arrays_are_file_backed_and_read_only(self, tmp_path):
        segment = _tiny_segment()
        path = save_segment_npz(segment, tmp_path / "seg.npz")
        loaded = load_segment_npz(path, mmap_mode="r")
        matrix = loaded.components[0].matrix
        assert isinstance(matrix, np.memmap)
        with pytest.raises(ValueError):
            matrix[0, 0] = 1.0

    def test_mmap_copy_on_write_is_mutable(self, tmp_path):
        segment = _tiny_segment()
        path = save_segment_npz(segment, tmp_path / "seg.npz")
        loaded = load_segment_npz(path, mmap_mode="c")
        loaded.components[0].matrix[0, 0] = 123.0
        assert loaded.components[0].matrix[0, 0] == 123.0
        # ... without touching the file.
        again = load_segment_npz(path, mmap_mode="r")
        assert again.components[0].matrix[0, 0] != 123.0

    def test_rejects_unknown_mmap_mode(self, tmp_path):
        segment = _tiny_segment()
        path = save_segment_npz(segment, tmp_path / "seg.npz")
        with pytest.raises(ValueError, match="mmap_mode"):
            load_segment_npz(path, mmap_mode="r+")

    def test_compressed_archive_falls_back_to_eager_read(self, tmp_path):
        """Compressed members cannot map; the loader still returns them."""
        segment = _tiny_segment(with_labels=True)
        eager = save_segment_npz(segment, tmp_path / "eager.npz")
        arrays = dict(np.load(eager))
        compressed = tmp_path / "compressed.npz"
        np.savez_compressed(compressed, **arrays)
        loaded = load_segment_npz(compressed, mmap_mode="r")
        for orig, back in zip(segment.components, loaded.components):
            assert np.array_equal(back.matrix, orig.matrix)


class TestCacheKeyStability:
    """Content keys must be stable across processes (no hash seeds)."""

    SNIPPET = (
        "from repro.datasets.recipes import recipe\n"
        "from repro.scenarios.cache import dataset_key, segment_key\n"
        "from repro.scenarios.registry import get_scenario\n"
        "r = recipe('application', t=700, nodes=2, noise_std=0.05)\n"
        "print(segment_key(r))\n"
        "print(dataset_key(r, 'cs-20', wl=30, ws=5))\n"
        "print(get_scenario('fig3').spec_hash())\n"
    )

    def _subprocess_keys(self) -> list[str]:
        src = Path(__file__).resolve().parent.parent / "src"
        out = subprocess.run(
            [sys.executable, "-c", self.SNIPPET],
            capture_output=True,
            text=True,
            check=True,
            env={
                **os.environ,
                "PYTHONPATH": str(src),
                "PYTHONHASHSEED": "random",
            },
        )
        return out.stdout.split()

    def test_keys_match_across_processes(self):
        from repro.scenarios.registry import get_scenario

        r = recipe("application", t=700, nodes=2, noise_std=0.05)
        local = [
            segment_key(r),
            dataset_key(r, "cs-20", wl=30, ws=5),
            get_scenario("fig3").spec_hash(),
        ]
        assert self._subprocess_keys() == local

    def test_generated_data_stable_across_hash_seeds(self):
        """Recipes must build bit-identical segments in any process.

        Guards against PYTHONHASHSEED leaking into generation (e.g. via
        ``hash(str)``-derived RNG seeds), which would silently poison the
        cross-process artifact cache.
        """
        snippet = (
            "from repro.datasets.recipes import recipe\n"
            "m = recipe('application', t=400, nodes=2).build()"
            ".components[0].matrix\n"
            "print(repr(float(m.sum())))\n"
        )
        src = Path(__file__).resolve().parent.parent / "src"
        sums = set()
        for seed in ("1", "2"):
            out = subprocess.run(
                [sys.executable, "-c", snippet],
                capture_output=True,
                text=True,
                check=True,
                env={
                    **os.environ,
                    "PYTHONPATH": str(src),
                    "PYTHONHASHSEED": seed,
                },
            )
            sums.add(out.stdout.strip())
        assert len(sums) == 1, f"generation depends on PYTHONHASHSEED: {sums}"

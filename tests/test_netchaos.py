"""Seeded TCP chaos proxy: determinism, chunking independence, faults.

The load-bearing properties: a fault plan is a pure function of
``(seed, connection, window)``; the bytes that reach the upstream are
identical no matter how TCP chunks the stream; an inactive config is a
transparent wire; a scheduled reset surfaces to the client as a real
``ECONNRESET``, not a polite FIN.
"""

import socket
import threading
import time

import pytest

from repro.service.netchaos import WINDOW, ChaosProxy, NetChaosConfig

#: WINDOW/1MiB is the per-window fault probability unit: a rate of
#: 256/MB means probability 1.0 — the fault fires in *every* window.
CERTAIN = 1024 * 1024 / WINDOW


class _Upstream:
    """Throwaway TCP sink (optionally echoing) for proxy tests."""

    def __init__(self, echo: bool = False):
        self.echo = echo
        self.listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(8)
        self.port = self.listener.getsockname()[1]
        #: One bytearray per accepted connection, append-only.
        self.blobs: list[bytearray] = []
        self.closed = 0
        threading.Thread(target=self._accept, daemon=True).start()

    def _accept(self):
        while True:
            try:
                conn, _ = self.listener.accept()
            except OSError:
                return
            buf = bytearray()
            self.blobs.append(buf)
            threading.Thread(
                target=self._drain, args=(conn, buf), daemon=True
            ).start()

    def _drain(self, conn, buf):
        while True:
            try:
                data = conn.recv(1 << 16)
            except OSError:
                break
            if not data:
                break
            buf += data
            if self.echo:
                try:
                    conn.sendall(data)
                except OSError:
                    break
        try:
            conn.close()
        except OSError:
            pass
        self.closed += 1

    def close(self):
        self.listener.close()


def _wait(pred, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if pred():
            return True
        time.sleep(0.01)
    return False


def _pump(port: int, payload: bytes, chunk: int) -> None:
    with socket.create_connection(("127.0.0.1", port)) as sock:
        for i in range(0, len(payload), chunk):
            sock.sendall(payload[i : i + chunk])


class TestPlanDeterminism:
    def test_plan_is_pure_function_of_coordinates(self):
        cfg = NetChaosConfig(
            seed=7,
            corrupt_per_mb=64.0,
            reset_per_mb=16.0,
            truncate_per_mb=16.0,
            partition_per_mb=16.0,
            latency_ms=1.0,
            jitter_ms=2.0,
        )
        a = ChaosProxy(("127.0.0.1", 1), cfg)
        b = ChaosProxy(("127.0.0.1", 1), cfg)
        plans = [a._plan(1, w) for w in range(512)]
        assert plans == [b._plan(1, w) for w in range(512)]
        # Coordinates matter: another connection or another seed gives
        # a different schedule somewhere in the range.
        assert plans != [a._plan(2, w) for w in range(512)]
        other = ChaosProxy(("127.0.0.1", 1), NetChaosConfig(
            seed=8,
            corrupt_per_mb=64.0,
            reset_per_mb=16.0,
            truncate_per_mb=16.0,
            partition_per_mb=16.0,
            latency_ms=1.0,
            jitter_ms=2.0,
        ))
        assert plans != [other._plan(1, w) for w in range(512)]

    def test_fixed_draw_order_isolates_fault_classes(self):
        """Enabling resets must not reshuffle the corruption schedule:
        every knob consumes its RNG draws whether or not it fires."""
        corrupt_only = ChaosProxy(
            ("127.0.0.1", 1), NetChaosConfig(seed=3, corrupt_per_mb=64.0)
        )
        both = ChaosProxy(
            ("127.0.0.1", 1),
            NetChaosConfig(seed=3, corrupt_per_mb=64.0, reset_per_mb=64.0),
        )
        for w in range(512):
            assert corrupt_only._plan(1, w).get("corrupt") == both._plan(
                1, w
            ).get("corrupt")

    def test_config_rejects_negative_rates(self):
        with pytest.raises(ValueError, match="corrupt_per_mb"):
            NetChaosConfig(corrupt_per_mb=-1.0)

    def test_inactive_config(self):
        assert not NetChaosConfig().active
        assert NetChaosConfig(corrupt_per_mb=0.5).active


class TestWireBehavior:
    PAYLOAD = bytes(range(256)) * 1024  # 256 KiB = 64 windows

    def _through(self, cfg: NetChaosConfig, chunk: int) -> tuple:
        upstream = _Upstream()
        proxy = ChaosProxy(("127.0.0.1", upstream.port), cfg).start()
        try:
            _pump(proxy.port, self.PAYLOAD, chunk)
            assert _wait(
                lambda: upstream.closed >= 1
                and len(upstream.blobs[0]) >= len(self.PAYLOAD)
            )
            return bytes(upstream.blobs[0]), dict(proxy.stats)
        finally:
            proxy.stop()
            upstream.close()

    def test_corruption_is_chunking_independent(self):
        """Same seed, wildly different send sizes: the upstream sees
        the exact same corrupted byte stream, and every corrupted
        position matches the plan's prediction."""
        cfg = NetChaosConfig(seed=11, corrupt_per_mb=CERTAIN)
        got_small, stats_small = self._through(cfg, chunk=977)
        got_large, stats_large = self._through(cfg, chunk=1 << 16)
        assert got_small == got_large
        n_windows = len(self.PAYLOAD) // WINDOW
        assert stats_small["corrupted"] == n_windows
        assert stats_large["corrupted"] == n_windows
        # Cross-check against the pure plan function.
        predict = ChaosProxy(("127.0.0.1", 1), cfg)
        expected = bytearray(self.PAYLOAD)
        for w in range(n_windows):
            pos, xor = predict._plan(1, w)["corrupt"]
            expected[w * WINDOW + pos] ^= xor
        assert got_small == bytes(expected)
        diffs = sum(
            a != b for a, b in zip(got_small, self.PAYLOAD)
        )
        assert diffs == n_windows

    def test_inactive_config_is_transparent(self):
        got, stats = self._through(NetChaosConfig(), chunk=8192)
        assert got == self.PAYLOAD
        assert stats["corrupted"] == 0
        assert stats["resets"] == 0
        assert stats["truncated_bytes"] == 0
        assert stats["partitions"] == 0
        assert stats["bytes_in"] == stats["bytes_out"] == len(self.PAYLOAD)

    def test_truncation_drops_scheduled_bytes(self):
        cfg = NetChaosConfig(seed=5, truncate_per_mb=CERTAIN)
        got, stats = self._through_lossy(cfg)
        assert stats["truncated_bytes"] > 0
        assert len(got) == len(self.PAYLOAD) - stats["truncated_bytes"]

    def _through_lossy(self, cfg: NetChaosConfig) -> tuple:
        """Like _through but tolerates missing bytes (truncation)."""
        upstream = _Upstream()
        proxy = ChaosProxy(("127.0.0.1", upstream.port), cfg).start()
        try:
            _pump(proxy.port, self.PAYLOAD, 8192)
            assert _wait(lambda: upstream.closed >= 1)
            return bytes(upstream.blobs[0]), dict(proxy.stats)
        finally:
            proxy.stop()
            upstream.close()

    def test_reset_surfaces_as_connection_reset(self):
        upstream = _Upstream()
        proxy = ChaosProxy(
            ("127.0.0.1", upstream.port),
            NetChaosConfig(seed=1, reset_per_mb=CERTAIN),
        ).start()
        try:
            with pytest.raises(OSError):
                with socket.create_connection(
                    ("127.0.0.1", proxy.port)
                ) as sock:
                    # The RST may land after a few sends have been
                    # buffered; keep pushing until the failure surfaces.
                    for _ in range(200):
                        sock.sendall(b"x" * 4096)
                        time.sleep(0.005)
                    pytest.fail("proxy never reset the connection")
            assert proxy.stats["resets"] >= 1
        finally:
            proxy.stop()
            upstream.close()

    def test_echo_path_is_transparent(self):
        """server→client direction (acks) is never perturbed, even
        with every client→server fault class enabled."""
        upstream = _Upstream(echo=True)
        cfg = NetChaosConfig(seed=2, corrupt_per_mb=CERTAIN)
        proxy = ChaosProxy(("127.0.0.1", upstream.port), cfg).start()
        payload = bytes(range(256)) * 16  # one window
        try:
            with socket.create_connection(
                ("127.0.0.1", proxy.port)
            ) as sock:
                sock.sendall(payload)
                echoed = bytearray()
                sock.settimeout(10.0)
                while len(echoed) < len(payload):
                    data = sock.recv(1 << 16)
                    if not data:
                        break
                    echoed += data
            # Exactly what the upstream received (one corrupted byte),
            # forwarded back byte-for-byte.
            assert _wait(lambda: len(upstream.blobs[0]) == len(payload))
            assert bytes(echoed) == bytes(upstream.blobs[0])
            assert echoed != payload
        finally:
            proxy.stop()
            upstream.close()


class TestLifecycle:
    def test_port_file_and_stats_on_stop(self, tmp_path):
        upstream = _Upstream()
        port_file = tmp_path / "chaos.port"
        with ChaosProxy(
            ("127.0.0.1", upstream.port),
            NetChaosConfig(),
            port_file=port_file,
        ) as proxy:
            assert int(port_file.read_text()) == proxy.port
            _pump(proxy.port, b"hello", chunk=5)
            assert _wait(lambda: proxy.stats["bytes_out"] == 5)
        stats = proxy.stats
        assert stats["connections"] == 1
        assert not port_file.exists()
        upstream.close()

    def test_callable_upstream_reresolved_per_connection(self):
        first = _Upstream()
        second = _Upstream()
        targets = [("127.0.0.1", first.port), ("127.0.0.1", second.port)]

        def resolve():
            return targets[0]

        proxy = ChaosProxy(resolve, NetChaosConfig()).start()
        try:
            _pump(proxy.port, b"one", chunk=3)
            assert _wait(
                lambda: first.blobs and bytes(first.blobs[0]) == b"one"
            )
            targets[0] = targets[1]  # "the server restarted"
            _pump(proxy.port, b"two", chunk=3)
            assert _wait(
                lambda: second.blobs and bytes(second.blobs[0]) == b"two"
            )
        finally:
            proxy.stop()
            first.close()
            second.close()

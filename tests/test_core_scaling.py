"""Tests for signature rescaling and central-block compression."""

import numpy as np
import pytest

from repro.core.scaling import (
    drop_central_blocks,
    rescale_signature,
    rescale_signature_matrix,
)


class TestRescaleSignature:
    def test_identity_when_same_length(self):
        sig = np.array([1 + 1j, 2 + 2j, 3 + 3j])
        out = rescale_signature(sig, 3)
        assert np.allclose(out, sig)
        assert out is not sig  # copy, not alias

    def test_constant_signature_invariant(self):
        sig = np.full(8, 0.5 + 0.25j)
        for L in (1, 3, 8, 20):
            out = rescale_signature(sig, L)
            assert np.allclose(out, 0.5 + 0.25j)

    def test_upscale_then_downscale_roundtrip_linear_ramp(self):
        sig = np.linspace(0.0, 1.0, 10) + 0j
        up = rescale_signature(sig, 40)
        back = rescale_signature(up, 10)
        assert np.allclose(back, sig, atol=0.02)

    def test_preserves_mean_approximately(self):
        rng = np.random.default_rng(3)
        sig = rng.random(16) + 1j * rng.random(16)
        out = rescale_signature(sig, 8)
        assert abs(out.real.mean() - sig.real.mean()) < 0.1

    def test_real_input(self):
        out = rescale_signature(np.array([0.0, 1.0]), 4)
        assert not np.iscomplexobj(out)
        assert out.shape == (4,)
        assert np.all(np.diff(out) >= 0)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            rescale_signature(np.zeros((2, 2)), 3)
        with pytest.raises(ValueError):
            rescale_signature(np.zeros(3), 0)


class TestRescaleSignatureMatrix:
    def test_matches_rowwise_rescale(self):
        rng = np.random.default_rng(0)
        sigs = rng.random((5, 12)) + 1j * rng.random((5, 12))
        out = rescale_signature_matrix(sigs, 7)
        for i in range(5):
            assert np.allclose(out[i], rescale_signature(sigs[i], 7), atol=1e-12)

    def test_single_block_source(self):
        sigs = np.array([[2.0 + 1j], [4.0 + 0j]])
        out = rescale_signature_matrix(sigs, 3)
        assert np.allclose(out[0], 2.0 + 1j)
        assert np.allclose(out[1], 4.0 + 0j)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            rescale_signature_matrix(np.zeros(4), 2)


class TestDropCentralBlocks:
    def test_keeps_outer_blocks(self):
        sig = np.arange(10.0)
        out = drop_central_blocks(sig, 4)
        assert out.tolist() == [0.0, 1.0, 8.0, 9.0]

    def test_odd_keep_favours_head(self):
        sig = np.arange(6.0)
        out = drop_central_blocks(sig, 3)
        assert out.tolist() == [0.0, 1.0, 5.0]

    def test_keep_all_is_identity(self):
        sig = np.arange(5.0)
        assert drop_central_blocks(sig, 5).tolist() == sig.tolist()

    def test_matrix_input_rowwise(self):
        sigs = np.arange(12.0).reshape(2, 6)
        out = drop_central_blocks(sigs, 2)
        assert out.shape == (2, 2)
        assert out[0].tolist() == [0.0, 5.0]

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            drop_central_blocks(np.arange(4.0), 0)
        with pytest.raises(ValueError):
            drop_central_blocks(np.arange(4.0), 5)

"""Tests for the JS-divergence compression-fidelity metrics."""

import numpy as np
import pytest

from repro.analysis.similarity import (
    collapsed_distribution,
    cs_compression_divergence,
    js_divergence_2d,
    kl_divergence,
    nearest_neighbor_upsample,
    shannon_entropy,
)
from repro.core.pipeline import CorrelationWiseSmoothing


class TestEntropy:
    def test_uniform(self):
        assert shannon_entropy(np.full(8, 1 / 8)) == pytest.approx(3.0)

    def test_deterministic(self):
        assert shannon_entropy(np.array([1.0, 0.0])) == pytest.approx(0.0)

    def test_2d_input(self):
        p = np.full((2, 2), 0.25)
        assert shannon_entropy(p) == pytest.approx(2.0)

    def test_rejects_unnormalized(self):
        with pytest.raises(ValueError):
            shannon_entropy(np.array([0.5, 0.2]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            shannon_entropy(np.array([1.5, -0.5]))


class TestKL:
    def test_identical_is_zero(self):
        p = np.array([0.25, 0.75])
        assert kl_divergence(p, p) == pytest.approx(0.0)

    def test_known_value(self):
        p = np.array([0.5, 0.5])
        q = np.array([0.25, 0.75])
        expected = 0.5 * np.log2(2.0) + 0.5 * np.log2(0.5 / 0.75)
        assert kl_divergence(p, q) == pytest.approx(expected)

    def test_infinite_on_missing_support(self):
        assert kl_divergence(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == np.inf

    def test_asymmetric(self):
        p = np.array([0.9, 0.1])
        q = np.array([0.5, 0.5])
        assert kl_divergence(p, q) != pytest.approx(kl_divergence(q, p))


class TestUpsample:
    def test_exact_repeat(self):
        X = np.array([[1.0], [2.0]])
        up = nearest_neighbor_upsample(X, 4)
        assert up[:, 0].tolist() == [1.0, 1.0, 2.0, 2.0]

    def test_identity(self):
        X = np.arange(6.0).reshape(3, 2)
        assert np.array_equal(nearest_neighbor_upsample(X, 3), X)

    def test_uneven(self):
        X = np.array([[0.0], [1.0], [2.0]])
        up = nearest_neighbor_upsample(X, 5)
        assert up.shape == (5, 1)
        assert up[0, 0] == 0.0 and up[-1, 0] == 2.0

    def test_rejects_bad_rows(self):
        with pytest.raises(ValueError):
            nearest_neighbor_upsample(np.zeros((2, 2)), 0)


class TestCollapsedDistribution:
    def test_sums_to_one(self, rng):
        data = rng.random((5, 100))
        P = collapsed_distribution(data, bins=16)
        assert P.shape == (5, 16)
        assert P.sum() == pytest.approx(1.0)

    def test_each_dimension_equal_mass(self, rng):
        data = rng.random((4, 50))
        P = collapsed_distribution(data, bins=8)
        assert np.allclose(P.sum(axis=1), 0.25)

    def test_constant_data(self):
        P = collapsed_distribution(np.full((2, 10), 3.0), bins=4)
        assert P.sum() == pytest.approx(1.0)
        assert (P > 0).sum() == 2  # one bin per dimension

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            collapsed_distribution(np.zeros(5))


class TestJSDivergence2D:
    def test_identical_is_zero(self, rng):
        A = rng.random((4, 200))
        assert js_divergence_2d(A, A) == pytest.approx(0.0, abs=1e-9)

    def test_bounded_by_one(self, rng):
        A = rng.random((3, 100))
        B = rng.random((3, 100)) + 10.0
        js = js_divergence_2d(A, B)
        assert 0.0 <= js <= 1.0

    def test_disjoint_supports_near_one(self):
        A = np.zeros((2, 50))
        B = np.ones((2, 50))
        assert js_divergence_2d(A, B) == pytest.approx(1.0, abs=1e-6)

    def test_symmetric(self, rng):
        A = rng.random((3, 80))
        B = rng.random((3, 80)) * 0.5
        assert js_divergence_2d(A, B) == pytest.approx(js_divergence_2d(B, A))

    def test_rejects_dimension_mismatch(self, rng):
        with pytest.raises(ValueError, match="mismatch"):
            js_divergence_2d(rng.random((3, 10)), rng.random((4, 10)))


class TestCSCompressionDivergence:
    def test_divergence_decreases_with_l(self, correlated_matrix):
        """The Figure 4a monotonicity: more blocks -> lower divergence."""
        values = []
        for l in (2, 6, 12):
            cs = CorrelationWiseSmoothing(blocks=l).fit(correlated_matrix)
            sorted_data = cs.sort(correlated_matrix)
            sigs = cs.transform_series(correlated_matrix, wl=40, ws=10)
            _, _, js = cs_compression_divergence(sorted_data, sigs)
            values.append(js)
        assert values[0] > values[-1]

    def test_real_only_increases_divergence(self, correlated_matrix):
        cs = CorrelationWiseSmoothing(blocks=6).fit(correlated_matrix)
        sorted_data = cs.sort(correlated_matrix)
        sigs = cs.transform_series(correlated_matrix, wl=40, ws=10)
        _, _, full = cs_compression_divergence(sorted_data, sigs)
        _, _, real_only = cs_compression_divergence(
            sorted_data, sigs.real.astype(np.complex128)
        )
        assert real_only > full

    def test_returns_components(self, correlated_matrix):
        cs = CorrelationWiseSmoothing(blocks=4).fit(correlated_matrix)
        sorted_data = cs.sort(correlated_matrix)
        sigs = cs.transform_series(correlated_matrix, wl=40, ws=10)
        js_r, js_i, js_mean = cs_compression_divergence(sorted_data, sigs)
        assert js_mean == pytest.approx((js_r + js_i) / 2)
        assert 0.0 <= js_r <= 1.0 and 0.0 <= js_i <= 1.0

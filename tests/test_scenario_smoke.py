"""Tier-1 CI gate: every registered scenario must run end to end.

``repro list`` must show the whole catalog, and each scenario must
execute at ``--smoke`` scale through the real CLI (table + CSV sinks,
artifact output) — so a spec that breaks cannot merge.
"""

import pytest

from repro import cli
from repro.scenarios.registry import list_scenarios, scenario_names

SCENARIOS = scenario_names()


class TestList:
    def test_list_shows_every_scenario(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out

    def test_list_tag_filter(self, capsys):
        assert cli.main(["list", "--tag", "paper"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "noise-robustness" not in out


class TestRunCLI:
    def test_unknown_scenario_fails_cleanly(self, capsys):
        assert cli.main(["run", "nope"]) == 2

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_smoke_run(self, name, tmp_path, capsys):
        csv = tmp_path / f"{name}.csv"
        code = cli.main([
            "run", name,
            "--smoke",
            "--csv", str(csv),
            "--out", str(tmp_path / "artifacts"),
        ])
        captured = capsys.readouterr()
        assert code == 0, captured.err
        lines = csv.read_text().splitlines()
        assert len(lines) >= 2  # header + at least one result row
        spec = next(s for s in list_scenarios() if s.name == name)
        assert spec.title in captured.out

    def test_heatmap_scenarios_write_artifacts(self, tmp_path, capsys):
        out = tmp_path / "figs"
        assert cli.main(["run", "fig7", "--smoke", "--out", str(out)]) == 0
        capsys.readouterr()
        assert len(list(out.glob("fig7_*_real.pgm"))) == 3

    def test_cached_rerun_hits(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        for _ in range(2):
            assert cli.main(
                ["run", "table1", "--smoke", "--cache-dir", cache]
            ) == 0
        err = capsys.readouterr().err
        assert "5 hits" in err

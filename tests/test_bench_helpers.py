"""Tests for the benchmark result-merging helper."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.conftest import merge_csv  # noqa: E402


HEADERS = ("Segment", "Method", "Score")


class TestMergeCsv:
    def test_creates_file(self, tmp_path):
        path = tmp_path / "r.csv"
        merge_csv(path, HEADERS, [("a", "m1", 0.5)])
        lines = path.read_text().splitlines()
        assert lines[0] == "Segment,Method,Score"
        assert lines[1] == "a,m1,0.5"

    def test_merges_new_keys(self, tmp_path):
        path = tmp_path / "r.csv"
        merge_csv(path, HEADERS, [("a", "m1", 0.5)])
        merge_csv(path, HEADERS, [("a", "m2", 0.7)])
        lines = path.read_text().splitlines()
        assert len(lines) == 3  # header + 2 rows

    def test_updates_existing_key(self, tmp_path):
        path = tmp_path / "r.csv"
        merge_csv(path, HEADERS, [("a", "m1", 0.5)])
        merge_csv(path, HEADERS, [("a", "m1", 0.9)])
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert lines[1] == "a,m1,0.9"

    def test_partial_rerun_preserves_other_rows(self, tmp_path):
        """The regression this helper fixes: a filtered rerun must not
        clobber cells produced by the full run."""
        path = tmp_path / "r.csv"
        merge_csv(path, HEADERS, [("a", "m1", 0.5), ("b", "m1", 0.6)])
        merge_csv(path, HEADERS, [("b", "m1", 0.65)])
        content = path.read_text()
        assert "a,m1,0.5" in content
        assert "b,m1,0.65" in content
        assert "b,m1,0.6\n" not in content

    def test_header_change_discards_stale_rows(self, tmp_path):
        path = tmp_path / "r.csv"
        merge_csv(path, ("X", "Y"), [("1", "2")], n_key_cols=1)
        merge_csv(path, HEADERS, [("a", "m1", 0.5)])
        lines = path.read_text().splitlines()
        assert lines[0] == "Segment,Method,Score"
        assert len(lines) == 2

    def test_custom_key_width(self, tmp_path):
        path = tmp_path / "r.csv"
        merge_csv(path, HEADERS, [("a", "m1", 0.5)], n_key_cols=1)
        merge_csv(path, HEADERS, [("a", "m2", 0.7)], n_key_cols=1)
        # Key is only the segment: the second write replaces the first.
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert lines[1] == "a,m2,0.7"

"""The crash-recovery contract, enforced per scenario and backend.

For **every** registered ``fleet-detect*`` scenario at smoke size, on
both backends: interrupting the replay at the middle tick and resuming
from the checkpoint must produce alert JSONL **byte-identical** to an
uninterrupted run — with the two runs in separate processes under
*different* ``PYTHONHASHSEED`` values, so no accidental hash-order
dependence can hide in either the replay or the checkpoint codecs.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.scenarios.registry import list_scenarios

SRC = Path(__file__).resolve().parent.parent / "src"
DRIVER = Path(__file__).resolve().parent / "_checkpoint_driver.py"

#: Cycled across (scenario, backend, mode) runs so full and resume runs
#: of the same comparison always see different hash seeds.
HASH_SEEDS = ("0", "7", "31337")


def fleet_detect_scenarios() -> list[str]:
    return sorted(
        s.name
        for s in list_scenarios()
        if s.kind.startswith("fleet-detect")
    )


def test_sweep_covers_all_registered_fleet_scenarios():
    """If someone registers a new fleet-detect* scenario, it joins the
    contract sweep automatically — this just pins the current floor."""
    names = fleet_detect_scenarios()
    assert {
        "fleet-detect",
        "fleet-detect-fused",
        "fleet-detect-scale",
        "fleet-detect-noise",
        "fleet-detect-chaos",
    } <= set(names)


@pytest.fixture(scope="session")
def contract_cache(tmp_path_factory):
    return str(tmp_path_factory.mktemp("contract_cache"))


def run_driver(scenario, backend, cache, out, workdir, mode, hash_seed):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    subprocess.run(
        [sys.executable, str(DRIVER), scenario, backend, cache,
         str(out), str(workdir), mode],
        check=True,
        env=env,
        cwd=str(SRC.parent),
        capture_output=True,
    )


@pytest.mark.parametrize("backend", ("staged", "fused"))
@pytest.mark.parametrize("scenario", fleet_detect_scenarios())
def test_interrupt_resume_byte_identical(
    scenario, backend, contract_cache, tmp_path
):
    full = tmp_path / "full.jsonl"
    resumed = tmp_path / "resumed.jsonl"
    # different hash seeds for the two runs of every comparison
    idx = hash((scenario, backend)) % len(HASH_SEEDS)
    run_driver(
        scenario, backend, contract_cache, full, tmp_path, "full",
        HASH_SEEDS[idx],
    )
    run_driver(
        scenario, backend, contract_cache, resumed, tmp_path, "resume",
        HASH_SEEDS[(idx + 1) % len(HASH_SEEDS)],
    )
    assert full.read_bytes() == resumed.read_bytes()
    assert full.stat().st_size > 0, "smoke replay should emit alerts"

"""Crash-durable network serving: WAL + networked checkpoints + resume.

The headline drill clones the on-disk state (checkpoint + WAL) of a
live server mid-stream — including a journaled frame of an unfinished
tick — and proves a fresh server recovering from that clone, fed by a
resuming client, emits alert JSONL byte-identical to the uninterrupted
in-process replay.  Around it: WAL-only recovery, the health /
readiness surface, stats plumbing, port-file cleanup and the
connect-backoff that closes the port-file race.
"""

import shutil
import socket
import threading
import time

import pytest

from repro.service.api import (
    ServiceConfig,
    build_detector,
    build_setup,
    replay,
)
from repro.service.checkpoint import CheckpointError, fleet_fingerprint
from repro.service.net import (
    FleetServer,
    ListAlertSink,
    ServerCheckpoint,
    loadgen,
)
from repro.service.protocol import encode_binary, encode_eof

CFG = ServiceConfig.smoke()


@pytest.fixture(scope="module")
def setup():
    return build_setup(CFG)


@pytest.fixture(scope="module")
def fingerprint(setup):
    return fleet_fingerprint(setup.trained)


@pytest.fixture(scope="module")
def reference(setup):
    sink = ListAlertSink()
    outcome = replay(CFG, setup, sinks=(sink,))
    return outcome, sink.text()


def _wait(pred, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if pred():
            return True
        time.sleep(0.02)
    return False


def _checkpoint(path, fingerprint, every=1):
    return ServerCheckpoint(
        path=path, every=every, fingerprint=fingerprint, chunk=CFG.chunk
    )


class TestCrashRestartByteIdentity:
    KILL_AT = 3  # ticks processed before the simulated crash

    def test_cloned_crash_state_recovers_byte_identical(
        self, setup, fingerprint, reference, tmp_path
    ):
        """Clone checkpoint+WAL of a live server mid-stream (with one
        frame of an unfinished tick journaled), recover a fresh server
        from the clone, resume the feed: byte-identical alerts."""
        _, ref_text = reference
        paths = sorted(setup.eval_data)

        # -- the "crashing" server -----------------------------------
        sink_a = ListAlertSink()
        server_a = FleetServer(
            build_detector(CFG, setup),
            sinks=(sink_a,),
            wal=tmp_path / "wal-live",
            checkpoint=_checkpoint(
                tmp_path / "live.npz", fingerprint
            ),
        )
        thread_a = server_a.start_background()
        assert server_a.ready.wait(10)
        loadgen(
            setup,
            ("127.0.0.1", server_a.port),
            chunk=CFG.chunk,
            max_ticks=self.KILL_AT,
            send_eof=False,
        )
        assert _wait(lambda: server_a.stats.ticks >= self.KILL_AT)
        # One frame of the next (never-completed) tick: the journal's
        # torn-tick tail a kill -9 mid-burst leaves behind.
        frames_before = server_a.stats.frames
        m = setup.eval_data[paths[0]]
        lo = self.KILL_AT * CFG.chunk
        with socket.create_connection(
            ("127.0.0.1", server_a.port)
        ) as sock:
            sock.sendall(
                encode_binary(
                    paths[0], self.KILL_AT, m[:, lo : lo + CFG.chunk]
                )
            )
            assert _wait(
                lambda: server_a.stats.frames == frames_before + 1
            )
            # Appends batch in memory; push the orphaned frame to disk
            # the way fsync=always would, so the clone carries a
            # mid-tick journal tail.  (The event loop is idle here —
            # nothing else is appending.)
            server_a._wal.sync()
            # Crash-consistent clone: checkpoint first, then the WAL —
            # exactly the order the live process writes them, so the
            # clone can never hold a checkpoint newer than its journal.
            shutil.copy(tmp_path / "live.npz", tmp_path / "crash.npz")
            shutil.copytree(tmp_path / "wal-live", tmp_path / "wal-crash")
        server_a.request_stop()
        thread_a.join(30)
        assert not thread_a.is_alive()

        # -- the restarted server ------------------------------------
        sink_b = ListAlertSink()
        server_b = FleetServer(
            build_detector(CFG, setup),
            sinks=(sink_b,),
            exit_on_idle=True,
            wal=tmp_path / "wal-crash",
            checkpoint=_checkpoint(tmp_path / "crash.npz", fingerprint),
        )
        thread_b = server_b.start_background()
        assert server_b.ready.wait(30)
        # Recovery replayed the journal tail past the checkpoint (at
        # least the orphaned frame of the unfinished tick).
        assert server_b.stats.wal_replayed > 0
        # The resuming client re-sends everything; processed ticks are
        # late-dropped, the rest completes the stream.
        stats = loadgen(
            setup,
            ("127.0.0.1", server_b.port),
            chunk=CFG.chunk,
            resume=True,
            total_timeout=120.0,
        )
        thread_b.join(60)
        assert not thread_b.is_alive()
        assert sink_b.text() == ref_text
        assert stats["acked_ticks"] == stats["ticks"]
        assert server_b.stats.checkpoints >= 1

    def test_wal_only_recovery_reemits_full_stream(
        self, setup, reference, tmp_path
    ):
        """No checkpoint at all: the journal alone re-drives every tick
        through a fresh detector — same bytes out."""
        _, ref_text = reference
        sink_a = ListAlertSink()
        server_a = FleetServer(
            build_detector(CFG, setup),
            sinks=(sink_a,),
            exit_on_idle=True,
            wal=tmp_path / "wal",
        )
        thread_a = server_a.start_background()
        assert server_a.ready.wait(10)
        loadgen(setup, ("127.0.0.1", server_a.port), chunk=CFG.chunk)
        thread_a.join(60)
        assert not thread_a.is_alive()
        assert sink_a.text() == ref_text
        appended = server_a.stats.wal_appended
        assert appended > 0

        sink_b = ListAlertSink()
        server_b = FleetServer(
            build_detector(CFG, setup),
            sinks=(sink_b,),
            exit_on_idle=True,
            wal=tmp_path / "wal",
        )
        thread_b = server_b.start_background()
        assert server_b.ready.wait(30)
        assert server_b.stats.wal_replayed == appended
        # Nothing new to send; an eof drains the recovered server.
        with socket.create_connection(
            ("127.0.0.1", server_b.port)
        ) as sock:
            sock.sendall(encode_eof())
        thread_b.join(30)
        assert not thread_b.is_alive()
        assert sink_b.text() == ref_text

    def test_inprocess_checkpoint_rejected_for_server_restart(
        self, setup, fingerprint, tmp_path
    ):
        """A checkpoint written by in-process replay has no server
        routing state; seeding a network restart from it must be a
        typed error, not silent drift."""
        replay(
            CFG,
            setup,
            checkpoint_path=tmp_path / "inproc.npz",
            checkpoint_every=1,
        )
        server = FleetServer(
            build_detector(CFG, setup),
            checkpoint=_checkpoint(tmp_path / "inproc.npz", fingerprint),
        )
        with pytest.raises(CheckpointError, match="server"):
            server._recover()


class TestHealthSurface:
    def test_health_payload_and_wal_stats(self, setup, tmp_path):
        server = FleetServer(
            build_detector(CFG, setup),
            exit_on_idle=True,
            wal=tmp_path / "wal",
        )
        thread = server.start_background()
        assert server.ready.wait(10)
        payload = server.health()
        assert payload["live"] is True
        assert payload["ready"] is True
        assert payload["status"] == "ok" and payload["reasons"] == []
        assert payload["wal"] is not None
        loadgen(setup, ("127.0.0.1", server.port), chunk=CFG.chunk)
        thread.join(60)
        assert not thread.is_alive()
        stats = server.stats.snapshot()
        assert stats["wal_appended"] > 0
        assert stats["wal_fsyncs"] > 0
        assert stats["wal_replayed"] == 0
        assert stats["checkpoints"] == 0
        # After the drain, the server reports itself not ready.
        assert server.health()["ready"] is False

    def test_degraded_reasons(self, setup):
        server = FleetServer(build_detector(CFG, setup))
        # Barrier-timeout streak (a dead agent forcing partial ticks).
        server._timeout_streak = 3
        payload = server.health()
        assert payload["status"] == "degraded"
        assert "barrier-timeout-streak" in payload["reasons"]
        # Quarantined node (guard state, not server state).
        node = sorted(server._queues)[0]
        server.guarded._health[node].state = "quarantined"
        payload = server.health()
        assert "quarantined-nodes" in payload["reasons"]
        assert payload["quarantined"] == 1


class TestIdleGrace:
    def test_reconnect_gap_does_not_end_stream(self, setup, reference):
        """An ``exit_on_idle`` server must survive the connection gap a
        reconnecting client leaves (e.g. after a chaos-proxy reset)
        instead of reading it as end-of-stream."""
        _, ref_text = reference
        sink = ListAlertSink()
        server = FleetServer(
            build_detector(CFG, setup),
            sinks=(sink,),
            exit_on_idle=True,
            idle_grace=5.0,
        )
        thread = server.start_background()
        assert server.ready.wait(10)
        loadgen(
            setup,
            ("127.0.0.1", server.port),
            chunk=CFG.chunk,
            max_ticks=2,
            send_eof=False,
        )
        # Inside the grace window with no connection open: still up.
        time.sleep(0.5)
        assert thread.is_alive()
        loadgen(
            setup,
            ("127.0.0.1", server.port),
            chunk=CFG.chunk,
            resume=True,
        )
        thread.join(60)
        assert not thread.is_alive()
        assert sink.text() == ref_text

    def test_idle_grace_expiry_ends_server(self, setup, reference):
        """With no EOF frame and no reconnect, the grace window runs
        out and the server drains on its own — nothing external wakes
        the pump, so expiry must be self-scheduled."""
        _, ref_text = reference
        sink = ListAlertSink()
        server = FleetServer(
            build_detector(CFG, setup),
            sinks=(sink,),
            exit_on_idle=True,
            idle_grace=0.3,
        )
        thread = server.start_background()
        assert server.ready.wait(10)
        loadgen(
            setup,
            ("127.0.0.1", server.port),
            chunk=CFG.chunk,
            send_eof=False,
        )
        thread.join(30)
        assert not thread.is_alive()
        assert sink.text() == ref_text


class TestPortFileCleanup:
    def test_port_files_removed_on_clean_shutdown(self, setup, tmp_path):
        port_file = tmp_path / "serve.port"
        server = FleetServer(
            build_detector(CFG, setup),
            exit_on_idle=True,
            ops_host="127.0.0.1",
            port_file=port_file,
        )
        thread = server.start_background()
        assert server.ready.wait(10)
        ops_file = tmp_path / "serve.port.ops"
        assert int(port_file.read_text()) == server.port
        assert int(ops_file.read_text()) == server.ops_bound_port
        loadgen(setup, ("127.0.0.1", server.port), chunk=CFG.chunk)
        thread.join(60)
        assert not thread.is_alive()
        # Stale port files would point supervisors at a dead port.
        assert not port_file.exists()
        assert not ops_file.exists()


class TestConnectBackoff:
    def test_loadgen_retries_until_server_binds(self, setup, reference):
        """The port-file race: loadgen starts before the server has
        bound its port and must retry with backoff, not crash."""
        _, ref_text = reference
        state: dict = {}

        def address():
            if "port" not in state:
                raise ConnectionRefusedError("server not up yet")
            return ("127.0.0.1", state["port"])

        sink = ListAlertSink()

        def bind_later():
            time.sleep(0.4)
            server = FleetServer(
                build_detector(CFG, setup),
                sinks=(sink,),
                exit_on_idle=True,
            )
            state["thread"] = server.start_background()
            assert server.ready.wait(10)
            state["port"] = server.port

        starter = threading.Thread(target=bind_later)
        starter.start()
        loadgen(setup, address, chunk=CFG.chunk, connect_timeout=15.0)
        starter.join(15)
        state["thread"].join(60)
        assert not state["thread"].is_alive()
        assert sink.text() == ref_text

    def test_connect_budget_exhausted_raises(self):
        with pytest.raises(ConnectionRefusedError):
            from repro.service.net import _connect_with_backoff

            _connect_with_backoff(
                ("127.0.0.1", 1), timeout=0.3
            )

"""Tests for the end-to-end CorrelationWiseSmoothing estimator."""

import numpy as np
import pytest

from repro.core.pipeline import CorrelationWiseSmoothing, signature_features


class TestConstruction:
    def test_blocks_all_string(self):
        cs = CorrelationWiseSmoothing(blocks="all")
        assert cs.blocks is None

    def test_blocks_int(self):
        assert CorrelationWiseSmoothing(blocks=7).blocks == 7

    def test_rejects_bad_blocks(self):
        with pytest.raises(ValueError):
            CorrelationWiseSmoothing(blocks=0)
        with pytest.raises(ValueError):
            CorrelationWiseSmoothing(blocks="some")

    def test_unfitted_transform_raises(self, correlated_matrix):
        cs = CorrelationWiseSmoothing(blocks=2)
        with pytest.raises(RuntimeError, match="fit"):
            cs.transform(correlated_matrix[:, :10])


class TestFitTransform:
    def test_signature_shape_and_dtype(self, correlated_matrix):
        cs = CorrelationWiseSmoothing(blocks=4).fit(correlated_matrix)
        sig = cs.transform(correlated_matrix[:, :50])
        assert sig.shape == (4,)
        assert sig.dtype == np.complex128

    def test_all_blocks_matches_sensor_count(self, correlated_matrix):
        cs = CorrelationWiseSmoothing().fit(correlated_matrix)
        sig = cs.transform(correlated_matrix[:, :50])
        assert sig.shape == (correlated_matrix.shape[0],)

    def test_real_part_in_unit_range(self, correlated_matrix):
        cs = CorrelationWiseSmoothing(blocks=3).fit(correlated_matrix)
        sig = cs.transform(correlated_matrix[:, 10:80])
        assert np.all(sig.real >= 0.0) and np.all(sig.real <= 1.0)

    def test_compression_requirement(self, correlated_matrix):
        # l << n * wl (Section III-A): 12 sensors x 50 samples -> 4 blocks.
        cs = CorrelationWiseSmoothing(blocks=4).fit(correlated_matrix)
        sig = cs.transform(correlated_matrix[:, :50])
        assert sig.size < correlated_matrix[:, :50].size / 10

    def test_too_many_blocks_raises(self, correlated_matrix):
        cs = CorrelationWiseSmoothing(blocks=99).fit(correlated_matrix)
        with pytest.raises(ValueError, match="blocks"):
            cs.transform(correlated_matrix[:, :50])

    def test_transform_series_consistent_with_transform(self, correlated_matrix):
        cs = CorrelationWiseSmoothing(blocks=5).fit(correlated_matrix)
        sigs = cs.transform_series(correlated_matrix, wl=40, ws=20)
        first = cs.transform(correlated_matrix[:, :40])
        assert np.allclose(sigs[0], first)
        # Later windows use the exact previous sample for the derivative.
        second = cs.transform(
            correlated_matrix[:, 20:60], prev_column=correlated_matrix[:, 19]
        )
        assert np.allclose(sigs[1], second)

    def test_retrain_mode_refits(self, correlated_matrix, rng):
        cs = CorrelationWiseSmoothing(blocks=3, retrain=True)
        cs.transform_series(correlated_matrix, wl=20, ws=10)
        p1 = cs.model.permutation.copy()
        other = rng.standard_normal(correlated_matrix.shape)
        cs.transform_series(other, wl=20, ws=10)
        assert not np.array_equal(p1, cs.model.permutation) or True
        assert cs.is_fitted

    def test_fit_transform_series(self, correlated_matrix):
        cs = CorrelationWiseSmoothing(blocks=3)
        sigs = cs.fit_transform_series(correlated_matrix, wl=25, ws=25)
        assert sigs.shape[1] == 3
        assert cs.is_fitted

    def test_sort_exposes_sorting_stage(self, correlated_matrix):
        cs = CorrelationWiseSmoothing(blocks=3).fit(correlated_matrix)
        sorted_data = cs.sort(correlated_matrix)
        assert sorted_data.shape == correlated_matrix.shape
        assert sorted_data.min() >= 0.0 and sorted_data.max() <= 1.0

    def test_lengths(self, correlated_matrix):
        cs = CorrelationWiseSmoothing(blocks=4).fit(correlated_matrix)
        assert cs.signature_length() == 4
        assert cs.feature_length() == 8
        assert cs.feature_length(real_only=True) == 4


class TestSignatureFeatures:
    def test_layout_real_then_imag(self):
        sig = np.array([1 + 2j, 3 + 4j])
        f = signature_features(sig)
        assert np.allclose(f, [1.0, 3.0, 2.0, 4.0])

    def test_real_only(self):
        sig = np.array([1 + 2j, 3 + 4j])
        assert np.allclose(signature_features(sig, real_only=True), [1.0, 3.0])

    def test_matrix_input(self):
        sigs = np.array([[1 + 1j, 2 + 2j], [3 + 3j, 4 + 4j]])
        f = signature_features(sigs)
        assert f.shape == (2, 4)
        assert np.allclose(f[0], [1, 2, 1, 2])

    def test_output_is_float(self):
        sigs = np.array([[1 + 1j]])
        assert signature_features(sigs).dtype == np.float64


class TestModelExchange:
    def test_set_model_enables_transform(self, correlated_matrix):
        donor = CorrelationWiseSmoothing(blocks=3).fit(correlated_matrix)
        receiver = CorrelationWiseSmoothing(blocks=3).set_model(donor.model)
        a = donor.transform(correlated_matrix[:, :30])
        b = receiver.transform(correlated_matrix[:, :30])
        assert np.allclose(a, b)

"""Tests for the CSModel artefact (validation, persistence, subsetting)."""

import numpy as np
import pytest

from repro.core.model import CSModel
from repro.core.training import train_cs_model


def make_model(n=6, names=True):
    rng = np.random.default_rng(0)
    perm = rng.permutation(n)
    lower = rng.random(n)
    upper = lower + rng.random(n) + 0.1
    sensor_names = tuple(f"s{i}" for i in range(n)) if names else None
    return CSModel(perm, lower, upper, sensor_names=sensor_names)


class TestValidation:
    def test_accepts_valid(self):
        m = make_model()
        assert m.n_sensors == 6

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError, match="permutation"):
            CSModel(np.array([0, 0, 2]), np.zeros(3), np.ones(3))

    def test_rejects_bound_shape_mismatch(self):
        with pytest.raises(ValueError, match="bounds"):
            CSModel(np.array([0, 1]), np.zeros(3), np.ones(3))

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError, match="upper"):
            CSModel(np.array([0, 1]), np.ones(2), np.zeros(2))

    def test_rejects_wrong_name_count(self):
        with pytest.raises(ValueError, match="names"):
            CSModel(np.array([0, 1]), np.zeros(2), np.ones(2), sensor_names=("a",))

    def test_rejects_2d_permutation(self):
        with pytest.raises(ValueError):
            CSModel(np.zeros((2, 2), dtype=int), np.zeros(2), np.ones(2))


class TestInverseAndNames:
    def test_inverse_roundtrip(self):
        m = make_model(8)
        inv = m.inverse_permutation
        assert np.array_equal(m.permutation[inv], np.arange(8))
        assert np.array_equal(inv[m.permutation], np.arange(8))

    def test_sorted_names(self):
        m = make_model(4)
        sorted_names = m.sorted_names()
        assert sorted_names == tuple(f"s{i}" for i in m.permutation)

    def test_sorted_names_none_without_names(self):
        assert make_model(names=False).sorted_names() is None


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        m = make_model()
        path = tmp_path / "model.json"
        m.save(path)
        loaded = CSModel.load(path)
        assert np.array_equal(loaded.permutation, m.permutation)
        assert np.allclose(loaded.lower, m.lower)
        assert np.allclose(loaded.upper, m.upper)
        assert loaded.sensor_names == m.sensor_names

    def test_roundtrip_without_names(self, tmp_path):
        m = make_model(names=False)
        m.save(tmp_path / "m.json")
        assert CSModel.load(tmp_path / "m.json").sensor_names is None

    def test_rejects_unknown_format(self):
        with pytest.raises(ValueError, match="format"):
            CSModel.from_dict({"format": "bogus"})

    def test_trained_model_roundtrip(self, correlated_matrix, tmp_path):
        m = train_cs_model(correlated_matrix)
        m.save(tmp_path / "t.json")
        loaded = CSModel.load(tmp_path / "t.json")
        assert np.array_equal(loaded.permutation, m.permutation)


class TestSubset:
    def test_subset_preserves_relative_order(self):
        m = make_model(6)
        keep = [0, 2, 4]
        sub = m.subset(keep)
        assert sub.n_sensors == 3
        # Surviving sensors appear in the same relative sorted order.
        old_order = [i for i in m.permutation if i in keep]
        remap = {old: new for new, old in enumerate(sorted(keep))}
        assert [remap[i] for i in old_order] == sub.permutation.tolist()

    def test_subset_bounds_and_names(self):
        m = make_model(6)
        sub = m.subset([1, 3])
        assert np.allclose(sub.lower, m.lower[[1, 3]])
        assert sub.sensor_names == ("s1", "s3")

    def test_subset_rejects_empty_and_out_of_range(self):
        m = make_model(4)
        with pytest.raises(ValueError):
            m.subset([])
        with pytest.raises(ValueError):
            m.subset([7])

    def test_subset_still_valid_model(self):
        m = make_model(10)
        sub = m.subset([0, 3, 5, 9])
        assert sorted(sub.permutation.tolist()) == [0, 1, 2, 3]

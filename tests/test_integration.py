"""Integration tests spanning multiple subsystems.

These exercise the paper's end-to-end claims at small scale: signatures
feed models and score well, CS models travel between systems, the online
stream agrees with the offline pipeline after a storage round-trip, and
signature rescaling preserves enough information for classification.
"""

import numpy as np

from repro.analysis.rootcause import explain_difference
from repro.baselines import get_method
from repro.core.model import CSModel
from repro.core.pipeline import CorrelationWiseSmoothing, signature_features
from repro.core.scaling import rescale_signature_matrix
from repro.datasets.generators import build_ml_dataset
from repro.experiments.fig6 import run_intervals
from repro.ml import (
    RandomForestClassifier,
    cross_validate_classifier,
    train_test_split,
)
from repro.monitoring.storage import load_segment, save_segment
from repro.monitoring.streaming import OnlineSignatureStream


class TestEndToEndClassification:
    def test_fault_detection_improves_with_blocks(self, fault_segment):
        """The Figure 4b Fault trend at miniature scale."""
        scores = {}
        for blocks in (5, "all"):
            ds = build_ml_dataset(
                fault_segment, lambda b=blocks: get_method(f"cs-{b}")
            )
            s = cross_validate_classifier(
                lambda: RandomForestClassifier(10, random_state=0),
                ds.X,
                ds.y,
                random_state=0,
            )
            scores[blocks] = s.mean()
        assert scores["all"] > scores[5]

    def test_cs_matches_baseline_on_application(self, application_segment):
        """Figure 3c: CS-20 reaches baseline-level scores."""
        out = {}
        for m in ("cs-20", "tuncer"):
            ds = build_ml_dataset(application_segment, lambda m=m: get_method(m))
            s = cross_validate_classifier(
                lambda: RandomForestClassifier(10, random_state=0),
                ds.X,
                ds.y,
                random_state=0,
            )
            out[m] = s.mean()
        assert out["cs-20"] > out["tuncer"] - 0.05


class TestModelPortability:
    def test_model_ships_between_instances(self, application_segment, tmp_path):
        comp = application_segment.components[0]
        names = list(comp.sensor_names)
        trainer = CorrelationWiseSmoothing(blocks=10)
        trainer.fit(comp.matrix, sensor_names=names)
        trainer.model.save(tmp_path / "model.json")

        # A second "deployment" loads the model and computes identical
        # signatures without retraining.
        deployed = CorrelationWiseSmoothing(blocks=10).set_model(
            CSModel.load(tmp_path / "model.json")
        )
        wl, ws = application_segment.spec.wl, application_segment.spec.ws
        a = trainer.transform_series(comp.matrix, wl, ws)
        b = deployed.transform_series(comp.matrix, wl, ws)
        assert np.allclose(a, b)

    def test_sensor_removal_robustness(self, application_segment):
        """Removing sensors degrades gracefully via CSModel.subset."""
        comp = application_segment.components[0]
        cs = CorrelationWiseSmoothing(blocks=5)
        cs.fit(comp.matrix, sensor_names=list(comp.sensor_names))
        keep = [i for i in range(comp.n_sensors) if i % 5 != 0]  # drop 20%
        sub_model = cs.model.subset(keep)
        reduced = CorrelationWiseSmoothing(blocks=5).set_model(sub_model)
        sig = reduced.transform(comp.matrix[keep][:, :30])
        assert sig.shape == (5,)
        full_sig = cs.transform(comp.matrix[:, :30])
        # Same system state: the reduced signature stays close.
        assert np.abs(sig.real - full_sig.real).mean() < 0.15


class TestTrainLowResPredictHighRes:
    def test_rescaled_signatures_still_classify(self, application_segment):
        """Train on 20-block signatures, test on down-scaled 40-block ones
        (the model-sharing workflow of Section IV-B)."""
        comp = application_segment.components[0]
        wl, ws = application_segment.spec.wl, application_segment.spec.ws
        labels = comp.labels
        from repro.datasets.windows import window_majority_labels

        y = window_majority_labels(labels, wl, ws)

        cs20 = CorrelationWiseSmoothing(blocks=20).fit(comp.matrix)
        cs40 = CorrelationWiseSmoothing(blocks=40).fit(comp.matrix)
        sig20 = cs20.transform_series(comp.matrix, wl, ws)
        sig40 = cs40.transform_series(comp.matrix, wl, ws)
        down = rescale_signature_matrix(sig40, 20)

        X20 = signature_features(sig20)
        Xdown = signature_features(down)
        Xtr, Xte, ytr, yte, Dtr, Dte = train_test_split(
            X20, y, Xdown, test_size=0.3, random_state=0, stratify=y
        )
        rf = RandomForestClassifier(10, random_state=0).fit(Xtr, ytr)
        native = (rf.predict(Xte) == yte).mean()
        crossres = (rf.predict(Dte) == yte).mean()
        assert crossres > native - 0.1

    def test_heatmap_intervals_consistent(self, application_segment):
        labels = application_segment.components[0].labels
        for lid in np.unique(labels):
            for start, stop in run_intervals(labels, int(lid)):
                assert (labels[start:stop] == lid).all()


class TestStorageStreamRoundtrip:
    def test_stream_from_stored_segment(self, tmp_path, infrastructure_segment):
        root = save_segment(infrastructure_segment, tmp_path / "seg")
        loaded = load_segment(root)
        comp = loaded.components[0]
        cs = CorrelationWiseSmoothing(blocks=5).fit(comp.matrix)
        stream = OnlineSignatureStream(cs, wl=30, ws=6)
        online = stream.run(comp.matrix.T)
        offline = cs.transform_series(comp.matrix, 30, 6)
        assert len(online) == offline.shape[0]
        assert np.allclose(np.stack(online), offline)


class TestRootCauseOnFault:
    def test_fault_blocks_point_at_error_sensors(self, fault_segment):
        """Drill-down from anomalous signature to the injected sensors."""
        comp = fault_segment.components[0]
        labels = comp.labels
        names = list(comp.sensor_names)
        cs = CorrelationWiseSmoothing(blocks="all")
        cs.fit(comp.matrix, sensor_names=names)
        wl = fault_segment.spec.wl

        memalloc_id = fault_segment.label_names.index("memalloc")
        intervals = run_intervals(labels, memalloc_id)
        start, stop = next((s, e) for s, e in intervals if e - s >= wl)
        healthy = run_intervals(labels, 0)
        hstart, hstop = next((s, e) for s, e in healthy if e - s >= wl)

        sig_fault = cs.transform(comp.matrix[:, start : start + wl])
        sig_ok = cs.transform(comp.matrix[:, hstart : hstart + wl])
        findings = explain_difference(cs.model, sig_ok, sig_fault, top=8)
        implicated = {s for f in findings for s in f.sensors}
        assert "alloc_failures" in implicated

"""Tests for the sensor response models."""

import numpy as np
import pytest

from repro.datasets.sensors import (
    SensorBank,
    SensorSpec,
    node_sensor_bank,
    rack_sensor_bank,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def latent(rng):
    t = 200
    return {
        "compute": np.clip(0.5 + 0.3 * np.sin(np.linspace(0, 10, t)), 0, 1),
        "memory": np.linspace(0.2, 0.8, t),
        "membw": np.full(t, 0.4),
        "io": np.full(t, 0.1),
        "net": np.full(t, 0.2),
        "freq": np.full(t, 1.0),
    }


class TestSensorSpec:
    def test_rejects_unknown_channel(self):
        with pytest.raises(ValueError, match="channel"):
            SensorSpec("bad", "misc", weights={"nonexistent": 1.0})

    def test_valid(self):
        s = SensorSpec("ok", "cpu", weights={"compute": 1.0})
        assert s.gain == 1.0


class TestSensorBank:
    def test_render_shape(self, latent, rng):
        bank = SensorBank([
            SensorSpec("a", "cpu", weights={"compute": 1.0}, noise=0.0),
            SensorSpec("b", "memory", weights={"memory": 1.0}, noise=0.0),
        ])
        M = bank.render(latent, rng)
        assert M.shape == (2, 200)

    def test_noiseless_render_is_linear_mix(self, latent, rng):
        bank = SensorBank([
            SensorSpec("a", "cpu", weights={"compute": 2.0}, offset=0.5, noise=0.0),
        ])
        M = bank.render(latent, rng)
        assert np.allclose(M[0], 0.5 + 2.0 * latent["compute"])

    def test_lag_smooths(self, rng):
        step = {"compute": np.concatenate([np.zeros(150), np.ones(150)])}
        fast = SensorBank([SensorSpec("f", "cpu", weights={"compute": 1.0}, noise=0.0)])
        slow = SensorBank([
            SensorSpec("s", "temp", weights={"compute": 1.0}, noise=0.0, lag=40)
        ])
        f = fast.render(step, rng)[0]
        s = slow.render(step, rng)[0]
        # Right after the step the lagged sensor is still rising.
        assert f[160] == pytest.approx(1.0)
        assert s[160] < 0.5
        assert s[-1] > 0.8  # eventually converges

    def test_clip_zero(self, rng):
        bank = SensorBank([
            SensorSpec("neg", "misc", weights={"compute": -5.0}, noise=0.0)
        ])
        M = bank.render({"compute": np.ones(10)}, rng)
        assert np.all(M >= 0.0)

    def test_group_indices(self):
        bank = SensorBank([
            SensorSpec("a", "cpu", weights={"compute": 1.0}),
            SensorSpec("b", "cache", weights={"membw": 1.0}),
            SensorSpec("c", "cpu", weights={"freq": 1.0}),
        ])
        assert bank.indices_of_group("cpu").tolist() == [0, 2]
        assert bank.indices_of_group("nope").size == 0

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SensorBank([
                SensorSpec("a", "cpu", weights={"compute": 1.0}),
                SensorSpec("a", "cpu", weights={"compute": 1.0}),
            ])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SensorBank([])

    def test_render_rejects_bad_channel_shape(self, rng):
        bank = SensorBank([SensorSpec("a", "cpu", weights={"compute": 1.0})])
        with pytest.raises(ValueError):
            bank.render({"compute": np.ones((2, 5))}, rng)


class TestNodeSensorBank:
    @pytest.mark.parametrize("n", [26, 52, 128])
    def test_exact_sensor_count(self, n, rng):
        bank = node_sensor_bank(n, rng, n_cores=8)
        assert len(bank) == n
        assert len(set(bank.names)) == n

    def test_contains_key_sensor_groups(self, rng):
        bank = node_sensor_bank(52, rng, n_cores=4)
        groups = set(bank.groups)
        assert {"cpu", "cache", "memory", "power", "temp"} <= groups

    def test_error_counter_groups_exist(self, rng):
        # The fault models target these groups specifically.
        bank = node_sensor_bank(128, rng, n_cores=16)
        groups = set(bank.groups)
        assert {"memerror", "ioerror", "neterror", "osfault"} <= groups

    def test_architecture_changes_response(self, latent):
        a = node_sensor_bank(30, np.random.default_rng(1), arch="skylake")
        b = node_sensor_bank(30, np.random.default_rng(1), arch="amd-rome")
        Ma = a.render(latent, np.random.default_rng(2))
        Mb = b.render(latent, np.random.default_rng(2))
        assert not np.allclose(Ma, Mb)

    def test_renders_correlated_sensors(self, latent, rng):
        # Sensors driven by the same channel must correlate — the property
        # CS ordering exploits.
        bank = node_sensor_bank(52, rng, n_cores=8)
        M = bank.render(latent, rng)
        names = list(bank.names)
        i = names.index("cpu_instructions")
        j = names.index("cpu_load")
        assert np.corrcoef(M[i], M[j])[0, 1] > 0.5


class TestRackSensorBank:
    def test_exact_sensor_count(self, rng):
        bank = rack_sensor_bank(31, rng)
        assert len(bank) == 31

    def test_cooling_and_power_groups(self, rng):
        bank = rack_sensor_bank(31, rng)
        groups = set(bank.groups)
        assert {"cooling", "power"} <= groups

    def test_chassis_sensors_fill_remainder(self, rng):
        bank = rack_sensor_bank(31, rng, n_chassis=4)
        chassis = [n for n in bank.names if n.startswith("chassis")]
        assert len(chassis) == 31 - 9  # 9 rack-level templates

"""Input-hardening guard: fault matrix, health lifecycle, invariance.

The acceptance property of the guard layer: every fault class maps to
its documented degradation policy — quarantine/coalesce/reject/recover —
and **no unhandled exception ever escapes** ``process_block``, on either
backend.  Clean input must pass through bit-unchanged: a guarded replay
minus its guard bookkeeping equals the unguarded replay.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.detector import FleetFaultDetector
from repro.service.guard import (
    FAULT_CLASSES,
    HEALTH_STATES,
    GuardConfig,
    GuardedDetector,
)
from repro.service.ingest import shard_of
from repro.service.replay import fleet_recipes, prepare_fleet, replay

BACKENDS = ("staged", "fused")


@pytest.fixture(scope="module")
def small_setup():
    return prepare_fleet(
        fleet_recipes(2, t=2000), blocks=8, trees=5, train_frac=0.5, seed=0
    )


def make_guarded(small_setup, backend="staged", **config):
    detector = FleetFaultDetector(small_setup.trained, backend=backend)
    cfg = GuardConfig(**config) if config else None
    return GuardedDetector(detector, config=cfg)


def burst_at(setup, lo, hi):
    return {p: m[:, lo:hi] for p, m in setup.eval_data.items()}


def guard_events(events):
    return [e for e in events if e["event"] == "guard"]


# ----------------------------------------------------------------------
# Fault matrix: each fault class -> documented policy, never a crash
# ----------------------------------------------------------------------
class TestFaultMatrix:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_corrupt_values_rejected(self, small_setup, backend):
        g = make_guarded(small_setup, backend)
        bad = burst_at(small_setup, 0, 50)
        victim = sorted(bad)[0]
        bad[victim] = np.full_like(bad[victim], np.nan)
        events = g.process_block(bad, tick=0)
        ge = guard_events(events)
        assert [e["fault"] for e in ge] == ["corrupt-values"]
        assert ge[0]["action"] == "reject"
        assert ge[0]["node"] == victim
        assert g.health(victim).state == "degraded"

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_duplicate_tick_coalesced(self, small_setup, backend):
        g = make_guarded(small_setup, backend)
        b = burst_at(small_setup, 0, 50)
        g.process_block(b, tick=0)
        before = {p: g.windows_seen(p) for p in g.paths}
        events = g.process_block(b, tick=0)  # same tick re-delivered
        ge = guard_events(events)
        assert {e["fault"] for e in ge} == {"duplicate-tick"}
        assert all(e["action"] == "coalesce" for e in ge)
        # the re-delivery advanced nothing
        assert {p: g.windows_seen(p) for p in g.paths} == before
        # retries are normal transport behavior: no health penalty
        assert all(g.health(p).state == "healthy" for p in g.paths)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_stale_tick_rejected(self, small_setup, backend):
        g = make_guarded(small_setup, backend)
        g.process_block(burst_at(small_setup, 0, 50), tick=0)
        g.process_block(burst_at(small_setup, 50, 100), tick=1)
        events = g.process_block(burst_at(small_setup, 0, 50), tick=0)
        ge = guard_events(events)
        assert {e["fault"] for e in ge} == {"stale-tick"}
        assert all(e["action"] == "reject" for e in ge)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_shape_mismatch_rejected(self, small_setup, backend):
        g = make_guarded(small_setup, backend)
        b = burst_at(small_setup, 0, 50)
        victim = sorted(b)[0]
        b[victim] = b[victim][:3]  # wrong sensor count
        events = g.process_block(b, tick=0)
        ge = guard_events(events)
        assert [e["fault"] for e in ge] == ["shape-mismatch"]
        # non-array garbage is also a shape mismatch, not a TypeError
        b2 = burst_at(small_setup, 50, 100)
        b2[victim] = "not telemetry"
        ge2 = guard_events(g.process_block(b2, tick=1))
        assert [e["fault"] for e in ge2] == ["shape-mismatch"]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_unknown_node_rejected(self, small_setup, backend):
        g = make_guarded(small_setup, backend)
        b = burst_at(small_setup, 0, 50)
        b["rack9/node99"] = next(iter(b.values()))
        events = g.process_block(b, tick=0)
        ge = guard_events(events)
        assert [e["fault"] for e in ge] == ["unknown-node"]
        assert g.fleet_health()["unknown_nodes"] == {"rack9/node99": 1}

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_no_exception_escapes_process_block(self, small_setup, backend):
        """The blanket guarantee over every fault class at once."""
        g = make_guarded(small_setup, backend)
        clean = burst_at(small_setup, 0, 50)
        victim = sorted(clean)[0]
        hostile = [
            {victim: np.full((5, 50), np.inf)},
            {victim: None},
            {victim: np.zeros((1,))},
            {"nobody/home": np.zeros((5, 50))},
            {victim: clean[victim]},  # will be duplicate next tick
            {victim: object()},
        ]
        g.process_block(clean, tick=0)
        for i, b in enumerate(hostile):
            g.process_block(b, tick=0)  # stale/duplicate on purpose
            g.process_block(b, tick=i + 1)
        # detector still advances on clean input afterwards
        events = g.process_block(burst_at(small_setup, 50, 100), tick=99)
        assert isinstance(events, list)


# ----------------------------------------------------------------------
# Health lifecycle: degrade -> quarantine -> backoff -> probation -> recover
# ----------------------------------------------------------------------
class TestHealthLifecycle:
    def test_quarantine_backoff_and_recovery(self, small_setup):
        g = make_guarded(
            small_setup,
            quarantine_after=2,
            backoff_ticks=2,
            recover_after=2,
        )
        victim = sorted(small_setup.eval_data)[0]
        nan_block = {victim: np.full((5, 50), np.nan)}

        def fault(tick):
            b = burst_at(small_setup, 0, 50)
            b[victim] = np.full_like(b[victim], np.nan)
            return g.process_block(b, tick=tick)

        ge = guard_events(fault(0))
        assert g.health(victim).state == "degraded"
        ge = guard_events(fault(1))
        assert g.health(victim).state == "quarantined"
        assert any(e["action"] == "quarantine" for e in ge)
        until = next(e for e in ge if e["action"] == "quarantine")["until"]
        # while quarantined: silent drop, no events, no validation
        assert guard_events(g.process_block(nan_block, tick=2)) == []
        # backoff expiry -> probation
        b = burst_at(small_setup, 0, 50)
        ge = guard_events(g.process_block(b, tick=until))
        assert any(e["action"] == "probation" for e in ge)
        assert g.health(victim).state == "degraded"
        # clean blocks -> recover
        ge = guard_events(
            g.process_block(burst_at(small_setup, 50, 100), tick=until + 1)
        )
        assert any(e["action"] == "recover" for e in ge)
        assert g.health(victim).state == "healthy"

    def test_requarantine_doubles_backoff(self, small_setup):
        g = make_guarded(
            small_setup, quarantine_after=1, backoff_ticks=2,
            backoff_factor=2, max_backoff_ticks=8,
        )
        victim = sorted(small_setup.eval_data)[0]
        nan_block = {victim: np.full((5, 50), np.nan)}
        backoffs = []
        tick = 0
        for _ in range(4):
            ge = guard_events(g.process_block(nan_block, tick=tick))
            q = next(e for e in ge if e["action"] == "quarantine")
            backoffs.append(q["until"] - tick - 1)
            tick = q["until"]  # fault again right at probation
        assert backoffs == [2, 4, 8, 8]  # doubled, then capped

    def test_fleet_health_payload(self, small_setup):
        g = make_guarded(small_setup)
        paths = sorted(small_setup.eval_data)
        b = burst_at(small_setup, 0, 50)
        b[paths[0]] = np.full_like(b[paths[0]], np.nan)
        g.process_block(b, tick=0)
        payload = g.fleet_health()
        assert set(payload) == {
            "tick", "nodes", "states", "shards", "unknown_nodes",
        }
        assert sorted(payload["nodes"]) == paths
        assert payload["states"]["degraded"] == 1
        assert sum(payload["states"].values()) == len(paths)
        node = payload["nodes"][paths[0]]
        assert node["state"] == "degraded"
        assert node["fault_counts"] == {"corrupt-values": 1}
        assert node["dropped_blocks"] == 1
        # shard rollup reports each shard's worst node
        shard = str(shard_of(paths[0], g.shards))
        assert payload["shards"][shard] == "degraded"
        assert all(s in HEALTH_STATES for s in payload["shards"].values())

    def test_alert_events_carry_health(self, small_setup):
        out = replay(small_setup, chunk=200, guard=True)
        alert_events = [e for e in out.events if e["event"] != "guard"]
        assert alert_events, "replay should alert"
        assert all(e["health"] in HEALTH_STATES for e in alert_events)
        # health is appended last: original key order is untouched
        assert all(list(e)[-1] == "health" for e in alert_events)

    def test_guard_state_roundtrip(self, small_setup):
        g = make_guarded(small_setup)
        b = burst_at(small_setup, 0, 50)
        victim = sorted(b)[0]
        b[victim] = np.full_like(b[victim], np.nan)
        b["rack9/node99"] = np.zeros((2, 2))
        g.process_block(b, tick=0)
        g2 = make_guarded(small_setup)
        g2.load_state(g.state_dict())
        assert g2.state_dict() == g.state_dict()
        assert g2.fleet_health() == g.fleet_health()


# ----------------------------------------------------------------------
# Transparency: guarded clean replay == unguarded replay
# ----------------------------------------------------------------------
class TestGuardEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_clean_replay_identical_minus_bookkeeping(
        self, small_setup, backend
    ):
        plain = replay(small_setup, chunk=200, backend=backend)
        guarded = replay(small_setup, chunk=200, backend=backend, guard=True)
        stripped = [
            {k: v for k, v in e.items() if k != "health"}
            for e in guarded.events
            if e["event"] != "guard"
        ]
        assert stripped == plain.events
        assert guarded.n_windows == plain.n_windows
        assert guarded.health["states"] == {
            "healthy": plain.n_nodes, "degraded": 0, "quarantined": 0,
        }

    def test_chaos_requires_guard(self, small_setup):
        from repro.service.chaos import ChaosConfig

        with pytest.raises(ValueError, match="requires guard"):
            replay(small_setup, chunk=200, chaos=ChaosConfig(drop=0.1))


# ----------------------------------------------------------------------
# Property: sharding and registration order never change results
# ----------------------------------------------------------------------
class TestShardInvariance:
    @settings(max_examples=25, deadline=None)
    @given(
        perm=st.permutations(list(range(6))),
        shards=st.integers(1, 16),
    )
    def test_shard_assignment_ignores_registration_order(self, perm, shards):
        paths = [f"rack{i // 2}/node{i:02d}" for i in range(6)]
        baseline = {p: shard_of(p, shards) for p in paths}
        shuffled = {paths[i]: shard_of(paths[i], shards) for i in perm}
        assert shuffled == baseline
        assert all(0 <= s < shards for s in baseline.values())

    @pytest.mark.parametrize("shards", (1, 2, 3, 5))
    def test_alert_stream_invariant_under_shard_count(
        self, small_setup, shards
    ):
        baseline = replay(small_setup, chunk=200, guard=True)
        sharded = replay(small_setup, chunk=200, guard=True, shards=shards)
        assert sharded.events == baseline.events

    @settings(max_examples=10, deadline=None)
    @given(perm=st.permutations(list(range(2))), shards=st.integers(1, 8))
    def test_burst_key_order_never_changes_events(
        self, small_setup, perm, shards
    ):
        """Delivering the burst dict in any key order is equivalent."""
        detector = FleetFaultDetector(small_setup.trained, shards=shards)
        g = GuardedDetector(detector)
        paths = sorted(small_setup.eval_data)
        reordered = {
            paths[i]: small_setup.eval_data[paths[i]][:, :200] for i in perm
        }
        events = g.process_block(reordered, tick=0)
        baseline_det = FleetFaultDetector(small_setup.trained)
        baseline = GuardedDetector(baseline_det).process_block(
            {p: small_setup.eval_data[p][:, :200] for p in paths}, tick=0
        )
        assert events == baseline

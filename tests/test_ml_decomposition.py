"""Tests for the PCA substrate."""

import numpy as np
import pytest

from repro.ml.decomposition import PCA


@pytest.fixture
def anisotropic_data(rng):
    """Data with one dominant direction (variance 9:1:0.01)."""
    basis = np.linalg.qr(rng.standard_normal((3, 3)))[0]
    scales = np.array([3.0, 1.0, 0.1])
    return (rng.standard_normal((500, 3)) * scales) @ basis.T, basis, scales


class TestPCA:
    def test_explained_variance_sorted(self, anisotropic_data):
        X, _, _ = anisotropic_data
        pca = PCA().fit(X)
        assert np.all(np.diff(pca.explained_variance_) <= 1e-12)

    def test_recovers_dominant_direction(self, anisotropic_data):
        X, basis, _ = anisotropic_data
        pca = PCA(n_components=1).fit(X)
        # The first component aligns with the largest-scale basis vector
        # (up to sign).
        cosine = abs(float(pca.components_[0] @ basis[:, 0]))
        assert cosine > 0.99

    def test_variance_ratio_sums_to_at_most_one(self, anisotropic_data):
        X, _, _ = anisotropic_data
        pca = PCA(n_components=2).fit(X)
        assert 0.0 < pca.explained_variance_ratio_.sum() <= 1.0 + 1e-9
        assert pca.explained_variance_ratio_[0] > 0.8  # dominant axis

    def test_transform_shape_and_centering(self, anisotropic_data):
        X, _, _ = anisotropic_data
        pca = PCA(n_components=2).fit(X)
        Z = pca.transform(X)
        assert Z.shape == (500, 2)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)

    def test_full_rank_roundtrip(self, rng):
        X = rng.standard_normal((100, 4))
        pca = PCA().fit(X)
        assert np.allclose(pca.inverse_transform(pca.transform(X)), X, atol=1e-9)

    def test_truncated_reconstruction_error_small_on_lowrank(self, anisotropic_data):
        X, _, _ = anisotropic_data
        pca = PCA(n_components=2).fit(X)
        Xr = pca.inverse_transform(pca.transform(X))
        rel_err = np.linalg.norm(X - Xr) / np.linalg.norm(X)
        assert rel_err < 0.1

    def test_components_orthonormal(self, rng):
        X = rng.standard_normal((80, 5))
        pca = PCA().fit(X)
        G = pca.components_ @ pca.components_.T
        assert np.allclose(G, np.eye(G.shape[0]), atol=1e-9)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            PCA(n_components=0)
        with pytest.raises(ValueError):
            PCA().fit(np.zeros(5))
        with pytest.raises(ValueError):
            PCA().fit(np.zeros((1, 3)))
        with pytest.raises(RuntimeError):
            PCA().transform(np.zeros((2, 3)))

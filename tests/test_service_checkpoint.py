"""Checkpoint/restore: byte-identity round trips and typed mismatches.

The contract: crash -> restore -> replay-the-remaining-ticks produces an
event stream identical to an uninterrupted run — across both backends in
exact mode, in either direction.  Anything a checkpoint cannot honestly
resume (different fleet lineage, geometry, knobs, signature mode, a
corrupt archive) is a :class:`CheckpointError` naming the offending
field — never silent drift, never a raw traceback.
"""

import numpy as np
import pytest

from repro.service.alerts import JSONLAlertSink
from repro.service.chaos import ChaosConfig, run_with_kills
from repro.service.checkpoint import (
    CheckpointError,
    fleet_fingerprint,
    load_checkpoint,
)
from repro.service.replay import fleet_recipes, prepare_fleet, replay

BACKENDS = ("staged", "fused")


@pytest.fixture(scope="module")
def small_setup():
    return prepare_fleet(
        fleet_recipes(2, t=2000), blocks=8, trees=5, train_frac=0.5, seed=0
    )


@pytest.fixture(scope="module")
def other_setup():
    return prepare_fleet(
        fleet_recipes(2, t=2000), blocks=8, trees=5, train_frac=0.5, seed=3
    )


class TestRoundTrip:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_interrupt_resume_identical(self, small_setup, tmp_path, backend):
        full = replay(small_setup, chunk=200, guard=True, backend=backend)
        ck = tmp_path / "ck.npz"
        replay(
            small_setup, chunk=200, guard=True, backend=backend,
            checkpoint_path=ck, checkpoint_every=1, stop_after=4,
        )
        resumed = replay(
            small_setup, chunk=200, guard=True, backend=backend,
            checkpoint_path=ck, checkpoint_every=1, resume=True,
        )
        assert resumed.events == full.events
        assert resumed.n_alerts == full.n_alerts
        assert resumed.n_windows == full.n_windows
        assert resumed.window_accuracy == full.window_accuracy

    @pytest.mark.parametrize(
        "save_backend,load_backend", [("staged", "fused"), ("fused", "staged")]
    )
    def test_cross_backend_exact_resume(
        self, small_setup, tmp_path, save_backend, load_backend
    ):
        """Exact-mode checkpoints move freely between backends."""
        full = replay(small_setup, chunk=200, guard=True)
        ck = tmp_path / "cross.npz"
        replay(
            small_setup, chunk=200, guard=True, backend=save_backend,
            checkpoint_path=ck, checkpoint_every=1, stop_after=3,
        )
        resumed = replay(
            small_setup, chunk=200, guard=True, backend=load_backend,
            checkpoint_path=ck, resume=True,
        )
        assert resumed.events == full.events

    def test_resume_reemits_prefix_into_sinks(self, small_setup, tmp_path):
        full_path = tmp_path / "full.jsonl"
        replay(
            small_setup, chunk=200, guard=True,
            sinks=[JSONLAlertSink(full_path)],
        )
        ck = tmp_path / "ck.npz"
        seg_path = tmp_path / "segmented.jsonl"
        replay(
            small_setup, chunk=200, guard=True,
            checkpoint_path=ck, checkpoint_every=1, stop_after=4,
            sinks=[JSONLAlertSink(seg_path)],
        )
        replay(
            small_setup, chunk=200, guard=True,
            checkpoint_path=ck, resume=True,
            sinks=[JSONLAlertSink(seg_path)],
        )
        assert seg_path.read_bytes() == full_path.read_bytes()

    def test_unguarded_checkpoint_roundtrip(self, small_setup, tmp_path):
        full = replay(small_setup, chunk=200)
        ck = tmp_path / "plain.npz"
        replay(
            small_setup, chunk=200,
            checkpoint_path=ck, checkpoint_every=2, stop_after=4,
        )
        resumed = replay(small_setup, chunk=200, checkpoint_path=ck,
                         resume=True)
        assert resumed.events == full.events

    def test_kill_at_every_tick(self, small_setup, tmp_path):
        """The brute-force drill: die before every single tick."""
        full = replay(small_setup, chunk=200, guard=True)
        n_ticks = -(-max(
            m.shape[1] for m in small_setup.eval_data.values()
        ) // 200)
        killed = run_with_kills(
            small_setup,
            checkpoint_path=tmp_path / "every.npz",
            kills=list(range(1, n_ticks)),
            chunk=200,
            guard=True,
        )
        assert killed.events == full.events


class TestTypedMismatches:
    def _checkpoint(self, setup, tmp_path, **kwargs):
        ck = tmp_path / "mismatch.npz"
        replay(
            setup, chunk=200, guard=True,
            checkpoint_path=ck, checkpoint_every=1, stop_after=2, **kwargs,
        )
        return ck

    def _resume_error(self, setup, ck, **kwargs):
        kwargs.setdefault("guard", True)
        with pytest.raises(CheckpointError) as exc_info:
            replay(setup, checkpoint_path=ck, resume=True, **kwargs)
        return exc_info.value

    def test_different_fleet_rejected(
        self, small_setup, other_setup, tmp_path
    ):
        ck = self._checkpoint(small_setup, tmp_path)
        err = self._resume_error(other_setup, ck, chunk=200)
        assert err.field == "fingerprint"

    def test_chunk_mismatch_rejected(self, small_setup, tmp_path):
        ck = self._checkpoint(small_setup, tmp_path)
        err = self._resume_error(small_setup, ck, chunk=100)
        assert err.field == "chunk"

    @pytest.mark.parametrize(
        "knob,value",
        [("open_after", 3), ("close_after", 5), ("min_confidence", 0.4),
         ("top_blocks", 1)],
    )
    def test_policy_knob_mismatch_rejected(
        self, small_setup, tmp_path, knob, value
    ):
        ck = self._checkpoint(small_setup, tmp_path)
        err = self._resume_error(small_setup, ck, chunk=200, **{knob: value})
        assert err.field == knob

    @pytest.mark.parametrize("mode", ("float32", "quantized"))
    def test_non_exact_cross_mode_rejected(self, small_setup, tmp_path, mode):
        """Staged (exact) checkpoint -> fused float32/quantized resume is a
        typed incompatibility, never silent drift."""
        ck = self._checkpoint(small_setup, tmp_path)
        err = self._resume_error(
            small_setup, ck, chunk=200, backend="fused", mode=mode
        )
        assert err.field == "mode"

    @pytest.mark.parametrize("mode", ("float32", "quantized"))
    def test_non_exact_checkpoint_rejected_by_exact_resume(
        self, small_setup, tmp_path, mode
    ):
        ck = self._checkpoint(
            small_setup, tmp_path, backend="fused", mode=mode
        )
        err = self._resume_error(small_setup, ck, chunk=200)
        assert err.field == "mode"

    @pytest.mark.parametrize("mode", ("float32", "quantized"))
    def test_non_exact_same_mode_resume_allowed(
        self, small_setup, tmp_path, mode
    ):
        """Same backend + same mode resumes fine even off-exact."""
        full = replay(
            small_setup, chunk=200, guard=True, backend="fused", mode=mode
        )
        ck = self._checkpoint(
            small_setup, tmp_path, backend="fused", mode=mode
        )
        resumed = replay(
            small_setup, chunk=200, guard=True, backend="fused", mode=mode,
            checkpoint_path=ck, resume=True,
        )
        assert resumed.events == full.events

    def test_guard_presence_mismatch_rejected(self, small_setup, tmp_path):
        ck = self._checkpoint(small_setup, tmp_path)  # guarded checkpoint
        err = self._resume_error(small_setup, ck, chunk=200, guard=None)
        assert err.field == "guard"

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError) as exc_info:
            load_checkpoint(tmp_path / "never_written.npz")
        assert exc_info.value.field == "path"

    def test_truncated_archive_rejected(self, small_setup, tmp_path):
        ck = self._checkpoint(small_setup, tmp_path)
        raw = ck.read_bytes()
        ck.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CheckpointError) as exc_info:
            load_checkpoint(ck)
        assert exc_info.value.field == "archive"

    def test_not_a_checkpoint_rejected(self, tmp_path):
        impostor = tmp_path / "impostor.npz"
        np.savez(impostor, data=np.arange(4))
        with pytest.raises(CheckpointError) as exc_info:
            load_checkpoint(impostor)
        assert exc_info.value.field == "manifest"

    def test_replay_guards_checkpoint_knobs(self, small_setup, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_path"):
            replay(small_setup, chunk=200, checkpoint_every=1)
        with pytest.raises(ValueError, match="record_history"):
            replay(
                small_setup, chunk=200, record_history=False,
                checkpoint_path=tmp_path / "x.npz", checkpoint_every=1,
            )

    def test_fingerprint_tracks_lineage(self, small_setup, other_setup):
        fp1 = fleet_fingerprint(small_setup.trained)
        fp2 = fleet_fingerprint(small_setup.trained)
        assert fp1 == fp2
        assert fp1 != fleet_fingerprint(other_setup.trained)

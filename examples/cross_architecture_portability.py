"""Cross-architecture model portability (Section IV-F).

Three compute nodes with different CPUs and different sensor sets
(52/46/39 sensors) run the same applications.  Fixed-length CS signatures
make their feature sets compatible, so a *single* model classifies
applications on all three architectures — something the baselines cannot
do at all.  Also demonstrates shipping a trained CS model to another
system via JSON.

Run with::

    python examples/cross_architecture_portability.py
"""

import argparse
import tempfile
from pathlib import Path

from repro.core import CorrelationWiseSmoothing, CSModel
from repro.experiments.crossarch import baseline_signature_lengths, run
from repro.datasets.generators import generate_cross_architecture
from repro.experiments.reporting import print_table


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--t", type=int, default=1600)
    parser.add_argument("--trees", type=int, default=50)
    args = parser.parse_args()

    # --- The merged-dataset experiment.
    print("running the Section IV-F protocol (CS-20 per node, merge, 5-fold CV)...")
    result = run(blocks=20, trees=args.trees, seed=0, t=args.t)
    print()
    print_table(
        ("Model", "F1 measured", "F1 paper"),
        [("Random forest", round(result.rf_f1, 4), 0.995),
         ("MLP (2x100 ReLU)", round(result.mlp_f1, 4), 0.992)],
        title="Merged three-architecture application classification",
    )
    print(f"samples per architecture: {result.per_arch_counts}")

    # --- Why baselines cannot do this.
    lengths = baseline_signature_lengths(seed=0, t=600)
    print("\nTuncer feature lengths per architecture (incompatible!):")
    print_table(("Architecture", "Feature length"), sorted(lengths.items()))

    # --- Shipping a CS model between systems.
    segment = generate_cross_architecture(seed=0, t=800)
    comp = segment.components[0]
    cs = CorrelationWiseSmoothing(blocks=20)
    cs.fit(comp.matrix, sensor_names=list(comp.sensor_names))
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "skylake-cs-model.json"
        cs.model.save(path)
        loaded = CSModel.load(path)
        print(f"\nshipped CS model: {path.name} "
              f"({path.stat().st_size} bytes, {loaded.n_sensors} sensors)")
        receiver = CorrelationWiseSmoothing(blocks=20).set_model(loaded)
        sig = receiver.transform(comp.matrix[:, :30])
        print(f"receiver computed a {sig.shape[0]}-block signature without "
              "retraining.")


if __name__ == "__main__":
    main()

"""Fleet-scale out-of-band monitoring with the batched signature engine.

Builds a DCDB-style sensor tree for a small machine room (racks x nodes
x sensors), trains one CS model per node, and then computes signatures
for the *whole fleet* in one batched call — comparing against the
per-node loop that was the only option before ``repro.engine`` existed.
Also demonstrates drift retraining with the incremental trainer: node
statistics keep accumulating in O(n^2) state, and a fresh model is
produced without re-reading any history.

Run with::

    PYTHONPATH=src python examples/fleet_monitoring.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import CorrelationWiseSmoothing
from repro.engine.fleet import FleetSignatureEngine
from repro.engine.trainer import IncrementalCSTrainer
from repro.monitoring.sensor_tree import SensorTree

RACKS = 8
NODES_PER_RACK = 16
SENSORS = ("power", "temp", "cpu_util", "mem_util", "net_bytes", "ipc")
T_HISTORY = 512
T_LIVE = 256
WL, WS, BLOCKS = 32, 8, 3


def synth_node(rng: np.random.Generator, t: int) -> np.ndarray:
    """Correlated node telemetry: load drives most sensors + noise."""
    load = np.clip(
        0.5 + 0.3 * np.sin(np.linspace(0, 9, t)) + 0.1 * rng.standard_normal(t),
        0.0,
        1.0,
    )
    rows = [
        150.0 + 120.0 * load + 5.0 * rng.standard_normal(t),   # power
        35.0 + 30.0 * load + 1.0 * rng.standard_normal(t),     # temp
        100.0 * load + 3.0 * rng.standard_normal(t),           # cpu_util
        20.0 + 50.0 * load + 4.0 * rng.standard_normal(t),     # mem_util
        1e6 * rng.random(t),                                   # net (noise)
        1.2 - 0.5 * load + 0.05 * rng.standard_normal(t),      # ipc
    ]
    return np.asarray(rows)


def main() -> None:
    rng = np.random.default_rng(42)

    # 1. Register the fleet in a sensor tree.
    tree = SensorTree()
    for rack in range(RACKS):
        for node in range(NODES_PER_RACK):
            for sensor in SENSORS:
                tree.add(f"rack{rack}/node{node:02d}/{sensor}")
    node_paths = sorted(tree.parent_groups())
    print(f"fleet: {len(node_paths)} nodes, {len(tree)} sensors")

    # 2. Train one CS model per node on its own history.
    histories = {path: synth_node(rng, T_HISTORY) for path in node_paths}
    engine = FleetSignatureEngine(blocks=BLOCKS, wl=WL, ws=WS, tree=tree)
    start = time.perf_counter()
    engine.fit_fleet(histories)
    print(f"trained {len(engine)} node models in "
          f"{time.perf_counter() - start:.2f}s")

    # 3. One batched call transforms the whole fleet's live windows.
    live = {path: synth_node(rng, T_LIVE) for path in node_paths}
    start = time.perf_counter()
    fleet_sigs = engine.transform_fleet(live)
    t_batched = time.perf_counter() - start

    # The pre-engine alternative: loop nodes one at a time.
    start = time.perf_counter()
    loop_sigs = {}
    for path in node_paths:
        cs = CorrelationWiseSmoothing(blocks=BLOCKS)
        cs.set_model(engine.model(path))
        loop_sigs[path] = cs.transform_series(live[path], WL, WS)
    t_loop = time.perf_counter() - start

    num = sum(s.shape[0] for s in fleet_sigs.values())
    assert all(np.array_equal(fleet_sigs[p], loop_sigs[p]) for p in node_paths)
    print(f"{num} signatures: batched {t_batched * 1e3:.1f} ms vs "
          f"per-node loop {t_loop * 1e3:.1f} ms "
          f"({t_loop / t_batched:.1f}x, bit-identical)")

    # 4. Subtree selection via glob patterns.
    rack0 = engine.select("rack0/*")
    print(f"rack0 holds {len(rack0)} nodes; first: {rack0[0]}")

    # 5. Drift retraining without re-reading history.
    victim = node_paths[0]
    trainer = IncrementalCSTrainer()
    trainer.update(histories[victim])
    drifted = synth_node(rng, T_LIVE)
    drifted[0] *= 1.8  # power sensor drifts out of its trained range
    trainer.update(drifted)
    engine.set_model(victim, trainer.train())
    sigs = engine.transform_node(victim, drifted)
    print(f"retrained {victim} on drift "
          f"({trainer.n_seen} samples absorbed); "
          f"new signature matrix: {sigs.shape}")


if __name__ == "__main__":
    main()

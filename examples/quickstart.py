"""Quickstart: train a CS model and compute signatures in ~30 lines.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro.core import CorrelationWiseSmoothing, signature_features
from repro.analysis.visualization import ascii_heatmap, signature_heatmaps

# --- 1. Some multi-dimensional monitoring data (n sensors x t samples).
# Here: 24 synthetic sensors driven by two correlated signal groups.
rng = np.random.default_rng(0)
t = 600
load = 0.5 + 0.4 * np.sin(np.linspace(0, 20, t))
rows = [load * rng.uniform(0.5, 1.5) + 0.05 * rng.standard_normal(t) for _ in range(10)]
rows += [1.0 - load * rng.uniform(0.5, 1.5) + 0.05 * rng.standard_normal(t) for _ in range(6)]
rows += [rng.standard_normal(t) * 0.3 for _ in range(8)]
S = np.asarray(rows)
print(f"sensor matrix: {S.shape[0]} sensors x {S.shape[1]} samples")

# --- 2. Train the CS model (correlation ordering + min-max bounds).
cs = CorrelationWiseSmoothing(blocks=8).fit(S)
print(f"permutation head: {cs.model.permutation[:6]} ...")

# --- 3. Compute a signature for one 60-sample window.
sig = cs.transform(S[:, :60])
print(f"one signature   : {np.round(sig, 3)}")
print(f"as ML features  : {np.round(signature_features(sig), 3)}")

# --- 4. Slide over the whole series (wl=60, ws=20) and visualize.
sigs = cs.transform_series(S, wl=60, ws=20)
print(f"signature matrix: {sigs.shape[0]} windows x {sigs.shape[1]} blocks")
real, imag = signature_heatmaps(sigs)
print("\nreal components (rows = blocks, cols = time):")
print(ascii_heatmap(real, max_width=60, max_height=8))
print("\nimaginary components:")
print(ascii_heatmap(imag, max_width=60, max_height=8))

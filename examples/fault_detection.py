"""Fault classification with root-cause drill-down (the Fault use case).

Classifies eight injected fault types (plus healthy operation) from CS
signatures, then demonstrates the root-cause property of Section
III-C.3: when a signature deviates from the healthy baseline, the
deviating blocks map directly back to the raw sensors that caused it.

Run with::

    python examples/fault_detection.py [--t 8000]
"""

import argparse

import numpy as np

from repro.analysis.rootcause import explain_difference
from repro.baselines import get_method
from repro.core import CorrelationWiseSmoothing
from repro.datasets.generators import build_ml_dataset, generate_fault
from repro.experiments.fig6 import run_intervals
from repro.experiments.reporting import print_table
from repro.ml import RandomForestClassifier, cross_validate_classifier


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--t", type=int, default=8000)
    parser.add_argument("--trees", type=int, default=30)
    args = parser.parse_args()

    print(f"generating the Fault segment ({args.t} samples, 128 sensors)...")
    segment = generate_fault(seed=0, t=args.t)
    comp = segment.components[0]

    # --- Classification: the block-count sweep of Figure 4b.
    rows = []
    for blocks in (5, 20, 40, "all"):
        ds = build_ml_dataset(segment, lambda b=blocks: get_method(f"cs-{b}"))
        scores = cross_validate_classifier(
            lambda: RandomForestClassifier(args.trees, random_state=0),
            ds.X, ds.y, random_state=0,
        )
        rows.append((f"CS-{blocks}", ds.signature_size,
                     round(float(scores.mean()), 4)))
    print()
    print_table(("Method", "Sig. size", "F1 score"), rows,
                title="Fault classification vs signature length")
    print("\nFault detection depends on exact error-counter values, so the "
          "score climbs with the block count (paper, Section IV-B).")

    # --- Root cause: compare a faulty window against a healthy baseline.
    cs = CorrelationWiseSmoothing(blocks="all")
    cs.fit(comp.matrix, sensor_names=list(comp.sensor_names))
    wl = segment.spec.wl
    labels = comp.labels
    fault_name = "memalloc"
    fid = segment.label_names.index(fault_name)
    fstart, _ = next(
        (s, e) for s, e in run_intervals(labels, fid) if e - s >= wl
    )
    hstart, _ = next(
        (s, e) for s, e in run_intervals(labels, 0) if e - s >= wl
    )
    sig_fault = cs.transform(comp.matrix[:, fstart : fstart + wl])
    sig_ok = cs.transform(comp.matrix[:, hstart : hstart + wl])
    findings = explain_difference(cs.model, sig_ok, sig_fault, top=5)
    print(f"\nroot-cause drill-down for an observed '{fault_name}' anomaly:")
    print_table(
        ("Rank", "Block", "|delta|", "Sensors"),
        [
            (i + 1, f.block, round(f.magnitude, 3), ", ".join(f.sensors))
            for i, f in enumerate(findings)
        ],
    )
    implicated = {s for f in findings for s in f.sensors}
    marker = "alloc_failures"
    verdict = "YES" if marker in implicated else "no"
    print(f"\ninjected sensor '{marker}' implicated in top blocks: {verdict}")
    assert np.isfinite(sig_fault).all()


if __name__ == "__main__":
    main()

"""Reproduce the Figure 2 / Figure 6 visual pipeline on one application.

Shows the three stages of the CS algorithm exactly as the paper's
Figure 2 does: the raw multi-node sensor matrix (noisy, little visual
information), the same data after the sorting stage (clear patterns),
and the final real/imaginary signature heatmaps.  Writes PGM images and
prints ASCII previews.

Run with::

    python examples/visualize_signatures.py [--app AMG] [--out figures]
"""

import argparse
from pathlib import Path

import numpy as np

from repro.analysis.visualization import ascii_heatmap, save_pgm, to_grayscale
from repro.core import CorrelationWiseSmoothing
from repro.datasets.generators import generate_application
from repro.experiments.fig6 import application_heatmaps


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--app", default="AMG")
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--t", type=int, default=2400)
    parser.add_argument("--blocks", type=int, default=160)
    parser.add_argument("--out", default="figures")
    args = parser.parse_args()

    print(f"generating Application data ({args.nodes} nodes)...")
    segment = generate_application(seed=0, t=args.t, nodes=args.nodes)
    stacked = segment.stacked_matrix()
    print(f"stacked matrix: {stacked.shape[0]} data dimensions")

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    # Stage 0: raw data — "noisy and provides little visual information".
    raw_img = to_grayscale(stacked[:, :600])
    save_pgm(out / "stage0_raw.pgm", raw_img)
    print("\nraw sensor matrix (first 600 samples):")
    print(ascii_heatmap(stacked[:, :600], max_height=14))

    # Stage 1+2: train + sort — "clear visual patterns ... surface".
    cs = CorrelationWiseSmoothing(blocks=args.blocks).fit(stacked)
    sorted_data = cs.sort(stacked)
    save_pgm(out / "stage1_sorted.pgm", to_grayscale(sorted_data[:, :600]))
    print("\nsorted + normalized matrix:")
    print(ascii_heatmap(sorted_data[:, :600], max_height=14))

    # Stage 3: per-run signature heatmaps for the chosen application.
    res = application_heatmaps(segment, args.app, blocks=args.blocks)
    save_pgm(out / f"stage2_{args.app.lower()}_real.pgm", res.real_image)
    save_pgm(out / f"stage2_{args.app.lower()}_imag.pgm", res.imag_image)
    print(f"\n{args.app} signature heatmap — real components "
          f"({res.signatures.shape[0]} windows x {args.blocks} blocks):")
    print(ascii_heatmap(255 - res.real_image.astype(np.float64), max_height=14))
    print(f"\n{args.app} — imaginary components:")
    print(ascii_heatmap(255 - res.imag_image.astype(np.float64), max_height=14))
    print(f"\nPGM images written to {out}/ (open with any image viewer)")


if __name__ == "__main__":
    main()

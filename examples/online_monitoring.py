"""Online in-band monitoring: stream samples, emit signatures live.

Simulates the in-band ODA deployment the paper targets: a CS model is
trained offline on historical data, installed on a "compute node", and an
:class:`OnlineSignatureStream` turns the live sample feed into signatures
every ``ws`` ticks with a preallocated ring buffer.  The segment is also
round-tripped through the HPC-ODA CSV on-disk format.

Run with::

    python examples/online_monitoring.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import CorrelationWiseSmoothing
from repro.datasets.generators import generate_power
from repro.monitoring.storage import load_segment, save_segment
from repro.monitoring.streaming import OnlineSignatureStream


def main() -> None:
    # --- Offline: acquire history and persist it in HPC-ODA layout.
    print("acquiring 2000 samples of history (Power segment)...")
    history = generate_power(seed=0, t=2000)
    with tempfile.TemporaryDirectory() as tmp:
        root = save_segment(history, Path(tmp) / "power-segment")
        n_files = len(list(root.rglob("*.csv")))
        print(f"persisted to {root.name}/ ({n_files} per-sensor CSV files)")
        history = load_segment(root)

    comp = history.components[0]
    cs = CorrelationWiseSmoothing(blocks=10)
    cs.fit(comp.matrix, sensor_names=list(comp.sensor_names))
    print(f"trained CS model on {comp.n_sensors} sensors")

    # --- Online: fresh live data streams through the model.
    live = generate_power(seed=99, t=1200).components[0].matrix
    stream = OnlineSignatureStream(cs, wl=10, ws=5)
    emitted = []
    start = time.perf_counter()
    for sample in live.T:
        sig = stream.push(sample)
        if sig is not None:
            emitted.append(sig)
    elapsed = time.perf_counter() - start
    per_sample_us = elapsed / live.shape[1] * 1e6
    print(f"\nstreamed {live.shape[1]} samples -> {len(emitted)} signatures")
    print(f"cost: {per_sample_us:.1f} us/sample "
          f"({elapsed * 1e3:.1f} ms total) — footprint fit for in-band ODA")

    sigs = np.stack(emitted)
    print(f"signature matrix: {sigs.shape}, real range "
          f"[{sigs.real.min():.3f}, {sigs.real.max():.3f}]")

    # Consistency check against the offline pipeline.
    offline = cs.transform_series(live, wl=10, ws=5)
    assert np.allclose(np.stack(emitted), offline)
    print("online signatures match the offline pipeline exactly.")


if __name__ == "__main__":
    main()

"""Power-consumption prediction (the HPC-ODA Power use case).

Predicts a compute node's mean power over the next 3 samples (~300 ms)
from CS signatures of the preceding 1-second window, sweeping the
signature length and showing the value of the imaginary (derivative)
components — the Figure 4 "Power" curves in miniature.

Run with::

    python examples/power_prediction.py [--t 5000]
"""

import argparse

from repro.datasets.generators import build_ml_dataset, generate_power
from repro.experiments.harness import make_method_factory
from repro.experiments.reporting import print_table
from repro.ml import RandomForestRegressor, cross_validate_regressor


def score(segment, method_factory, trees):
    ds = build_ml_dataset(segment, method_factory)
    scores = cross_validate_regressor(
        lambda: RandomForestRegressor(trees, random_state=0),
        ds.X, ds.y, random_state=0,
    )
    return float(scores.mean()), ds.signature_size


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--t", type=int, default=5000)
    parser.add_argument("--trees", type=int, default=30)
    args = parser.parse_args()

    print(f"generating the Power segment ({args.t} samples @ 100 ms)...")
    segment = generate_power(seed=0, t=args.t)
    print(f"task: {segment.spec.target}")

    rows = []
    for l in (5, 10, 20, "all"):
        full, size = score(segment, make_method_factory(f"cs-{l}"), args.trees)
        ronly, _ = score(
            segment, make_method_factory(f"cs-{l}", real_only=True), args.trees
        )
        rows.append((f"CS-{l}", size, round(full, 4), round(ronly, 4)))
    print()
    print_table(
        ("Method", "Sig. size", "ML score (1-NRMSE)", "ML score, real only"),
        rows,
        title="Power prediction vs signature length",
    )
    print("\nExpected shapes (paper, Figure 4): the score climbs with the "
          "signature length, and dropping the imaginary (derivative) "
          "components costs several points — power has short-term momentum "
          "that only the derivatives capture.")


if __name__ == "__main__":
    main()

"""Application fingerprinting on the (synthetic) HPC-ODA Application segment.

Reproduces the paper's Application use case end to end: generate 16-node
telemetry, build CS-20 signatures per node, classify the running
application with a 50-tree random forest, and compare against the Tuncer
baseline on score, signature size and runtime.

Run with::

    python examples/application_fingerprinting.py [--nodes 6] [--t 1200]
"""

import argparse
import time

import numpy as np

from repro.baselines import get_method
from repro.datasets.generators import build_ml_dataset, generate_application
from repro.experiments.reporting import print_table
from repro.ml import RandomForestClassifier, cross_validate_classifier


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--nodes", type=int, default=6)
    parser.add_argument("--t", type=int, default=1200)
    parser.add_argument("--trees", type=int, default=50)
    args = parser.parse_args()

    print("generating the Application segment "
          f"({args.nodes} nodes, {args.t} samples each)...")
    segment = generate_application(seed=0, t=args.t, nodes=args.nodes)
    print(f"labels: {segment.label_names}")

    rows = []
    for method in ("cs-5", "cs-20", "tuncer"):
        ds = build_ml_dataset(segment, lambda m=method: get_method(m))
        start = time.perf_counter()
        scores = cross_validate_classifier(
            lambda: RandomForestClassifier(args.trees, random_state=0),
            ds.X, ds.y, random_state=0,
        )
        cv_time = time.perf_counter() - start
        rows.append((
            method,
            ds.signature_size,
            round(ds.generation_time_s, 3),
            round(cv_time, 3),
            round(float(scores.mean()), 4),
        ))
    print()
    print_table(
        ("Method", "Signature size", "Gen time [s]", "CV time [s]", "F1 score"),
        rows,
        title="Application classification (5-fold CV, random forest)",
    )
    best_cs = max(r[4] for r in rows if r[0].startswith("cs"))
    tuncer = next(r for r in rows if r[0] == "tuncer")
    print(f"\nCS reaches F1 {best_cs:.3f} vs Tuncer {tuncer[4]:.3f} with "
          f"{tuncer[1] // rows[1][1]}x smaller signatures.")

    # Per-class report for the best CS configuration.
    ds = build_ml_dataset(segment, lambda: get_method("cs-20"))
    from repro.ml import confusion_matrix, train_test_split

    Xtr, Xte, ytr, yte = train_test_split(
        ds.X, ds.y, test_size=0.25, random_state=0, stratify=ds.y
    )
    rf = RandomForestClassifier(args.trees, random_state=0).fit(Xtr, ytr)
    cm = confusion_matrix(yte, rf.predict(Xte),
                          labels=np.arange(len(segment.label_names)))
    print("\nconfusion matrix (rows = truth):")
    print_table(
        ("app", *segment.label_names),
        [(segment.label_names[i], *cm[i]) for i in range(cm.shape[0])],
    )


if __name__ == "__main__":
    main()

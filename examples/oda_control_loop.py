"""A full in-band ODA control loop: power capping via CS signatures.

Implements the paper's Figure 1 flow end to end on a simulated compute
node:

1. collect open-loop history and train a CS model on it;
2. build CS-signature features and train a random-forest power predictor;
3. deploy the loop: every ``ws`` ticks a signature is computed online,
   the model predicts near-future power, and a CPU-frequency knob is
   stepped to keep the prediction under a cap;
4. compare the capped run against an uncontrolled baseline.

Run with::

    python examples/oda_control_loop.py [--cap 0.62]
"""

import argparse

import numpy as np

from repro.core import CorrelationWiseSmoothing, signature_features
from repro.datasets.windows import future_mean_target
from repro.ml import RandomForestRegressor
from repro.monitoring.streaming import OnlineSignatureStream
from repro.oda import (
    CPUFrequencyKnob,
    ODAControlLoop,
    PowerCapController,
    SimulatedNodePlant,
)

WL, WS, HORIZON, BLOCKS = 12, 4, 4, 8


def train_stack(seed: int):
    """History collection + CS model + power predictor."""
    plant = SimulatedNodePlant(seed=seed, total_t=2600)
    history = plant.run_open_loop(2600)
    power_row = list(plant.sensor_names).index("power_node")

    cs = CorrelationWiseSmoothing(blocks=BLOCKS)
    cs.fit(history, sensor_names=list(plant.sensor_names))
    sigs = cs.transform_series(history, WL, WS)
    targets, n_use = future_mean_target(history[power_row], WL, WS, HORIZON)
    X = signature_features(sigs[:n_use])
    model = RandomForestRegressor(30, random_state=0).fit(X, targets)
    return cs, model


def run_plant(cs, model, *, cap: float | None, seed: int):
    knob = CPUFrequencyKnob()
    plant = SimulatedNodePlant(seed=seed, total_t=3000, knob=knob)
    stream = OnlineSignatureStream(cs, wl=WL, ws=WS)
    controller = None
    if cap is not None:
        controller = PowerCapController(model, knob, power_cap=cap)
    loop = ODAControlLoop(plant, stream, controller)
    return loop.run(3000), knob


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--cap", type=float, default=0.62)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print("phase 1: collecting history and training the CS model + predictor...")
    cs, model = train_stack(args.seed)

    print("phase 2: baseline run (no controller)...")
    baseline, _ = run_plant(cs, model, cap=None, seed=args.seed + 1)
    print("phase 3: controlled run (power cap "
          f"{args.cap}, frequency knob)...")
    capped, knob = run_plant(cs, model, cap=args.cap, seed=args.seed + 1)

    b_over = baseline.power_overshoot(args.cap)
    c_over = capped.power_overshoot(args.cap)
    print(f"\n{'':24}{'baseline':>10}{'controlled':>12}")
    print(f"{'mean power':24}{np.mean(baseline.power_trace):>10.4f}"
          f"{np.mean(capped.power_trace):>12.4f}")
    print(f"{'time above cap':24}{baseline.time_above(args.cap):>10.2%}"
          f"{capped.time_above(args.cap):>12.2%}")
    print(f"{'mean overshoot':24}{b_over:>10.4f}{c_over:>12.4f}")
    print(f"{'signatures emitted':24}{baseline.n_signatures:>10}"
          f"{capped.n_signatures:>12}")
    print(f"\nknob actuations: {knob.actuation_count}, final setting "
          f"{knob.setting:.2f}")
    reduction = 1.0 - c_over / b_over if b_over > 0 else 1.0
    print(f"overshoot reduced by {reduction:.0%} — the Figure 1 loop closed.")


if __name__ == "__main__":
    main()

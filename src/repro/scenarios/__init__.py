"""Declarative scenario registry + unified experiment runner.

The paper's evaluation is a grid of (segment, method, knob) scenarios;
this subsystem expresses every one of them — and arbitrarily many new
ones — as declarative :class:`ScenarioSpec` values resolved through a
registry and executed by one generic runner, with generated segments and
signature sets reused across runs via a content-addressed artifact
cache.

Layout
------
``spec``         ScenarioSpec + canonical-JSON content hashing.
``registry``     Name -> spec lookup (:func:`register`, :func:`get_scenario`).
``cache``        ArtifactCache / ExecutionContext (content-addressed reuse).
``evaluations``  The generic evaluation strategies ("kinds").
``runner``       :func:`execute`: options -> spec -> evaluation -> sinks.
``options``      Shared CLI flags used by `repro` and the legacy shims.
``builtin``      The built-in catalog (paper + extended scenarios).

Quick use::

    from repro.scenarios import execute, get_scenario, RunOptions
    result = execute(get_scenario("fig3"), options=RunOptions(smoke=True))
"""

from repro.scenarios.cache import ArtifactCache, ExecutionContext
from repro.scenarios.evaluations import ScenarioResult, evaluation_kinds
from repro.scenarios.registry import (
    get_scenario,
    list_scenarios,
    register,
    scenario_names,
)
from repro.scenarios.runner import RunOptions, execute
from repro.scenarios.spec import CACHE_VERSION, ScenarioSpec, content_key

__all__ = [
    "ArtifactCache",
    "CACHE_VERSION",
    "ExecutionContext",
    "RunOptions",
    "ScenarioResult",
    "ScenarioSpec",
    "content_key",
    "evaluation_kinds",
    "execute",
    "get_scenario",
    "list_scenarios",
    "register",
    "scenario_names",
]

"""Generic evaluation strategies executed by the scenario runner.

Each strategy ("kind") interprets a :class:`ScenarioSpec` — its dataset
recipes, method grid and ``evaluation`` parameters — and drives the
existing engine/harness/ML layers, returning a :class:`ScenarioResult`.
The seven paper reproductions and all extended scenarios are expressed
as specs over these nine kinds; registering a *new* scenario requires
no new runner code, only a new spec.

Domain helpers that predate the registry (``segment_js_divergence``,
``application_heatmaps``, ``segment_summary``, ...) stay in their
``repro.experiments`` modules and are imported lazily here, because the
experiment modules import the scenario machinery at module level for
their thin CLI shims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.experiments.harness import (
    evaluate_windowed_dataset,
    method_display_name,
    run_fleet_on_segment,
)
from repro.scenarios.cache import ExecutionContext
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "FLEET_CHAOS_HEADERS",
    "FLEET_DETECT_HEADERS",
    "FLEET_REPLAY_HEADERS",
    "FLEET_SERVE_CHAOS_HEADERS",
    "FLEET_SERVE_HEADERS",
    "GRID_HEADERS",
    "LENGTH_SWEEP_HEADERS",
    "TIMING_HEADERS",
    "ScenarioResult",
    "evaluation",
    "evaluation_kinds",
    "get_evaluation",
]

#: Columns of the (segment, method) score grids — Figure 3's layout.
GRID_HEADERS: tuple[str, ...] = (
    "Segment",
    "Method",
    "Sig. size",
    "Gen time [s]",
    "CV time [s]",
    "ML score",
    "Std",
)

#: Columns of the signature-length sweeps — Figure 4's layout.
LENGTH_SWEEP_HEADERS: tuple[str, ...] = (
    "Segment",
    "l",
    "Real only",
    "JS divergence",
    "ML score",
    "Sig. size",
)

#: Columns of the single-signature timing sweeps — Figure 5's layout.
TIMING_HEADERS: tuple[str, ...] = ("Axis", "Method", "wl", "n", "Median time [s]")

FLEET_HEADERS: tuple[str, ...] = (
    "Dataset",
    "Nodes",
    "Signatures",
    "Fit [s]",
    "Transform [s]",
    "Sig/s",
)

#: Columns of the online fleet fault-detection replays (repro.service).
FLEET_DETECT_HEADERS: tuple[str, ...] = (
    "Fleet",
    "Nodes",
    "Windows",
    "Alerts",
    "Window acc",
    "Precision",
    "Recall",
    "Replay [s]",
    "Win/s",
)

#: Columns of the store-replay equivalence drills (fleet-replay).
FLEET_REPLAY_HEADERS: tuple[str, ...] = (
    "Run",
    "Nodes",
    "Windows",
    "Alerts",
    "Window acc",
    "Replay [s]",
    "Win/s",
    "Speedup",
    "Identical",
)

#: Columns of the network-serving equivalence drills (fleet-serve).
FLEET_SERVE_HEADERS: tuple[str, ...] = (
    "Run",
    "Nodes",
    "Ticks",
    "Events",
    "Samples/s",
    "p50 [ms]",
    "p99 [ms]",
    "Identical",
)

#: Columns of the chaos-proxy network serving drills (fleet-serve-chaos).
FLEET_SERVE_CHAOS_HEADERS: tuple[str, ...] = (
    "Run",
    "Nodes",
    "Ticks",
    "Events",
    "Reconnects",
    "Resent frames",
    "Corrupted",
    "Resets",
    "Identical",
)

#: Columns of the chaos-injection robustness drills (fleet-detect-chaos).
FLEET_CHAOS_HEADERS: tuple[str, ...] = (
    "Run",
    "Nodes",
    "Windows",
    "Alerts",
    "Events",
    "Faults injected",
    "Blocks dropped",
    "Precision",
    "Recall",
    "Resume identical",
)


@dataclass
class ScenarioResult:
    """Outcome of one scenario execution.

    ``headers``/``rows``/``title``/``notes`` feed the pluggable sinks;
    ``artifacts`` maps relative file names to uint8 images the runner
    writes as PGM; ``extras`` carries the domain objects the legacy
    per-figure APIs return.
    """

    spec: ScenarioSpec
    title: str
    headers: tuple[str, ...]
    rows: list[tuple]
    notes: list[str] = field(default_factory=list)
    artifacts: dict[str, np.ndarray] = field(default_factory=dict)
    artifact_paths: list = field(default_factory=list)
    extras: dict[str, Any] = field(default_factory=dict)
    wall_time_s: float = 0.0
    cache_stats: dict[str, int] = field(default_factory=dict)


_EVALUATIONS: dict[
    str, Callable[[ScenarioSpec, ExecutionContext], ScenarioResult]
] = {}


def evaluation(kind: str):
    """Register an evaluation strategy under ``kind``."""

    def decorate(fn):
        _EVALUATIONS[kind] = fn
        return fn

    return decorate


def get_evaluation(kind: str):
    try:
        return _EVALUATIONS[kind]
    except KeyError:
        raise KeyError(
            f"unknown evaluation kind {kind!r}; known: {evaluation_kinds()}"
        ) from None


def evaluation_kinds() -> list[str]:
    return sorted(_EVALUATIONS)


# ----------------------------------------------------------------------
# Score grids (Figure 3 and every recipe x method scenario)
# ----------------------------------------------------------------------
@evaluation("grid")
def _run_grid(spec: ScenarioSpec, ctx: ExecutionContext) -> ScenarioResult:
    """(recipe, method) score grid: one ExperimentResult per cell."""
    ev = spec.evaluation_dict()
    trees = int(ev.get("trees", 50))
    repeats = int(ev.get("repeats", 1))
    n_splits = int(ev.get("n_splits", 5))
    seed = int(ev.get("seed", 0))
    real_only = bool(ev.get("real_only", False))
    results = []
    for recipe in spec.datasets:
        for method in spec.methods:
            dataset = ctx.dataset(recipe, method, real_only=real_only)
            results.append(
                evaluate_windowed_dataset(
                    dataset,
                    segment_name=recipe.display,
                    method_name=method_display_name(method, real_only=real_only),
                    trees=trees,
                    n_splits=n_splits,
                    repeats=repeats,
                    seed=seed,
                )
            )
    return ScenarioResult(
        spec=spec,
        title=spec.title,
        headers=GRID_HEADERS,
        rows=[r.row() for r in results],
        extras={"results": results},
    )


# ----------------------------------------------------------------------
# Signature-length sweep (Figure 4)
# ----------------------------------------------------------------------
@evaluation("length-sweep")
def _run_length_sweep(
    spec: ScenarioSpec, ctx: ExecutionContext
) -> ScenarioResult:
    """JS divergence + ML score vs block count, per recipe."""
    from repro.experiments.fig4 import Fig4Point, segment_js_divergence

    ev = spec.evaluation_dict()
    lengths = tuple(ev.get("lengths", (5, 10, 20, 40, "all")))
    with_real_only = bool(ev.get("with_real_only", True))
    trees = int(ev.get("trees", 50))
    seed = int(ev.get("seed", 0))
    bins = int(ev.get("bins", 64))
    points: list[Fig4Point] = []
    for recipe in spec.datasets:
        segment = ctx.segment(recipe)
        for l in lengths:
            for real_only in (False, True) if with_real_only else (False,):
                method = f"cs-{l}"
                js = segment_js_divergence(
                    segment, l, real_only=real_only, bins=bins
                )
                dataset = ctx.dataset(recipe, method, real_only=real_only)
                res = evaluate_windowed_dataset(
                    dataset,
                    segment_name=recipe.display,
                    method_name=method_display_name(method, real_only=real_only),
                    trees=trees,
                    seed=seed,
                )
                points.append(
                    Fig4Point(
                        segment=recipe.display,
                        length=str(l),
                        real_only=real_only,
                        js_divergence=js,
                        ml_score=res.ml_score,
                        signature_size=res.signature_size,
                    )
                )
    return ScenarioResult(
        spec=spec,
        title=spec.title,
        headers=LENGTH_SWEEP_HEADERS,
        rows=[p.row() for p in points],
        extras={"points": points},
    )


# ----------------------------------------------------------------------
# Single-signature timing sweeps (Figure 5; random input matrices)
# ----------------------------------------------------------------------
@evaluation("timing")
def _run_timing(spec: ScenarioSpec, ctx: ExecutionContext) -> ScenarioResult:
    """Median time to compute one signature vs ``wl`` and vs ``n``."""
    from repro.experiments.fig5 import TimingPoint, time_single_signature

    ev = spec.evaluation_dict()
    wl_grid = tuple(ev.get("wl_grid", ()))
    n_grid = tuple(ev.get("n_grid", ()))
    fixed_n = int(ev.get("fixed_n", 100))
    fixed_wl = int(ev.get("fixed_wl", 100))
    repeats = int(ev.get("repeats", 20))
    seed = int(ev.get("seed", 0))

    def blocks_of(name: str) -> int | None:
        if name.lower().startswith("cs-") and name.lower() != "cs-all":
            return int(name[3:])
        return None

    points: list[TimingPoint] = []
    for wl in wl_grid:
        for m in spec.methods:
            b = blocks_of(m)
            if b is not None and b > fixed_n:
                continue
            t = time_single_signature(m, fixed_n, wl, repeats=repeats, seed=seed)
            points.append(TimingPoint("wl", m, int(wl), fixed_n, t))
    for n in n_grid:
        for m in spec.methods:
            b = blocks_of(m)
            if b is not None and b > n:
                continue
            t = time_single_signature(m, n, fixed_wl, repeats=repeats, seed=seed)
            points.append(TimingPoint("n", m, fixed_wl, int(n), t))
    return ScenarioResult(
        spec=spec,
        title=spec.title,
        headers=TIMING_HEADERS,
        rows=[p.row() for p in points],
        extras={"points": points},
    )


# ----------------------------------------------------------------------
# Application signature heatmaps (Figures 2 and 6)
# ----------------------------------------------------------------------
@evaluation("app-heatmap")
def _run_app_heatmap(
    spec: ScenarioSpec, ctx: ExecutionContext
) -> ScenarioResult:
    """Per-application CS signature heatmaps over the stacked node matrix."""
    from repro.experiments.fig6 import application_heatmaps

    ev = spec.evaluation_dict()
    apps = tuple(ev.get("apps", ()))
    blocks = int(ev.get("blocks", 160))
    prefix = str(ev.get("prefix", "fig6"))
    recipe = spec.datasets[0]
    segment = ctx.segment(recipe)
    results = [
        application_heatmaps(segment, app, blocks=blocks) for app in apps
    ]
    artifacts: dict[str, np.ndarray] = {}
    rows = []
    for res in results:
        artifacts[f"{prefix}_{res.app.lower()}_real.pgm"] = res.real_image
        artifacts[f"{prefix}_{res.app.lower()}_imag.pgm"] = res.imag_image
        rows.append(
            (
                res.app,
                res.signatures.shape[0],
                res.signatures.shape[1],
                int(res.boundaries.size),
            )
        )
    return ScenarioResult(
        spec=spec,
        title=spec.title,
        headers=("Application", "Signatures", "Blocks", "Runs"),
        rows=rows,
        artifacts=artifacts,
        extras={"results": results},
    )


# ----------------------------------------------------------------------
# Cross-architecture heatmaps of one application (Figure 7)
# ----------------------------------------------------------------------
@evaluation("arch-heatmap")
def _run_arch_heatmap(
    spec: ScenarioSpec, ctx: ExecutionContext
) -> ScenarioResult:
    """One application's heatmaps on each architecture of a segment."""
    from repro.experiments.fig7 import node_heatmap

    ev = spec.evaluation_dict()
    app = str(ev.get("app", "LAMMPS"))
    blocks = int(ev.get("blocks", 20))
    prefix = str(ev.get("prefix", "fig7"))
    recipe = spec.datasets[0]
    segment = ctx.segment(recipe)
    try:
        label_id = segment.label_names.index(app)
    except ValueError:
        raise KeyError(
            f"unknown application {app!r}; known: {segment.label_names}"
        ) from None
    results = []
    artifacts: dict[str, np.ndarray] = {}
    rows = []
    for comp in segment.components:
        res = node_heatmap(
            comp, label_id, segment.spec.wl, segment.spec.ws, blocks=blocks
        )
        if res is None:
            continue
        results.append(res)
        artifacts[f"{prefix}_{res.arch}_real.pgm"] = res.real_image
        artifacts[f"{prefix}_{res.arch}_imag.pgm"] = res.imag_image
        rows.append((res.arch, res.n_sensors, res.signatures.shape[0]))
    return ScenarioResult(
        spec=spec,
        title=spec.title,
        headers=("Architecture", "Sensors", "Signatures"),
        rows=rows,
        artifacts=artifacts,
        extras={"results": results},
    )


# ----------------------------------------------------------------------
# Merged cross-architecture classification (Section IV-F)
# ----------------------------------------------------------------------
@evaluation("merged-crossarch")
def _run_merged_crossarch(
    spec: ScenarioSpec, ctx: ExecutionContext
) -> ScenarioResult:
    """RF + MLP classification over the merged multi-architecture dataset."""
    from repro.experiments.crossarch import (
        CrossArchResult,
        baseline_signature_lengths,
    )
    from repro.ml.forest import RandomForestClassifier
    from repro.ml.metrics import f1_score
    from repro.ml.mlp import MLPClassifier
    from repro.ml.model_selection import StratifiedKFold
    from repro.ml.preprocessing import StandardScaler

    ev = spec.evaluation_dict()
    blocks = int(ev.get("blocks", 20))
    trees = int(ev.get("trees", 50))
    seed = int(ev.get("seed", 0))
    n_splits = int(ev.get("n_splits", 5))
    mlp_max_iter = int(ev.get("mlp_max_iter", 150))
    recipe = spec.datasets[0]
    segment = ctx.segment(recipe)
    dataset = ctx.dataset(recipe, f"cs-{blocks}")
    X, y = dataset.X, dataset.y.astype(np.intp)
    per_arch = {
        comp.arch: int((dataset.groups == i).sum())
        for i, comp in enumerate(segment.components)
    }
    rf_scores = []
    mlp_scores = []
    splitter = StratifiedKFold(n_splits=n_splits, shuffle=True, random_state=seed)
    for train, test in splitter.split(X, y):
        rf = RandomForestClassifier(trees, random_state=seed).fit(X[train], y[train])
        rf_scores.append(f1_score(y[test], rf.predict(X[test])))
        scaler = StandardScaler().fit(X[train])
        mlp = MLPClassifier(max_iter=mlp_max_iter, random_state=seed)
        mlp.fit(scaler.transform(X[train]), y[train])
        mlp_scores.append(f1_score(y[test], mlp.predict(scaler.transform(X[test]))))
    result = CrossArchResult(
        rf_f1=float(np.mean(rf_scores)),
        mlp_f1=float(np.mean(mlp_scores)),
        n_samples=dataset.n_samples,
        signature_size=dataset.signature_size,
        per_arch_counts=per_arch,
    )
    lengths = baseline_signature_lengths(segment)
    return ScenarioResult(
        spec=spec,
        title=spec.title,
        headers=("Model", "F1 (merged 3-arch dataset)", "Paper"),
        rows=[
            ("Random forest", round(result.rf_f1, 4), 0.995),
            ("MLP", round(result.mlp_f1, 4), 0.992),
        ],
        notes=[
            f"\nSamples: {result.n_samples}  per arch: {result.per_arch_counts}",
            "CS signature size (uniform across architectures): "
            f"{result.signature_size}",
            f"Tuncer signature sizes per architecture (incompatible): {lengths}",
        ],
        extras={"result": result},
    )


# ----------------------------------------------------------------------
# Segment overview (Table I)
# ----------------------------------------------------------------------
@evaluation("segment-summary")
def _run_segment_summary(
    spec: ScenarioSpec, ctx: ExecutionContext
) -> ScenarioResult:
    """One Table I row per recipe."""
    from repro.experiments.table1 import HEADERS, segment_summary

    rows = [segment_summary(ctx.segment(r)) for r in spec.datasets]
    return ScenarioResult(
        spec=spec, title=spec.title, headers=HEADERS, rows=rows
    )


# ----------------------------------------------------------------------
# Fleet-scale batched signature throughput (engine/fleet routing)
# ----------------------------------------------------------------------
@evaluation("fleet")
def _run_fleet(spec: ScenarioSpec, ctx: ExecutionContext) -> ScenarioResult:
    """Batched whole-fleet signature computation per recipe.

    Routes through :class:`repro.engine.fleet.FleetSignatureEngine` via
    the harness, reporting fit/transform wall-clock and throughput —
    the scaling view the per-figure scripts never covered.
    """
    ev = spec.evaluation_dict()
    blocks = ev.get("blocks", "all")
    if isinstance(blocks, str) and blocks != "all":
        blocks = int(blocks)
    shards = ev.get("shards")
    rows = []
    fleet_results = []
    for recipe in spec.datasets:
        segment = ctx.segment(recipe)
        res = run_fleet_on_segment(segment, blocks=blocks, shards=shards)
        fleet_results.append(res)
        total_time = res.fit_time_s + res.transform_time_s
        rows.append(
            (
                recipe.display,
                res.n_nodes,
                res.n_signatures,
                round(res.fit_time_s, 4),
                round(res.transform_time_s, 4),
                round(res.n_signatures / total_time, 1) if total_time > 0 else 0.0,
            )
        )
    return ScenarioResult(
        spec=spec,
        title=spec.title,
        headers=FLEET_HEADERS,
        rows=rows,
        extras={"results": fleet_results},
    )


# ----------------------------------------------------------------------
# Online fleet fault detection (repro.service routing)
# ----------------------------------------------------------------------
@evaluation("fleet-detect")
def _run_fleet_detect(
    spec: ScenarioSpec, ctx: ExecutionContext
) -> ScenarioResult:
    """Deterministic replay through the online detection service.

    Each dataset recipe contributes its components as nodes of one
    fleet; ``fleet_sizes`` (optional) replays growing recipe prefixes so
    a single scenario sweeps fleet scale.  Rows report the alert
    stream's quality against the injected ground truth plus replay
    throughput.  ``backend``/``mode`` select the detector's tick path
    (staged, or the fused arena with exact/float32/quantized signature
    arithmetic — see :class:`repro.service.detector.FleetFaultDetector`).

    Plumbs through the :mod:`repro.service.api` facade: the evaluation
    dict's service keys become one :class:`ServiceConfig` (historically
    this kind ran unguarded, so ``guard`` defaults off here).
    """
    from repro.service.api import ServiceConfig, build_setup
    from repro.service.api import replay as replay_config

    ev = spec.evaluation_dict()
    config = ServiceConfig.from_evaluation(
        ev, guard=bool(ev.get("guard", False))
    )
    sizes = tuple(ev.get("fleet_sizes", ())) or (len(spec.datasets),)
    rows = []
    outcomes = []
    for size in sizes:
        size = int(size)
        if not 1 <= size <= len(spec.datasets):
            raise ValueError(
                f"fleet size {size} outside 1..{len(spec.datasets)} recipes"
            )
        setup = build_setup(
            config, recipes=spec.datasets[:size], context=ctx
        )
        outcome = replay_config(config, setup)
        outcomes.append(outcome)
        rows.append(
            outcome.row(f"{spec.datasets[0].segment}-fleet-{setup.n_nodes}")
        )
    return ScenarioResult(
        spec=spec,
        title=spec.title,
        headers=FLEET_DETECT_HEADERS,
        rows=rows,
        extras={"outcomes": outcomes},
    )


@evaluation("fleet-replay")
def _run_fleet_replay(
    spec: ScenarioSpec, ctx: ExecutionContext
) -> ScenarioResult:
    """Store-replay equivalence drill over the detection service.

    One guarded live replay of the fleet (the per-tick serving loop),
    then the same held-out feed recorded into a ``repro-telestore/v1``
    store and replayed from disk through each configured backend —
    partition-sized blocks fed straight into the detector.  The final
    column asserts the byte-identity contract: every store replay's
    alert JSONL must serialize byte-for-byte equal to the live run's,
    and the drill raises if it does not.  ``Speedup`` is live wall-clock
    over store-replay wall-clock for the identical window.
    """
    import json
    import tempfile
    from pathlib import Path

    from repro.service.fastreplay import record_fleet, replay_from_store
    from repro.service.replay import SERVICE_DEFAULTS, prepare_fleet, replay

    ev = spec.evaluation_dict()

    def param(name: str):
        return ev.get(name, SERVICE_DEFAULTS[name])

    chunk = int(param("chunk"))
    policy_kwargs = dict(
        open_after=int(param("open_after")),
        close_after=int(param("close_after")),
        min_confidence=float(param("min_confidence")),
        top_blocks=int(param("top_blocks")),
    )
    partition_ticks = int(ev.get("partition_ticks", 1024))
    backends = tuple(ev.get("backends", ("fused", "staged")))
    setup = prepare_fleet(
        spec.datasets,
        context=ctx,
        blocks=int(param("blocks")),
        trees=int(param("trees")),
        train_frac=float(param("train_frac")),
        seed=int(param("seed")),
        healthy_label=int(param("healthy_label")),
    )

    def jsonl(events: list[dict]) -> str:
        return "\n".join(json.dumps(e) for e in events)

    def row(name, outcome, speedup, identical):
        return (
            name,
            outcome.n_nodes,
            outcome.n_windows,
            outcome.n_alerts,
            round(outcome.window_accuracy, 4),
            round(outcome.replay_time_s, 4),
            round(outcome.windows_per_s, 1),
            speedup,
            identical,
        )

    live = replay(setup, chunk=chunk, guard=True, **policy_kwargs)
    live_jsonl = jsonl(live.events)
    rows = [row(f"live chunk={chunk}", live, "", "")]
    outcomes = [live]
    mismatches = []
    with tempfile.TemporaryDirectory() as td:
        store = record_fleet(
            setup,
            Path(td) / "store",
            partition_ticks=partition_ticks,
            chunk=chunk,
            guarded=True,
        )
        for backend in backends:
            fast = replay_from_store(setup, store, backend=backend,
                                     **policy_kwargs)
            identical = jsonl(fast.events) == live_jsonl
            if not identical:
                mismatches.append(backend)
            speedup = (
                round(live.replay_time_s / fast.replay_time_s, 2)
                if fast.replay_time_s > 0
                else float("inf")
            )
            rows.append(
                row(
                    f"store {backend}",
                    fast,
                    speedup,
                    "yes" if identical else "NO",
                )
            )
            outcomes.append(fast)
    notes = [
        f"store: {len(store.partitions)} partition(s) of "
        f"{partition_ticks} ticks, {store.nbytes / 1e6:.1f} MB",
        "byte-identity contract "
        + ("held" if not mismatches else "VIOLATED")
        + ": store-replay alert JSONL vs guarded live ingestion",
    ]
    if mismatches:
        raise AssertionError(
            "store-replay byte-identity contract violated for backend(s) "
            f"{mismatches!r}"
        )
    return ScenarioResult(
        spec=spec,
        title=spec.title,
        headers=FLEET_REPLAY_HEADERS,
        rows=rows,
        notes=notes,
        extras={"outcomes": outcomes},
    )


@evaluation("fleet-detect-chaos")
def _run_fleet_detect_chaos(
    spec: ScenarioSpec, ctx: ExecutionContext
) -> ScenarioResult:
    """Chaos-injection robustness drill over the detection service.

    Three guarded replays of the same fleet: a clean baseline, a replay
    under deterministic seeded fault injection
    (:class:`repro.service.chaos.ChaosInjector` — drop / duplicate /
    reorder / corrupt per the evaluation's fractions), and the same
    chaos replay again but killed at the configured ticks and restored
    from checkpoints (:func:`repro.service.chaos.run_with_kills`).  The
    final column asserts the crash-recovery contract: the killed run's
    event stream must equal the uninterrupted chaos run's, event for
    event.

    The killed run's "Faults injected" count covers only the ticks its
    final segments actually processed — injector *statistics* are not
    checkpointed (the fault schedule is a pure function of
    ``(seed, tick, node)``, so the schedule itself needs no state).
    """
    import tempfile
    from pathlib import Path

    from repro.service.chaos import ChaosConfig, run_with_kills
    from repro.service.replay import SERVICE_DEFAULTS, prepare_fleet, replay

    ev = spec.evaluation_dict()

    def param(name: str):
        return ev.get(name, SERVICE_DEFAULTS[name])

    service_kwargs = dict(
        chunk=int(param("chunk")),
        open_after=int(param("open_after")),
        close_after=int(param("close_after")),
        min_confidence=float(param("min_confidence")),
        top_blocks=int(param("top_blocks")),
        backend=str(ev.get("backend", "staged")),
        mode=str(ev.get("mode", "exact")),
    )
    chaos = ChaosConfig(
        seed=int(ev.get("chaos_seed", 0)),
        drop=float(ev.get("drop", 0.05)),
        duplicate=float(ev.get("duplicate", 0.05)),
        reorder=float(ev.get("reorder", 0.05)),
        corrupt=float(ev.get("corrupt", 0.05)),
        start_tick=int(ev.get("start_tick", 0)),
    )
    kills = tuple(int(k) for k in ev.get("kills", (2, 5)))
    setup = prepare_fleet(
        spec.datasets,
        context=ctx,
        blocks=int(param("blocks")),
        trees=int(param("trees")),
        train_frac=float(param("train_frac")),
        seed=int(param("seed")),
        healthy_label=int(param("healthy_label")),
    )

    def dropped(outcome) -> int:
        return sum(
            n["dropped_blocks"] for n in outcome.health["nodes"].values()
        )

    def injected(outcome) -> int:
        s = outcome.chaos_stats
        if s is None:
            return 0
        return s["drop"] + s["duplicate"] + s["reorder"] + s["corrupt"]

    def chaos_row(name, outcome, resume_identical):
        return (
            name,
            outcome.n_nodes,
            outcome.n_windows,
            outcome.n_alerts,
            outcome.n_events,
            injected(outcome),
            dropped(outcome),
            round(outcome.alert_precision, 4),
            round(outcome.episode_recall, 4),
            resume_identical,
        )

    clean = replay(setup, guard=True, **service_kwargs)
    chaotic = replay(setup, guard=True, chaos=chaos, **service_kwargs)
    with tempfile.TemporaryDirectory() as td:
        killed = run_with_kills(
            setup,
            checkpoint_path=Path(td) / "chaos_checkpoint.npz",
            kills=kills,
            checkpoint_every=int(ev.get("checkpoint_every", 1)),
            guard=True,
            chaos=chaos,
            **service_kwargs,
        )
    resume_identical = killed.events == chaotic.events
    rows = [
        chaos_row("clean", clean, ""),
        chaos_row("chaos", chaotic, ""),
        chaos_row(f"chaos+kills@{','.join(map(str, kills))}", killed,
                  "yes" if resume_identical else "NO"),
    ]
    notes = [
        f"chaos: seed={chaos.seed} drop={chaos.drop} "
        f"duplicate={chaos.duplicate} reorder={chaos.reorder} "
        f"corrupt={chaos.corrupt}",
        "resume contract "
        + ("held" if resume_identical else "VIOLATED")
        + ": killed-and-restored event stream vs uninterrupted chaos run",
    ]
    if not resume_identical:
        raise AssertionError(
            "crash-recovery contract violated: killed-and-restored replay "
            "diverged from the uninterrupted chaos run"
        )
    return ScenarioResult(
        spec=spec,
        title=spec.title,
        headers=FLEET_CHAOS_HEADERS,
        rows=rows,
        notes=notes,
        extras={
            "outcomes": [clean, chaotic, killed],
            "resume_identical": resume_identical,
        },
    )


@evaluation("fleet-serve")
def _run_fleet_serve(
    spec: ScenarioSpec, ctx: ExecutionContext
) -> ScenarioResult:
    """Network-serving equivalence drill over the ingestion server.

    One guarded in-process replay of the fleet (the reference run),
    then the same fleet served over a loopback TCP socket: a
    :class:`repro.service.net.FleetServer` on an ephemeral port, driven
    by the deterministic :func:`repro.service.net.loadgen` feeder in
    each configured frame encoding.  The final column asserts the
    transport-identity contract — alert JSONL ingested over the network
    must be byte-for-byte equal to the in-process replay's — and the
    drill raises if it does not hold.  ``replicate`` (optional) scales
    the trained fleet by reference before serving.
    """
    from repro.service.api import ServiceConfig, build_detector, build_setup
    from repro.service.api import replay as replay_config
    from repro.service.net import FleetServer, ListAlertSink, loadgen

    ev = spec.evaluation_dict()
    config = ServiceConfig.from_evaluation(ev, guard=True)
    formats = tuple(ev.get("formats", ("binary", "json")))
    setup = build_setup(config, recipes=spec.datasets, context=ctx)
    n_nodes = len(setup.eval_data)

    ref_sink = ListAlertSink()
    ref = replay_config(config, setup, sinks=(ref_sink,))
    rows = [
        (
            "in-process",
            n_nodes,
            "",
            ref.n_events,
            "",
            "",
            "",
            "",
        )
    ]
    mismatches = []
    stats_by_fmt = {}
    for fmt in formats:
        net_sink = ListAlertSink()
        server = FleetServer(
            build_detector(config, setup),
            sinks=(net_sink,),
            exit_on_idle=True,
        )
        thread = server.start_background()
        if not server.ready.wait(30):
            raise RuntimeError("ingestion server failed to start")
        loadgen(
            setup,
            ("127.0.0.1", server.port),
            chunk=config.chunk,
            fmt=fmt,
        )
        thread.join(120)
        if thread.is_alive():
            raise RuntimeError("ingestion server failed to drain")
        stats = server.stats.snapshot()
        stats_by_fmt[fmt] = stats
        identical = net_sink.text() == ref_sink.text()
        if not identical:
            mismatches.append(fmt)
        rows.append(
            (
                f"served {fmt}",
                n_nodes,
                stats["ticks"],
                stats["events"],
                stats["samples_per_s"],
                stats["tick_latency_p50_ms"],
                stats["tick_latency_p99_ms"],
                "yes" if identical else "NO",
            )
        )
    notes = [
        "transport-identity contract "
        + ("held" if not mismatches else "VIOLATED")
        + ": network-ingested alert JSONL vs in-process replay",
    ]
    if mismatches:
        raise AssertionError(
            "network transport byte-identity contract violated for "
            f"format(s) {mismatches!r}"
        )
    return ScenarioResult(
        spec=spec,
        title=spec.title,
        headers=FLEET_SERVE_HEADERS,
        rows=rows,
        notes=notes,
        extras={"reference": ref, "stats": stats_by_fmt},
    )


@evaluation("fleet-serve-chaos")
def _run_fleet_serve_chaos(
    spec: ScenarioSpec, ctx: ExecutionContext
) -> ScenarioResult:
    """Network serving through a hostile, *seeded* TCP path.

    The fleet-serve drill with a :class:`repro.service.netchaos.ChaosProxy`
    spliced between the load generator and the ingestion server: byte
    corruption (caught by the binary frame CRC and dropped), hard
    connection resets, silent truncation and short partitions, all
    drawn deterministically from ``(seed, connection, byte offset)``.
    The client runs in ``--resume`` mode — it follows per-tick acks and
    resends everything after the last acked tick across reconnects — so
    the contract under test is *convergence*: however the schedule
    mangles the transport, the alert JSONL that comes out the far side
    is byte-for-byte the in-process replay's, on every repetition.
    """
    from repro.service.api import ServiceConfig, build_detector, build_setup
    from repro.service.api import replay as replay_config
    from repro.service.net import FleetServer, ListAlertSink, loadgen
    from repro.service.netchaos import ChaosProxy, NetChaosConfig

    ev = spec.evaluation_dict()
    config = ServiceConfig.from_evaluation(ev, guard=True)
    # Rate calibration: frames here are a couple hundred KB, and a
    # corrupted or truncated frame costs a full ack-timeout stall plus a
    # resend round.  Keep the *per-frame* fault expectation well below 1
    # (rate_per_mb x frame_mb < ~0.5) — hotter schedules mangle every
    # frame and the drill stops converging by construction, it does not
    # get "more chaotic".  Resets and partitions are cheap (immediate
    # reconnect / short delay), but resets also restart the in-flight
    # frame, so the same ceiling applies.
    chaos = NetChaosConfig(
        seed=int(ev.get("chaos_seed", 0)),
        corrupt_per_mb=float(ev.get("corrupt_per_mb", 2.0)),
        reset_per_mb=float(ev.get("reset_per_mb", 0.5)),
        truncate_per_mb=float(ev.get("truncate_per_mb", 0.5)),
        partition_per_mb=float(ev.get("partition_per_mb", 4.0)),
        partition_ms=float(ev.get("partition_ms", 10.0)),
    )
    repeats = int(ev.get("chaos_repeats", 2))
    setup = build_setup(config, recipes=spec.datasets, context=ctx)
    n_nodes = len(setup.eval_data)

    ref_sink = ListAlertSink()
    ref = replay_config(config, setup, sinks=(ref_sink,))
    rows = [("in-process", n_nodes, "", ref.n_events, "", "", "", "", "")]
    mismatches = []
    faults_seen = 0
    run_stats = []
    for rep in range(repeats):
        net_sink = ListAlertSink()
        server = FleetServer(
            build_detector(config, setup),
            sinks=(net_sink,),
            exit_on_idle=True,
            # Partial ticks are timing, not data; a generous barrier
            # keeps the replayed tick boundaries exact under stalls.
            tick_timeout=float(ev.get("tick_timeout", 60.0)),
        )
        thread = server.start_background()
        if not server.ready.wait(30):
            raise RuntimeError("ingestion server failed to start")
        upstream = ("127.0.0.1", server.port)
        proxy = ChaosProxy(upstream, chaos)
        proxy.start()
        try:
            gen = loadgen(
                setup,
                ("127.0.0.1", proxy.port),
                chunk=config.chunk,
                fmt="binary",  # the CRC-checked encoding: corruption
                # must be *detected*, never silently mis-parsed
                resume=True,
                ack_timeout=float(ev.get("ack_timeout", 2.0)),
                total_timeout=float(ev.get("total_timeout", 240.0)),
            )
        finally:
            proxy_stats = proxy.stop()
        thread.join(120)
        if thread.is_alive():
            raise RuntimeError("ingestion server failed to drain")
        faults = (
            proxy_stats["corrupted"]
            + proxy_stats["resets"]
            + (1 if proxy_stats["truncated_bytes"] else 0)
            + proxy_stats["partitions"]
        )
        faults_seen += faults
        stats = server.stats.snapshot()
        run_stats.append(
            {"loadgen": gen, "server": stats, "proxy": proxy_stats}
        )
        identical = net_sink.text() == ref_sink.text()
        if not identical:
            mismatches.append(rep)
        rows.append(
            (
                f"chaos rep {rep}",
                n_nodes,
                stats["ticks"],
                stats["events"],
                gen["reconnects"],
                gen["resent_frames"],
                proxy_stats["corrupted"],
                proxy_stats["resets"],
                "yes" if identical else "NO",
            )
        )
    notes = [
        f"netchaos: seed={chaos.seed} corrupt={chaos.corrupt_per_mb}/MB "
        f"reset={chaos.reset_per_mb}/MB truncate={chaos.truncate_per_mb}/MB "
        f"partition={chaos.partition_per_mb}/MB",
        "convergence contract "
        + ("held" if not mismatches else "VIOLATED")
        + f" across {repeats} repetition(s): chaos-proxied alert JSONL "
        "vs in-process replay",
    ]
    if mismatches:
        raise AssertionError(
            "chaos-proxy convergence contract violated on "
            f"repetition(s) {mismatches!r}"
        )
    if ev.get("expect_faults", True) and faults_seen == 0:
        raise AssertionError(
            "chaos proxy injected no faults — the drill was vacuous "
            "(raise the *_per_mb rates or feed size)"
        )
    return ScenarioResult(
        spec=spec,
        title=spec.title,
        headers=FLEET_SERVE_CHAOS_HEADERS,
        rows=rows,
        notes=notes,
        extras={"reference": ref, "runs": run_stats},
    )

"""Content-addressed artifact cache + execution context.

Scenario runs produce two expensive intermediate artifacts: generated
segments (synthetic telemetry) and signature sets (the windowed ML
feature matrices).  Both are pure functions of declarative inputs —
a :class:`~repro.datasets.recipes.DatasetRecipe`, or a recipe plus a
signature-method name and window parameters — so they are cached on disk
under the content hash of those inputs (canonical JSON, stable across
processes).  Only the cold run pays generation cost; repeated and
*overlapping* runs (different scenarios sharing a recipe) reuse the
artifacts.  Changing any recipe or method field changes the key, which
is the entire invalidation story.

Layout::

    <cache-dir>/
      segments/<key>/segment.npz      # repro.monitoring.storage npz format
      segments/<key>/recipe.json      # provenance, for humans
      datasets/<key>.npz              # X, y, groups + JSON meta
      datasets/<key>.json             # provenance

The :class:`ExecutionContext` wraps an optional cache with an in-memory
memo so one run never generates the same segment twice (matching the
historical scripts, which generated each segment once and reused it for
every method).
"""

from __future__ import annotations

import json
import logging
import struct
import zipfile
from pathlib import Path

import numpy as np

from repro.datasets.generators import SegmentData, WindowedDataset, build_ml_dataset
from repro.datasets.recipes import DatasetRecipe
from repro.monitoring.storage import (
    atomic_savez,
    load_npz_arrays,
    load_segment_npz,
    save_segment_npz,
)
from repro.scenarios.spec import CACHE_VERSION, content_key

__all__ = ["ArtifactCache", "ExecutionContext", "segment_key", "dataset_key"]

_log = logging.getLogger(__name__)

#: Failure modes of reading a damaged / truncated / foreign cache entry.
#: A cache is a cache: any of these means "miss and regenerate", never a
#: traceback (the content-addressed write then repairs the entry).
_CACHE_READ_ERRORS = (
    OSError,
    EOFError,
    KeyError,
    ValueError,  # includes json.JSONDecodeError and bad npz headers
    struct.error,
    zipfile.BadZipFile,
)


def segment_key(recipe: DatasetRecipe) -> str:
    """Content address of the segment a recipe generates.

    Uses ``recipe.cache_dict()``, so display-only fields (``label``) do
    not fragment the cache: recipes building bit-identical segments
    share artifacts across scenarios.
    """
    return content_key("segment", CACHE_VERSION, recipe.cache_dict())


def dataset_key(
    recipe: DatasetRecipe,
    method: str,
    *,
    wl: int | None = None,
    ws: int | None = None,
    real_only: bool = False,
) -> str:
    """Content address of one (recipe, method, windowing) signature set."""
    if not isinstance(method, str):
        raise TypeError(
            "only named methods are cacheable; got "
            f"{type(method).__name__} (callable factories have no stable "
            "content address)"
        )
    return content_key(
        "dataset",
        CACHE_VERSION,
        recipe.cache_dict(),
        method,
        wl,
        ws,
        bool(real_only),
    )


class ArtifactCache:
    """On-disk content-addressed store for segments and signature sets.

    ``mmap_mode="r"`` (the default) memory-maps cache hits zero-copy
    straight out of the ``.npz`` archives; pass ``mmap_mode=None`` for
    eager in-memory copies (e.g. when a consumer must mutate arrays in
    place).  Unreadable entries — truncated writes, corrupt archives,
    foreign files — are treated as misses and regenerated, with a
    warning naming the damaged path.
    """

    def __init__(self, root: str | Path, *, mmap_mode: str | None = "r"):
        if mmap_mode not in (None, "r", "c"):
            # Fail loudly here: raised lazily inside load_*, a bad mode
            # would be swallowed by the damaged-entry handling and
            # misreported as permanent cache corruption.
            raise ValueError(f"unsupported mmap_mode {mmap_mode!r}")
        self.root = Path(root)
        self.mmap_mode = mmap_mode
        (self.root / "segments").mkdir(parents=True, exist_ok=True)
        (self.root / "datasets").mkdir(parents=True, exist_ok=True)

    # -- segments ------------------------------------------------------
    def _segment_path(self, key: str) -> Path:
        return self.root / "segments" / key / "segment.npz"

    def load_segment(self, key: str) -> SegmentData | None:
        path = self._segment_path(key)
        if not path.exists():
            return None
        try:
            return load_segment_npz(path, self.mmap_mode)
        except _CACHE_READ_ERRORS as exc:
            _log.warning(
                "unreadable cached segment %s (%s: %s); regenerating",
                path, type(exc).__name__, exc,
            )
            return None

    def save_segment(
        self, key: str, segment: SegmentData, recipe: DatasetRecipe
    ) -> None:
        path = self._segment_path(key)
        save_segment_npz(segment, path)
        path.with_name("recipe.json").write_text(
            json.dumps(recipe.to_dict(), indent=2, sort_keys=True)
        )

    # -- signature sets (windowed ML datasets) -------------------------
    def _dataset_path(self, key: str) -> Path:
        return self.root / "datasets" / f"{key}.npz"

    def load_dataset(self, key: str) -> WindowedDataset | None:
        path = self._dataset_path(key)
        if not path.exists():
            return None
        try:
            data = load_npz_arrays(path, self.mmap_mode)
            meta = json.loads(bytes(data["meta"]).decode("utf-8"))
            return WindowedDataset(
                X=data["X"],
                y=data["y"],
                task=meta["task"],
                label_names=tuple(meta["label_names"]),
                groups=data["groups"],
                generation_time_s=meta["generation_time_s"],
                signature_size=meta["signature_size"],
            )
        except _CACHE_READ_ERRORS as exc:
            _log.warning(
                "unreadable cached dataset %s (%s: %s); regenerating",
                path, type(exc).__name__, exc,
            )
            return None

    def save_dataset(
        self, key: str, dataset: WindowedDataset, provenance: dict
    ) -> None:
        path = self._dataset_path(key)
        meta = {
            "task": dataset.task,
            "label_names": list(dataset.label_names),
            "generation_time_s": dataset.generation_time_s,
            "signature_size": dataset.signature_size,
        }
        atomic_savez(
            path,
            X=dataset.X,
            y=dataset.y,
            groups=dataset.groups,
            meta=np.frombuffer(
                json.dumps(meta).encode("utf-8"), dtype=np.uint8
            ),
        )
        path.with_suffix(".json").write_text(
            json.dumps(provenance, indent=2, sort_keys=True)
        )


class ExecutionContext:
    """Artifact provider handed to evaluation strategies.

    ``segment(recipe)`` and ``dataset(recipe, method, ...)`` transparently
    consult the disk cache (when configured) and an in-memory memo; cache
    traffic is tallied in :attr:`stats`.  Without a cache the context
    reproduces the historical behavior exactly: segments generated once
    per run, signature sets built fresh.
    """

    def __init__(self, store: ArtifactCache | None = None):
        self.store = store
        self._segments: dict[str, SegmentData] = {}
        self.stats = {
            "segment_hits": 0,
            "segment_misses": 0,
            "dataset_hits": 0,
            "dataset_misses": 0,
        }

    def segment(self, recipe: DatasetRecipe) -> SegmentData:
        """The segment for ``recipe`` — memoized, then cache, then built."""
        key = segment_key(recipe)
        if key in self._segments:
            return self._segments[key]
        segment = self.store.load_segment(key) if self.store else None
        if segment is not None:
            self.stats["segment_hits"] += 1
        else:
            self.stats["segment_misses"] += 1
            segment = recipe.build()
            if self.store:
                self.store.save_segment(key, segment, recipe)
        self._segments[key] = segment
        return segment

    def dataset(
        self,
        recipe: DatasetRecipe,
        method: str,
        *,
        wl: int | None = None,
        ws: int | None = None,
        real_only: bool = False,
    ) -> WindowedDataset:
        """The signature set for (recipe, method) — cache hit skips even
        segment generation, which is where the big cached-run wins come
        from.  Callable method factories have no stable content address
        and bypass the store."""
        from repro.experiments.harness import make_method_factory

        store = self.store if isinstance(method, str) else None
        key = (
            dataset_key(recipe, method, wl=wl, ws=ws, real_only=real_only)
            if store
            else None
        )
        if store:
            dataset = store.load_dataset(key)
            if dataset is not None:
                self.stats["dataset_hits"] += 1
                return dataset
        self.stats["dataset_misses"] += 1
        segment = self.segment(recipe)
        factory = make_method_factory(method, real_only=real_only)
        dataset = build_ml_dataset(segment, factory, wl=wl, ws=ws)
        if store:
            store.save_dataset(
                key,
                dataset,
                {
                    "recipe": recipe.to_dict(),
                    "method": method,
                    "wl": wl,
                    "ws": ws,
                    "real_only": bool(real_only),
                },
            )
        return dataset

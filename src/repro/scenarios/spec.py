"""Declarative scenario specifications and content hashing.

A :class:`ScenarioSpec` is a pure value describing one evaluation run:
which dataset recipes to materialize, which signature methods to apply,
how to evaluate them (the ``kind`` selects a generic evaluation strategy
from ``repro.scenarios.evaluations``) and how the scenario maps back to
the paper.  Specs are frozen, serializable and content-hashable — the
hash is computed over canonical JSON (sorted keys, no whitespace), so it
is stable across processes and Python hash randomization, and *any*
field change produces a different hash.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any, Iterable, Mapping

from repro.datasets.recipes import DatasetRecipe

__all__ = [
    "CACHE_VERSION",
    "ScenarioSpec",
    "canonical_json",
    "content_key",
    "freeze_value",
    "pairs",
]

#: Bumping this invalidates every cached artifact (format changes).
CACHE_VERSION = 1


def _canonical(obj: Any) -> Any:
    """Recursively convert to JSON-representable canonical form."""
    if isinstance(obj, Mapping):
        return {str(k): _canonical(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, DatasetRecipe):
        return _canonical(obj.to_dict())
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__}: {obj!r}")


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, minimal separators."""
    return json.dumps(_canonical(obj), sort_keys=True, separators=(",", ":"))


def content_key(*parts: Any) -> str:
    """Stable hex content-address over the canonical JSON of ``parts``."""
    digest = hashlib.sha256(canonical_json(list(parts)).encode("utf-8"))
    return digest.hexdigest()[:20]


def freeze_value(value: Any) -> Any:
    """Recursively turn lists into tuples (hashable spec field values)."""
    if isinstance(value, Mapping):
        return pairs(value)
    if isinstance(value, (list, tuple)):
        return tuple(freeze_value(v) for v in value)
    return value


def pairs(mapping: Mapping[str, Any] | Iterable[tuple[str, Any]]) -> tuple:
    """Normalize a mapping into a sorted tuple of ``(key, value)`` pairs."""
    items = mapping.items() if isinstance(mapping, Mapping) else tuple(mapping)
    return tuple(sorted((str(k), freeze_value(v)) for k, v in items))


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative scenario: recipes + method grid + evaluation.

    Attributes
    ----------
    name:
        Registry key (``fig3``, ``noise-robustness``, ...).
    kind:
        Evaluation strategy (see ``repro.scenarios.evaluations``):
        ``grid``, ``length-sweep``, ``timing``, ``app-heatmap``,
        ``arch-heatmap``, ``merged-crossarch``, ``segment-summary``,
        ``fleet``, ``fleet-detect``.
    title:
        Table title printed above results.
    description:
        One-line human summary (shown by ``repro list``).
    paper:
        Paper artifact this reproduces (``Figure 3``, ``Table I``, ...);
        empty for scenarios that go beyond the paper.
    datasets:
        Dataset recipes the evaluation materializes (possibly empty for
        synthetic-input kinds like ``timing``).
    methods:
        Signature-method grid (``tuncer``, ``cs-20``, ...).
    evaluation:
        Kind-specific parameters as sorted ``(key, value)`` pairs
        (``trees``, ``repeats``, ``lengths``, ``blocks``, ...).
    smoke:
        Reduced-configuration overrides applied by ``--smoke``: pairs
        whose keys are ``datasets`` (replacement recipe tuple),
        ``methods`` (replacement tuple) and/or ``evaluation`` (pairs
        merged over ``evaluation``).
    tags:
        Free-form labels (``paper``, ``extra``, ``robustness``, ...).
    """

    name: str
    kind: str
    title: str = ""
    description: str = ""
    paper: str = ""
    datasets: tuple[DatasetRecipe, ...] = ()
    methods: tuple[str, ...] = ()
    evaluation: tuple[tuple[str, Any], ...] = ()
    smoke: tuple[tuple[str, Any], ...] = ()
    tags: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "datasets", tuple(self.datasets))
        object.__setattr__(self, "methods", tuple(self.methods))
        object.__setattr__(self, "evaluation", pairs(self.evaluation))
        object.__setattr__(self, "smoke", pairs(self.smoke))
        object.__setattr__(self, "tags", tuple(self.tags))

    # -- access --------------------------------------------------------
    def evaluation_dict(self) -> dict[str, Any]:
        return dict(self.evaluation)

    def smoke_dict(self) -> dict[str, Any]:
        return dict(self.smoke)

    # -- serialization / identity --------------------------------------
    def to_dict(self) -> dict[str, Any]:
        smoke = self.smoke_dict()
        smoke_out: dict[str, Any] = {}
        if "datasets" in smoke:
            smoke_out["datasets"] = [r.to_dict() for r in smoke["datasets"]]
        if "methods" in smoke:
            smoke_out["methods"] = list(smoke["methods"])
        if "evaluation" in smoke:
            smoke_out["evaluation"] = dict(smoke["evaluation"])
        return {
            "name": self.name,
            "kind": self.kind,
            "title": self.title,
            "description": self.description,
            "paper": self.paper,
            "datasets": [r.to_dict() for r in self.datasets],
            "methods": list(self.methods),
            "evaluation": self.evaluation_dict(),
            "smoke": smoke_out,
            "tags": list(self.tags),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ScenarioSpec":
        smoke_in = data.get("smoke", {})
        smoke: dict[str, Any] = {}
        if "datasets" in smoke_in:
            smoke["datasets"] = tuple(
                DatasetRecipe.from_dict(d) for d in smoke_in["datasets"]
            )
        if "methods" in smoke_in:
            smoke["methods"] = tuple(smoke_in["methods"])
        if "evaluation" in smoke_in:
            smoke["evaluation"] = pairs(smoke_in["evaluation"])
        return cls(
            name=data["name"],
            kind=data["kind"],
            title=data.get("title", ""),
            description=data.get("description", ""),
            paper=data.get("paper", ""),
            datasets=tuple(
                DatasetRecipe.from_dict(d) for d in data.get("datasets", [])
            ),
            methods=tuple(data.get("methods", [])),
            evaluation=pairs(data.get("evaluation", {})),
            smoke=pairs(smoke),
            tags=tuple(data.get("tags", [])),
        )

    def spec_hash(self) -> str:
        """Content address of the full spec (any field change changes it)."""
        return content_key("scenario", CACHE_VERSION, self.to_dict())

    # -- derivation ----------------------------------------------------
    def with_evaluation(self, **overrides: Any) -> "ScenarioSpec":
        """Copy with ``overrides`` merged into the evaluation parameters."""
        merged = self.evaluation_dict()
        merged.update(overrides)
        return replace(self, evaluation=pairs(merged))

    def with_datasets(
        self, datasets: Iterable[DatasetRecipe]
    ) -> "ScenarioSpec":
        return replace(self, datasets=tuple(datasets))

    def with_methods(self, methods: Iterable[str]) -> "ScenarioSpec":
        return replace(self, methods=tuple(methods))


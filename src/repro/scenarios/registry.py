"""Scenario registry: name -> :class:`ScenarioSpec`.

Built-in scenarios (the seven paper reproductions plus the extended
coverage suite) are registered by importing ``repro.scenarios.builtin``;
downstream code can register additional specs with :func:`register`.
"""

from __future__ import annotations

from repro.scenarios.spec import ScenarioSpec

__all__ = ["register", "get_scenario", "list_scenarios", "scenario_names"]

_REGISTRY: dict[str, ScenarioSpec] = {}


def register(spec: ScenarioSpec, *, replace: bool = False) -> ScenarioSpec:
    """Register a spec under ``spec.name``; returns it for chaining."""
    if not replace and spec.name in _REGISTRY:
        existing = _REGISTRY[spec.name]
        if existing != spec:
            raise ValueError(f"scenario {spec.name!r} already registered")
        return existing
    _REGISTRY[spec.name] = spec
    return spec


def _ensure_builtin() -> None:
    # Imported lazily so `import repro.scenarios.registry` alone carries
    # no registration side effects, but every lookup sees the built-ins.
    from repro.scenarios import builtin  # noqa: F401


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario by name."""
    _ensure_builtin()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {scenario_names()}"
        ) from None


def list_scenarios(tag: str | None = None) -> list[ScenarioSpec]:
    """All registered scenarios (paper reproductions first, then by name)."""
    _ensure_builtin()
    specs = sorted(
        _REGISTRY.values(), key=lambda s: (s.paper == "", s.name)
    )
    if tag is not None:
        specs = [s for s in specs if tag in s.tags]
    return specs


def scenario_names(tag: str | None = None) -> list[str]:
    return [s.name for s in list_scenarios(tag)]

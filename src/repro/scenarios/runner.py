"""The unified experiment runner: options -> spec -> evaluation -> sinks.

:func:`execute` is the single entry point every surface goes through —
the ``repro`` CLI, ``python -m repro``, and the legacy per-figure
``main()`` shims — so all of them produce identical results (and
byte-identical CSVs) for the same effective spec.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.datasets.recipes import DatasetRecipe
from repro.experiments.reporting import Sink
from repro.scenarios.cache import ArtifactCache, ExecutionContext
from repro.scenarios.evaluations import ScenarioResult, get_evaluation
from repro.scenarios.spec import ScenarioSpec

__all__ = ["RunOptions", "apply_options", "execute"]


@dataclass
class RunOptions:
    """The shared cross-scenario run options (one per CLI invocation).

    ``None`` means "keep the spec's own value"; the spec stays the single
    source of per-scenario defaults, which is what de-duplicates the
    historical per-script argparse drift.  ``datasets`` and
    ``evaluation`` carry *explicit* scenario-specific overrides (the
    legacy shims' ``--t``/``--blocks``/``--apps``/... flags); like
    ``segments``/``methods`` they always beat the smoke replacements.
    """

    seed: int | None = None
    scale: float | None = None
    repeats: int | None = None
    trees: int | None = None
    smoke: bool = False
    cache_dir: str | Path | None = None
    out_dir: str | Path | None = None
    methods: Sequence[str] | None = None
    segments: Sequence[str] | None = None
    datasets: Sequence[DatasetRecipe] | None = None
    evaluation: dict | None = None


def apply_options(spec: ScenarioSpec, options: RunOptions) -> ScenarioSpec:
    """Derive the effective spec for one run.

    The smoke variant is applied first; every *explicit* override —
    ``--segments``/``--methods``, recipe replacements and evaluation
    parameters passed by a shim — beats the corresponding smoke
    replacement (so ``--smoke --segments fault`` runs the *full-size*
    fault recipes under the reduced evaluation: there is no generic
    "smoke-sized" variant of an arbitrary segment, and explicitly
    requested values are never silently dropped).  Every override lands
    in a spec *field*, so it also lands in the content hash: any changed
    option re-addresses the cached artifacts.
    """
    explicit_datasets = bool(options.segments or options.datasets)
    if options.smoke:
        smoke = spec.smoke_dict()
        if "datasets" in smoke and not explicit_datasets:
            spec = spec.with_datasets(smoke["datasets"])
        if "methods" in smoke and not options.methods:
            spec = spec.with_methods(smoke["methods"])
        if "evaluation" in smoke:
            merge = {
                k: v
                for k, v in dict(smoke["evaluation"]).items()
                if k not in (options.evaluation or {})
            }
            spec = spec.with_evaluation(**merge)
    if options.datasets:
        spec = spec.with_datasets(options.datasets)
    if options.segments:
        spec = spec.with_datasets(
            DatasetRecipe(segment=name) for name in options.segments
        )
    if options.methods:
        spec = spec.with_methods(options.methods)
    if options.seed is not None or options.scale is not None:
        spec = spec.with_datasets(
            r.with_overrides(seed=options.seed, scale=options.scale)
            for r in spec.datasets
        )
    if options.seed is not None:
        spec = spec.with_evaluation(seed=int(options.seed))
    if options.repeats is not None:
        spec = spec.with_evaluation(repeats=int(options.repeats))
    if options.trees is not None:
        spec = spec.with_evaluation(trees=int(options.trees))
    if options.evaluation:
        spec = spec.with_evaluation(**options.evaluation)
    return spec


def _write_artifacts(result: ScenarioResult, out_dir: Path) -> None:
    from repro.analysis.visualization import save_pgm

    out_dir.mkdir(parents=True, exist_ok=True)
    for name, image in result.artifacts.items():
        result.artifact_paths.append(save_pgm(out_dir / name, image))


def execute(
    spec: ScenarioSpec,
    *,
    options: RunOptions | None = None,
    sinks: Iterable[Sink] = (),
    context: ExecutionContext | None = None,
) -> ScenarioResult:
    """Run one scenario spec end to end.

    Applies the shared options, builds the execution context (opening the
    content-addressed cache when ``cache_dir`` is set), dispatches to the
    spec's evaluation kind, writes binary artifacts, then feeds every
    sink.  Returns the full :class:`ScenarioResult`.
    """
    options = options or RunOptions()
    spec = apply_options(spec, options)
    if context is None:
        store = ArtifactCache(options.cache_dir) if options.cache_dir else None
        context = ExecutionContext(store)
    start = time.perf_counter()
    result = get_evaluation(spec.kind)(spec, context)
    result.wall_time_s = time.perf_counter() - start
    result.cache_stats = dict(context.stats)
    if result.artifacts and options.out_dir is not None:
        _write_artifacts(result, Path(options.out_dir))
    for sink in sinks:
        sink.emit(result)
    return result

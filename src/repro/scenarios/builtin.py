"""The built-in scenario catalog.

Registers the seven paper reproductions (Table I, Figures 3-7, Section
IV-F) plus the extended coverage suite — scenarios the paper never ran,
expressed purely as declarative specs over the generic evaluation kinds
(no bespoke runner code).  See EXPERIMENTS.md for the full map.
"""

from __future__ import annotations

from repro.datasets.recipes import DatasetRecipe, recipe
from repro.datasets.schema import SEGMENTS
from repro.experiments.harness import DEFAULT_METHODS
from repro.scenarios.registry import register
from repro.scenarios.spec import ScenarioSpec, pairs

__all__ = [
    "PAPER_SEGMENTS",
    "FIG5_WL_GRID",
    "FIG5_N_GRID",
    "FIG6_APPS",
    "PAPER_SCENARIOS",
    "EXTRA_SCENARIOS",
]

#: The four ML-evaluation segments of Figures 3 and 4 (Cross-Architecture
#: is Section IV-F).
PAPER_SEGMENTS: tuple[str, ...] = (
    "fault",
    "application",
    "power",
    "infrastructure",
)

#: Scaled-down versions of Figure 5's 10..10k sweeps.
FIG5_WL_GRID: tuple[int, ...] = (10, 250, 500, 1000, 2000, 4000)
FIG5_N_GRID: tuple[int, ...] = (10, 250, 500, 1000, 2000, 4000)

#: The applications rendered in Figure 6 (AMG reproduces Figure 2).
FIG6_APPS: tuple[str, ...] = ("Kripke", "Linpack", "Quicksilver")


def _segment_recipes(
    names=PAPER_SEGMENTS, *, seed: int = 0, scale: float = 1.0
) -> tuple[DatasetRecipe, ...]:
    return tuple(
        DatasetRecipe(segment=n, seed=seed, scale=scale) for n in names
    )


# ----------------------------------------------------------------------
# Paper reproductions
# ----------------------------------------------------------------------
TABLE1 = register(ScenarioSpec(
    name="table1",
    kind="segment-summary",
    title="Table I — HPC-ODA segment overview (synthetic)",
    description="Dataset-collection overview of all five segments",
    paper="Table I",
    datasets=_segment_recipes(tuple(SEGMENTS)),
    tags=("paper",),
    smoke=pairs({"datasets": _segment_recipes(tuple(SEGMENTS), scale=0.2)}),
))

FIG3 = register(ScenarioSpec(
    name="fig3",
    kind="grid",
    title="Figure 3 — times (a), signature sizes (b) and ML scores (c)",
    description="Per-method generation/CV times, signature sizes and ML "
    "scores on the first four segments",
    paper="Figure 3",
    datasets=_segment_recipes(),
    methods=DEFAULT_METHODS,
    evaluation=pairs({"trees": 50, "repeats": 1, "n_splits": 5, "seed": 0}),
    tags=("paper", "ml"),
    smoke=pairs({
        "datasets": (recipe("application", t=700, nodes=2),),
        "methods": ("lan", "cs-5"),
        "evaluation": {"trees": 4},
    }),
))

FIG4 = register(ScenarioSpec(
    name="fig4",
    kind="length-sweep",
    title="Figure 4 — JS divergence (a) and ML score (b) vs signature length",
    description="Compression quality and ML score vs block count, with "
    "and without imaginary components",
    paper="Figure 4",
    datasets=_segment_recipes(),
    evaluation=pairs({
        "lengths": (5, 10, 20, 40, "all"),
        "with_real_only": True,
        "trees": 50,
        "seed": 0,
        "bins": 64,
    }),
    tags=("paper", "ml"),
    smoke=pairs({
        "datasets": (recipe("application", t=700, nodes=2),),
        "evaluation": {"lengths": (5,), "with_real_only": False, "trees": 4},
    }),
))

FIG5 = register(ScenarioSpec(
    name="fig5",
    kind="timing",
    title="Figure 5 — time to compute one signature vs wl (a) and n (b)",
    description="Single-signature computation time vs window length and "
    "dimension count",
    paper="Figure 5",
    methods=DEFAULT_METHODS,
    evaluation=pairs({
        "wl_grid": FIG5_WL_GRID,
        "n_grid": FIG5_N_GRID,
        "fixed_n": 100,
        "fixed_wl": 100,
        "repeats": 20,
        "seed": 0,
    }),
    tags=("paper", "perf"),
    smoke=pairs({
        "methods": ("lan", "cs-5"),
        "evaluation": {"wl_grid": (10,), "n_grid": (10,), "repeats": 2},
    }),
))

FIG6 = register(ScenarioSpec(
    name="fig6",
    kind="app-heatmap",
    title="Figure 6 — application signature heatmaps (160 blocks)",
    description="Real/imaginary CS signature heatmaps per application on "
    "the 16-node Application segment",
    paper="Figures 2 and 6",
    datasets=(recipe("application", t=2400, nodes=16),),
    evaluation=pairs({"apps": FIG6_APPS, "blocks": 160, "prefix": "fig6"}),
    tags=("paper", "viz"),
    smoke=pairs({
        "datasets": (recipe("application", t=2600, nodes=2),),
        "evaluation": {"apps": ("Linpack",), "blocks": 8},
    }),
))

FIG7 = register(ScenarioSpec(
    name="fig7",
    kind="arch-heatmap",
    title="Figure 7 — LAMMPS signature heatmaps across three architectures",
    description="One application's 20-block heatmaps on Skylake, Knights "
    "Landing and AMD Rome nodes",
    paper="Figure 7",
    datasets=(recipe("cross-architecture", t=2600),),
    evaluation=pairs({"app": "LAMMPS", "blocks": 20, "prefix": "fig7"}),
    tags=("paper", "viz"),
    smoke=pairs({"evaluation": {"blocks": 8}}),
))

CROSSARCH = register(ScenarioSpec(
    name="crossarch",
    kind="merged-crossarch",
    title="Section IV-F — cross-architecture application classification",
    description="RF + MLP classification over the merged three-"
    "architecture dataset (impossible with the baselines)",
    paper="Section IV-F",
    datasets=(recipe("cross-architecture", t=1600),),
    evaluation=pairs({
        "blocks": 20,
        "trees": 50,
        "seed": 0,
        "n_splits": 5,
        "mlp_max_iter": 150,
    }),
    tags=("paper", "ml"),
    smoke=pairs({
        "datasets": (recipe("cross-architecture", t=900),),
        "evaluation": {"trees": 5, "blocks": 8, "mlp_max_iter": 40},
    }),
))

PAPER_SCENARIOS: tuple[ScenarioSpec, ...] = (
    TABLE1, FIG3, FIG4, FIG5, FIG6, FIG7, CROSSARCH,
)


# ----------------------------------------------------------------------
# Extended coverage: scenarios beyond the paper, specs only
# ----------------------------------------------------------------------
FLEET_SCALING = register(ScenarioSpec(
    name="fleet-scaling",
    kind="fleet",
    title="Fleet scaling — batched whole-fleet signature throughput",
    description="FleetSignatureEngine fit/transform throughput as the "
    "monitored fleet grows from 8 to 32 nodes",
    datasets=(
        recipe("application", t=600, nodes=8, label="fleet-8"),
        recipe("application", t=600, nodes=16, label="fleet-16"),
        recipe("application", t=600, nodes=32, label="fleet-32"),
    ),
    evaluation=pairs({"blocks": 20}),
    tags=("extra", "perf", "fleet"),
    smoke=pairs({
        "datasets": (
            recipe("application", t=400, nodes=2, label="fleet-2"),
            recipe("application", t=400, nodes=4, label="fleet-4"),
        ),
        "evaluation": {"blocks": 8},
    }),
))

FAULT_MIX = register(ScenarioSpec(
    name="fault-mix",
    kind="grid",
    title="Fault mix — scores across independent fault-injection schedules",
    description="Fault-classification robustness over three independently "
    "seeded mixed fault-injection segments",
    datasets=(
        recipe("fault", t=8000, seed=0, label="fault#s0"),
        recipe("fault", t=8000, seed=1, label="fault#s1"),
        recipe("fault", t=8000, seed=2, label="fault#s2"),
    ),
    methods=("tuncer", "cs-20", "cs-40"),
    evaluation=pairs({"trees": 20, "repeats": 1, "n_splits": 5, "seed": 0}),
    tags=("extra", "ml", "robustness"),
    smoke=pairs({
        "datasets": (recipe("fault", t=3000, seed=0, label="fault#s0"),),
        "methods": ("cs-20",),
        "evaluation": {"trees": 4},
    }),
))

NOISE_ROBUSTNESS = register(ScenarioSpec(
    name="noise-robustness",
    kind="grid",
    title="Noise robustness — ML score vs additive sensor noise",
    description="Application-classification scores as Gaussian sensor "
    "noise grows from 0 to 10% of each sensor's variance",
    datasets=(
        recipe("application", label="application+n0"),
        recipe("application", noise_std=0.05, noise_seed=11,
               label="application+n5%"),
        recipe("application", noise_std=0.10, noise_seed=11,
               label="application+n10%"),
    ),
    methods=("tuncer", "cs-20"),
    evaluation=pairs({"trees": 20, "repeats": 1, "n_splits": 5, "seed": 0}),
    tags=("extra", "ml", "robustness"),
    smoke=pairs({
        "datasets": (
            recipe("application", t=700, nodes=2, label="application+n0"),
            recipe("application", t=700, nodes=2, noise_std=0.10,
                   noise_seed=11, label="application+n10%"),
        ),
        "methods": ("cs-20",),
        "evaluation": {"trees": 4},
    }),
))

SENSOR_DRIFT = register(ScenarioSpec(
    name="sensor-drift",
    kind="grid",
    title="Sensor drift — power prediction under calibration drift",
    description="Power-regression scores as a slow random-sign per-sensor "
    "calibration drift grows to 25% of sensor variance",
    datasets=(
        recipe("power", label="power+d0"),
        recipe("power", drift=0.10, noise_seed=23, label="power+d10%"),
        recipe("power", drift=0.25, noise_seed=23, label="power+d25%"),
    ),
    methods=("cs-10", "cs-all"),
    evaluation=pairs({"trees": 20, "repeats": 1, "n_splits": 5, "seed": 0}),
    tags=("extra", "ml", "robustness"),
    smoke=pairs({
        "datasets": (
            recipe("power", t=1500, label="power+d0"),
            recipe("power", t=1500, drift=0.25, noise_seed=23,
                   label="power+d25%"),
        ),
        "methods": ("cs-10",),
        "evaluation": {"trees": 4},
    }),
))

# The online-service replays (repro.service): fleets of independently
# seeded fault nodes detected, classified and alerted on in lockstep.
def _fault_fleet(
    nodes: int, *, t: int, noise_std: float = 0.0, noise_seed: int = 0
) -> tuple[DatasetRecipe, ...]:
    """Recipes equal to ``repro.service.replay.fleet_recipes(...)``.

    Built locally from plain recipes so registering/listing scenarios
    does not import the service stack (the CLI keeps those imports lazy
    on purpose); equality with ``fleet_recipes`` is test-enforced.
    """
    return tuple(
        recipe(
            "fault",
            t=int(t),
            seed=i,
            noise_std=noise_std,
            drift=0.0,
            noise_seed=noise_seed,
            label=f"fault#n{i}",
        )
        for i in range(nodes)
    )


_SMOKE_FLEET = _fault_fleet(2, t=2500)

FLEET_DETECT = register(ScenarioSpec(
    name="fleet-detect",
    kind="fleet-detect",
    title="Online fleet fault detection — ingest, classify, alert",
    description="Deterministic replay of a 4-node fault fleet through "
    "repro.service: windowed detection, lockstep batched classification "
    "and threshold+hysteresis alerting scored against injected faults",
    datasets=_fault_fleet(4, t=6000),
    evaluation=pairs({
        "blocks": 20,
        "trees": 30,
        "train_frac": 0.5,
        "chunk": 256,
        "open_after": 2,
        "close_after": 2,
        "seed": 0,
    }),
    tags=("extra", "service", "fleet"),
    smoke=pairs({
        "datasets": _SMOKE_FLEET,
        "evaluation": {"blocks": 8, "trees": 6, "chunk": 200},
    }),
))

FLEET_DETECT_FUSED = register(ScenarioSpec(
    name="fleet-detect-fused",
    kind="fleet-detect",
    title="Online fleet fault detection — fused zero-allocation tick path",
    description="The fleet-detect replay through the fused TickArena "
    "backend (exact float64 mode): alert stream and scores are "
    "bit-identical to the staged path, only the tick cost changes",
    datasets=_fault_fleet(4, t=6000),
    evaluation=pairs({
        "blocks": 20,
        "trees": 30,
        "train_frac": 0.5,
        "chunk": 256,
        "open_after": 2,
        "close_after": 2,
        "seed": 0,
        "backend": "fused",
    }),
    tags=("extra", "service", "fleet", "perf"),
    smoke=pairs({
        "datasets": _SMOKE_FLEET,
        "evaluation": {"blocks": 8, "trees": 6, "chunk": 200,
                       "backend": "fused"},
    }),
))

FLEET_DETECT_SCALE = register(ScenarioSpec(
    name="fleet-detect-scale",
    kind="fleet-detect",
    title="Online fleet fault detection — replay throughput vs fleet size",
    description="Service replay over growing fleets (2 -> 4 -> 8 fault "
    "nodes): alert quality stays flat while windows/second tracks the "
    "batched hot path",
    datasets=_fault_fleet(8, t=4000),
    evaluation=pairs({
        "fleet_sizes": (2, 4, 8),
        "blocks": 20,
        "trees": 20,
        "train_frac": 0.5,
        "chunk": 256,
        "open_after": 2,
        "close_after": 2,
        "seed": 0,
    }),
    tags=("extra", "service", "fleet", "perf"),
    smoke=pairs({
        "datasets": _SMOKE_FLEET,
        "evaluation": {"fleet_sizes": (2,), "blocks": 8, "trees": 6,
                       "chunk": 200},
    }),
))

FLEET_DETECT_NOISE = register(ScenarioSpec(
    name="fleet-detect-noise",
    kind="fleet-detect",
    title="Online fleet fault detection — noisy telemetry",
    description="The fleet-detect replay with 5% additive Gaussian "
    "sensor noise on every node: how much alert precision/recall "
    "survives degraded telemetry",
    datasets=_fault_fleet(3, t=6000, noise_std=0.05, noise_seed=11),
    evaluation=pairs({
        "blocks": 20,
        "trees": 30,
        "train_frac": 0.5,
        "chunk": 256,
        "open_after": 2,
        "close_after": 2,
        "seed": 0,
    }),
    tags=("extra", "service", "fleet", "robustness"),
    smoke=pairs({
        "datasets": _fault_fleet(2, t=2500, noise_std=0.05, noise_seed=11),
        "evaluation": {"blocks": 8, "trees": 6, "chunk": 200},
    }),
))

FLEET_DETECT_CHAOS = register(ScenarioSpec(
    name="fleet-detect-chaos",
    kind="fleet-detect-chaos",
    title="Online fleet fault detection — chaos injection + crash recovery",
    description="Guarded service replay under deterministic seeded fault "
    "injection (drop/duplicate/reorder/corrupt bursts) plus the "
    "kill-and-restore drill: the checkpoint-resumed event stream must "
    "equal the uninterrupted run's, event for event",
    datasets=_fault_fleet(3, t=6000),
    evaluation=pairs({
        "blocks": 20,
        "trees": 30,
        "train_frac": 0.5,
        "chunk": 256,
        "open_after": 2,
        "close_after": 2,
        "seed": 0,
        "chaos_seed": 7,
        "drop": 0.05,
        "duplicate": 0.05,
        "reorder": 0.05,
        "corrupt": 0.05,
        "kills": (3, 8),
        "checkpoint_every": 1,
    }),
    tags=("extra", "service", "fleet", "robustness"),
    smoke=pairs({
        "datasets": _SMOKE_FLEET,
        "evaluation": {"blocks": 8, "trees": 6, "chunk": 200,
                       "chaos_seed": 7, "kills": (2, 4)},
    }),
))

FLEET_REPLAY = register(ScenarioSpec(
    name="fleet-replay",
    kind="fleet-replay",
    title="Telemetry store replay — byte-identical, faster than live",
    description="The fleet-detect feed recorded into a repro-telestore/v1 "
    "columnar store and replayed from disk at max speed (partition-sized "
    "blocks into the fused arena): alert JSONL byte-identical to guarded "
    "live ingestion on every backend, wall-clock reported as speedup",
    datasets=_fault_fleet(4, t=6000),
    evaluation=pairs({
        "blocks": 20,
        "trees": 30,
        "train_frac": 0.5,
        "chunk": 256,
        "open_after": 2,
        "close_after": 2,
        "seed": 0,
        "partition_ticks": 1024,
        "backends": ("fused", "staged"),
    }),
    tags=("extra", "service", "fleet", "perf", "store"),
    smoke=pairs({
        "datasets": _SMOKE_FLEET,
        "evaluation": {"blocks": 8, "trees": 6, "chunk": 200,
                       "partition_ticks": 400,
                       "backends": ("fused",)},
    }),
))

FLEET_SERVE = register(ScenarioSpec(
    name="fleet-serve",
    kind="fleet-serve",
    title="Network fleet serving — loopback transport equivalence",
    description="The fleet-detect fleet served over a loopback TCP "
    "socket: a FleetServer on an ephemeral port driven by the "
    "deterministic loadgen feeder in binary and newline-JSON framing; "
    "network-ingested alert JSONL must be byte-identical to the "
    "in-process replay, with samples/s and tick latency reported",
    datasets=_fault_fleet(4, t=6000),
    evaluation=pairs({
        "blocks": 20,
        "trees": 30,
        "train_frac": 0.5,
        "chunk": 256,
        "open_after": 2,
        "close_after": 2,
        "seed": 0,
        "formats": ("binary", "json"),
    }),
    tags=("extra", "service", "fleet", "net"),
    smoke=pairs({
        "datasets": _SMOKE_FLEET,
        "evaluation": {"blocks": 8, "trees": 6, "chunk": 200,
                       "formats": ("binary",)},
    }),
))

FLEET_SERVE_CHAOS = register(ScenarioSpec(
    name="fleet-serve-chaos",
    kind="fleet-serve-chaos",
    title="Network fleet serving through a seeded chaos proxy",
    description="The fleet-serve drill with a deterministic TCP chaos "
    "proxy in the path: byte corruption (caught by the binary frame "
    "CRC), hard resets, truncation and short partitions keyed on "
    "(seed, connection, byte offset); the resuming loadgen client "
    "re-sends from its last acked tick until the served alert JSONL "
    "is byte-identical to the in-process replay, every repetition",
    datasets=_fault_fleet(4, t=6000),
    evaluation=pairs({
        "blocks": 20,
        "trees": 30,
        "train_frac": 0.5,
        "chunk": 256,
        "open_after": 2,
        "close_after": 2,
        "seed": 0,
        "chaos_seed": 0,
        "chaos_repeats": 2,
    }),
    tags=("extra", "service", "fleet", "net", "robustness"),
    smoke=pairs({
        "datasets": _SMOKE_FLEET,
        "evaluation": {"blocks": 8, "trees": 6, "chunk": 200,
                       "chaos_repeats": 2,
                       # ~2.5 MB feed at the calibrated default rates
                       # still lands several faults of every kind; a
                       # shorter ack stall keeps the smoke drill quick.
                       "ack_timeout": 1.0},
    }),
))

CROSSARCH_LENGTHS = register(ScenarioSpec(
    name="crossarch-lengths",
    kind="grid",
    title="Cross-architecture x signature length — merged-fleet scores",
    description="Application classification on the heterogeneous cross-"
    "architecture segment across uniform signature lengths (l <= 39, the "
    "smallest node's sensor count, so features stay mergeable)",
    datasets=(recipe("cross-architecture", t=1600),),
    methods=("cs-5", "cs-10", "cs-20", "cs-30"),
    evaluation=pairs({"trees": 20, "repeats": 1, "n_splits": 5, "seed": 0}),
    tags=("extra", "ml"),
    smoke=pairs({
        "datasets": (recipe("cross-architecture", t=900),),
        "methods": ("cs-5", "cs-10"),
        "evaluation": {"trees": 4},
    }),
))

EXTRA_SCENARIOS: tuple[ScenarioSpec, ...] = (
    FLEET_SCALING,
    FAULT_MIX,
    NOISE_ROBUSTNESS,
    SENSOR_DRIFT,
    FLEET_DETECT,
    FLEET_DETECT_SCALE,
    FLEET_DETECT_NOISE,
    FLEET_REPLAY,
    FLEET_SERVE,
    CROSSARCH_LENGTHS,
)

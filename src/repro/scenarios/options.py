"""Shared CLI options: one definition per flag, used everywhere.

The historical per-script parsers drifted apart (``--repeats`` defaulted
to 1 in fig3 but 20 in fig5, with different help text; ``--scale`` help
varied per script).  This module is the single source of flag names,
types and help strings; per-scenario *defaults* live in the scenario
specs, so the shared flags default to ``None`` ("keep the spec value").

Both the unified ``repro`` CLI and the legacy ``python -m
repro.experiments.figN`` shims build their parsers from
:func:`add_shared_options` and convert parsed args with
:func:`options_from_args` / :func:`sinks_from_args`.
"""

from __future__ import annotations

import argparse
from typing import Any

from repro.experiments.reporting import CSVSink, JSONLSink, MarkdownSink, Sink, TableSink
from repro.scenarios.runner import RunOptions

__all__ = [
    "OPTION_SPECS",
    "add_shared_options",
    "options_from_args",
    "sinks_from_args",
]

#: flag -> (argparse kwargs).  Destinations use underscores.
OPTION_SPECS: dict[str, dict[str, Any]] = {
    "--seed": dict(
        type=int,
        default=None,
        help="base RNG seed, shared by dataset generation and "
        "cross-validation shuffles (default: the scenario's spec seed, 0)",
    ),
    "--repeats": dict(
        type=int,
        default=None,
        help="repetition count: cross-validation repeats for score grids "
        "(paper: 5), timing repeats for signature-timing sweeps "
        "(paper: 20); default: the scenario's spec value",
    ),
    "--scale": dict(
        type=float,
        default=None,
        help="segment-length multiplier applied to every dataset recipe "
        "(1.0 = quick defaults, larger approaches Table I sizes)",
    ),
    "--trees": dict(
        type=int,
        default=None,
        help="random-forest size for ML scoring (paper: 50); "
        "default: the scenario's spec value",
    ),
    "--smoke": dict(
        action="store_true",
        help="run the scenario's reduced smoke configuration "
        "(seconds-scale, used by CI)",
    ),
    "--cache-dir": dict(
        type=str,
        default=None,
        help="content-addressed artifact cache directory; repeated or "
        "overlapping runs reuse generated segments and signature sets",
    ),
    "--csv": dict(
        type=str, default=None, help="also write results to this CSV path"
    ),
    "--jsonl": dict(
        type=str, default=None, help="also write results as JSON lines"
    ),
    "--markdown": dict(
        type=str, default=None, help="also write a markdown summary table"
    ),
    "--out": dict(
        type=str,
        default=None,
        help="directory for binary artifacts (PGM heatmap images)",
    ),
    "--methods": dict(
        nargs="*",
        default=None,
        help="override the scenario's signature-method grid "
        "(e.g. tuncer cs-20 cs-all)",
    ),
    "--segments": dict(
        nargs="*",
        default=None,
        help="override the scenario's dataset recipes with plain segment "
        "recipes of these names",
    ),
}


def add_shared_options(
    parser: argparse.ArgumentParser, *flags: str, **default_overrides: Any
) -> argparse.ArgumentParser:
    """Add the named shared flags (all of them when none are named).

    ``default_overrides`` (keyed by destination name, e.g. ``out``)
    replace a flag's default — used by legacy shims whose historical
    defaults were explicit values rather than "ask the spec".
    """
    names = flags or tuple(OPTION_SPECS)
    for flag in names:
        flag = flag if flag.startswith("--") else f"--{flag}"
        if flag not in OPTION_SPECS:
            raise KeyError(f"unknown shared option {flag!r}")
        kwargs = dict(OPTION_SPECS[flag])
        dest = flag.lstrip("-").replace("-", "_")
        if dest in default_overrides:
            kwargs["default"] = default_overrides[dest]
        parser.add_argument(flag, **kwargs)
    return parser


def options_from_args(
    args: argparse.Namespace, **overrides: Any
) -> RunOptions:
    """Build :class:`RunOptions` from whatever shared flags are present."""
    fields: dict[str, Any] = {}
    for name in (
        "seed",
        "scale",
        "repeats",
        "trees",
        "smoke",
        "cache_dir",
        "methods",
        "segments",
    ):
        if hasattr(args, name):
            fields[name] = getattr(args, name)
    if hasattr(args, "out"):
        fields["out_dir"] = args.out
    fields.update(overrides)
    return RunOptions(**fields)


def sinks_from_args(args: argparse.Namespace, *, table: bool = True) -> list[Sink]:
    """Sinks implied by the shared output flags (+ stdout table)."""
    sinks: list[Sink] = [TableSink()] if table else []
    if getattr(args, "csv", None):
        sinks.append(CSVSink(args.csv))
    if getattr(args, "jsonl", None):
        sinks.append(JSONLSink(args.jsonl))
    if getattr(args, "markdown", None):
        sinks.append(MarkdownSink(args.markdown))
    return sinks

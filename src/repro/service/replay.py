"""Deterministic replay of cached segments through the detection service.

The replay driver is how the service is tested, benchmarked and CI-gated:
it materializes a fleet from dataset recipes (through an
:class:`~repro.scenarios.cache.ExecutionContext`, so repeated runs load
the cached ``.npz`` segments instead of regenerating), trains the fleet
on the leading ``train_frac`` of each node's history, then feeds the
remaining samples through :class:`~repro.service.detector.
FleetFaultDetector` in fixed-size bursts and scores the alert stream
against the injected ground truth.

Everything downstream of the recipes is a pure function of declarative
inputs, so two replays of the same setup — in the same process or across
processes — produce **byte-identical** alert JSONL.
"""

from __future__ import annotations

import signal
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.datasets.generators import ComponentData
from repro.datasets.recipes import DatasetRecipe, recipe
from repro.datasets.windows import window_majority_labels
from repro.scenarios.cache import ExecutionContext
from repro.service.alerts import AlertSink
from repro.service.chaos import ChaosConfig, ChaosInjector
from repro.service.checkpoint import (
    fleet_fingerprint,
    load_checkpoint,
    restore_checkpoint,
    save_checkpoint,
)
from repro.service.classify import TrainedFleet, train_fleet
from repro.service.detector import FleetFaultDetector
from repro.service.guard import GuardConfig, GuardedDetector
from repro.service.model_store import load_fleet_npz, save_fleet_npz

__all__ = [
    "SERVICE_DEFAULTS",
    "FleetReplaySetup",
    "ReplayOutcome",
    "fleet_recipes",
    "flush_open_alerts",
    "node_path",
    "prepare_fleet",
    "replay",
]

#: Canonical service knob defaults — the single source shared by the
#: :func:`prepare_fleet` / :func:`replay` signatures, the
#: ``fleet-detect`` evaluation kind and the ``repro serve`` /
#: ``repro detect`` CLI presets, so the "same" configuration cannot
#: silently drift between entry points (alert streams and cache keys
#: both depend on these values).
SERVICE_DEFAULTS: dict[str, int | float] = {
    "blocks": 20,
    "trees": 30,
    "train_frac": 0.5,
    "chunk": 256,
    "open_after": 2,
    "close_after": 2,
    "min_confidence": 0.0,
    "top_blocks": 3,
    "seed": 0,
    "healthy_label": 0,
}


def node_path(rack: int, node: int) -> str:
    """Sensor-tree style path of one monitored node (``rack0/node03``)."""
    return f"rack{rack}/node{node:02d}"


def fleet_recipes(
    nodes: int,
    *,
    segment: str = "fault",
    t: int = 6000,
    seed0: int = 0,
    noise_std: float = 0.0,
    drift: float = 0.0,
    noise_seed: int = 0,
) -> tuple[DatasetRecipe, ...]:
    """Recipes for an ``nodes``-strong fault fleet.

    Each node is one independently seeded segment (seeds ``seed0 ..
    seed0 + nodes - 1``): same fault models and sensor bank layout,
    different workload schedules and fault episodes — a homogeneous fleet
    under heterogeneous load, which is the realistic serving scenario.
    """
    if nodes < 1:
        raise ValueError("a fleet needs at least one node")
    return tuple(
        recipe(
            segment,
            t=int(t),
            seed=seed0 + i,
            noise_std=noise_std,
            drift=drift,
            noise_seed=noise_seed,
            label=f"{segment}#n{i}",
        )
        for i in range(nodes)
    )


@dataclass
class FleetReplaySetup:
    """A trained fleet plus the held-out data to replay through it."""

    trained: TrainedFleet
    eval_data: dict[str, np.ndarray]
    truth: dict[str, np.ndarray]
    wl: int
    ws: int

    @property
    def n_nodes(self) -> int:
        return len(self.eval_data)

    @property
    def n_windows(self) -> int:
        return sum(int(t.shape[0]) for t in self.truth.values())


def prepare_fleet(
    recipes: Sequence[DatasetRecipe],
    *,
    context: ExecutionContext | None = None,
    blocks: int = SERVICE_DEFAULTS["blocks"],
    trees: int = SERVICE_DEFAULTS["trees"],
    train_frac: float = SERVICE_DEFAULTS["train_frac"],
    seed: int = SERVICE_DEFAULTS["seed"],
    wl: int | None = None,
    ws: int | None = None,
    healthy_label: int = SERVICE_DEFAULTS["healthy_label"],
    model_path: str | Path | None = None,
) -> FleetReplaySetup:
    """Materialize, split and train a fleet from dataset recipes.

    Every component of every recipe's segment becomes one node
    (``rack<recipe>/node<component>``).  The leading ``train_frac`` of
    each node's history trains its CS model and the shared classifier;
    the remainder is the held-out period :func:`replay` feeds through
    the detector, with per-window majority labels as ground truth.

    ``healthy_label`` is the class meaning "no fault" — 0 for the fault
    segment's ``healthy`` class.  Pass the right class explicitly when
    replaying other labeled segments; otherwise class 0 (a real
    workload class there) would silently be treated as healthy.

    ``model_path`` makes fleet training skippable: when the file exists
    it is loaded (validated against this run's ``blocks``/``wl``/``ws``
    and node set — mismatches raise instead of silently mis-detecting),
    otherwise the freshly trained fleet is saved there for next time.
    Loaded fleets replay to byte-identical alert streams.
    """
    if not recipes:
        raise ValueError("prepare_fleet needs at least one recipe")
    if not 0.0 < train_frac < 1.0:
        raise ValueError("train_frac must be in (0, 1)")
    context = context or ExecutionContext()
    train: dict[str, ComponentData] = {}
    eval_data: dict[str, np.ndarray] = {}
    raw_eval_labels: dict[str, np.ndarray] = {}
    label_names: tuple[str, ...] = ()
    healthy_label = int(healthy_label)
    for rack, rcp in enumerate(recipes):
        segment = context.segment(rcp)
        seg_wl = segment.spec.wl if wl is None else int(wl)
        seg_ws = segment.spec.ws if ws is None else int(ws)
        if not label_names:
            label_names = segment.label_names
        for ci, comp in enumerate(segment.components):
            if comp.labels is None:
                raise ValueError(
                    f"recipe {rcp.display!r} component {comp.name!r} has no "
                    "labels; fleet detection needs a labeled segment"
                )
            path = node_path(rack, ci)
            cut = int(comp.t * train_frac)
            cut = max(seg_wl + seg_ws, min(cut, comp.t - seg_wl - seg_ws))
            train[path] = ComponentData(
                name=path,
                matrix=comp.matrix[:, :cut],
                sensor_names=comp.sensor_names,
                sensor_groups=comp.sensor_groups,
                labels=comp.labels[:cut],
                arch=comp.arch,
            )
            eval_data[path] = comp.matrix[:, cut:]
            raw_eval_labels[path] = comp.labels[cut:]
        wl, ws = seg_wl, seg_ws  # uniform across the fleet from here on
    model_file = Path(model_path) if model_path is not None else None
    if model_file is not None and model_file.exists():
        trained = load_fleet_npz(
            model_file,
            expect_blocks=blocks,
            expect_wl=wl,
            expect_ws=ws,
            expect_paths=sorted(eval_data),
        )
    else:
        trained = train_fleet(
            train,
            blocks=blocks,
            wl=wl,
            ws=ws,
            trees=trees,
            seed=seed,
            healthy_label=healthy_label,
            label_names=label_names,
        )
        if model_file is not None:
            save_fleet_npz(trained, model_file)
    truth = {
        p: window_majority_labels(raw_eval_labels[p], wl, ws).astype(np.intp)
        for p in sorted(eval_data)
    }
    return FleetReplaySetup(
        trained=trained, eval_data=eval_data, truth=truth, wl=wl, ws=ws
    )


@dataclass
class ReplayOutcome:
    """Scored result of one replay run.

    ``n_alerts``/``n_events`` are always populated; ``events`` holds the
    full stream only when the replay recorded history (serving mode
    streams events into sinks without retaining them).
    """

    events: list[dict]
    n_nodes: int
    n_windows: int
    n_alerts: int
    window_accuracy: float
    alert_precision: float
    episode_recall: float
    replay_time_s: float
    n_events: int = 0
    #: :meth:`~repro.service.guard.GuardedDetector.fleet_health` payload
    #: of the final tick, when the replay ran guarded.
    health: dict | None = None
    #: :class:`~repro.service.chaos.ChaosInjector` delivery statistics,
    #: when the replay ran under fault injection.
    chaos_stats: dict | None = None
    #: True when the replay was stopped by SIGINT at a tick boundary
    #: (open alerts were flushed into the sinks, and a final checkpoint
    #: was written when checkpointing was active).
    interrupted: bool = False

    @property
    def windows_per_s(self) -> float:
        if self.replay_time_s <= 0.0:
            return 0.0
        return self.n_windows / self.replay_time_s

    def row(self, fleet_label: str) -> tuple:
        """The summary row both ``repro detect`` and the ``fleet-detect``
        scenario kind report (column order of ``FLEET_DETECT_HEADERS``)."""
        return (
            fleet_label,
            self.n_nodes,
            self.n_windows,
            self.n_alerts,
            round(self.window_accuracy, 4),
            round(self.alert_precision, 4),
            round(self.episode_recall, 4),
            round(self.replay_time_s, 4),
            round(self.windows_per_s, 1),
        )


def flush_open_alerts(detector) -> list[dict]:
    """``repro-alerts/v1`` ``flush`` events for every still-open alert.

    Emitted into the sinks when a serving loop is interrupted (Ctrl-C)
    so an operator tailing the JSONL sees which episodes were live at
    shutdown — same shape as a ``close`` event, but the episode did not
    end.  Accepts a :class:`FleetFaultDetector` or a
    :class:`~repro.service.guard.GuardedDetector` (flushes then carry
    the node ``health`` state, like every guarded event).
    """
    guarded = detector if isinstance(detector, GuardedDetector) else None
    inner = guarded.inner if guarded is not None else detector
    events = []
    for path, alert in sorted(inner.open_alerts().items()):
        event = {
            "event": "flush",
            "node": path,
            "window": inner.windows_seen(path) - 1,
            "opened": alert.opened,
            "label": alert.label,
            "windows": alert.n_windows,
            "peak_confidence": alert.peak_confidence,
        }
        if guarded is not None:
            event["health"] = guarded.health(path).state
        events.append(event)
    return events


class _InterruptFlag:
    """SIGINT-to-flag bridge for graceful tick-boundary shutdown.

    Installed around the replay loop (main thread only — elsewhere the
    context is a no-op and Ctrl-C behaves as before): the *first*
    SIGINT raises this flag so the loop finishes the in-flight tick,
    flushes open alerts and writes a final checkpoint; a *second*
    SIGINT falls through to the previous handler (normally
    ``KeyboardInterrupt``) for operators who really mean it.
    """

    def __init__(self):
        self.triggered = False
        self._previous = None
        self._installed = False

    def _handle(self, signum, frame):
        if self.triggered and callable(self._previous):
            self._previous(signum, frame)
        self.triggered = True

    def __enter__(self):
        if threading.current_thread() is threading.main_thread():
            try:
                self._previous = signal.signal(signal.SIGINT, self._handle)
                self._installed = True
            except (ValueError, OSError):  # pragma: no cover - exotic host
                self._installed = False
        return self

    def __exit__(self, *exc):
        if self._installed:
            signal.signal(signal.SIGINT, self._previous)
        return False


def _episodes(truth: np.ndarray, healthy: int) -> list[tuple[int, int]]:
    """Contiguous faulty runs ``[start, stop)`` in window space."""
    faulty = np.asarray(truth) != healthy
    if faulty.size == 0:
        return []
    edges = np.flatnonzero(np.diff(faulty.astype(np.int8)))
    bounds = np.concatenate(([0], edges + 1, [faulty.size]))
    return [
        (int(a), int(b))
        for a, b in zip(bounds[:-1], bounds[1:])
        if faulty[a]
    ]


def _alert_spans(
    events: Iterable[dict], path: str, n_windows: int
) -> list[tuple[int, int]]:
    """``[first_faulty, close)`` spans of one node's alerts."""
    spans = []
    open_start: int | None = None
    for event in events:
        if event.get("node") != path:
            continue
        if event["event"] == "open":
            open_start = int(event["first_faulty"])
        elif event["event"] == "close" and open_start is not None:
            spans.append((open_start, int(event["window"]) + 1))
            open_start = None
    if open_start is not None:  # still open at end of replay
        spans.append((open_start, n_windows))
    return spans


def score_events(
    events: list[dict],
    setup: FleetReplaySetup,
    detector: FleetFaultDetector,
) -> tuple[float, float, float]:
    """(window accuracy, alert precision, episode recall) of one replay.

    * window accuracy — per-window predicted class vs ground truth,
      pooled over all nodes;
    * alert precision — fraction of alert spans overlapping a true
      faulty episode (an alert on healthy windows is a false page);
    * episode recall — fraction of injected faulty episodes touched by
      at least one alert span.
    """
    healthy = setup.trained.healthy_label
    correct = 0
    total = 0
    true_positive_alerts = 0
    total_alerts = 0
    detected_episodes = 0
    total_episodes = 0
    for path in sorted(setup.eval_data):
        truth = setup.truth[path]
        predicted = np.asarray(detector.history[path][0], dtype=np.intp)
        n = min(truth.shape[0], predicted.shape[0])
        correct += int((predicted[:n] == truth[:n]).sum())
        total += n
        episodes = _episodes(truth[:n], healthy)
        spans = _alert_spans(events, path, n)
        total_alerts += len(spans)
        total_episodes += len(episodes)
        for a, b in spans:
            if any(a < e_stop and e_start < b for e_start, e_stop in episodes):
                true_positive_alerts += 1
        for e_start, e_stop in episodes:
            if any(a < e_stop and e_start < b for a, b in spans):
                detected_episodes += 1
    accuracy = correct / total if total else 0.0
    precision = (
        true_positive_alerts / total_alerts if total_alerts else 1.0
    )
    recall = detected_episodes / total_episodes if total_episodes else 1.0
    return accuracy, precision, recall


def replay(
    setup: FleetReplaySetup,
    *,
    chunk: int = SERVICE_DEFAULTS["chunk"],
    open_after: int = SERVICE_DEFAULTS["open_after"],
    close_after: int = SERVICE_DEFAULTS["close_after"],
    min_confidence: float = SERVICE_DEFAULTS["min_confidence"],
    top_blocks: int = SERVICE_DEFAULTS["top_blocks"],
    shards: int | None = None,
    sinks: Sequence[AlertSink] = (),
    interval: float = 0.0,
    record_history: bool = True,
    backend: str = "staged",
    mode: str = "exact",
    guard: bool | GuardConfig | None = None,
    chaos: ChaosConfig | None = None,
    checkpoint_path: str | Path | None = None,
    checkpoint_every: int = 0,
    resume: bool = False,
    stop_after: int | None = None,
) -> ReplayOutcome:
    """Feed the held-out period through the detector in ``chunk``-bursts.

    Every burst drives one :meth:`FleetFaultDetector.process_block`
    call; events stream into ``sinks`` as they fire (and are closed at
    the end), so ``repro serve`` and ``repro detect`` share this loop —
    serving passes ``interval`` for live pacing and
    ``record_history=False`` for bounded memory.  In that mode events
    still stream into the sinks but are *not* retained on the returned
    outcome (``events`` stays empty and only counts are kept), and the
    ground-truth scores — which need the prediction history — are
    reported as 0.0.

    ``backend``/``mode`` select the detector's tick path (see
    :class:`FleetFaultDetector`); ``backend="fused"`` with the default
    exact mode replays to byte-identical alert streams.

    Robustness knobs:

    * ``guard`` — ``True`` (or a :class:`~repro.service.guard.
      GuardConfig`) wraps the detector in a
      :class:`~repro.service.guard.GuardedDetector`: malformed bursts
      are quarantined per node instead of crashing the loop, guard
      events join the stream and every alert event carries the node's
      ``health`` state.
    * ``chaos`` — a :class:`~repro.service.chaos.ChaosConfig` perturbs
      each tick's burst (drop/duplicate/reorder/corrupt) through the
      deterministic injector; requires the guard (an unguarded detector
      would crash on the injected faults, which is the point).
    * ``checkpoint_path``/``checkpoint_every`` — snapshot the full
      detector state every N ticks (see :mod:`repro.service.checkpoint`).
      ``resume`` restores the snapshot first and replays only the
      remaining ticks — byte-identical alert JSONL to an uninterrupted
      run, with the checkpointed event prefix re-emitted into the fresh
      sinks.  ``stop_after=k`` breaks out before processing tick ``k``
      (the test harness's simulated crash).
    """
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    if chaos is not None and not guard:
        raise ValueError(
            "chaos injection requires guard=True (an unguarded detector "
            "crashes on injected faults)"
        )
    if (checkpoint_every or resume) and checkpoint_path is None:
        raise ValueError(
            "checkpoint_every/resume require a checkpoint_path"
        )
    if checkpoint_path is not None and not record_history:
        raise ValueError(
            "checkpointing requires record_history=True (the event "
            "prefix is part of the snapshot)"
        )
    detector = FleetFaultDetector(
        setup.trained,
        open_after=open_after,
        close_after=close_after,
        min_confidence=min_confidence,
        top_blocks=top_blocks,
        shards=shards,
        record_history=record_history,
        backend=backend,
        mode=mode,
        max_chunk=chunk,
    )
    guarded: GuardedDetector | None = None
    if guard:
        guarded = GuardedDetector(
            detector,
            config=guard if isinstance(guard, GuardConfig) else None,
        )
    injector = ChaosInjector(chaos) if chaos is not None else None
    fingerprint = (
        fleet_fingerprint(setup.trained)
        if checkpoint_path is not None
        else None
    )
    events: list[dict] = []
    n_open = 0
    n_events = 0
    start_lo = 0
    if resume:
        ckpt = load_checkpoint(checkpoint_path)
        events, start_lo, n_events, n_open = restore_checkpoint(
            ckpt,
            detector,
            fingerprint=fingerprint,
            chunk=chunk,
            guard=guarded,
        )
        for sink in sinks:  # replayed prefix → byte-identical sinks
            for event in events:
                sink.emit(event)
    horizon = max(m.shape[1] for m in setup.eval_data.values())
    interrupted = False
    next_lo = start_lo
    start = time.perf_counter()
    try:
        with _InterruptFlag() as stop_flag:
            for lo in range(start_lo, horizon, chunk):
                ti = lo // chunk
                if stop_after is not None and ti >= stop_after:
                    break
                if stop_flag.triggered:
                    # Ctrl-C lands *between* ticks: the in-flight tick
                    # has fully committed (events emitted, state
                    # consistent), so the flush + final checkpoint
                    # below cannot drop it.
                    interrupted = True
                    break
                burst = {
                    p: m[:, lo : lo + chunk]
                    for p, m in setup.eval_data.items()
                    if lo < m.shape[1]
                }
                deliveries = (
                    injector.deliveries(ti, burst)
                    if injector is not None
                    else ((ti, burst),)
                )
                tick_events: list[dict] = []
                for tick_id, delivered in deliveries:
                    if guarded is not None:
                        tick_events.extend(
                            guarded.process_block(delivered, tick=tick_id)
                        )
                    else:
                        tick_events.extend(detector.process_block(delivered))
                for event in tick_events:
                    n_events += 1
                    n_open += event["event"] == "open"
                    if record_history:
                        events.append(event)
                    for sink in sinks:
                        sink.emit(event)
                if (
                    checkpoint_every
                    and checkpoint_path is not None
                    and (ti + 1) % checkpoint_every == 0
                ):
                    save_checkpoint(
                        checkpoint_path,
                        detector,
                        fingerprint=fingerprint,
                        chunk=chunk,
                        next_lo=lo + chunk,
                        events=events,
                        n_events=n_events,
                        n_alerts=n_open,
                        guard_state=(
                            guarded.state_dict()
                            if guarded is not None
                            else None
                        ),
                    )
                next_lo = lo + chunk
                if interval > 0.0:
                    time.sleep(interval)
            else:
                next_lo = horizon
            if stop_flag.triggered:
                interrupted = True
        replay_time = time.perf_counter() - start
        if interrupted:
            # Flush still-open alerts into the sinks (events list and
            # checkpoint stay flush-free: a later --resume must stitch
            # onto the uninterrupted event sequence), then snapshot so
            # the operator can resume from exactly here.
            for event in flush_open_alerts(
                guarded if guarded is not None else detector
            ):
                for sink in sinks:
                    sink.emit(event)
            if checkpoint_path is not None:
                save_checkpoint(
                    checkpoint_path,
                    detector,
                    fingerprint=fingerprint,
                    chunk=chunk,
                    next_lo=next_lo,
                    events=events,
                    n_events=n_events,
                    n_alerts=n_open,
                    guard_state=(
                        guarded.state_dict() if guarded is not None else None
                    ),
                )
    finally:
        for sink in sinks:
            sink.close()
    if record_history:
        accuracy, precision, recall = score_events(events, setup, detector)
    else:
        accuracy = precision = recall = 0.0
    return ReplayOutcome(
        events=events,
        n_nodes=setup.n_nodes,
        n_windows=sum(
            detector.windows_seen(p) for p in detector.paths
        ),
        n_alerts=n_open,
        n_events=n_events,
        window_accuracy=accuracy,
        alert_precision=precision,
        episode_recall=recall,
        replay_time_s=replay_time,
        health=guarded.fleet_health() if guarded is not None else None,
        chaos_stats=dict(injector.stats) if injector is not None else None,
        interrupted=interrupted,
    )

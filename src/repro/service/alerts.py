"""Alert policies and streaming alert sinks.

The classifier labels every emitted window; raw per-window labels are
too twitchy to page an operator on, so each node's label stream runs
through an :class:`AlertPolicy` — a threshold + hysteresis state
machine:

* *threshold*: an alert **opens** after ``open_after`` consecutive
  faulty windows (a debounce against one-off misclassifications, the
  same idea as :class:`repro.oda.controllers.FaultResponseController`'s
  ``min_consecutive``);
* *hysteresis*: an open alert **closes** only after ``close_after``
  consecutive healthy windows, so a fault flickering around the decision
  boundary yields one alert, not a storm.

Sinks consume the resulting event stream.  The JSONL sink writes one
JSON object per event (the machine format whose byte-identity across
replay processes is test-enforced); the markdown sink renders a summary
table through :func:`repro.experiments.reporting.save_markdown`.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO

__all__ = [
    "ALERTS_SCHEMA",
    "Alert",
    "AlertPolicy",
    "AlertSink",
    "JSONLAlertSink",
    "MarkdownAlertSink",
    "StreamAlertSink",
    "event_line",
    "to_payload",
]

#: Version tag of the alert/ops wire schema.  Every externally visible
#: rendering of an alert event — the JSONL sinks, checkpoint archives
#: and the HTTP ops endpoints — serializes through :func:`to_payload`,
#: whose key order is this schema's contract.
ALERTS_SCHEMA = "repro-alerts/v1"

#: Canonical key order per event type (``repro-alerts/v1``).  The
#: orders match what the producers insert today, so :func:`to_payload`
#: is the identity for events built by this codebase — which is what
#: keeps historical golden fixtures byte-valid — while external
#: consumers get a stable contract independent of producer internals.
_EVENT_KEY_ORDER: dict[str, tuple[str, ...]] = {
    "open": (
        "event", "node", "window", "first_faulty", "label",
        "confidence", "attribution", "health",
    ),
    "close": (
        "event", "node", "window", "opened", "label", "windows",
        "peak_confidence", "health",
    ),
    # Emitted for still-open alerts when a serving loop is interrupted
    # (Ctrl-C): same shape as "close" but the episode did not end.
    "flush": (
        "event", "node", "window", "opened", "label", "windows",
        "peak_confidence", "health",
    ),
    "guard": (
        "event", "node", "tick", "action", "severity", "fault",
        "state", "until",
    ),
}


def to_payload(event: dict) -> dict:
    """Canonical ``repro-alerts/v1`` payload of one alert event.

    Returns a dict whose iteration order follows the schema's per-type
    key order (unknown keys keep their insertion order, after the known
    ones).  All wire renderings — JSONL sinks, checkpoint event arrays,
    HTTP ops responses — serialize this payload, so the byte stream is
    a pure function of the event values regardless of how a producer
    happened to build the dict.
    """
    order = _EVENT_KEY_ORDER.get(event.get("event"), ())
    payload = {k: event[k] for k in order if k in event}
    if len(payload) != len(event):
        for k, v in event.items():
            if k not in payload:
                payload[k] = v
    return payload


@dataclass
class Alert:
    """One contiguous alert episode of one node's label stream.

    ``label`` is the predicted class of the window that *opened* the
    alert; ``label_counts`` tallies every faulty class of the episode —
    including the triggering streak's earlier windows — so a fault that
    is re-classified mid-episode is still one alert, with its class mix
    recorded, and ``peak_confidence`` covers the same span as
    ``n_windows``.  Windows count from the start of the replayed /
    served period; ``first_faulty`` is ``opened - open_after + 1``, the
    window the triggering streak began at.
    """

    opened: int
    first_faulty: int
    label: int
    peak_confidence: float
    n_windows: int = 0
    closed: int | None = None
    label_counts: dict[int, int] = field(default_factory=dict)

    @property
    def is_open(self) -> bool:
        return self.closed is None

    def dominant_label(self) -> int:
        """Most frequent faulty class while open (ties: smallest id)."""
        if not self.label_counts:
            return self.label
        best = max(self.label_counts.values())
        return min(k for k, v in self.label_counts.items() if v == best)


class AlertPolicy:
    """Threshold + hysteresis alerting over one node's window labels.

    Parameters
    ----------
    healthy_label:
        Class value meaning "no fault".
    open_after:
        Consecutive faulty windows required to open an alert.
    close_after:
        Consecutive healthy windows required to close an open alert.
    min_confidence:
        Faulty predictions below this confidence are treated as healthy
        (low-certainty flickers neither open nor sustain alerts).
    keep_history:
        When false, closed alerts are not retained on :attr:`history` —
        long-running serving loops stay bounded in memory.
    """

    def __init__(
        self,
        *,
        healthy_label: int = 0,
        open_after: int = 2,
        close_after: int = 2,
        min_confidence: float = 0.0,
        keep_history: bool = True,
    ):
        if open_after < 1 or close_after < 1:
            raise ValueError("open_after and close_after must be >= 1")
        if not 0.0 <= min_confidence <= 1.0:
            raise ValueError("min_confidence must be in [0, 1]")
        self.healthy_label = int(healthy_label)
        self.open_after = int(open_after)
        self.close_after = int(close_after)
        self.min_confidence = float(min_confidence)
        self.keep_history = bool(keep_history)
        self.alert: Alert | None = None
        self.history: list[Alert] = []
        # (label, confidence) of the pre-open faulty streak, so an
        # opening alert credits the *whole* streak, not just the window
        # that tipped it over the threshold.
        self._streak: list[tuple[int, float]] = []
        self._healthy_streak = 0

    def skip_healthy(self, k: int) -> None:
        """Fast-forward ``k`` consecutive healthy windows, no alert open.

        State-identical to ``k`` :meth:`update` calls whose windows are
        all healthy while :attr:`alert` is ``None`` (each such call only
        bumps the healthy streak and clears the faulty one, and can
        neither open nor close anything).  The batched tick path uses
        this to skip per-window Python on quiet nodes.
        """
        if self.alert is not None:
            raise ValueError("skip_healthy requires no open alert")
        if k > 0:
            self._healthy_streak += k
            self._streak.clear()

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the hysteresis state.

        Captures everything :meth:`update` reads — the open alert, the
        pre-open faulty streak and the healthy streak — so a policy
        restored from this snapshot continues the event sequence exactly
        (floats survive the JSON round trip bit-exactly via ``repr``).
        """
        alert = None
        if self.alert is not None:
            a = self.alert
            alert = {
                "opened": a.opened,
                "first_faulty": a.first_faulty,
                "label": a.label,
                "peak_confidence": a.peak_confidence,
                "n_windows": a.n_windows,
                "closed": a.closed,
                "label_counts": {
                    str(k): v for k, v in a.label_counts.items()
                },
            }
        return {
            "alert": alert,
            "streak": [[label, conf] for label, conf in self._streak],
            "healthy_streak": self._healthy_streak,
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (JSON-round-tripped ok).

        A restored open alert is re-appended to :attr:`history` when
        history is kept, mirroring where the original run put it.
        """
        stored = state["alert"]
        if stored is None:
            self.alert = None
        else:
            self.alert = Alert(
                opened=int(stored["opened"]),
                first_faulty=int(stored["first_faulty"]),
                label=int(stored["label"]),
                peak_confidence=float(stored["peak_confidence"]),
                n_windows=int(stored["n_windows"]),
                closed=stored["closed"],
                label_counts={
                    int(k): int(v)
                    for k, v in stored["label_counts"].items()
                },
            )
            if self.keep_history:
                self.history.append(self.alert)
        self._streak = [
            (int(label), float(conf)) for label, conf in state["streak"]
        ]
        self._healthy_streak = int(state["healthy_streak"])

    def update(
        self, window: int, label: int, confidence: float
    ) -> list[tuple[str, Alert]]:
        """Advance one window; return ``("open"|"close", alert)`` events."""
        label = int(label)
        confidence = float(confidence)
        faulty = (
            label != self.healthy_label and confidence >= self.min_confidence
        )
        events: list[tuple[str, Alert]] = []
        if faulty:
            self._healthy_streak = 0
            if self.alert is None:
                self._streak.append((label, confidence))
                if len(self._streak) >= self.open_after:
                    counts: dict[int, int] = {}
                    for streak_label, _ in self._streak:
                        counts[streak_label] = counts.get(streak_label, 0) + 1
                    self.alert = Alert(
                        opened=window,
                        first_faulty=window - self.open_after + 1,
                        label=label,
                        peak_confidence=max(c for _, c in self._streak),
                        n_windows=len(self._streak),
                        label_counts=counts,
                    )
                    self._streak = []
                    if self.keep_history:
                        self.history.append(self.alert)
                    events.append(("open", self.alert))
            else:
                a = self.alert
                a.n_windows += 1
                a.peak_confidence = max(a.peak_confidence, confidence)
                a.label_counts[label] = a.label_counts.get(label, 0) + 1
        else:
            self._healthy_streak += 1
            self._streak = []
            if (
                self.alert is not None
                and self._healthy_streak >= self.close_after
            ):
                self.alert.closed = window
                events.append(("close", self.alert))
                self.alert = None
        return events


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
def event_line(event: dict) -> str:
    """Canonical one-line JSON rendering of an alert event.

    ``repro-alerts/v1``: compact separators, :func:`to_payload` key
    order, full float ``repr`` — the exact bytes are a pure function of
    the event values, which is what the byte-identical-replay guarantee
    rests on.
    """
    return json.dumps(to_payload(event), separators=(",", ":"))


class AlertSink:
    """Consumes alert events one at a time; ``close()`` flushes."""

    def emit(self, event: dict) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Finalize the sink (default: nothing to flush)."""


class JSONLAlertSink(AlertSink):
    """Write one JSON line per event to a file (the replay format).

    The file is created (truncating any previous run's output) as soon
    as the sink is constructed — an alert-free replay must leave an
    *empty* file behind, not a stale one, or the byte-identical-replay
    contract silently breaks.

    A write failure (disk full, revoked mount, ...) must not crash the
    tick loop that produced the event: the sink retries the line once
    through a fresh append-mode handle, and if that also fails it
    *degrades* — every further event streams to stderr behind an
    explicit data-loss warning, and the detector keeps running.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: IO[str] | None = self.path.open("w", encoding="utf-8")
        self._closed = False
        self._degraded = False

    def emit(self, event: dict) -> None:
        if self._closed:
            raise ValueError(f"alert sink for {self.path} is closed")
        line = event_line(event) + "\n"
        if self._degraded:
            sys.stderr.write(line)
            return
        try:
            self._fh.write(line)
        except OSError:
            self._retry_or_degrade(line)

    def _retry_or_degrade(self, line: str) -> None:
        """One reopen-and-rewrite attempt, then permanent stderr fallback."""
        try:
            self._fh.close()
        except OSError:
            pass
        self._fh = None
        try:
            self._fh = self.path.open("a", encoding="utf-8")
            self._fh.write(line)
        except OSError as exc:
            self._degraded = True
            if self._fh is not None:
                try:
                    self._fh.close()
                except OSError:
                    pass
                self._fh = None
            sys.stderr.write(
                f"[alerts] WARNING: sink {self.path} failed twice "
                f"({exc}); alert persistence degraded — further events "
                "stream to stderr and are NOT written to disk\n"
            )
            sys.stderr.write(line)

    def close(self) -> None:
        self._closed = True
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError as exc:
                sys.stderr.write(
                    f"[alerts] WARNING: closing sink {self.path} failed "
                    f"({exc}); trailing buffered events may be lost\n"
                )
            self._fh = None


class StreamAlertSink(AlertSink):
    """Write events to an open text stream, flushing each line.

    ``repro serve`` uses this on stdout so an operator (or a pipe) sees
    alerts the moment they fire.
    """

    def __init__(self, stream: IO[str]):
        self.stream = stream

    def emit(self, event: dict) -> None:
        self.stream.write(event_line(event) + "\n")
        self.stream.flush()


class MarkdownAlertSink(AlertSink):
    """Render the collected events as a markdown summary table on close."""

    HEADERS = (
        "Node",
        "Event",
        "Window",
        "Label",
        "Confidence",
        "Top sensors",
    )

    def __init__(self, path: str | Path, *, title: str = "Alert stream"):
        self.path = Path(path)
        self.title = title
        self._rows: list[tuple] = []

    def emit(self, event: dict) -> None:
        sensors = ", ".join(
            s
            for finding in event.get("attribution", ())
            for s in finding.get("sensors", ())
        )
        self._rows.append(
            (
                event.get("node", ""),
                event.get("event", ""),
                event.get("window", ""),
                event.get("label", ""),
                event.get("confidence", event.get("peak_confidence", "")),
                sensors,
            )
        )

    def close(self) -> None:
        from repro.experiments.reporting import format_table, save_markdown

        try:
            save_markdown(
                self.path, self.HEADERS, self._rows, title=self.title
            )
            return
        except OSError:
            pass
        try:  # buffer-and-retry once — the rows are still in memory
            save_markdown(
                self.path, self.HEADERS, self._rows, title=self.title
            )
        except OSError as exc:
            sys.stderr.write(
                f"[alerts] WARNING: markdown sink {self.path} failed "
                f"twice ({exc}); summary NOT written to disk — "
                "rendering to stderr instead\n"
            )
            sys.stderr.write(
                format_table(self.HEADERS, self._rows, title=self.title)
                + "\n"
            )

"""The ``repro-ticks/v1`` ingestion wire protocol.

One *frame* carries one node's burst for one tick.  Two encodings share
a stream (auto-detected per frame by the first byte):

* **newline-JSON** — one object per line::

      {"node": "rack0/node00", "tick": 7, "values": [[...], ...]}

  ``values`` is the ``(n_sensors, m)`` burst as nested lists.  A line
  whose object carries ``"op"`` instead is a control frame; the only
  defined op is ``{"op": "eof"}`` (the sender is done).

* **binary** — compact length-prefixed frames for load-generator /
  agent traffic::

      MAGIC(4) | body_len u32 | body

  with ``body`` = ``version u8 | path_len u16 | tick u64 |
  n_sensors u16 | m u32 | crc u32 | path utf-8 | values
  float64[n*m]`` (all little-endian, values C-order).  ``crc`` is
  version 2's payload checksum, ``crc32(path, crc32(values))`` —
  values first so a load generator can cache one burst's checksum and
  re-stamp only the cheap path prefix per node.  A checksum mismatch
  is transport corruption, **not** a node fault: the decoder reports
  it without a node attribution so the server drops (and counts) the
  frame instead of poisoning whatever path the damaged bytes happen
  to spell, and the sender's ack-driven retransmit re-delivers it.
  Version 1 frames (no ``crc`` field) still decode.  ``MAGIC``'s
  first byte can never start a JSON line, which is what makes
  per-frame autodetection safe.

:class:`FrameDecoder` is an incremental parser over arbitrary byte
chunks: it yields decoded :class:`Frame`\\ s plus typed
:class:`FrameError`\\ s for garbage, truncated or malformed input — and
*resynchronizes* after garbage instead of dying, so one corrupt sender
cannot take the ingestion loop down.  Errors that can be attributed to
a node keep its path, which lets the server route the fault into the
guard's quarantine machinery as a poison block.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = [
    "MAGIC",
    "PROTOCOL",
    "Frame",
    "FrameDecoder",
    "FrameError",
    "encode_ack",
    "encode_acks_subscribe",
    "encode_binary",
    "encode_eof",
    "encode_json",
]

PROTOCOL = "repro-ticks/v1"

#: Binary frame magic.  0x93 cannot begin UTF-8 JSON text, so the
#: decoder distinguishes the two encodings from one byte.
MAGIC = b"\x93RT1"

_HEADER = struct.Struct("<BHQHI")  # v1: version, path_len, tick, n, m
_HEADER2 = struct.Struct("<BHQHII")  # v2: ... + crc32
_VERSION = 2

#: Upper bound on one frame body / JSON line; anything larger is
#: treated as garbage (a desynchronized or malicious length prefix must
#: not make the decoder buffer gigabytes).
MAX_FRAME_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class Frame:
    """One decoded tick frame (``control`` set for ``{"op": ...}``)."""

    node: str
    tick: int
    #: ``(n_sensors, m)`` float64 array for binary frames; the raw JSON
    #: ``values`` payload (nested lists, or anything else the sender
    #: put there) for JSON frames — the guard boundary conforms it.
    values: Any
    control: str | None = None


@dataclass(frozen=True)
class FrameError:
    """One undecodable stretch of input, with the best-known context."""

    #: "garbage" | "bad-json" | "bad-frame" | "bad-crc" | "truncated"
    reason: str
    detail: str = ""
    #: The node path when the broken frame still named one (lets the
    #: server poison that node's queue so the guard quarantines it).
    node: str | None = None


def encode_json(node: str, tick: int, values) -> bytes:
    """One newline-JSON frame (values via ``tolist()`` for arrays)."""
    if isinstance(values, np.ndarray):
        values = values.tolist()
    return (
        json.dumps(
            {"node": node, "tick": int(tick), "values": values},
            separators=(",", ":"),
        )
        + "\n"
    ).encode("utf-8")


def encode_eof() -> bytes:
    """The end-of-stream control frame."""
    return b'{"op":"eof"}\n'


def encode_acks_subscribe() -> bytes:
    """Control frame a client sends to opt into per-tick acks."""
    return b'{"op":"acks"}\n'


def encode_ack(tick: int) -> bytes:
    """Per-tick ack the server sends to subscribed connections."""
    return (
        json.dumps(
            {"op": "ack", "tick": int(tick)}, separators=(",", ":")
        )
        + "\n"
    ).encode("utf-8")


def encode_binary(node: str, tick: int, values) -> bytes:
    """One binary (version 2, checksummed) frame for a burst."""
    B = np.ascontiguousarray(values, dtype="<f8")
    if B.ndim != 2:
        raise ValueError(
            f"binary frames carry (n_sensors, m) bursts, got shape {B.shape}"
        )
    path = node.encode("utf-8")
    payload = B.tobytes()
    crc = zlib.crc32(path, zlib.crc32(payload))
    header = _HEADER2.pack(
        _VERSION, len(path), int(tick), B.shape[0], B.shape[1], crc
    )
    body = header + path + payload
    return MAGIC + struct.pack("<I", len(body)) + body


def _decode_body(body: bytes) -> Frame | FrameError:
    if len(body) < _HEADER.size:
        return FrameError("bad-frame", detail="short header")
    version = body[0]
    if version == 1:
        header, crc = _HEADER, None
        _, path_len, tick, n, m = _HEADER.unpack_from(body)
    elif version == _VERSION:
        if len(body) < _HEADER2.size:
            return FrameError("bad-frame", detail="short header")
        header = _HEADER2
        _, path_len, tick, n, m, crc = _HEADER2.unpack_from(body)
    else:
        return FrameError("bad-frame", detail=f"unknown version {version}")
    expected = header.size + path_len + 8 * n * m
    if len(body) != expected:
        return FrameError(
            "bad-frame",
            detail=f"body is {len(body)} bytes, header implies {expected}",
        )
    raw_path = body[header.size : header.size + path_len]
    if crc is not None:
        actual = zlib.crc32(
            raw_path, zlib.crc32(body[header.size + path_len :])
        )
        if actual != crc:
            # Transport corruption: the path bytes themselves are
            # untrustworthy, so no node attribution — the server must
            # drop this frame, not poison whatever the bytes spell.
            return FrameError(
                "bad-crc",
                detail=f"checksum {actual:#010x} != header {crc:#010x}",
            )
    try:
        path = raw_path.decode("utf-8")
    except UnicodeDecodeError:
        return FrameError("bad-frame", detail="undecodable path")
    values = np.frombuffer(
        body, dtype="<f8", count=n * m, offset=header.size + path_len
    ).reshape(n, m)
    return Frame(node=path, tick=int(tick), values=values)


def _decode_line(line: bytes) -> Frame | FrameError:
    try:
        obj = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        return FrameError("bad-json", detail=str(exc))
    if not isinstance(obj, dict):
        return FrameError("bad-json", detail="frame is not an object")
    if "op" in obj:
        # Control frames keep a tick when they carry one (acks do);
        # -1 otherwise, preserving the historical sentinel.
        try:
            tick = int(obj.get("tick", -1))
        except (TypeError, ValueError):
            tick = -1
        return Frame(
            node="", tick=tick, values=None, control=str(obj["op"])
        )
    node = obj.get("node")
    if not isinstance(node, str) or not node:
        return FrameError("bad-json", detail="missing node path")
    try:
        tick = int(obj["tick"])
    except (KeyError, TypeError, ValueError):
        return FrameError("bad-json", detail="missing tick", node=node)
    # values stay raw: the guard boundary conforms (or rejects) them,
    # so a malformed payload degrades the node instead of the decoder.
    return Frame(node=node, tick=tick, values=obj.get("values"))


class FrameDecoder:
    """Incremental ``repro-ticks/v1`` decoder with garbage resync."""

    def __init__(self):
        self._buf = bytearray()

    @property
    def pending(self) -> int:
        """Bytes buffered but not yet decodable."""
        return len(self._buf)

    def feed(self, data: bytes) -> tuple[list[Frame], list[FrameError]]:
        """Consume one chunk; return every frame/error it completed."""
        self._buf.extend(data)
        frames: list[Frame] = []
        errors: list[FrameError] = []
        buf = self._buf
        while buf:
            first = buf[0]
            if first == MAGIC[0]:
                if len(buf) < len(MAGIC) + 4:
                    break  # incomplete prefix
                if bytes(buf[: len(MAGIC)]) != MAGIC:
                    self._resync(errors)
                    continue
                (body_len,) = struct.unpack_from("<I", buf, len(MAGIC))
                if body_len > MAX_FRAME_BYTES:
                    errors.append(
                        FrameError(
                            "garbage",
                            detail=f"frame length {body_len} exceeds cap",
                        )
                    )
                    del buf[: len(MAGIC)]  # skip the magic, resync after
                    continue
                total = len(MAGIC) + 4 + body_len
                if len(buf) < total:
                    break  # incomplete frame
                result = _decode_body(bytes(buf[len(MAGIC) + 4 : total]))
                del buf[:total]
            elif first == 0x7B:  # "{"
                nl = buf.find(b"\n")
                if nl < 0:
                    if len(buf) > MAX_FRAME_BYTES:
                        errors.append(
                            FrameError("garbage", detail="unterminated line")
                        )
                        buf.clear()
                    break
                result = _decode_line(bytes(buf[:nl]))
                del buf[: nl + 1]
            else:
                self._resync(errors)
                continue
            if isinstance(result, Frame):
                frames.append(result)
            else:
                errors.append(result)
        return frames, errors

    def _resync(self, errors: list[FrameError]) -> None:
        """Skip garbage up to the next plausible frame start."""
        buf = self._buf
        candidates = [
            i
            for i in (buf.find(MAGIC, 1), buf.find(b"{", 1))
            if i > 0
        ]
        nl = buf.find(b"\n", 1)
        if nl >= 0:
            candidates.append(nl + 1)
        skip = min(candidates) if candidates else len(buf)
        errors.append(
            FrameError("garbage", detail=f"skipped {skip} bytes")
        )
        del buf[:skip]

    def eof(self) -> list[FrameError]:
        """Flush at end of stream; leftover bytes are a truncated frame."""
        if not self._buf:
            return []
        detail = f"{len(self._buf)} bytes after last complete frame"
        self._buf.clear()
        return [FrameError("truncated", detail=detail)]

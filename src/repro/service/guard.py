"""Typed input-hardening boundary in front of the fleet detector.

``FleetFaultDetector.process_block`` trusts its input completely: an
unknown node path raises ``KeyError``, a mis-shaped burst raises
``ValueError``, and a NaN/Inf plane silently poisons the node's running
prefix sums forever.  Any real transport (the ROADMAP's socket agent)
will deliver all of those — so :class:`GuardedDetector` classifies every
burst *before* the detector sees it and maps each fault class to a
degradation policy instead of a crash:

=================  =====================================================
fault class        policy
=================  =====================================================
``unknown-node``   reject the block; count the stray path (never crash)
``duplicate-tick`` coalesce — drop the re-delivery, keep the original;
                   no health penalty (retries are normal transport
                   behavior)
``stale-tick``     reject a block older than the node's last applied
                   tick (late / out-of-order delivery)
``shape-mismatch`` reject a block whose shape/dtype cannot be conformed
                   to the node's ``(n_sensors, m)`` float layout
``corrupt-values`` reject a block containing NaN/Inf planes
=================  =====================================================

Rejections feed a per-node health state machine — ``healthy`` →
``degraded`` (first faults) → ``quarantined`` (persistent faults), with
exponential backoff: while quarantined the node's blocks are dropped
without validation cost until the backoff expires, then the node is
re-admitted on probation and recovers to ``healthy`` after
``recover_after`` clean bursts.  Clean blocks pass straight through to
the wrapped detector, whose alert events gain a ``health`` field;
:meth:`GuardedDetector.fleet_health` is the ``memory_report()``-style
payload with per-node and per-shard (worst-node) states.

The guard's steady-state cost is a dict lookup and one ``sum()``
reduction per block (NaN/Inf propagate to the sum, so a single
``math.isfinite`` classifies the whole plane) — measured at <5% of the
64-node tick in ``benchmarks/test_service_scaling.py`` and recorded in
``BENCH_service.json``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.service.alerts import Alert, AlertPolicy
from repro.service.detector import FleetFaultDetector
from repro.service.ingest import shard_of

__all__ = [
    "FAULT_CLASSES",
    "HEALTH_STATES",
    "GuardConfig",
    "GuardedDetector",
    "NodeHealth",
]

#: Every fault class the guard can attach to a rejected/coalesced block.
FAULT_CLASSES = (
    "corrupt-values",
    "duplicate-tick",
    "shape-mismatch",
    "stale-tick",
    "unknown-node",
)

#: Node health states, ordered from best to worst.
HEALTH_STATES = ("healthy", "degraded", "quarantined")
_HEALTHY, _DEGRADED, _QUARANTINED = HEALTH_STATES
_STATE_RANK = {s: i for i, s in enumerate(HEALTH_STATES)}

#: Guard event severities per action (the severity-classified alerting
#: shape: info = bookkeeping, warning = data lost, critical = a node
#: was taken out of rotation).
_SEVERITY = {
    "coalesce": "info",
    "probation": "info",
    "recover": "info",
    "reject": "warning",
    "quarantine": "critical",
}


@dataclass(frozen=True)
class GuardConfig:
    """Degradation-policy knobs of the validation boundary.

    Parameters
    ----------
    degrade_after:
        Consecutive faulty blocks before a healthy node turns
        ``degraded``.
    quarantine_after:
        Consecutive faulty blocks before a node is quarantined.
    backoff_ticks:
        Initial quarantine length, in ticks.  Each re-quarantine doubles
        it (``backoff_factor``) up to ``max_backoff_ticks``.
    backoff_factor:
        Multiplier applied to the backoff on every re-quarantine.
    max_backoff_ticks:
        Upper bound of the exponential backoff.
    recover_after:
        Consecutive clean blocks before a degraded node is ``healthy``
        again (also the probation length after quarantine expiry).
    """

    degrade_after: int = 1
    quarantine_after: int = 3
    backoff_ticks: int = 8
    backoff_factor: int = 2
    max_backoff_ticks: int = 128
    recover_after: int = 2

    def __post_init__(self):
        if self.degrade_after < 1 or self.quarantine_after < 1:
            raise ValueError(
                "degrade_after and quarantine_after must be >= 1"
            )
        if self.quarantine_after < self.degrade_after:
            raise ValueError(
                "quarantine_after must be >= degrade_after"
            )
        if self.backoff_ticks < 1 or self.max_backoff_ticks < 1:
            raise ValueError("backoff windows must be >= 1 tick")
        if self.backoff_factor < 1:
            raise ValueError("backoff_factor must be >= 1")
        if self.recover_after < 1:
            raise ValueError("recover_after must be >= 1")


class NodeHealth:
    """Mutable per-node health record of the guard's state machine."""

    __slots__ = (
        "state",
        "fault_streak",
        "clean_streak",
        "backoff",
        "quarantined_until",
        "last_tick",
        "dropped_blocks",
        "fault_counts",
    )

    def __init__(self):
        self.state = _HEALTHY
        self.fault_streak = 0
        self.clean_streak = 0
        self.backoff = 0
        self.quarantined_until = -1
        #: Newest tick whose block was applied (-1: nothing applied yet).
        self.last_tick = -1
        self.dropped_blocks = 0
        self.fault_counts: dict[str, int] = {}

    def to_dict(self) -> dict:
        """JSON-serializable snapshot (fleet-health payload + checkpoint)."""
        return {
            "state": self.state,
            "fault_streak": self.fault_streak,
            "clean_streak": self.clean_streak,
            "backoff": self.backoff,
            "quarantined_until": self.quarantined_until,
            "last_tick": self.last_tick,
            "dropped_blocks": self.dropped_blocks,
            "fault_counts": dict(sorted(self.fault_counts.items())),
        }

    def load(self, state: dict) -> None:
        if state["state"] not in HEALTH_STATES:
            raise ValueError(f"unknown health state {state['state']!r}")
        self.state = state["state"]
        self.fault_streak = int(state["fault_streak"])
        self.clean_streak = int(state["clean_streak"])
        self.backoff = int(state["backoff"])
        self.quarantined_until = int(state["quarantined_until"])
        self.last_tick = int(state["last_tick"])
        self.dropped_blocks = int(state["dropped_blocks"])
        self.fault_counts = {
            str(k): int(v) for k, v in state["fault_counts"].items()
        }


class GuardedDetector:
    """Validation + quarantine boundary around a :class:`FleetFaultDetector`.

    Drop-in for the detector in every tick loop: ``process_block``
    accepts the same burst mapping (plus an optional explicit ``tick``
    index), forwards only validated blocks, and returns the inner
    detector's alert events — each stamped with the node's current
    ``health`` state — interleaved after the tick's guard events.

    Parameters
    ----------
    detector:
        The wrapped :class:`FleetFaultDetector`.
    config:
        Degradation-policy knobs; defaults to :class:`GuardConfig()`.
    shards:
        Shard count of the fleet-health payload's per-shard rollup
        (defaults to the staged ingest's shard count, else 1).
    """

    def __init__(
        self,
        detector: FleetFaultDetector,
        *,
        config: GuardConfig | None = None,
        shards: int | None = None,
    ):
        self.inner = detector
        self.config = config or GuardConfig()
        if shards is None:
            shards = (
                detector.ingest.shards
                if detector.ingest is not None
                else 1
            )
        self.shards = int(shards)
        self._health: dict[str, NodeHealth] = {
            p: NodeHealth() for p in detector.paths
        }
        self._n_sensors = {p: detector.n_sensors(p) for p in detector.paths}
        self._unknown: dict[str, int] = {}
        #: Next tick index when :meth:`process_block` is called without
        #: an explicit one (replay always passes the tick).
        self.tick = 0

    # -- delegation ----------------------------------------------------
    @property
    def paths(self) -> list[str]:
        return self.inner.paths

    @property
    def history(self) -> dict:
        return self.inner.history

    def policy(self, path: str) -> AlertPolicy:
        return self.inner.policy(path)

    def windows_seen(self, path: str) -> int:
        return self.inner.windows_seen(path)

    def open_alerts(self) -> dict[str, Alert]:
        return self.inner.open_alerts()

    def health(self, path: str) -> NodeHealth:
        """The live health record of one registered node."""
        return self._health[path]

    # -- checkpoint plumbing -------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable guard state for the checkpoint layer."""
        return {
            "tick": self.tick,
            "nodes": {p: h.to_dict() for p, h in sorted(self._health.items())},
            "unknown": dict(sorted(self._unknown.items())),
        }

    def load_state(self, state: dict) -> None:
        self.tick = int(state["tick"])
        for p, stored in state["nodes"].items():
            if p not in self._health:
                raise KeyError(f"guard state names unregistered node {p!r}")
            self._health[p].load(stored)
        self._unknown = {
            str(k): int(v) for k, v in state["unknown"].items()
        }

    # -- the boundary --------------------------------------------------
    def _event(
        self, path: str, tick: int, fault: str | None, action: str, **extra
    ) -> dict:
        event = {
            "event": "guard",
            "node": path,
            "tick": tick,
            "action": action,
            "severity": _SEVERITY[action],
        }
        if fault is not None:
            event["fault"] = fault
        health = self._health.get(path)
        event["state"] = health.state if health is not None else "unknown"
        event.update(extra)
        return event

    def _validate(self, path: str, block) -> tuple[str | None, np.ndarray]:
        """Classify one block's payload; return ``(fault, conformed)``."""
        try:
            B = np.asarray(block, dtype=np.float64)
        except (TypeError, ValueError):
            return "shape-mismatch", None
        if B.ndim != 2 or B.shape[0] != self._n_sensors[path]:
            return "shape-mismatch", None
        # NaN/Inf propagate through the sum, so one scalar isfinite
        # classifies the whole plane — no (n, m) isfinite temporary on
        # the hot path.  Reducing a poisoned plane legitimately hits
        # invalid/overflow; that's the signal, not a warning — the
        # caller (``process_block``) holds one errstate around the whole
        # tick so the suppression isn't paid per block.
        if B.size and not math.isfinite(float(B.sum())):
            return "corrupt-values", None
        return None, B

    def _record_fault(
        self, path: str, tick: int, fault: str, events: list[dict]
    ) -> None:
        """Apply the degradation policy to one rejected block."""
        cfg = self.config
        h = self._health[path]
        h.fault_counts[fault] = h.fault_counts.get(fault, 0) + 1
        h.dropped_blocks += 1
        h.fault_streak += 1
        h.clean_streak = 0
        if h.fault_streak >= cfg.quarantine_after:
            h.backoff = (
                min(h.backoff * cfg.backoff_factor, cfg.max_backoff_ticks)
                if h.backoff
                else cfg.backoff_ticks
            )
            h.quarantined_until = tick + 1 + h.backoff
            h.state = _QUARANTINED
            h.fault_streak = 0
            events.append(
                self._event(
                    path, tick, fault, "quarantine",
                    until=h.quarantined_until,
                )
            )
        else:
            if h.state == _HEALTHY and h.fault_streak >= cfg.degrade_after:
                h.state = _DEGRADED
            events.append(self._event(path, tick, fault, "reject"))

    def _admit(
        self,
        path: str,
        block,
        tick: int,
        clean: dict[str, np.ndarray],
        events: list[dict],
    ) -> None:
        """Validate one node's block; stage it in ``clean`` if it passes."""
        h = self._health.get(path)
        if h is None:
            self._unknown[path] = self._unknown.get(path, 0) + 1
            events.append(self._event(path, tick, "unknown-node", "reject"))
            return
        if h.state == _QUARANTINED:
            if tick < h.quarantined_until:
                h.dropped_blocks += 1  # silent drop: backoff still active
                return
            h.state = _DEGRADED  # probation: validate again, recover later
            events.append(self._event(path, tick, None, "probation"))
        if tick <= h.last_tick:
            if tick == h.last_tick:
                h.fault_counts["duplicate-tick"] = (
                    h.fault_counts.get("duplicate-tick", 0) + 1
                )
                events.append(
                    self._event(path, tick, "duplicate-tick", "coalesce")
                )
            else:
                self._record_fault(path, tick, "stale-tick", events)
            return
        fault, B = self._validate(path, block)
        if fault is not None:
            h.last_tick = tick  # the delivery happened; its payload didn't
            self._record_fault(path, tick, fault, events)
            return
        h.last_tick = tick
        clean[path] = B
        h.fault_streak = 0
        h.clean_streak += 1
        if h.state != _HEALTHY and h.clean_streak >= self.config.recover_after:
            h.state = _HEALTHY
            h.backoff = 0
            events.append(self._event(path, tick, None, "recover"))

    def process_block(
        self, data: Mapping[str, np.ndarray], tick: int | None = None
    ) -> list[dict]:
        """Validate one burst per node, forward the clean ones, alert.

        Guard events (sorted node order) come first, then the inner
        detector's alert events for the surviving blocks, each stamped
        with the node's post-validation ``health`` state.  Never raises
        on bad input — every fault class maps to its documented policy.
        """
        if tick is None:
            tick = self.tick
        events: list[dict] = []
        clean: dict[str, np.ndarray] = {}
        # One errstate for the whole tick: validation sums over poisoned
        # planes raise invalid/overflow FP flags by design.
        with np.errstate(invalid="ignore", over="ignore"):
            for path in sorted(data):
                self._admit(path, data[path], tick, clean, events)
        if clean:
            for event in self.inner.process_block(clean):
                event["health"] = self._health[event["node"]].state
                events.append(event)
        self.tick = tick + 1
        return events

    # -- reporting -----------------------------------------------------
    def fleet_health(self) -> dict:
        """``memory_report()``-style fleet-health payload.

        Per-node health records, a per-shard rollup (each shard reports
        its *worst* node's state — the signal an operator routes on),
        fleet-wide state tallies and the stray paths seen so far.
        """
        states = {s: 0 for s in HEALTH_STATES}
        shard_states: dict[int, str] = {
            s: _HEALTHY for s in range(self.shards)
        }
        for p, h in self._health.items():
            states[h.state] += 1
            shard = shard_of(p, self.shards)
            if _STATE_RANK[h.state] > _STATE_RANK[shard_states[shard]]:
                shard_states[shard] = h.state
        return {
            "tick": self.tick,
            "nodes": {
                p: h.to_dict() for p, h in sorted(self._health.items())
            },
            "states": states,
            "shards": {str(s): shard_states[s] for s in sorted(shard_states)},
            "unknown_nodes": dict(sorted(self._unknown.items())),
        }

"""Deterministic seeded fault injection for replay drivers.

The guard (:mod:`repro.service.guard`) and checkpoint
(:mod:`repro.service.checkpoint`) layers claim the service survives a
hostile transport.  :class:`ChaosInjector` makes that claim testable —
and *reproducible*: it wraps any replay driver and perturbs each tick's
burst with the classic transport fault classes, each drawn from an RNG
keyed on ``(seed, tick, crc32(node path))`` alone.  No injector state
carries across ticks, so a killed-and-resumed replay regenerates the
exact same fault schedule — which is what lets the chaos tests assert
byte-identical alert streams across kill/restore cycles.

Fault classes and how the guard classifies them:

* **drop** — the node's block never arrives (no guard event; the
  detector simply sees a ragged tick);
* **duplicate** — the block is delivered twice with the same tick id
  (guard: ``duplicate-tick`` → coalesce);
* **reorder** — the block arrives stamped with an old tick id, i.e. a
  late/out-of-order delivery (guard: ``stale-tick`` → reject);
* **corrupt** — a fraction of the block's entries are overwritten with
  NaN/±Inf (guard: ``corrupt-values`` → reject, quarantine on streaks).

:func:`run_with_kills` composes the injector with checkpointing into
the full crash drill: replay, kill at given ticks, restore from the
latest checkpoint, repeat — returning the final (complete) outcome.

This module perturbs *blocks* handed to an in-process replay driver.
Its network twin, :mod:`repro.service.netchaos`, applies the same
stateless-RNG discipline one layer down — to the raw TCP byte stream
between a load generator and ``repro serve --listen`` — keyed on
``(seed, connection, byte offset)`` instead of ``(seed, tick, node)``.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping, Sequence

import numpy as np

__all__ = ["ChaosConfig", "ChaosInjector", "run_with_kills"]


@dataclass(frozen=True)
class ChaosConfig:
    """Fault mix of a chaos run.

    ``drop``/``duplicate``/``reorder``/``corrupt`` are mutually
    exclusive per (tick, node) — one uniform draw selects at most one of
    them — so their sum must stay ≤ 1; the remainder is delivered clean.
    ``corrupt_fraction`` is the fraction of a corrupted block's entries
    overwritten with non-finite values.  ``start_tick`` delays injection
    (e.g. to let the fleet emit its first windows unmolested).
    """

    seed: int = 0
    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    corrupt: float = 0.0
    corrupt_fraction: float = 0.02
    start_tick: int = 0

    def __post_init__(self):
        for name in ("drop", "duplicate", "reorder", "corrupt"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        total = self.drop + self.duplicate + self.reorder + self.corrupt
        if total > 1.0:
            raise ValueError(
                f"fault fractions sum to {total} > 1 (they are "
                "mutually exclusive per tick and node)"
            )
        if not 0.0 < self.corrupt_fraction <= 1.0:
            raise ValueError("corrupt_fraction must be in (0, 1]")
        if self.start_tick < 0:
            raise ValueError("start_tick must be >= 0")


class ChaosInjector:
    """Stateless per-tick fault injection (deterministic, resumable).

    :meth:`deliveries` turns one tick's burst into the list of
    ``(tick_id, burst)`` deliveries the transport would actually make:
    the main (possibly thinned/corrupted) delivery first, then any
    duplicate / late re-deliveries.  Statistics accumulate on
    :attr:`stats` for reporting; they never influence the schedule.
    """

    #: Non-finite values a corrupted block is salted with.
    _POISON = (np.nan, np.inf, -np.inf)

    def __init__(self, config: ChaosConfig):
        self.config = config
        self.stats = {
            "ticks": 0,
            "clean": 0,
            "drop": 0,
            "duplicate": 0,
            "reorder": 0,
            "corrupt": 0,
        }

    def _rng(self, tick: int, path: str) -> np.random.Generator:
        return np.random.default_rng(
            [self.config.seed, tick, zlib.crc32(path.encode("utf-8"))]
        )

    def _corrupt(self, rng: np.random.Generator, block: np.ndarray) -> np.ndarray:
        B = np.array(block, dtype=np.float64)  # owned C-contiguous copy
        k = max(1, int(B.size * self.config.corrupt_fraction))
        idx = rng.integers(0, B.size, size=k)
        kind = rng.integers(0, len(self._POISON), size=k)
        B.reshape(-1)[idx] = np.asarray(self._POISON)[kind]
        return B

    def deliveries(
        self, tick: int, burst: Mapping[str, np.ndarray]
    ) -> list[tuple[int, dict[str, np.ndarray]]]:
        """Perturb one tick's burst into its delivery sequence."""
        self.stats["ticks"] += 1
        cfg = self.config
        if tick < cfg.start_tick:
            self.stats["clean"] += len(burst)
            return [(tick, dict(burst))]
        main: dict[str, np.ndarray] = {}
        extras: list[tuple[int, dict[str, np.ndarray]]] = []
        for path in sorted(burst):
            block = burst[path]
            rng = self._rng(tick, path)
            u = float(rng.random())
            if u < cfg.drop:
                self.stats["drop"] += 1
                continue
            if u < cfg.drop + cfg.duplicate:
                self.stats["duplicate"] += 1
                main[path] = block
                extras.append((tick, {path: block}))
                continue
            if u < cfg.drop + cfg.duplicate + cfg.reorder:
                # Late/out-of-order: the block arrives stamped with a
                # tick id older than the node's last applied one.  The
                # first two ticks have no "older" to be; deliver clean.
                if tick >= 2:
                    self.stats["reorder"] += 1
                    extras.append((tick - 2, {path: block}))
                else:
                    self.stats["clean"] += 1
                    main[path] = block
                continue
            if u < cfg.drop + cfg.duplicate + cfg.reorder + cfg.corrupt:
                self.stats["corrupt"] += 1
                main[path] = self._corrupt(rng, block)
                continue
            self.stats["clean"] += 1
            main[path] = block
        return [(tick, main)] + extras


def run_with_kills(
    setup,
    *,
    checkpoint_path: str | Path,
    kills: Sequence[int],
    checkpoint_every: int = 1,
    sink_factory: Callable[[], Sequence] | None = None,
    **replay_kwargs,
):
    """The full crash drill: replay, kill at each tick, restore, finish.

    Runs :func:`repro.service.replay.replay` in segments — each segment
    stops (simulated ``SIGKILL``) just before processing tick ``k`` for
    every ``k`` in ``kills``, then the next segment resumes from the
    latest checkpoint; the final segment runs to completion and its
    :class:`~repro.service.replay.ReplayOutcome` is returned.  With
    deterministic chaos (``chaos=ChaosConfig(...)`` in
    ``replay_kwargs``) the final alert stream is byte-identical to an
    uninterrupted run — the crash-recovery contract.

    ``sink_factory`` (optional) builds fresh sinks per segment — sinks
    are single-use, and a truncating JSONL sink rebuilt per segment ends
    up holding the complete stream because every resume re-emits the
    checkpointed prefix.
    """
    from repro.service.replay import replay

    checkpoint_path = Path(checkpoint_path)
    kill_points = sorted(int(k) for k in kills)
    if any(k < 1 for k in kill_points):
        raise ValueError("kill ticks must be >= 1 (tick 0 must complete)")
    outcome = None
    for stop_after in [*kill_points, None]:
        outcome = replay(
            setup,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            resume=checkpoint_path.exists(),
            stop_after=stop_after,
            sinks=tuple(sink_factory()) if sink_factory is not None else (),
            **replay_kwargs,
        )
    return outcome

"""The ``repro-wal/v1`` write-ahead frame journal.

:class:`~repro.service.net.FleetServer` journals every accepted data
frame *before* it is routed into a queue and stamps a **watermark**
record after every processed tick.  Because the server is a single
event loop, the journal records the exact total order the live process
applied — so replaying the journal from the last checkpoint's index
through a freshly restored detector reproduces the crashed process's
event stream byte for byte (the PR 7 checkpoint contract, extended over
the wire).

On-disk layout — append-only segment files under one directory::

    wal-000000000000.seg      wal-000000004096.seg      ...

Each segment starts with a 16-byte header
(``b"RWALSEG1" | start_index u64``) naming the global index of its
first record, followed by CRC32-framed records::

    type u8 | length u32 | crc32 u32 | payload[length]

``crc32`` covers the type byte and the payload, so a corrupt length,
flipped type or torn payload all fail the same check.  Record types:

====  ===========  ==================================================
1     frame        one ``repro-ticks/v1`` encoded data frame
2     error        JSON ``{"reason", "node"}`` (a poisoning decode
                   error — replayed so guard quarantine stays exact)
3     watermark    JSON ``{"tick"}`` — the tick just processed
====  ===========  ==================================================

Durability is a policy, not a promise:

``always``
    fsync after every appended record (safest, slowest);
``tick``
    fsync once per watermark — a crash can lose at most the frames of
    the in-flight tick, which the reconnecting client re-sends from its
    last acked tick (the default);
``off``
    never fsync (OS page cache only; benchmarking / best effort).

Recovery (:meth:`WalWriter.open`) reads every segment in order,
truncates a torn tail back to the longest valid record prefix, and
resumes appending into a fresh segment — a half-written record from a
``kill -9`` can never poison later appends.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.service.protocol import (
    Frame,
    FrameDecoder,
    encode_binary,
    encode_json,
)

__all__ = [
    "FSYNC_POLICIES",
    "REC_ERROR",
    "REC_FRAME",
    "REC_WATERMARK",
    "WAL_FORMAT",
    "WalError",
    "WalRecord",
    "WalRecovery",
    "WalWriter",
    "decode_frame_record",
    "encode_frame_payload",
    "recover_wal",
]

WAL_FORMAT = "repro-wal/v1"

FSYNC_POLICIES = ("always", "tick", "off")

#: Record types.
REC_FRAME = 1
REC_ERROR = 2
REC_WATERMARK = 3
_REC_TYPES = (REC_FRAME, REC_ERROR, REC_WATERMARK)

_SEG_MAGIC = b"RWALSEG1"
_SEG_HEADER = struct.Struct("<8sQ")  # magic, start_index
_REC_HEADER = struct.Struct("<BII")  # type, length, crc32

#: One journal record's payload can never exceed one protocol frame
#: plus slack; anything larger in a header is corruption.
MAX_RECORD_BYTES = 64 * 1024 * 1024

#: Default bytes per segment before rotation.
DEFAULT_SEGMENT_BYTES = 64 * 1024 * 1024

#: Appended records accumulate in memory and hit the file in batches of
#: this many bytes (or at every sync point).  Every ``write`` releases
#: the GIL around the syscall — against a CPU-bound sender thread on a
#: shared core, reacquiring it costs a full scheduler switch interval
#: (~5 ms), thousands of times the write itself.  The batch size is
#: therefore a GIL-release budget, not an IO tuning knob: it bounds
#: writer memory while keeping the number of release points per tick in
#: the single digits.  Batching costs nothing durability-wise: the
#: journal's durability edge is the fsync policy, and every policy
#: syncs through :meth:`WalWriter.sync`, which drains the buffer first.
FLUSH_BYTES = 8 * 1024 * 1024


class WalError(ValueError):
    """A journal directory or record is unusable."""


@dataclass(frozen=True)
class WalRecord:
    """One recovered journal record."""

    index: int
    rtype: int
    payload: bytes


@dataclass(frozen=True)
class WalRecovery:
    """What :func:`recover_wal` found on disk."""

    records: tuple[WalRecord, ...]
    #: Index the next appended record will get.
    next_index: int
    #: Segment files seen (valid ones, in order).
    segments: tuple[Path, ...]
    #: Bytes discarded at the torn tail (0 for a clean log).
    torn_bytes: int
    #: File holding the torn tail, if any.
    torn_segment: Path | None
    #: Valid byte length of ``torn_segment`` (its longest record prefix).
    valid_bytes: int


def _crc(rtype: int, payload: bytes) -> int:
    return zlib.crc32(payload, zlib.crc32(bytes((rtype,))))


def encode_frame_payload(node: str, tick: int, values) -> bytes:
    """One data frame as ``repro-ticks/v1`` bytes (binary for 2-d
    float arrays, newline-JSON for everything else — including the
    ``None`` values of poison blocks)."""
    if isinstance(values, np.ndarray) and values.ndim == 2:
        return encode_binary(node, tick, values)
    return encode_json(node, tick, values)


def decode_frame_record(payload: bytes) -> Frame:
    """Decode one journaled frame payload back into a :class:`Frame`."""
    decoder = FrameDecoder()
    frames, errors = decoder.feed(payload)
    if errors or len(frames) != 1 or decoder.pending:
        raise WalError(
            "journal frame record does not decode to exactly one frame "
            f"({len(frames)} frames, {len(errors)} errors, "
            f"{decoder.pending} bytes pending)"
        )
    return frames[0]


def _segment_files(root: Path) -> list[Path]:
    return sorted(root.glob("wal-*.seg"))


def _scan_segment(path: Path) -> tuple[int, list[tuple[int, bytes]], int]:
    """``(start_index, [(rtype, payload), ...], valid_bytes)``.

    Stops at the first invalid record (bad magic raises, a torn or
    corrupt record just ends the scan — the caller decides whether that
    is a recoverable tail or mid-log damage).
    """
    data = path.read_bytes()
    if len(data) < _SEG_HEADER.size:
        raise WalError(f"{path}: short segment header")
    magic, start_index = _SEG_HEADER.unpack_from(data)
    if magic != _SEG_MAGIC:
        raise WalError(f"{path}: not a repro-wal/v1 segment")
    records: list[tuple[int, bytes]] = []
    off = _SEG_HEADER.size
    while off + _REC_HEADER.size <= len(data):
        rtype, length, crc = _REC_HEADER.unpack_from(data, off)
        if (
            rtype not in _REC_TYPES
            or length > MAX_RECORD_BYTES
            or off + _REC_HEADER.size + length > len(data)
        ):
            break
        payload = data[off + _REC_HEADER.size : off + _REC_HEADER.size + length]
        if _crc(rtype, payload) != crc:
            break
        records.append((rtype, payload))
        off += _REC_HEADER.size + length
    return int(start_index), records, off


def recover_wal(root: str | Path) -> WalRecovery:
    """Read a journal directory back into its longest valid prefix.

    Segments are walked in start-index order; the scan stops at the
    first torn/corrupt record or index discontinuity and everything
    after it is reported as the torn tail (for the last segment that is
    the expected ``kill -9`` shape; mid-log damage additionally
    discards the segments behind it rather than replaying around a
    hole).
    """
    root = Path(root)
    records: list[WalRecord] = []
    segments: list[Path] = []
    next_index = 0
    torn_bytes = 0
    torn_segment: Path | None = None
    valid_bytes = 0
    files = _segment_files(root) if root.exists() else []
    for i, path in enumerate(files):
        if path.stat().st_size < _SEG_HEADER.size:
            # kill -9 during segment creation: nothing in it is valid.
            torn_segment = path
            valid_bytes = 0
            torn_bytes += sum(p.stat().st_size for p in files[i:])
            break
        start_index, seg_records, seg_valid = _scan_segment(path)
        if segments and start_index != next_index:
            # Discontinuity (a pruned or lost segment in the middle):
            # nothing after the gap can be replayed in order.
            torn_segment = path
            valid_bytes = 0  # the whole segment is unreachable
            torn_bytes += sum(
                p.stat().st_size for p in files[i:]
            )
            break
        if not segments:
            next_index = start_index
        segments.append(path)
        for rtype, payload in seg_records:
            records.append(WalRecord(next_index, rtype, bytes(payload)))
            next_index += 1
        size = path.stat().st_size
        if seg_valid != size:
            torn_segment = path
            valid_bytes = seg_valid
            torn_bytes += size - seg_valid
            torn_bytes += sum(p.stat().st_size for p in files[i + 1 :])
            break
    return WalRecovery(
        records=tuple(records),
        next_index=next_index,
        segments=tuple(segments),
        torn_bytes=torn_bytes,
        torn_segment=torn_segment,
        valid_bytes=valid_bytes,
    )


def _fsync_dir(root: Path) -> None:
    fd = os.open(root, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class WalWriter:
    """Appender over a ``repro-wal/v1`` directory.

    Use :meth:`open` to recover + resume an existing directory; the
    constructor alone starts appending at ``start_index`` without
    looking at what is on disk (tests and fresh directories).
    """

    def __init__(
        self,
        root: str | Path,
        *,
        fsync: str = "tick",
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        start_index: int = 0,
    ):
        if fsync not in FSYNC_POLICIES:
            raise WalError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if segment_bytes < _SEG_HEADER.size + _REC_HEADER.size:
            raise WalError("segment_bytes is too small for a record")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.segment_bytes = int(segment_bytes)
        self.next_index = int(start_index)
        self.appended = 0
        self.fsyncs = 0
        self.bytes_written = 0
        #: Records appended since the last fsync (the flush-lag signal
        #: the ops ``/health`` route reports as degraded when it grows).
        self.pending = 0
        self._fh = None
        self._buf = bytearray()
        self._seg_bytes = 0
        self._closed = False

    @classmethod
    def open(
        cls,
        root: str | Path,
        *,
        fsync: str = "tick",
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        min_index: int = 0,
    ) -> tuple["WalWriter", tuple[WalRecord, ...]]:
        """Recover ``root`` and return ``(writer, recovered_records)``.

        The torn tail (if any) is truncated on disk so the next
        recovery sees a clean log; ``min_index`` floors the writer's
        next index (a checkpoint may claim records whose segment was
        lost after an ``off``-policy crash — indices must never move
        backwards or checkpoint pruning would misfire).
        """
        recovery = recover_wal(root)
        if recovery.torn_segment is not None:
            if recovery.valid_bytes >= _SEG_HEADER.size:
                with recovery.torn_segment.open("r+b") as fh:
                    fh.truncate(recovery.valid_bytes)
            else:
                recovery.torn_segment.unlink()
            # Anything past the torn segment is unreachable history.
            seen = set(recovery.segments)
            for path in _segment_files(Path(root)):
                if path not in seen and path != recovery.torn_segment:
                    path.unlink()
        writer = cls(
            root,
            fsync=fsync,
            segment_bytes=segment_bytes,
            start_index=max(recovery.next_index, int(min_index)),
        )
        return writer, recovery.records

    # -- appending -----------------------------------------------------
    def _drain_buf(self) -> None:
        if self._buf:
            self._fh.write(self._buf)
            del self._buf[:]

    def _rotate(self) -> None:
        if self._fh is not None:
            self._drain_buf()
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self.fsyncs += 1
            self._fh.close()
        path = self.root / f"wal-{self.next_index:012d}.seg"
        self._fh = path.open("wb")
        self._fh.write(_SEG_HEADER.pack(_SEG_MAGIC, self.next_index))
        self._seg_bytes = _SEG_HEADER.size
        _fsync_dir(self.root)

    def _append(self, rtype: int, payload: bytes) -> int:
        if self._closed:
            raise WalError("journal writer is closed")
        if self._fh is None or self._seg_bytes >= self.segment_bytes:
            self._rotate()
        record = (
            _REC_HEADER.pack(rtype, len(payload), _crc(rtype, payload))
            + payload
        )
        self._buf += record
        if len(self._buf) >= FLUSH_BYTES:
            self._drain_buf()
        self._seg_bytes += len(record)
        self.bytes_written += len(record)
        index = self.next_index
        self.next_index += 1
        self.appended += 1
        self.pending += 1
        if self.fsync == "always":
            self.sync()
        return index

    def append_frame(self, node: str, tick: int, values) -> int:
        return self._append(
            REC_FRAME, encode_frame_payload(node, tick, values)
        )

    def append_error(self, reason: str, node: str | None) -> int:
        payload = json.dumps(
            {"reason": reason, "node": node}, separators=(",", ":")
        ).encode("utf-8")
        return self._append(REC_ERROR, payload)

    def append_watermark(self, tick: int) -> int:
        index = self._append(
            REC_WATERMARK,
            json.dumps({"tick": int(tick)}, separators=(",", ":")).encode(
                "utf-8"
            ),
        )
        if self.fsync == "tick":
            self.sync()
        return index

    def sync(self) -> None:
        """Flush + fsync the live segment (no-op when nothing pends)."""
        if self._fh is None or self.pending == 0:
            return
        self._drain_buf()
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.fsyncs += 1
        self.pending = 0

    # -- maintenance ---------------------------------------------------
    def prune_through(self, index: int) -> int:
        """Delete segments whose records all precede ``index``.

        Called after a durable checkpoint claiming records below
        ``index``; returns the number of segments removed.  The live
        segment is never removed.
        """
        removed = 0
        files = _segment_files(self.root)
        for path, nxt in zip(files, files[1:]):
            with nxt.open("rb") as fh:
                nxt_start = _SEG_HEADER.unpack(
                    fh.read(_SEG_HEADER.size)
                )[1]
            if nxt_start <= index and (
                self._fh is None or path.name != Path(self._fh.name).name
            ):
                path.unlink()
                removed += 1
            else:
                break
        if removed:
            _fsync_dir(self.root)
        return removed

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._fh is not None:
            self._drain_buf()
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self.fsyncs += 1
            self.pending = 0
            self._fh.close()
            self._fh = None

"""The service facade: one frozen config, three verbs.

Before this module, constructing the detection service meant threading
~20 loose keyword arguments through ``cli.py`` → ``fleet_recipes`` →
``prepare_fleet`` → ``replay`` (and every scenario evaluation repeated
the same plumbing).  The facade collapses that into:

* :class:`ServiceConfig` — a frozen, validated dataclass holding every
  service knob (fleet shape, training, detection, alerting, backend),
  with the same defaults as ``repro.service.replay.SERVICE_DEFAULTS``
  and the CLI presets;
* :func:`build_setup` / :func:`build_detector` — materialize the
  trained fleet and the (optionally guarded) detector from a config;
* :func:`replay` / :func:`serve` — run the in-process replay loop or
  the network-facing ingestion server against a config;
* :func:`replicate_setup` — scale a trained fleet to N nodes by
  replicating models/data by reference (no retraining, near-zero extra
  memory), which is how the load benchmarks reach thousands of nodes;
* :func:`config_from_kwargs` — the one legacy adapter: accepts the old
  loose-kwarg style with a :class:`DeprecationWarning` and returns a
  :class:`ServiceConfig`.

``cli.py`` and ``repro.scenarios.evaluations`` both consume this module
instead of re-plumbing kwargs.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.service.classify import TrainedFleet
from repro.service.detector import BACKENDS, SIGNATURE_MODES, FleetFaultDetector
from repro.service.guard import GuardConfig, GuardedDetector
from repro.service.replay import (
    SERVICE_DEFAULTS,
    FleetReplaySetup,
    ReplayOutcome,
    fleet_recipes,
    node_path,
    prepare_fleet,
)
from repro.service.replay import replay as _replay_loop

__all__ = [
    "ServiceConfig",
    "build_context",
    "build_detector",
    "build_setup",
    "config_from_kwargs",
    "replay",
    "replicate_setup",
    "serve",
]

#: Fleet-shape defaults of the full-size CLI preset (the knob defaults
#: come from ``SERVICE_DEFAULTS``; these two are the CLI's).
_FLEET_DEFAULTS = {"nodes": 3, "t": 6000}


@dataclass(frozen=True)
class ServiceConfig:
    """Every knob of the online detection service, validated once.

    Field groups (defaults match ``SERVICE_DEFAULTS`` + the CLI
    presets, so a default-constructed config reproduces ``repro detect``
    with no flags byte-for-byte):

    * fleet shape — ``nodes``, ``t``, ``segment``, ``noise_std``;
    * training — ``blocks``, ``trees``, ``train_frac``, ``seed``,
      ``healthy_label``, ``model_path``;
    * detection — ``chunk``, ``open_after``, ``close_after``,
      ``min_confidence``, ``top_blocks``, ``shards``, ``backend``,
      ``mode``, ``guard``;
    * scale-out — ``replicate`` (0 = off; N = replicate the trained
      fleet to N nodes via :func:`replicate_setup`);
    * caching — ``cache_dir``.
    """

    nodes: int = _FLEET_DEFAULTS["nodes"]
    t: int = _FLEET_DEFAULTS["t"]
    segment: str = "fault"
    noise_std: float = 0.0
    blocks: int = SERVICE_DEFAULTS["blocks"]
    trees: int = SERVICE_DEFAULTS["trees"]
    train_frac: float = SERVICE_DEFAULTS["train_frac"]
    chunk: int = SERVICE_DEFAULTS["chunk"]
    open_after: int = SERVICE_DEFAULTS["open_after"]
    close_after: int = SERVICE_DEFAULTS["close_after"]
    min_confidence: float = SERVICE_DEFAULTS["min_confidence"]
    top_blocks: int = SERVICE_DEFAULTS["top_blocks"]
    seed: int = SERVICE_DEFAULTS["seed"]
    healthy_label: int = SERVICE_DEFAULTS["healthy_label"]
    shards: int | None = None
    backend: str = "staged"
    mode: str = "exact"
    guard: bool = True
    replicate: int = 0
    model_path: str | None = None
    cache_dir: str | None = None

    def __post_init__(self):
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if self.t < 1:
            raise ValueError("t must be >= 1")
        if not 0.0 < self.train_frac < 1.0:
            raise ValueError("train_frac must be in (0, 1)")
        if self.chunk < 1:
            raise ValueError("chunk must be >= 1")
        if self.open_after < 1 or self.close_after < 1:
            raise ValueError("open_after and close_after must be >= 1")
        if not 0.0 <= self.min_confidence <= 1.0:
            raise ValueError("min_confidence must be in [0, 1]")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.mode not in SIGNATURE_MODES:
            raise ValueError(
                f"mode must be one of {SIGNATURE_MODES}, got {self.mode!r}"
            )
        if self.replicate < 0:
            raise ValueError("replicate must be >= 0 (0 = off)")

    @property
    def noise_seed(self) -> int:
        """Noise RNG seed: 11 when noise is on (the CLI's convention)."""
        return 11 if self.noise_std else 0

    @classmethod
    def smoke(cls, **overrides) -> "ServiceConfig":
        """The seconds-scale ``--smoke`` preset CI exercises."""
        smoke = dict(nodes=2, t=2500, blocks=8, trees=6, chunk=200)
        smoke.update(overrides)
        return cls(**smoke)

    @classmethod
    def from_evaluation(cls, ev: Mapping[str, Any], **overrides) -> "ServiceConfig":
        """Config from a scenario spec's ``evaluation`` dict.

        Only keys naming :class:`ServiceConfig` fields are consumed
        (evaluation dicts carry kind-specific extras like ``kills`` or
        ``fleet_sizes`` that the caller interprets itself).
        """
        names = {f.name for f in dataclasses.fields(cls)}
        kwargs = {k: v for k, v in ev.items() if k in names}
        kwargs.update(overrides)
        return cls(**kwargs)

    def replace(self, **changes) -> "ServiceConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    def policy_kwargs(self) -> dict:
        """The alert-policy knobs, as ``replay()`` keyword arguments."""
        return {
            "open_after": self.open_after,
            "close_after": self.close_after,
            "min_confidence": self.min_confidence,
            "top_blocks": self.top_blocks,
        }


def config_from_kwargs(**kwargs) -> ServiceConfig:
    """Legacy adapter: loose service kwargs → :class:`ServiceConfig`.

    .. deprecated::
        Build a :class:`ServiceConfig` directly.  This shim exists so
        pre-facade call sites (``nodes=..., t=..., blocks=...`` sprawl)
        keep working; it warns once per call site and maps the old
        spellings (``model`` → ``model_path``, ``no_guard`` → ``guard``)
        onto the dataclass.
    """
    warnings.warn(
        "loose service kwargs are deprecated; construct "
        "repro.service.api.ServiceConfig directly",
        DeprecationWarning,
        stacklevel=2,
    )
    if "model" in kwargs:
        kwargs["model_path"] = kwargs.pop("model")
    if "no_guard" in kwargs:
        kwargs["guard"] = not kwargs.pop("no_guard")
    names = {f.name for f in dataclasses.fields(ServiceConfig)}
    unknown = sorted(set(kwargs) - names)
    if unknown:
        raise TypeError(f"unknown service kwargs: {', '.join(unknown)}")
    return ServiceConfig(**kwargs)


def build_context(config: ServiceConfig):
    """An :class:`~repro.scenarios.cache.ExecutionContext` honouring
    ``config.cache_dir`` (imported lazily — the scenario cache pulls in
    the full scenario stack)."""
    from repro.scenarios.cache import ArtifactCache, ExecutionContext

    store = ArtifactCache(config.cache_dir) if config.cache_dir else None
    return ExecutionContext(store)


def build_setup(
    config: ServiceConfig,
    *,
    recipes: Sequence | None = None,
    context=None,
) -> FleetReplaySetup:
    """Materialize + train the fleet a config describes.

    ``recipes`` overrides the config's generated fleet (the scenario
    evaluations pass their spec's datasets); ``config.replicate`` > 0
    replicates the trained fleet to that many nodes afterwards.
    """
    if context is None:
        context = build_context(config)
    if recipes is None:
        recipes = fleet_recipes(
            config.nodes,
            segment=config.segment,
            t=config.t,
            seed0=config.seed,
            noise_std=config.noise_std,
            noise_seed=config.noise_seed,
        )
    setup = prepare_fleet(
        recipes,
        context=context,
        blocks=config.blocks,
        trees=config.trees,
        train_frac=config.train_frac,
        seed=config.seed,
        healthy_label=config.healthy_label,
        model_path=config.model_path,
    )
    if config.replicate:
        setup = replicate_setup(setup, config.replicate)
    return setup


def replicate_setup(setup: FleetReplaySetup, nodes: int) -> FleetReplaySetup:
    """Scale a trained fleet to ``nodes`` nodes by reference.

    Replica ``i`` is named ``rack<i>/node00`` and shares base node
    ``sorted(bases)[i % len(bases)]``'s trained CS model, healthy
    reference, held-out matrix and ground truth — all by reference, so
    a thousand-node fleet costs a thousand dict entries, not a thousand
    trainings.  Everything downstream (detector, guard, server, replay)
    treats the replicas as ordinary independent nodes.
    """
    from repro.engine.fleet import FleetSignatureEngine

    if nodes < 1:
        raise ValueError("replicate_setup needs nodes >= 1")
    bases = sorted(setup.eval_data)
    engine0 = setup.trained.engine
    engine = FleetSignatureEngine(
        blocks="all" if engine0.blocks is None else engine0.blocks,
        wl=engine0.wl,
        ws=engine0.ws,
    )
    references: dict = {}
    eval_data: dict = {}
    truth: dict = {}
    for i in range(nodes):
        base = bases[i % len(bases)]
        path = node_path(i, 0)
        engine.set_model(path, engine0.model(base))
        references[path] = setup.trained.references[base]
        eval_data[path] = setup.eval_data[base]
        truth[path] = setup.truth[base]
    trained = TrainedFleet(
        engine=engine,
        classifier=setup.trained.classifier,
        references=references,
        label_names=setup.trained.label_names,
        healthy_label=setup.trained.healthy_label,
    )
    return FleetReplaySetup(
        trained=trained,
        eval_data=eval_data,
        truth=truth,
        wl=setup.wl,
        ws=setup.ws,
    )


def build_detector(
    config: ServiceConfig,
    setup: FleetReplaySetup | None = None,
    *,
    record_history: bool = False,
) -> FleetFaultDetector | GuardedDetector:
    """The configured detector — guarded when ``config.guard`` is set.

    This is the construction path the network server uses; ``replay``
    builds its own detector inside the replay loop with identical
    parameters, which is what makes the two byte-comparable.
    """
    if setup is None:
        setup = build_setup(config)
    detector = FleetFaultDetector(
        setup.trained,
        open_after=config.open_after,
        close_after=config.close_after,
        min_confidence=config.min_confidence,
        top_blocks=config.top_blocks,
        shards=config.shards,
        record_history=record_history,
        backend=config.backend,
        mode=config.mode,
        max_chunk=config.chunk,
    )
    if config.guard:
        return GuardedDetector(detector)
    return detector


def replay(
    config: ServiceConfig,
    setup: FleetReplaySetup | None = None,
    **runtime,
) -> ReplayOutcome:
    """Run the deterministic in-process replay loop for a config.

    ``runtime`` passes through the per-run knobs that are not part of
    the service configuration proper (``sinks``, ``interval``,
    ``record_history``, ``chaos``, ``checkpoint_path`` /
    ``checkpoint_every`` / ``resume`` / ``stop_after``).
    """
    if setup is None:
        setup = build_setup(config)
    return _replay_loop(
        setup,
        chunk=config.chunk,
        shards=config.shards,
        backend=config.backend,
        mode=config.mode,
        guard=config.guard,
        **config.policy_kwargs(),
        **runtime,
    )


def serve(
    config: ServiceConfig,
    setup: FleetReplaySetup | None = None,
    *,
    listen: str = "127.0.0.1:0",
    ops: str | None = None,
    wal_dir: str | Path | None = None,
    wal_fsync: str = "tick",
    checkpoint_path: str | Path | None = None,
    checkpoint_every: int = 1,
    **server_kwargs,
):
    """Run the network-facing ingestion server for a config (blocking).

    Builds the guarded detector via :func:`build_detector` and hands it
    to :class:`repro.service.net.FleetServer`; returns the final stats
    payload.  ``server_kwargs`` pass through (``sinks``,
    ``backpressure``, ``exit_on_idle``, ``port_file``, ...).

    ``wal_dir``/``checkpoint_path`` switch on crash durability: frames
    are journaled (``repro-wal/v1``, fsync policy ``wal_fsync``) and
    detector + routing state snapshotted every ``checkpoint_every``
    ticks, pinned to this setup's lineage fingerprint — a restart with
    the same flags restores and replays to the exact crash state.
    """
    from repro.service.checkpoint import fleet_fingerprint
    from repro.service.net import FleetServer, ServerCheckpoint, parse_address

    if setup is None:
        setup = build_setup(config)
    host, port = parse_address(listen)
    ops_addr = parse_address(ops) if ops else None
    checkpoint = None
    if checkpoint_path is not None:
        checkpoint = ServerCheckpoint(
            path=Path(checkpoint_path),
            every=int(checkpoint_every) or 1,
            fingerprint=fleet_fingerprint(setup.trained),
            chunk=config.chunk,
        )
    server = FleetServer(
        build_detector(config, setup),
        host=host,
        port=port,
        ops_host=ops_addr[0] if ops_addr else None,
        ops_port=ops_addr[1] if ops_addr else None,
        wal=wal_dir,
        wal_fsync=wal_fsync,
        checkpoint=checkpoint,
        **server_kwargs,
    )
    server.run()
    return server.stats.snapshot()


def default_model_dir() -> Path:  # pragma: no cover - convenience
    """Where ``repro serve`` keeps implicit fleet models."""
    return Path.home() / ".cache" / "repro" / "models"

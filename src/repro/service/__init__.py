"""Online fleet fault-detection service.

The paper's end goal is operational: signatures exist so a fleet can be
*monitored* online, faults classified and causes localized.  This
subpackage composes the existing layers into that one hot path:

* :mod:`~repro.service.ingest` — sharded per-node ingestion: one
  ring-buffered :class:`~repro.monitoring.streaming.OnlineSignatureStream`
  per monitored node, keyed by
  :class:`~repro.engine.fleet.FleetSignatureEngine` sensor-tree paths;
* :mod:`~repro.service.classify` — training of the shared fault
  classifier plus lockstep batched classification of every signature the
  fleet emits in a tick (one stacked-forest predict call, not one per
  node);
* :mod:`~repro.service.alerts` — threshold + hysteresis alert policies
  and streaming JSONL / markdown alert sinks (reusing
  :mod:`repro.experiments.reporting`);
* :mod:`~repro.service.detector` — :class:`FleetFaultDetector`, the
  composed ingest → classify → alert hot path, plus the naive per-node
  baseline loop it is benchmarked against;
* :mod:`~repro.service.replay` — the deterministic replay driver that
  feeds cached ``.npz`` segments (``monitoring.storage`` via the
  ``repro.scenarios`` :class:`~repro.scenarios.cache.ArtifactCache`)
  through the service and scores the resulting alert stream against the
  injected ground truth.

Replay is bit-deterministic: the same recipes, options and seeds produce
*byte-identical* alert JSONL across processes (guarded by tests), which
is what makes the alert stream diffable in CI.
"""

from repro.service.alerts import (
    Alert,
    AlertPolicy,
    AlertSink,
    JSONLAlertSink,
    MarkdownAlertSink,
    StreamAlertSink,
)
from repro.service.classify import FleetClassifier, TrainedFleet, train_fleet
from repro.service.detector import BACKENDS, FleetFaultDetector, detect_naive
from repro.service.ingest import FleetIngest
from repro.service.model_store import load_fleet_npz, save_fleet_npz
from repro.service.replay import (
    FleetReplaySetup,
    ReplayOutcome,
    fleet_recipes,
    node_path,
    prepare_fleet,
    replay,
)

__all__ = [
    "Alert",
    "AlertPolicy",
    "AlertSink",
    "BACKENDS",
    "FleetClassifier",
    "FleetFaultDetector",
    "FleetIngest",
    "FleetReplaySetup",
    "JSONLAlertSink",
    "MarkdownAlertSink",
    "ReplayOutcome",
    "StreamAlertSink",
    "TrainedFleet",
    "detect_naive",
    "fleet_recipes",
    "load_fleet_npz",
    "node_path",
    "prepare_fleet",
    "replay",
    "save_fleet_npz",
    "train_fleet",
]

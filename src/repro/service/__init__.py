"""Online fleet fault-detection service.

The paper's end goal is operational: signatures exist so a fleet can be
*monitored* online, faults classified and causes localized.  This
subpackage composes the existing layers into that one hot path:

* :mod:`~repro.service.ingest` — sharded per-node ingestion: one
  ring-buffered :class:`~repro.monitoring.streaming.OnlineSignatureStream`
  per monitored node, keyed by
  :class:`~repro.engine.fleet.FleetSignatureEngine` sensor-tree paths;
* :mod:`~repro.service.classify` — training of the shared fault
  classifier plus lockstep batched classification of every signature the
  fleet emits in a tick (one stacked-forest predict call, not one per
  node);
* :mod:`~repro.service.alerts` — threshold + hysteresis alert policies
  and streaming JSONL / markdown alert sinks (reusing
  :mod:`repro.experiments.reporting`);
* :mod:`~repro.service.detector` — :class:`FleetFaultDetector`, the
  composed ingest → classify → alert hot path, plus the naive per-node
  baseline loop it is benchmarked against;
* :mod:`~repro.service.replay` — the deterministic replay driver that
  feeds cached ``.npz`` segments (``monitoring.storage`` via the
  ``repro.scenarios`` :class:`~repro.scenarios.cache.ArtifactCache`)
  through the service and scores the resulting alert stream against the
  injected ground truth;
* :mod:`~repro.service.guard` — the typed validation boundary in front
  of the detector: malformed/late/duplicate/unknown-node input degrades
  or quarantines the offending node instead of crashing the tick loop;
* :mod:`~repro.service.checkpoint` — versioned npz snapshots of full
  detector state with a crash → restore → replay-remaining byte-identity
  contract;
* :mod:`~repro.service.chaos` — the deterministic seeded fault injector
  and kill-and-restore drill that prove the two layers above;
* :mod:`~repro.service.api` — the one public facade: a frozen
  :class:`ServiceConfig` replaces the historical ~20-kwarg sprawl, with
  ``build_detector(config)`` / ``replay(config)`` / ``serve(config)``
  as the only entry points callers need;
* :mod:`~repro.service.protocol` / :mod:`~repro.service.net` /
  :mod:`~repro.service.ops` — the network front: the
  ``repro-ticks/v1`` wire protocol (newline-JSON + CRC-checked binary
  frames), the asyncio ingestion server with bounded per-node
  backpressure queues, and the HTTP ops surface (``/health`` +
  liveness/readiness probes, ``/fleet``, ``/alerts`` with
  ack/suppress, ``/stats``);
* :mod:`~repro.service.wal` / :mod:`~repro.service.netchaos` — crash
  durability for the network path: the ``repro-wal/v1`` write-ahead
  frame journal that (with networked checkpoints) makes kill -9 +
  restart byte-identical to an uninterrupted run, and the seeded TCP
  chaos proxy that proves it under resets, partitions, corruption and
  truncation.

Alert events cross every boundary — JSONL sinks, checkpoint archives,
HTTP ops responses — in one canonical ``repro-alerts/v1`` shape
(:func:`repro.service.alerts.to_payload`).

Replay is bit-deterministic: the same recipes, options and seeds produce
*byte-identical* alert JSONL across processes (guarded by tests), which
is what makes the alert stream diffable in CI — and what makes
checkpoint/restore testable at the byte level.
"""

from repro.service.alerts import (
    ALERTS_SCHEMA,
    Alert,
    AlertPolicy,
    AlertSink,
    JSONLAlertSink,
    MarkdownAlertSink,
    StreamAlertSink,
    event_line,
    to_payload,
)
from repro.service.api import (
    ServiceConfig,
    build_detector,
    build_setup,
    config_from_kwargs,
    replicate_setup,
    serve,
)
from repro.service.api import replay as replay_config
from repro.service.chaos import ChaosConfig, ChaosInjector, run_with_kills
from repro.service.checkpoint import (
    CheckpointError,
    fleet_fingerprint,
    load_checkpoint,
    restore_checkpoint,
    save_checkpoint,
)
from repro.service.classify import FleetClassifier, TrainedFleet, train_fleet
from repro.service.detector import BACKENDS, FleetFaultDetector, detect_naive
from repro.service.guard import GuardConfig, GuardedDetector
from repro.service.ingest import FleetIngest
from repro.service.model_store import (
    ModelStoreError,
    load_fleet_npz,
    save_fleet_npz,
)
from repro.service.replay import (
    FleetReplaySetup,
    ReplayOutcome,
    fleet_recipes,
    node_path,
    prepare_fleet,
    replay,
)

from repro.service.net import (
    BackpressureConfig,
    FleetServer,
    ServerCheckpoint,
    ServerStats,
    loadgen,
    parse_address,
)
from repro.service.netchaos import ChaosProxy, NetChaosConfig
from repro.service.ops import AlertLog
from repro.service.protocol import (
    PROTOCOL,
    Frame,
    FrameDecoder,
    FrameError,
    encode_binary,
    encode_eof,
    encode_json,
)
from repro.service.wal import WAL_FORMAT, WalRecord, WalWriter, recover_wal

__all__ = [
    "ALERTS_SCHEMA",
    "Alert",
    "AlertLog",
    "AlertPolicy",
    "AlertSink",
    "BACKENDS",
    "BackpressureConfig",
    "ChaosConfig",
    "ChaosInjector",
    "ChaosProxy",
    "CheckpointError",
    "FleetClassifier",
    "FleetFaultDetector",
    "FleetIngest",
    "FleetReplaySetup",
    "FleetServer",
    "Frame",
    "FrameDecoder",
    "FrameError",
    "GuardConfig",
    "GuardedDetector",
    "JSONLAlertSink",
    "MarkdownAlertSink",
    "ModelStoreError",
    "NetChaosConfig",
    "PROTOCOL",
    "ReplayOutcome",
    "ServerCheckpoint",
    "ServerStats",
    "ServiceConfig",
    "StreamAlertSink",
    "TrainedFleet",
    "WAL_FORMAT",
    "WalRecord",
    "WalWriter",
    "build_detector",
    "build_setup",
    "config_from_kwargs",
    "detect_naive",
    "encode_binary",
    "encode_eof",
    "encode_json",
    "event_line",
    "fleet_fingerprint",
    "fleet_recipes",
    "load_checkpoint",
    "load_fleet_npz",
    "loadgen",
    "node_path",
    "parse_address",
    "prepare_fleet",
    "recover_wal",
    "replay",
    "replay_config",
    "replicate_setup",
    "restore_checkpoint",
    "run_with_kills",
    "save_checkpoint",
    "save_fleet_npz",
    "serve",
    "to_payload",
    "train_fleet",
]

"""Sharded per-node fleet ingestion.

A monitoring agent delivers each node's samples in bursts; the service
keeps one ring-buffered
:class:`~repro.monitoring.streaming.OnlineSignatureStream` per monitored
node (keyed by the node's
:class:`~repro.engine.fleet.FleetSignatureEngine` sensor-tree path) and
pushes every burst through the O(n)-per-emit incremental core.  Nodes
are partitioned into deterministic *shards* so multi-core deployments
can drain the per-shard work on a thread pool (NumPy releases the GIL
inside the heavy kernels); results are independent of the shard count,
so single-core replay and sharded serving emit bit-identical signatures.
"""

from __future__ import annotations

import zlib
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Iterable, Mapping

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.fleet import FleetSignatureEngine
    from repro.monitoring.streaming import OnlineSignatureStream

__all__ = ["FleetIngest", "shard_of"]


def shard_of(path: str, shards: int) -> int:
    """Deterministic shard index of a node path (stable across processes).

    Uses CRC-32, not ``hash()``: string hashing is salted per process
    (PYTHONHASHSEED), which would assign nodes to different shards in
    different processes — harmless for results (sharding never changes
    them) but fatal for reproducing a deployment layout.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    return zlib.crc32(path.encode("utf-8")) % shards


class FleetIngest:
    """Per-node streaming signature state for a whole fleet.

    Parameters
    ----------
    engine:
        A :class:`~repro.engine.fleet.FleetSignatureEngine` whose
        registered nodes define the fleet; each node gets one stream
        built from its trained model (same blocks/wl/ws as the engine).
    paths:
        Optional subset of the engine's node paths to ingest for;
        defaults to every registered node.
    shards:
        Number of ingestion shards.  ``None``/1 processes nodes
        sequentially; larger values drain shards on a thread pool.
        Emitted signatures are identical either way.
    """

    def __init__(
        self,
        engine: "FleetSignatureEngine",
        paths: Iterable[str] | None = None,
        *,
        shards: int | None = None,
    ):
        self.engine = engine
        wanted = sorted(paths) if paths is not None else engine.paths
        missing = [p for p in wanted if p not in engine]
        if missing:
            raise KeyError(f"no model fitted for node(s) {missing!r}")
        self._streams: dict[str, OnlineSignatureStream] = {
            p: engine.stream(p) for p in wanted
        }
        self.shards = int(shards) if shards else 1
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        # One pool for the object's lifetime: bursts arrive every tick,
        # and spawning/joining a fresh pool per burst would dominate the
        # per-shard NumPy work on small fleets.
        self._pool = (
            ThreadPoolExecutor(max_workers=self.shards)
            if self.shards > 1
            else None
        )

    # ------------------------------------------------------------------
    @property
    def paths(self) -> list[str]:
        """Sorted paths of all ingested nodes."""
        return sorted(self._streams)

    def __len__(self) -> int:
        return len(self._streams)

    def __contains__(self, path: str) -> bool:
        return path in self._streams

    def stream(self, path: str) -> "OnlineSignatureStream":
        """The live stream of one node (KeyError if absent)."""
        return self._streams[path]

    def emitted(self, path: str) -> int:
        """Signatures emitted so far for one node."""
        return self._streams[path].emitted

    def shard_map(self) -> dict[str, int]:
        """Node path to shard index (deterministic, CRC-based)."""
        return {p: shard_of(p, self.shards) for p in self.paths}

    # ------------------------------------------------------------------
    def push_block(self, path: str, block: np.ndarray) -> np.ndarray:
        """Feed one node's burst ``(n, m)``; return its due signatures."""
        return self._streams[path].push_block(block)

    def push_blocks(
        self, data: Mapping[str, np.ndarray]
    ) -> dict[str, np.ndarray]:
        """Feed many nodes' bursts; return each node's due signatures.

        Nodes are processed in sorted-path order (within their shard), so
        the result — a ``path -> (k, l)`` complex array mapping — is
        deterministic.  With ``shards > 1`` the shard groups run on a
        thread pool; per-node streams are independent, so the output is
        bit-identical to sequential ingestion.
        """
        order = sorted(data)
        missing = [p for p in order if p not in self._streams]
        if missing:
            raise KeyError(f"unknown node path(s) {missing!r}")
        if self._pool is None or len(order) <= 1:
            return {p: self._streams[p].push_block(data[p]) for p in order}
        groups: dict[int, list[str]] = {}
        for p in order:
            groups.setdefault(shard_of(p, self.shards), []).append(p)

        def _drain(paths: list[str]) -> dict[str, np.ndarray]:
            return {p: self._streams[p].push_block(data[p]) for p in paths}

        out: dict[str, np.ndarray] = {}
        for part in self._pool.map(
            _drain, [groups[s] for s in sorted(groups)]
        ):
            out.update(part)
        return {p: out[p] for p in order}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FleetIngest(nodes={len(self)}, shards={self.shards})"

"""Faster-than-real-time fleet replay from the columnar telemetry store.

The live service (:func:`repro.service.replay.replay`) drives the
detector one ``chunk``-sized tick at a time — correct, but the per-tick
Python loop and guard validation are pure overhead when the input is an
already-validated recording.  This module closes the loop the ROADMAP
names: :func:`record_fleet` writes a fleet's held-out feed into a
``repro-telestore/v1`` store (:mod:`repro.monitoring.telestore`), and
:func:`replay_from_store` re-drives any recorded ``[t0, t1)`` window
through :class:`~repro.service.detector.FleetFaultDetector` at maximum
speed: partition-sized blocks stream zero-copy out of the memory-mapped
store straight into the fused :class:`~repro.engine.hotpath.TickArena`
(one fused pass per partition, no per-tick loop, no guard re-validation).

**Byte-identity contract.**  The alert JSONL of a store replay is
byte-identical to live ingestion of the same window — across backends
and ``PYTHONHASHSEED``, like the PR 6/7 contracts.  Two mechanisms make
that hold:

* block-fed event *content* is already identical (the arena's block
  kernel is bit-exact vs the per-tick path); only the event *grouping*
  differs.  :func:`replay_from_store` restores live order with a stable
  sort by ``(live tick of the event's window, node)`` — window ``w``
  completes at sample ``wl - 1 + w*ws``, so its live tick under chunk
  ``c`` is ``(wl - 1 + w*ws) // c``, and within a tick the live loop
  emits nodes in sorted order;
* a recording made from a guarded clean feed replays with
  ``health: "healthy"`` stamped onto every alert event (the guard's
  last-key position), exactly what the live guard appends — validated
  recordings need no guard re-validation to reproduce its output.

Replay lineage is checked, not assumed: :func:`record_fleet` stamps the
store's ``meta`` with the trained fleet's
:func:`~repro.service.checkpoint.fleet_fingerprint`, and
:func:`replay_from_store` refuses (typed :class:`FastReplayError`) to
replay a store through a different fleet.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.service.alerts import AlertSink
from repro.service.checkpoint import fleet_fingerprint
from repro.service.detector import FleetFaultDetector
from repro.service.replay import (
    SERVICE_DEFAULTS,
    FleetReplaySetup,
    ReplayOutcome,
    score_events,
)
from repro.monitoring.telestore import TelemetryRecorder, TeleStore

__all__ = [
    "FastReplayError",
    "record_fleet",
    "slice_setup",
    "replay_from_store",
]


class FastReplayError(ValueError):
    """A store/fleet mismatch or invalid replay window."""


def record_fleet(
    setup: FleetReplaySetup,
    root: str | Path,
    *,
    partition_ticks: int = 1024,
    chunk: int = SERVICE_DEFAULTS["chunk"],
    guarded: bool = True,
    extra_meta: dict | None = None,
) -> TeleStore:
    """Record a fleet's held-out feed into a new telemetry store.

    Store tick ``s`` is eval sample column ``s`` of every node, so
    store windows map 1:1 onto live replay windows.  ``meta`` captures
    everything a later replay needs to reproduce the live run:

    * ``fingerprint`` — :func:`fleet_fingerprint` of the trained fleet
      (checked on replay unless explicitly skipped);
    * ``chunk`` — the live tick size this recording stands in for
      (drives the replayer's live-order event sort);
    * ``guarded`` — whether the equivalent live run is guarded (a clean
      recording replays with ``health: "healthy"`` stamped);
    * ``wl``/``ws`` — the fleet's window geometry.
    """
    horizons = {m.shape[1] for m in setup.eval_data.values()}
    if len(horizons) != 1:
        raise FastReplayError(
            f"fleet eval horizons differ across nodes ({sorted(horizons)}); "
            "a telemetry store needs a time-aligned fleet"
        )
    meta = {
        "fingerprint": fleet_fingerprint(setup.trained),
        "chunk": int(chunk),
        "guarded": bool(guarded),
        "wl": int(setup.wl),
        "ws": int(setup.ws),
        **(extra_meta or {}),
    }
    nodes = {
        p: (m.shape[0], m.dtype) for p, m in sorted(setup.eval_data.items())
    }
    horizon = horizons.pop()
    with TelemetryRecorder.create(
        root, nodes, partition_ticks=partition_ticks, meta=meta
    ) as rec:
        for lo in range(0, horizon, partition_ticks):
            rec.append(
                {
                    p: m[:, lo : lo + partition_ticks]
                    for p, m in setup.eval_data.items()
                }
            )
    return TeleStore(root)


def slice_setup(
    setup: FleetReplaySetup, t0: int, t1: int | None = None
) -> FleetReplaySetup:
    """The live-equivalent setup for replaying the sub-window ``[t0, t1)``.

    Live ingestion of a sub-window means a *fresh* detector over the
    sliced feed, so slice window ``w`` covers samples ``[t0 + w*ws,
    t0 + w*ws + wl)`` — which lines up with full-feed window
    ``t0//ws + w`` only when ``t0`` is a window-stride multiple.  Ground
    truth is per full-feed window, so scored sub-window replays require
    that alignment (:class:`FastReplayError` otherwise; replay itself
    has no such restriction).
    """
    if t0 % setup.ws != 0:
        raise FastReplayError(
            f"scored sub-window replay needs t0 aligned to the window "
            f"stride (t0={t0}, ws={setup.ws}); ground truth is per "
            "full-feed window"
        )
    shift = t0 // setup.ws
    eval_data = {}
    truth = {}
    for p, m in setup.eval_data.items():
        hi = m.shape[1] if t1 is None else min(int(t1), m.shape[1])
        sliced = m[:, t0:hi]
        eval_data[p] = sliced
        span = sliced.shape[1]
        n_win = max(0, (span - setup.wl) // setup.ws + 1) if span >= setup.wl else 0
        truth[p] = setup.truth[p][shift : shift + n_win]
    return FleetReplaySetup(
        trained=setup.trained,
        eval_data=eval_data,
        truth=truth,
        wl=setup.wl,
        ws=setup.ws,
    )


def _live_order(events: list[dict], wl: int, ws: int, chunk: int) -> list[dict]:
    """Stable-resort block-fed events into live per-tick emission order.

    Window ``w`` is classified on the live tick that ingests sample
    ``wl - 1 + w*ws``; within a tick the live loop walks nodes in sorted
    order, and within a node the block feed already emitted events in
    window order (which the stable sort preserves)."""
    def tick_of(event: dict) -> int:
        return (wl - 1 + int(event["window"]) * ws) // chunk

    return sorted(events, key=lambda ev: (tick_of(ev), ev["node"]))


def replay_from_store(
    setup: FleetReplaySetup,
    store: TeleStore | str | Path,
    *,
    t0: int | None = None,
    t1: int | None = None,
    live_chunk: int | None = None,
    open_after: int = SERVICE_DEFAULTS["open_after"],
    close_after: int = SERVICE_DEFAULTS["close_after"],
    min_confidence: float = SERVICE_DEFAULTS["min_confidence"],
    top_blocks: int = SERVICE_DEFAULTS["top_blocks"],
    shards: int | None = None,
    backend: str = "fused",
    mode: str = "exact",
    stamp_health: bool | None = None,
    verify_fingerprint: bool = True,
    sinks: Sequence[AlertSink] = (),
) -> ReplayOutcome:
    """Re-drive a recorded ``[t0, t1)`` window at maximum speed.

    Partition-sized blocks stream out of the memory-mapped store into
    :meth:`FleetFaultDetector.process_blocks`, with the detector's
    ``max_chunk`` sized to the largest block so the fused arena absorbs
    each whole partition in one pass.  Events are then re-sorted into
    live emission order under ``live_chunk`` (default: the recorded
    ``meta["chunk"]``) and — for recordings of guarded clean feeds —
    stamped with the guard's ``health: "healthy"`` field, making the
    resulting JSONL byte-identical to live ingestion of the same window.

    ``stamp_health`` overrides the recording's ``guarded`` flag;
    ``verify_fingerprint=False`` skips the model-lineage check (only for
    stores recorded without one).  Scores are computed against sliced
    ground truth when ``t0`` is window-stride aligned; otherwise the
    replay still runs but scores report 0.0 (no truth to compare).
    """
    if not isinstance(store, TeleStore):
        store = TeleStore(store)
    expected = sorted(setup.eval_data)
    if store.paths != expected:
        raise FastReplayError(
            f"store node set {store.paths!r} does not match the fleet "
            f"{expected!r}"
        )
    if verify_fingerprint:
        recorded = store.meta.get("fingerprint")
        actual = fleet_fingerprint(setup.trained)
        if recorded is None:
            raise FastReplayError(
                "store has no recorded fleet fingerprint; pass "
                "verify_fingerprint=False to replay it anyway"
            )
        if recorded != actual:
            raise FastReplayError(
                f"fleet fingerprint mismatch: store recorded {recorded}, "
                f"this fleet is {actual} — replaying a recording through "
                "a different model would silently mis-detect"
            )
    lo = store.t0 if t0 is None else int(t0)
    hi = store.t1 if t1 is None else int(t1)
    aligned = lo % setup.ws == 0
    work = (
        slice_setup(setup, lo, hi)
        if aligned
        else FleetReplaySetup(
            trained=setup.trained,
            eval_data={
                p: m[:, lo:hi] for p, m in setup.eval_data.items()
            },
            truth={
                p: np.empty(0, dtype=np.intp) for p in setup.eval_data
            },
            wl=setup.wl,
            ws=setup.ws,
        )
    )
    max_block = max(
        (
            min(hi, p.t1) - max(lo, p.t0)
            for p in store.partitions
            if p.t1 > lo and p.t0 < hi
        ),
        default=1,
    )
    detector = FleetFaultDetector(
        setup.trained,
        open_after=open_after,
        close_after=close_after,
        min_confidence=min_confidence,
        top_blocks=top_blocks,
        shards=shards,
        record_history=True,
        backend=backend,
        mode=mode,
        max_chunk=max(1, max_block),
    )
    chunk = (
        int(store.meta.get("chunk", SERVICE_DEFAULTS["chunk"]))
        if live_chunk is None
        else int(live_chunk)
    )
    if chunk < 1:
        raise FastReplayError("live_chunk must be >= 1")
    start = time.perf_counter()
    events = detector.process_blocks(
        planes for _, planes in store.scan(lo, hi)
    )
    replay_time = time.perf_counter() - start
    events = _live_order(events, setup.wl, setup.ws, chunk)
    stamp = (
        bool(store.meta.get("guarded", False))
        if stamp_health is None
        else bool(stamp_health)
    )
    if stamp:
        for event in events:
            event["health"] = "healthy"
    for sink in sinks:
        for event in events:
            sink.emit(event)
        sink.close()
    if aligned:
        accuracy, precision, recall = score_events(events, work, detector)
    else:
        accuracy = precision = recall = 0.0
    return ReplayOutcome(
        events=events,
        n_nodes=work.n_nodes,
        n_windows=sum(detector.windows_seen(p) for p in detector.paths),
        n_alerts=sum(e["event"] == "open" for e in events),
        n_events=len(events),
        window_accuracy=accuracy,
        alert_precision=precision,
        episode_recall=recall,
        replay_time_s=replay_time,
    )

"""Fleet classifier training + lockstep batched classification.

One shared random forest classifies the signatures of *every* node of
the fleet (the cross-architecture property of CS signatures: a fixed
block count gives uniform feature lengths regardless of per-node sensor
counts).  At serving time the detector concatenates all signatures the
fleet emitted in a tick and classifies them in a single stacked-forest
pass — the per-node loop's ``nodes x emits`` single-row predict calls
collapse into one batched call, which is where the service's measured
speedup over the naive loop comes from (see
``benchmarks/test_service_scaling.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.pipeline import signature_features
from repro.datasets.generators import ComponentData
from repro.datasets.windows import window_majority_labels
from repro.engine.fleet import FleetSignatureEngine
from repro.ml.forest import RandomForestClassifier

__all__ = ["FleetClassifier", "TrainedFleet", "train_fleet"]


class FleetClassifier:
    """Batched signature classification with label decoding.

    Parameters
    ----------
    forest:
        A fitted :class:`~repro.ml.forest.RandomForestClassifier` over
        CS signature features (``[real | imag]`` layout).
    label_names:
        Class-id to display-name mapping (index = integer label).
    """

    def __init__(self, forest: RandomForestClassifier, label_names=()):
        self.forest = forest
        self.label_names = tuple(label_names)

    def classify(
        self, signatures: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Labels + confidences for a ``(k, l)`` complex signature batch.

        Returns ``(labels, confidence)``: integer class labels and the
        winning class probability per signature, from one
        ``predict_with_proba`` pass over the stacked forest.
        """
        sigs = np.asarray(signatures)
        if sigs.shape[0] == 0:
            return (
                np.empty(0, dtype=np.intp),
                np.empty(0, dtype=np.float64),
            )
        features = signature_features(sigs)
        labels, proba = self.forest.predict_with_proba(features)
        return labels, proba.max(axis=1)

    def name_of(self, label) -> str:
        """Display name of an integer class label."""
        label = int(label)
        if 0 <= label < len(self.label_names):
            return str(self.label_names[label])
        return str(label)


@dataclass
class TrainedFleet:
    """Everything the online detector needs, produced by :func:`train_fleet`.

    Attributes
    ----------
    engine:
        Per-node CS models keyed by sensor-tree paths (streams are built
        from these at ingest time).
    classifier:
        The shared :class:`FleetClassifier`.
    references:
        Per-node *healthy reference signature*: the mean training
        signature over healthy-labeled windows, used by the alert
        pipeline for root-cause attribution
        (:func:`repro.analysis.rootcause.explain_difference`).
    label_names:
        Class-id to name mapping shared by every node.
    healthy_label:
        Integer class meaning "no fault" (0 for the Fault segment).
    """

    engine: FleetSignatureEngine
    classifier: FleetClassifier
    references: dict[str, np.ndarray]
    label_names: tuple[str, ...] = ()
    healthy_label: int = 0

    @property
    def paths(self) -> list[str]:
        return self.engine.paths


def train_fleet(
    train_data: Mapping[str, ComponentData],
    *,
    blocks: int,
    wl: int,
    ws: int,
    trees: int = 50,
    seed: int = 0,
    healthy_label: int = 0,
    label_names=(),
) -> TrainedFleet:
    """Train the whole fleet from labeled per-node history.

    Parameters
    ----------
    train_data:
        Node path to its training :class:`ComponentData` (sensor matrix
        ``(n, t)`` plus per-sample integer labels).
    blocks:
        Uniform signature length ``l`` — must be an ``int`` so features
        stay mergeable across (possibly heterogeneous) nodes.
    wl, ws:
        Aggregation window length and step, in samples.
    trees, seed:
        Forest size and RNG seed of the shared classifier.
    healthy_label:
        Class meaning "no fault"; windows of this class feed the
        per-node healthy reference signatures.
    label_names:
        Class-id to name mapping for alert payloads.

    Notes
    -----
    Training signatures are computed through the *batched* fleet
    transform (bit-identical to the per-node offline path), and windows
    are labeled by per-window majority — the same convention
    :func:`repro.datasets.generators.build_ml_dataset` uses.
    """
    blocks = int(blocks)
    engine = FleetSignatureEngine(blocks=blocks, wl=wl, ws=ws)
    order = sorted(train_data)
    if not order:
        raise ValueError("train_data must name at least one node")
    for path in order:
        comp = train_data[path]
        if comp.labels is None:
            raise ValueError(f"node {path!r} has no training labels")
        engine.fit_node(path, comp.matrix, sensor_names=comp.sensor_names)
    signatures = engine.transform_fleet(
        {p: train_data[p].matrix for p in order}
    )
    features = []
    labels = []
    references: dict[str, np.ndarray] = {}
    for path in order:
        sigs = signatures[path]
        y = window_majority_labels(train_data[path].labels, wl, ws)
        if y.shape[0] != sigs.shape[0]:
            raise ValueError(
                f"node {path!r}: {sigs.shape[0]} signatures vs "
                f"{y.shape[0]} window labels"
            )
        features.append(signature_features(sigs))
        labels.append(y.astype(np.intp))
        healthy = sigs[y == healthy_label]
        references[path] = (
            healthy.mean(axis=0) if healthy.shape[0] else sigs.mean(axis=0)
        )
    X = np.concatenate(features, axis=0)
    y_all = np.concatenate(labels)
    forest = RandomForestClassifier(trees, random_state=seed).fit(X, y_all)
    return TrainedFleet(
        engine=engine,
        classifier=FleetClassifier(forest, label_names),
        references=references,
        label_names=tuple(label_names),
        healthy_label=int(healthy_label),
    )

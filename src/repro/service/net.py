"""Network-facing fleet ingestion: the ``repro serve --listen`` server.

:class:`FleetServer` puts a real transport in front of the guarded
detector.  Agents connect over TCP and push ``repro-ticks/v1`` frames
(newline-JSON or binary, see :mod:`repro.service.protocol`); frames
land in **bounded per-node queues** with an explicit backpressure
policy, and a single pump coroutine assembles one burst per global tick
and drives ``GuardedDetector.process_block`` — the *same* call the
in-process replay loop makes, which is why a clean network feed
produces alert JSONL byte-identical to ``repro detect`` of the same
configuration.

Design decisions:

* **Per-node bounded queues + policy, not unbounded buffering.**  When
  a node's queue is full, ``drop-oldest`` evicts the stalest queued
  burst (freshness wins) while ``coalesce`` replaces the newest queued
  burst with the incoming one (the tail is collapsed).  Both are
  counted and visible in ``/stats``.
* **Tick barrier.**  Tick *t* is processed once every registered node
  has a frame queued (the lockstep the batched tick path is built
  for); a ``tick_timeout`` breaks the barrier for partial fleets so a
  dead agent cannot stall the world.  Frames older than the cursor are
  dropped as late.
* **Malformed input degrades, never crashes.**  Protocol-level garbage
  resynchronizes the decoder; frame errors that still name a node are
  injected as poison blocks so the PR 7 guard quarantines the sender;
  unknown nodes surface as ``unknown-node`` guard events.
* **Single loop, blocking compute.**  The tick computation runs on the
  event loop (numpy releases the GIL where it matters and the
  container is single-CPU anyway); socket reads queue in kernel
  buffers meanwhile, which is exactly the backpressure TCP gives for
  free.

The ops HTTP surface (:mod:`repro.service.ops`) runs on a second
listener of the same loop and reads the same live objects.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.service.alerts import AlertSink, event_line
from repro.service.guard import GuardedDetector
from repro.service.protocol import Frame, FrameDecoder, FrameError
from repro.service.replay import flush_open_alerts

__all__ = [
    "BACKPRESSURE_POLICIES",
    "BackpressureConfig",
    "FleetServer",
    "ListAlertSink",
    "NodeQueue",
    "ServerStats",
    "loadgen",
    "parse_address",
]

BACKPRESSURE_POLICIES = ("drop-oldest", "coalesce")


def parse_address(address: str) -> tuple[str, int]:
    """``"host:port"`` → ``(host, port)`` (port 0 = ephemeral)."""
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"listen address must be host:port, got {address!r}"
        )
    return host, int(port)


@dataclass(frozen=True)
class BackpressureConfig:
    """Bounded-queue policy applied to every node's ingress queue."""

    queue_max: int = 1024
    policy: str = "drop-oldest"

    def __post_init__(self):
        if self.queue_max < 1:
            raise ValueError("queue_max must be >= 1")
        if self.policy not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"policy must be one of {BACKPRESSURE_POLICIES}, "
                f"got {self.policy!r}"
            )


class NodeQueue:
    """One node's bounded ingress queue of ``(tick, values, samples)``.

    ``push`` never blocks and never grows past ``queue_max``; overflow
    resolves by policy — ``drop-oldest`` evicts the head (stalest
    burst), ``coalesce`` replaces the tail (newest queued burst) with
    the incoming one.  Eviction counts are kept per queue and rolled
    into the server stats.
    """

    __slots__ = ("entries", "queue_max", "policy", "dropped", "coalesced")

    def __init__(self, config: BackpressureConfig):
        self.entries: deque = deque()
        self.queue_max = config.queue_max
        self.policy = config.policy
        self.dropped = 0
        self.coalesced = 0

    def __len__(self) -> int:
        return len(self.entries)

    def push(self, tick: int, values, samples: int) -> None:
        if len(self.entries) >= self.queue_max:
            if self.policy == "coalesce":
                self.entries.pop()
                self.coalesced += 1
            else:
                self.entries.popleft()
                self.dropped += 1
        self.entries.append((tick, values, samples))


class ServerStats:
    """Live counters + a bounded tick-latency ring for p50/p99."""

    LATENCY_RING = 4096

    def __init__(self):
        self.frames = 0
        self.samples = 0
        self.ticks = 0
        self.events = 0
        self.alerts_opened = 0
        self.connections = 0
        self.dropped = 0
        self.coalesced = 0
        self.late_dropped = 0
        self.garbage = 0
        self.poisoned = 0
        self.strays = 0
        self.stray_dropped = 0
        self._latencies: deque = deque(maxlen=self.LATENCY_RING)
        self._first_frame_t: float | None = None
        self._last_tick_t: float | None = None

    def observe_frame(self, samples: int) -> None:
        if self._first_frame_t is None:
            self._first_frame_t = time.perf_counter()
        self.frames += 1
        self.samples += samples

    def observe_tick(self, latency_s: float, events: int, opened: int) -> None:
        self.ticks += 1
        self.events += events
        self.alerts_opened += opened
        self._latencies.append(latency_s)
        self._last_tick_t = time.perf_counter()

    def _percentiles(self) -> tuple[float, float]:
        if not self._latencies:
            return 0.0, 0.0
        lat = np.sort(np.asarray(self._latencies, dtype=np.float64))
        return (
            float(lat[int(0.50 * (lat.size - 1))]),
            float(lat[int(0.99 * (lat.size - 1))]),
        )

    @property
    def elapsed_s(self) -> float:
        """Wall clock from first ingested frame to last processed tick."""
        if self._first_frame_t is None or self._last_tick_t is None:
            return 0.0
        return max(self._last_tick_t - self._first_frame_t, 0.0)

    @property
    def samples_per_s(self) -> float:
        elapsed = self.elapsed_s
        return self.samples / elapsed if elapsed > 0 else 0.0

    def snapshot(self) -> dict:
        """The ``/stats`` payload."""
        p50, p99 = self._percentiles()
        return {
            "frames": self.frames,
            "samples": self.samples,
            "ticks": self.ticks,
            "events": self.events,
            "alerts_opened": self.alerts_opened,
            "connections": self.connections,
            "elapsed_s": round(self.elapsed_s, 6),
            "samples_per_s": round(self.samples_per_s, 1),
            "tick_latency_p50_ms": round(p50 * 1e3, 4),
            "tick_latency_p99_ms": round(p99 * 1e3, 4),
            "backpressure": {
                "dropped": self.dropped,
                "coalesced": self.coalesced,
                "late_dropped": self.late_dropped,
            },
            "protocol": {
                "garbage": self.garbage,
                "poisoned": self.poisoned,
                "strays": self.strays,
                "stray_dropped": self.stray_dropped,
            },
        }


class ListAlertSink(AlertSink):
    """Collect canonical event lines in memory (tests + equivalence)."""

    def __init__(self):
        self.lines: list[str] = []

    def emit(self, event: dict) -> None:
        self.lines.append(event_line(event))

    def text(self) -> str:
        return "".join(line + "\n" for line in self.lines)


class FleetServer:
    """The asyncio ingestion front-end around one guarded detector.

    Parameters
    ----------
    detector:
        A :class:`~repro.service.guard.GuardedDetector` (a bare
        detector is wrapped — network input is untrusted by
        definition, the guard boundary is not optional here).
    host, port:
        Ingestion listener (port 0 binds an ephemeral port; the bound
        port lands in :attr:`port` and optionally ``port_file``).
    ops_host, ops_port:
        Optional HTTP ops listener (``None`` host disables; port 0 ok).
    sinks:
        :class:`~repro.service.alerts.AlertSink` consumers of the live
        event stream (the ops alert log is always added).
    backpressure:
        :class:`BackpressureConfig` for every per-node queue.
    tick_timeout:
        Seconds the tick barrier waits for a complete fleet before
        processing a partial burst (a dead agent must not stall the
        world).
    exit_on_idle:
        Stop once at least one connection was served and all
        connections have closed with every queue drained (CI/loadgen
        mode).  An ``{"op": "eof"}`` control frame has the same effect.
    port_file:
        Write the bound ingestion port here once listening (how
        scripted callers discover an ephemeral port).  When the ops
        listener is enabled, its bound port lands in a companion
        ``<port_file>.ops`` file.
    """

    #: Cap on distinct unknown-node paths buffered between ticks.
    MAX_STRAY_NODES = 256

    def __init__(
        self,
        detector,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        ops_host: str | None = None,
        ops_port: int | None = None,
        sinks: tuple = (),
        backpressure: BackpressureConfig | None = None,
        tick_timeout: float = 5.0,
        exit_on_idle: bool = False,
        port_file: str | Path | None = None,
    ):
        from repro.service.ops import AlertLog

        if not isinstance(detector, GuardedDetector):
            detector = GuardedDetector(detector)
        self.guarded = detector
        self.host = host
        self.requested_port = int(port)
        self.ops_host = ops_host
        self.requested_ops_port = int(ops_port) if ops_port is not None else 0
        self.backpressure = backpressure or BackpressureConfig()
        self.tick_timeout = float(tick_timeout)
        self.exit_on_idle = bool(exit_on_idle)
        self.port_file = Path(port_file) if port_file else None
        self.alert_log = AlertLog()
        self.sinks = tuple(sinks) + (self.alert_log,)
        self.stats = ServerStats()
        self._queues: dict[str, NodeQueue] = {
            p: NodeQueue(self.backpressure) for p in detector.paths
        }
        if not self._queues:
            # An empty fleet would make the barrier trivially complete
            # and spin the pump forever; refuse it up front.
            raise ValueError(
                "detector has no registered node paths to serve"
            )
        #: Stray (unknown-node) values pending guard injection at the
        #: next tick: newest frame per unknown path, capped at
        #: MAX_STRAY_NODES distinct paths so a client streaming unknown
        #: nodes during a barrier stall cannot grow server memory.
        self._pending: dict[str, object] = {}
        self._cursor = 0
        self._open_conns = 0
        self._had_conn = False
        self._eof_seen = False
        self._stop_requested = False
        self._finalized = False
        self._wake: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        #: Bound ports, valid once :attr:`ready` is set.
        self.port: int | None = None
        self.ops_bound_port: int | None = None
        self.ready = threading.Event()

    # -- ingress -------------------------------------------------------
    def _frame_samples(self, values) -> int:
        if isinstance(values, np.ndarray):
            return int(values.shape[1]) if values.ndim == 2 else 0
        try:
            return len(values[0])
        except (TypeError, IndexError, KeyError):
            return 0

    def _route_frame(self, frame: Frame) -> None:
        if frame.control is not None:
            if frame.control == "eof":
                self._eof_seen = True
            return
        samples = self._frame_samples(frame.values)
        self.stats.observe_frame(samples)
        queue = self._queues.get(frame.node)
        if queue is None:
            # Unknown node: hand it to the guard at the next tick so
            # the stray shows up as an `unknown-node` guard event.
            # Bounded: one (newest) frame per unknown path, at most
            # MAX_STRAY_NODES paths — excess is counted, not kept.
            self.stats.strays += 1
            if (
                frame.node in self._pending
                or len(self._pending) < self.MAX_STRAY_NODES
            ):
                self._pending[frame.node] = frame.values
            else:
                self.stats.stray_dropped += 1
            return
        if frame.tick < self._cursor:
            self.stats.late_dropped += 1
            return
        queue.push(frame.tick, frame.values, samples)

    def _route_error(self, error: FrameError) -> None:
        self.stats.garbage += 1
        if error.node and error.node in self._queues:
            # A broken frame that still names a registered node becomes
            # a poison block: the guard classifies it (shape-mismatch)
            # and the node degrades/quarantines per PR 7 policy.
            self.stats.poisoned += 1
            queue = self._queues[error.node]
            tick = (
                queue.entries[-1][0] + 1 if queue.entries else self._cursor
            )
            queue.push(tick, None, 0)

    async def _handle_conn(self, reader, writer):
        self.stats.connections += 1
        self._open_conns += 1
        self._had_conn = True
        decoder = FrameDecoder()
        try:
            while True:
                data = await reader.read(1 << 16)
                if not data:
                    break
                frames, errors = decoder.feed(data)
                for frame in frames:
                    self._route_frame(frame)
                for error in errors:
                    self._route_error(error)
                if frames or errors:
                    self._wake.set()
        except (ConnectionResetError, asyncio.CancelledError):
            pass
        finally:
            for error in decoder.eof():
                self._route_error(error)
            self._open_conns -= 1
            self._wake.set()
            try:
                writer.close()
            except OSError:  # pragma: no cover - teardown race
                pass

    # -- the pump ------------------------------------------------------
    def _draining(self) -> bool:
        """No more input is coming; finish what is queued and stop."""
        if self._stop_requested:
            return True
        return (
            self._open_conns == 0
            and self._had_conn
            and (self._eof_seen or self.exit_on_idle)
        )

    def _drop_stale(self) -> None:
        for queue in self._queues.values():
            entries = queue.entries
            while entries and entries[0][0] < self._cursor:
                entries.popleft()
                self.stats.late_dropped += 1

    def _barrier_complete(self) -> bool:
        return all(q.entries for q in self._queues.values())

    def _any_queued(self) -> bool:
        return bool(self._pending) or any(
            q.entries for q in self._queues.values()
        )

    def _process_tick(self) -> None:
        cursor = self._cursor
        burst: dict = {}
        tick_samples = 0
        for path, queue in self._queues.items():
            entries = queue.entries
            if entries and entries[0][0] == cursor:
                _, values, samples = entries.popleft()
                burst[path] = values
                tick_samples += samples
        for node, values in self._pending.items():
            burst.setdefault(node, values)
        self._pending.clear()
        t0 = time.perf_counter()
        events = self.guarded.process_block(burst, tick=cursor)
        latency = time.perf_counter() - t0
        opened = 0
        for event in events:
            opened += event.get("event") == "open"
            for sink in self.sinks:
                sink.emit(event)
        self.stats.observe_tick(latency, len(events), opened)
        self._cursor = cursor + 1

    def _advance_to_next_queued(self) -> None:
        """Jump the cursor to the earliest queued tick (partial fleet)."""
        ticks = [
            q.entries[0][0] for q in self._queues.values() if q.entries
        ]
        if ticks and min(ticks) > self._cursor:
            self._cursor = min(ticks)

    async def _pump(self):
        loop = asyncio.get_running_loop()
        # Absolute barrier deadline: armed when data first sits waiting
        # on an incomplete barrier, disarmed only by processing a tick.
        # It must NOT restart on every wake — live nodes sending faster
        # than tick_timeout would then postpone the timeout forever and
        # one dead agent *would* stall the world.
        deadline: float | None = None
        while True:
            self._drop_stale()
            if self._barrier_complete():
                self._process_tick()
                deadline = None
                # The complete-barrier path has no await of its own:
                # yield so socket readers and the ops listener run even
                # through long streaks of complete barriers.
                await asyncio.sleep(0)
                continue
            if self._draining():
                if not self._any_queued():
                    break
                self._advance_to_next_queued()
                self._process_tick()
                deadline = None
                await asyncio.sleep(0)
                continue
            if self._any_queued():
                now = loop.time()
                if deadline is None:
                    deadline = now + self.tick_timeout
                if now >= deadline:
                    # Partial fleet: this data has waited a full
                    # tick_timeout — process what arrived so a dead
                    # agent can't stall ticks.
                    self._advance_to_next_queued()
                    self._process_tick()
                    deadline = None
                    await asyncio.sleep(0)
                    continue
                timeout = deadline - now
            else:
                deadline = None
                timeout = None
            self._wake.clear()
            try:
                await asyncio.wait_for(self._wake.wait(), timeout=timeout)
            except asyncio.TimeoutError:
                pass

    # -- lifecycle -----------------------------------------------------
    def _gather_backpressure(self) -> None:
        self.stats.dropped = sum(q.dropped for q in self._queues.values())
        self.stats.coalesced = sum(
            q.coalesced for q in self._queues.values()
        )

    def _finalize(self, *, interrupted: bool) -> None:
        if self._finalized:
            return
        self._finalized = True
        self._gather_backpressure()
        if interrupted:
            for event in flush_open_alerts(self.guarded):
                for sink in self.sinks:
                    sink.emit(event)
        for sink in self.sinks:
            sink.close()

    async def _main(self):
        from repro.service.ops import OpsProtocolServer

        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_conn, self.host, self.requested_port
        )
        self.port = server.sockets[0].getsockname()[1]
        ops_server = None
        if self.ops_host is not None:
            ops = OpsProtocolServer(self)
            ops_server = await asyncio.start_server(
                ops.handle, self.ops_host, self.requested_ops_port
            )
            self.ops_bound_port = ops_server.sockets[0].getsockname()[1]
        if self.port_file is not None:
            self.port_file.parent.mkdir(parents=True, exist_ok=True)
            self.port_file.write_text(f"{self.port}\n", encoding="utf-8")
            if self.ops_bound_port is not None:
                self.port_file.with_name(
                    self.port_file.name + ".ops"
                ).write_text(f"{self.ops_bound_port}\n", encoding="utf-8")
        self.ready.set()
        try:
            await self._pump()
        finally:
            server.close()
            if ops_server is not None:
                ops_server.close()
            await server.wait_closed()
            if ops_server is not None:
                await ops_server.wait_closed()

    def run(self) -> None:
        """Serve until drained/stopped (blocking; Ctrl-C flushes)."""
        try:
            asyncio.run(self._main())
        except KeyboardInterrupt:
            self._finalize(interrupted=True)
            raise
        finally:
            self.ready.set()  # never leave a waiter hanging on failure
            self._finalize(interrupted=False)

    def start_background(self) -> threading.Thread:
        """Run the server in a daemon thread (tests / benchmarks)."""
        thread = threading.Thread(target=self.run, daemon=True)
        thread.start()
        return thread

    def request_stop(self) -> None:
        """Thread-safe: drain what is queued, then stop."""
        loop = self._loop
        if loop is None:
            self._stop_requested = True
            return

        def _stop():
            self._stop_requested = True
            if self._wake is not None:
                self._wake.set()

        loop.call_soon_threadsafe(_stop)


def loadgen(
    setup,
    address: tuple[str, int],
    *,
    chunk: int,
    fmt: str = "binary",
    interval: float = 0.0,
    max_ticks: int | None = None,
    send_eof: bool = True,
) -> dict:
    """Drive a server with the exact feed ``replay()`` would process.

    Connects a plain blocking socket to ``address`` and streams one
    frame per (node, tick) over the held-out period of ``setup`` —
    tick *t* carries samples ``[t*chunk, (t+1)*chunk)``, nodes in
    sorted order, so a clean run reproduces the in-process replay's
    burst grouping (and therefore its alert bytes) exactly.

    Payload bytes are cached per underlying eval matrix, so replicated
    fleets (:func:`repro.service.api.replicate_setup`) encode each
    distinct burst once regardless of fleet size.

    Returns ``{"ticks", "frames", "bytes", "seconds"}``.
    """
    import socket

    from repro.service.protocol import encode_binary, encode_eof, encode_json

    if fmt not in ("binary", "json"):
        raise ValueError(f"fmt must be 'binary' or 'json', got {fmt!r}")
    horizon = max(m.shape[1] for m in setup.eval_data.values())
    n_ticks = (horizon + chunk - 1) // chunk
    if max_ticks is not None:
        n_ticks = min(n_ticks, int(max_ticks))
    paths = sorted(setup.eval_data)
    frames = 0
    total = 0
    # Replicas alias the same eval matrix: encode each distinct
    # (matrix, tick) payload once and only re-emit the cheap header.
    payload_cache: dict[tuple[int, int], bytes] = {}
    start = time.perf_counter()
    with socket.create_connection(address) as sock:
        for ti in range(n_ticks):
            lo = ti * chunk
            out = bytearray()
            for path in paths:
                m = setup.eval_data[path]
                if lo >= m.shape[1]:
                    continue
                if fmt == "binary":
                    key = (id(m), ti)
                    cached = payload_cache.get(key)
                    if cached is None:
                        cached = encode_binary(
                            "", ti, m[:, lo : lo + chunk]
                        )
                        payload_cache[key] = cached
                    # Patch the node path into the cached frame: the
                    # header is fixed-size, the path sits right after.
                    out += _patch_binary_path(cached, path)
                else:
                    out += encode_json(path, ti, m[:, lo : lo + chunk])
                frames += 1
            sock.sendall(out)
            total += len(out)
            if interval > 0.0:
                time.sleep(interval)
        if send_eof:
            sock.sendall(encode_eof())
    return {
        "ticks": n_ticks,
        "frames": frames,
        "bytes": total,
        "seconds": time.perf_counter() - start,
    }


def _patch_binary_path(frame: bytes, path: str) -> bytes:
    """Rewrite the (empty) node path of a cached binary frame."""
    import struct

    from repro.service.protocol import _HEADER, MAGIC

    encoded = path.encode("utf-8")
    body_len = struct.unpack_from("<I", frame, len(MAGIC))[0] + len(encoded)
    header = bytearray(frame[len(MAGIC) + 4 : len(MAGIC) + 4 + _HEADER.size])
    struct.pack_into("<H", header, 1, len(encoded))
    return (
        MAGIC
        + struct.pack("<I", body_len)
        + bytes(header)
        + encoded
        + frame[len(MAGIC) + 4 + _HEADER.size :]
    )

"""Network-facing fleet ingestion: the ``repro serve --listen`` server.

:class:`FleetServer` puts a real transport in front of the guarded
detector.  Agents connect over TCP and push ``repro-ticks/v1`` frames
(newline-JSON or binary, see :mod:`repro.service.protocol`); frames
land in **bounded per-node queues** with an explicit backpressure
policy, and a single pump coroutine assembles one burst per global tick
and drives ``GuardedDetector.process_block`` — the *same* call the
in-process replay loop makes, which is why a clean network feed
produces alert JSONL byte-identical to ``repro detect`` of the same
configuration.

Design decisions:

* **Per-node bounded queues + policy, not unbounded buffering.**  When
  a node's queue is full, ``drop-oldest`` evicts the stalest queued
  burst (freshness wins) while ``coalesce`` replaces the newest queued
  burst with the incoming one (the tail is collapsed).  Both are
  counted and visible in ``/stats``.
* **Tick barrier.**  Tick *t* is processed once every registered node
  has a frame queued (the lockstep the batched tick path is built
  for); a ``tick_timeout`` breaks the barrier for partial fleets so a
  dead agent cannot stall the world.  Frames older than the cursor are
  dropped as late.
* **Malformed input degrades, never crashes.**  Protocol-level garbage
  resynchronizes the decoder; frame errors that still name a node are
  injected as poison blocks so the PR 7 guard quarantines the sender;
  unknown nodes surface as ``unknown-node`` guard events.
* **Single loop, blocking compute.**  The tick computation runs on the
  event loop (numpy releases the GIL where it matters and the
  container is single-CPU anyway); socket reads queue in kernel
  buffers meanwhile, which is exactly the backpressure TCP gives for
  free.

The ops HTTP surface (:mod:`repro.service.ops`) runs on a second
listener of the same loop and reads the same live objects.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.service.alerts import AlertSink, event_line
from repro.service.guard import GuardedDetector
from repro.service.protocol import Frame, FrameDecoder, FrameError, encode_ack
from repro.service.replay import flush_open_alerts
from repro.service.wal import (
    REC_ERROR,
    REC_FRAME,
    REC_WATERMARK,
    WalWriter,
    decode_frame_record,
    encode_frame_payload,
)

__all__ = [
    "BACKPRESSURE_POLICIES",
    "BackpressureConfig",
    "FleetServer",
    "ListAlertSink",
    "NodeQueue",
    "ServerCheckpoint",
    "ServerStats",
    "loadgen",
    "parse_address",
]

BACKPRESSURE_POLICIES = ("drop-oldest", "coalesce")

#: WAL records appended-but-not-fsynced beyond which ``/health``
#: reports the ``wal-flush-lag`` degraded reason.
WAL_LAG_DEGRADED = 4096

#: Consecutive barrier-timeout ticks beyond which ``/health`` reports
#: the ``barrier-timeout-streak`` degraded reason.
TIMEOUT_STREAK_DEGRADED = 3


def parse_address(address: str) -> tuple[str, int]:
    """``"host:port"`` → ``(host, port)`` (port 0 = ephemeral)."""
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"listen address must be host:port, got {address!r}"
        )
    return host, int(port)


@dataclass(frozen=True)
class BackpressureConfig:
    """Bounded-queue policy applied to every node's ingress queue."""

    queue_max: int = 1024
    policy: str = "drop-oldest"

    def __post_init__(self):
        if self.queue_max < 1:
            raise ValueError("queue_max must be >= 1")
        if self.policy not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"policy must be one of {BACKPRESSURE_POLICIES}, "
                f"got {self.policy!r}"
            )


class NodeQueue:
    """One node's bounded ingress queue of ``(tick, values, samples)``.

    ``push`` never blocks and never grows past ``queue_max``; overflow
    resolves by policy — ``drop-oldest`` evicts the head (stalest
    burst), ``coalesce`` replaces the tail (newest queued burst) with
    the incoming one.  Eviction counts are kept per queue and rolled
    into the server stats.
    """

    __slots__ = ("entries", "queue_max", "policy", "dropped", "coalesced")

    def __init__(self, config: BackpressureConfig):
        self.entries: deque = deque()
        self.queue_max = config.queue_max
        self.policy = config.policy
        self.dropped = 0
        self.coalesced = 0

    def __len__(self) -> int:
        return len(self.entries)

    def push(self, tick: int, values, samples: int) -> None:
        entries = self.entries
        # Duplicate of a queued tick (a resuming client retransmitting
        # after loss): the retransmission replaces the queued burst in
        # place — no growth, no eviction.
        for i in range(len(entries) - 1, -1, -1):
            queued = entries[i][0]
            if queued == tick:
                entries[i] = (tick, values, samples)
                return
            if queued < tick:
                break
        if len(entries) >= self.queue_max:
            if self.policy == "coalesce":
                entries.pop()
                self.coalesced += 1
            else:
                entries.popleft()
                self.dropped += 1
        # Ordered insert keeps the deque sorted by tick so the barrier
        # can trust the head; the in-order case is a plain append.
        if not entries or tick >= entries[-1][0]:
            entries.append((tick, values, samples))
            return
        for i in range(len(entries) - 1, -1, -1):
            if entries[i][0] < tick:
                entries.insert(i + 1, (tick, values, samples))
                return
        entries.appendleft((tick, values, samples))


class ServerStats:
    """Live counters + a bounded tick-latency ring for p50/p99."""

    LATENCY_RING = 4096

    def __init__(self):
        self.frames = 0
        self.samples = 0
        self.ticks = 0
        self.events = 0
        self.alerts_opened = 0
        self.connections = 0
        self.dropped = 0
        self.coalesced = 0
        self.late_dropped = 0
        self.garbage = 0
        self.poisoned = 0
        self.strays = 0
        self.stray_dropped = 0
        self.wal_appended = 0
        self.wal_fsyncs = 0
        self.wal_replayed = 0
        self.checkpoints = 0
        self._latencies: deque = deque(maxlen=self.LATENCY_RING)
        self._first_frame_t: float | None = None
        self._last_tick_t: float | None = None

    def observe_frame(self, samples: int) -> None:
        if self._first_frame_t is None:
            self._first_frame_t = time.perf_counter()
        self.frames += 1
        self.samples += samples

    def observe_tick(self, latency_s: float, events: int, opened: int) -> None:
        self.ticks += 1
        self.events += events
        self.alerts_opened += opened
        self._latencies.append(latency_s)
        self._last_tick_t = time.perf_counter()

    def _percentiles(self) -> tuple[float, float]:
        if not self._latencies:
            return 0.0, 0.0
        lat = np.sort(np.asarray(self._latencies, dtype=np.float64))
        return (
            float(lat[int(0.50 * (lat.size - 1))]),
            float(lat[int(0.99 * (lat.size - 1))]),
        )

    @property
    def elapsed_s(self) -> float:
        """Wall clock from first ingested frame to last processed tick."""
        if self._first_frame_t is None or self._last_tick_t is None:
            return 0.0
        return max(self._last_tick_t - self._first_frame_t, 0.0)

    @property
    def samples_per_s(self) -> float:
        elapsed = self.elapsed_s
        return self.samples / elapsed if elapsed > 0 else 0.0

    def snapshot(self) -> dict:
        """The ``/stats`` payload."""
        p50, p99 = self._percentiles()
        return {
            "frames": self.frames,
            "samples": self.samples,
            "ticks": self.ticks,
            "events": self.events,
            "alerts_opened": self.alerts_opened,
            "connections": self.connections,
            "elapsed_s": round(self.elapsed_s, 6),
            "samples_per_s": round(self.samples_per_s, 1),
            "tick_latency_p50_ms": round(p50 * 1e3, 4),
            "tick_latency_p99_ms": round(p99 * 1e3, 4),
            "backpressure": {
                "dropped": self.dropped,
                "coalesced": self.coalesced,
                "late_dropped": self.late_dropped,
            },
            "protocol": {
                "garbage": self.garbage,
                "poisoned": self.poisoned,
                "strays": self.strays,
                "stray_dropped": self.stray_dropped,
            },
            "wal_appended": self.wal_appended,
            "wal_fsyncs": self.wal_fsyncs,
            "wal_replayed": self.wal_replayed,
            "checkpoints": self.checkpoints,
        }


class ListAlertSink(AlertSink):
    """Collect canonical event lines in memory (tests + equivalence)."""

    def __init__(self):
        self.lines: list[str] = []

    def emit(self, event: dict) -> None:
        self.lines.append(event_line(event))

    def text(self) -> str:
        return "".join(line + "\n" for line in self.lines)


@dataclass(frozen=True)
class ServerCheckpoint:
    """Networked checkpointing config for :class:`FleetServer`.

    ``fingerprint`` is the trained fleet's lineage hash
    (:func:`repro.service.checkpoint.fleet_fingerprint`) and ``chunk``
    the serving burst size — both are pinned into the archive so a
    restart can never silently resume against a different fleet or
    tick geometry.  Checkpoints are written between ticks (never
    mid-burst), every ``every`` processed ticks and once more at
    shutdown.
    """

    path: Path
    every: int = 1
    fingerprint: str = ""
    chunk: int = 0

    def __post_init__(self):
        object.__setattr__(self, "path", Path(self.path))
        if self.every < 1:
            raise ValueError("checkpoint every must be >= 1")


class FleetServer:
    """The asyncio ingestion front-end around one guarded detector.

    Parameters
    ----------
    detector:
        A :class:`~repro.service.guard.GuardedDetector` (a bare
        detector is wrapped — network input is untrusted by
        definition, the guard boundary is not optional here).
    host, port:
        Ingestion listener (port 0 binds an ephemeral port; the bound
        port lands in :attr:`port` and optionally ``port_file``).
    ops_host, ops_port:
        Optional HTTP ops listener (``None`` host disables; port 0 ok).
    sinks:
        :class:`~repro.service.alerts.AlertSink` consumers of the live
        event stream (the ops alert log is always added).
    backpressure:
        :class:`BackpressureConfig` for every per-node queue.
    tick_timeout:
        Seconds the tick barrier waits for a complete fleet before
        processing a partial burst (a dead agent must not stall the
        world).
    exit_on_idle:
        Stop once at least one connection was served and all
        connections have closed with every queue drained (CI/loadgen
        mode).  An ``{"op": "eof"}`` control frame has the same effect.
    idle_grace:
        Seconds a fully-idle ``exit_on_idle`` server waits before
        treating the silence as end-of-stream (an explicit EOF frame
        skips the wait).  Covers the reconnect gap a client needs
        after a connection reset — without it a chaos-proxy reset
        would shut the server down mid-stream.
    port_file:
        Write the bound ingestion port here once listening (how
        scripted callers discover an ephemeral port).  When the ops
        listener is enabled, its bound port lands in a companion
        ``<port_file>.ops`` file.  Both are deleted again on shutdown
        so supervisors can never connect to a stale port.
    wal:
        ``repro-wal/v1`` journal directory (or a prepared
        :class:`~repro.service.wal.WalWriter`).  Every accepted data
        frame is journaled *before* queueing and a watermark record is
        stamped after each processed tick; on startup the journal is
        recovered and replayed (``wal_fsync`` picks the fsync policy
        for a directory).
    checkpoint:
        :class:`ServerCheckpoint` — snapshot detector + guard + queue
        state between ticks; combined with ``wal`` a ``kill -9``
        restart reproduces the uninterrupted alert stream byte for
        byte.
    """

    #: Cap on distinct unknown-node paths buffered between ticks.
    MAX_STRAY_NODES = 256

    def __init__(
        self,
        detector,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        ops_host: str | None = None,
        ops_port: int | None = None,
        sinks: tuple = (),
        backpressure: BackpressureConfig | None = None,
        tick_timeout: float = 5.0,
        exit_on_idle: bool = False,
        idle_grace: float = 1.0,
        port_file: str | Path | None = None,
        wal: WalWriter | str | Path | None = None,
        wal_fsync: str = "tick",
        checkpoint: ServerCheckpoint | None = None,
    ):
        from repro.service.ops import AlertLog

        if not isinstance(detector, GuardedDetector):
            detector = GuardedDetector(detector)
        self.guarded = detector
        self.host = host
        self.requested_port = int(port)
        self.ops_host = ops_host
        self.requested_ops_port = int(ops_port) if ops_port is not None else 0
        self.backpressure = backpressure or BackpressureConfig()
        self.tick_timeout = float(tick_timeout)
        self.exit_on_idle = bool(exit_on_idle)
        self.idle_grace = float(idle_grace)
        self.port_file = Path(port_file) if port_file else None
        self.alert_log = AlertLog()
        self.sinks = tuple(sinks) + (self.alert_log,)
        self.stats = ServerStats()
        self._queues: dict[str, NodeQueue] = {
            p: NodeQueue(self.backpressure) for p in detector.paths
        }
        if not self._queues:
            # An empty fleet would make the barrier trivially complete
            # and spin the pump forever; refuse it up front.
            raise ValueError(
                "detector has no registered node paths to serve"
            )
        #: Stray (unknown-node) values pending guard injection at the
        #: next tick: newest frame per unknown path, capped at
        #: MAX_STRAY_NODES distinct paths so a client streaming unknown
        #: nodes during a barrier stall cannot grow server memory.
        self._pending: dict[str, object] = {}
        self._cursor = 0
        self._open_conns = 0
        self._had_conn = False
        self._eof_seen = False
        #: Monotonic moment ``_draining`` first observed the server
        #: idle (no open connections, no EOF); cleared whenever a
        #: connection is open.  Gates ``exit_on_idle`` on
        #: ``idle_grace``.
        self._idle_since: float | None = None
        self._stop_requested = False
        self._finalized = False
        self._wake: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        # -- durability ------------------------------------------------
        if isinstance(wal, WalWriter):
            self._wal: WalWriter | None = wal
            self._wal_dir: Path | None = None
        else:
            self._wal = None
            self._wal_dir = Path(wal) if wal else None
        self._wal_fsync = wal_fsync
        self.checkpoint = checkpoint
        #: Emitted events retained for checkpoint archives (only when
        #: checkpointing — a non-durable server keeps nothing).
        self._events: list[dict] = []
        self._n_events = 0
        self._n_alerts = 0
        self._ticks_done = 0
        self._recovering = False
        self._recovered = False
        self._timeout_streak = 0
        #: Writers of connections that opted into per-tick acks.
        self._ack_subs: set = set()
        #: Bound ports, valid once :attr:`ready` is set.
        self.port: int | None = None
        self.ops_bound_port: int | None = None
        self.ready = threading.Event()

    # -- ingress -------------------------------------------------------
    def _frame_samples(self, values) -> int:
        if isinstance(values, np.ndarray):
            return int(values.shape[1]) if values.ndim == 2 else 0
        try:
            return len(values[0])
        except (TypeError, IndexError, KeyError):
            return 0

    def _route_frame(self, frame: Frame) -> None:
        if frame.control is not None:
            if frame.control == "eof":
                self._eof_seen = True
            return
        samples = self._frame_samples(frame.values)
        self.stats.observe_frame(samples)
        if self._wal is not None and not self._recovering:
            # Journal before queueing: once routing mutates state, the
            # frame must be replayable or a crash diverges.
            self._wal.append_frame(frame.node, frame.tick, frame.values)
        queue = self._queues.get(frame.node)
        if queue is None:
            # Unknown node: hand it to the guard at the next tick so
            # the stray shows up as an `unknown-node` guard event.
            # Bounded: one (newest) frame per unknown path, at most
            # MAX_STRAY_NODES paths — excess is counted, not kept.
            self.stats.strays += 1
            if (
                frame.node in self._pending
                or len(self._pending) < self.MAX_STRAY_NODES
            ):
                self._pending[frame.node] = frame.values
            else:
                self.stats.stray_dropped += 1
            return
        if frame.tick < self._cursor:
            self.stats.late_dropped += 1
            return
        queue.push(frame.tick, frame.values, samples)

    def _route_error(self, error: FrameError) -> None:
        self.stats.garbage += 1
        if error.node and error.node in self._queues:
            # A broken frame that still names a registered node becomes
            # a poison block: the guard classifies it (shape-mismatch)
            # and the node degrades/quarantines per PR 7 policy.
            if self._wal is not None and not self._recovering:
                # Poison pushes mutate queue state: journal them so a
                # replayed log quarantines the same nodes.
                self._wal.append_error(error.reason, error.node)
            self.stats.poisoned += 1
            queue = self._queues[error.node]
            tick = (
                queue.entries[-1][0] + 1 if queue.entries else self._cursor
            )
            queue.push(tick, None, 0)

    async def _handle_conn(self, reader, writer):
        self.stats.connections += 1
        self._open_conns += 1
        self._had_conn = True
        decoder = FrameDecoder()
        try:
            while True:
                data = await reader.read(1 << 16)
                if not data:
                    break
                frames, errors = decoder.feed(data)
                for frame in frames:
                    if frame.control == "acks":
                        # The sender wants per-tick acks (reconnecting
                        # clients resume from the last acked tick).
                        self._ack_subs.add(writer)
                    self._route_frame(frame)
                for error in errors:
                    self._route_error(error)
                if frames or errors:
                    self._wake.set()
        except (ConnectionResetError, asyncio.CancelledError):
            pass
        finally:
            for error in decoder.eof():
                self._route_error(error)
            self._ack_subs.discard(writer)
            self._open_conns -= 1
            self._wake.set()
            try:
                writer.close()
            except OSError:  # pragma: no cover - teardown race
                pass

    # -- the pump ------------------------------------------------------
    def _draining(self) -> bool:
        """No more input is coming; finish what is queued and stop."""
        if self._stop_requested:
            return True
        if self._open_conns > 0 or not self._had_conn:
            self._idle_since = None
            return False
        if self._eof_seen:
            return True
        if not self.exit_on_idle:
            return False
        # exit_on_idle without an explicit EOF: hold the door open for
        # ``idle_grace`` — a reconnecting client (e.g. after a chaos
        # proxy reset) is gone for a backoff interval, which must not
        # read as "stream over".
        now = time.monotonic()
        if self._idle_since is None:
            self._idle_since = now
        return now - self._idle_since >= self.idle_grace

    def _drop_stale(self) -> None:
        for queue in self._queues.values():
            entries = queue.entries
            while entries and entries[0][0] < self._cursor:
                entries.popleft()
                self.stats.late_dropped += 1

    def _barrier_complete(self) -> bool:
        # Every node's queue must hold the tick *at the cursor* — a
        # merely non-empty queue is not enough.  When loss (a chaos
        # transport, a crashed sender) wipes one tick for every node,
        # the queues all hold tick N+1 while the cursor is at N; a
        # non-empty check would then process — and ack — an empty
        # tick N, and a resuming client would trust that ack and never
        # retransmit the lost data.
        cursor = self._cursor
        return all(
            q.entries and q.entries[0][0] == cursor
            for q in self._queues.values()
        )

    def _any_queued(self) -> bool:
        return bool(self._pending) or any(
            q.entries for q in self._queues.values()
        )

    def _process_tick(self) -> None:
        cursor = self._cursor
        burst: dict = {}
        tick_samples = 0
        for path, queue in self._queues.items():
            entries = queue.entries
            if entries and entries[0][0] == cursor:
                _, values, samples = entries.popleft()
                burst[path] = values
                tick_samples += samples
        for node, values in self._pending.items():
            burst.setdefault(node, values)
        self._pending.clear()
        t0 = time.perf_counter()
        events = self.guarded.process_block(burst, tick=cursor)
        latency = time.perf_counter() - t0
        opened = 0
        for event in events:
            opened += event.get("event") == "open"
            for sink in self.sinks:
                sink.emit(event)
        self.stats.observe_tick(latency, len(events), opened)
        self._n_events += len(events)
        self._n_alerts += opened
        if self.checkpoint is not None:
            self._events.extend(events)
        self._cursor = cursor + 1
        self._ticks_done += 1
        if not self._recovering:
            if self._wal is not None:
                # The watermark is the durability edge: fsync policy
                # "tick" syncs here, making everything up to and
                # including this tick replayable after kill -9.
                self._wal.append_watermark(cursor)
            self._broadcast_ack(cursor)
            if (
                self.checkpoint is not None
                and self._ticks_done % self.checkpoint.every == 0
            ):
                self._write_checkpoint()

    def _broadcast_ack(self, tick: int) -> None:
        """Tell subscribed clients tick ``tick`` is processed (and, per
        fsync policy, journaled) — their resume point moves forward."""
        if not self._ack_subs:
            return
        data = encode_ack(tick)
        dead = []
        for writer in self._ack_subs:
            try:
                writer.write(data)
            except Exception:
                dead.append(writer)
        for writer in dead:
            self._ack_subs.discard(writer)

    def _advance_to_next_queued(self) -> None:
        """Jump the cursor to the earliest queued tick (partial fleet)."""
        ticks = [
            q.entries[0][0] for q in self._queues.values() if q.entries
        ]
        if ticks and min(ticks) > self._cursor:
            self._cursor = min(ticks)

    async def _pump(self):
        loop = asyncio.get_running_loop()
        # Absolute barrier deadline: armed when data first sits waiting
        # on an incomplete barrier, disarmed only by processing a tick.
        # It must NOT restart on every wake — live nodes sending faster
        # than tick_timeout would then postpone the timeout forever and
        # one dead agent *would* stall the world.
        deadline: float | None = None
        while True:
            self._drop_stale()
            if self._barrier_complete():
                self._process_tick()
                self._timeout_streak = 0
                deadline = None
                # The complete-barrier path has no await of its own:
                # yield so socket readers and the ops listener run even
                # through long streaks of complete barriers.
                await asyncio.sleep(0)
                continue
            if self._draining():
                if not self._any_queued():
                    break
                self._advance_to_next_queued()
                self._process_tick()
                deadline = None
                await asyncio.sleep(0)
                continue
            if self._any_queued():
                now = loop.time()
                if deadline is None:
                    deadline = now + self.tick_timeout
                if now >= deadline:
                    # Partial fleet: this data has waited a full
                    # tick_timeout — process what arrived so a dead
                    # agent can't stall ticks.
                    self._advance_to_next_queued()
                    self._process_tick()
                    self._timeout_streak += 1
                    deadline = None
                    await asyncio.sleep(0)
                    continue
                timeout = deadline - now
            else:
                deadline = None
                timeout = None
                if self._idle_since is not None:
                    # Idle-grace window armed: no connection will set
                    # ``_wake`` if none ever returns, so wake when the
                    # grace expires to re-check ``_draining``.
                    timeout = max(
                        0.01,
                        self._idle_since
                        + self.idle_grace
                        - time.monotonic(),
                    )
            self._wake.clear()
            try:
                await asyncio.wait_for(self._wake.wait(), timeout=timeout)
            except asyncio.TimeoutError:
                pass

    # -- durability ----------------------------------------------------
    def _write_checkpoint(self) -> None:
        """Snapshot detector + guard + routing state between ticks.

        The archive additionally records the tick cursor, the WAL
        index up to which state is already reflected, and the
        routed-but-unprocessed queue/stray contents as encoded-frame
        blobs — so restart = restore + replay WAL from ``wal_index``,
        nothing else.  Runs synchronously on the event loop (no await
        between the last watermark and the snapshot, so no frame can
        interleave).
        """
        from repro.service.checkpoint import save_checkpoint

        cp = self.checkpoint
        wal_index = self._wal.next_index if self._wal is not None else 0
        queue_blob = bytearray()
        for path, queue in self._queues.items():
            for tick, values, _ in queue.entries:
                queue_blob += encode_frame_payload(path, tick, values)
        pending_blob = bytearray()
        for node, values in self._pending.items():
            pending_blob += encode_frame_payload(node, 0, values)
        save_checkpoint(
            cp.path,
            self.guarded.inner,
            fingerprint=cp.fingerprint,
            chunk=cp.chunk,
            next_lo=self._cursor * cp.chunk,
            events=self._events,
            n_events=self._n_events,
            n_alerts=self._n_alerts,
            guard_state=self.guarded.state_dict(),
            server_state={
                "cursor": self._cursor,
                "wal_index": wal_index,
                "ticks_done": self._ticks_done,
            },
            extra_arrays={
                "server_queues": np.frombuffer(
                    bytes(queue_blob), dtype=np.uint8
                ),
                "server_pending": np.frombuffer(
                    bytes(pending_blob), dtype=np.uint8
                ),
            },
        )
        self.stats.checkpoints += 1
        if self._wal is not None:
            self._wal.prune_through(wal_index)

    def _restore_blob(self, blob, *, pending: bool) -> None:
        if blob is None or blob.size == 0:
            return
        decoder = FrameDecoder()
        frames, errors = decoder.feed(blob.tobytes())
        if errors or decoder.pending:
            from repro.service.checkpoint import CheckpointError

            raise CheckpointError(
                "checkpoint queue blob does not decode cleanly",
                field="server_pending" if pending else "server_queues",
            )
        for frame in frames:
            if pending:
                self._pending[frame.node] = frame.values
            else:
                self._queues[frame.node].push(
                    frame.tick,
                    frame.values,
                    self._frame_samples(frame.values),
                )

    def _recover(self) -> None:
        """Restore checkpoint state, then replay the WAL through it.

        Runs before any listener binds, so recovery can never
        interleave with live routing.  Watermark records re-drive
        ``_process_tick`` exactly as the crashed process did (the
        journal is the live total order); the re-emitted event stream
        lands in the fresh (truncating) sinks, which is what makes the
        restarted alert JSONL byte-identical end to end.
        """
        wal_start = 0
        if self.checkpoint is not None and self.checkpoint.path.exists():
            from repro.service.checkpoint import (
                CheckpointError,
                load_checkpoint,
                restore_checkpoint,
            )

            ckpt = load_checkpoint(self.checkpoint.path)
            server = ckpt.manifest.get("server")
            if server is None:
                # Reject before restore_checkpoint touches any state:
                # a half-restored detector must never start serving.
                raise CheckpointError(
                    f"{self.checkpoint.path}: not a server checkpoint "
                    "(no server state; it was written by in-process "
                    "replay and cannot seed a network restart)",
                    field="server",
                )
            events, _, n_events, n_alerts = restore_checkpoint(
                ckpt,
                self.guarded.inner,
                fingerprint=self.checkpoint.fingerprint,
                chunk=self.checkpoint.chunk,
                guard=self.guarded,
            )
            for event in events:
                for sink in self.sinks:
                    sink.emit(event)
            self._events = list(events)
            self._n_events = n_events
            self._n_alerts = n_alerts
            self._cursor = int(server["cursor"])
            self._ticks_done = int(server["ticks_done"])
            wal_start = int(server["wal_index"])
            self._restore_blob(ckpt.array("server_queues"), pending=False)
            self._restore_blob(ckpt.array("server_pending"), pending=True)
        if self._wal_dir is not None:
            self._wal, records = WalWriter.open(
                self._wal_dir,
                fsync=self._wal_fsync,
                min_index=wal_start,
            )
            replayed = 0
            self._recovering = True
            try:
                for rec in records:
                    if rec.index < wal_start:
                        continue
                    replayed += 1
                    if rec.rtype == REC_FRAME:
                        self._route_frame(decode_frame_record(rec.payload))
                    elif rec.rtype == REC_ERROR:
                        info = json.loads(rec.payload)
                        self._route_error(
                            FrameError(
                                info.get("reason", "garbage"),
                                node=info.get("node"),
                            )
                        )
                    elif rec.rtype == REC_WATERMARK:
                        tick = int(json.loads(rec.payload)["tick"])
                        self._drop_stale()
                        if tick > self._cursor:
                            self._cursor = tick
                        self._process_tick()
            finally:
                self._recovering = False
            self.stats.wal_replayed = replayed
            if replayed and self.checkpoint is not None:
                # Fold the replayed records into a fresh snapshot so
                # the next crash does not replay them again.
                self._write_checkpoint()
        self._recovered = True

    def health(self) -> dict:
        """The ``/health`` payload: liveness, readiness, degradation.

        Responding at all is liveness; *readiness* means the listeners
        are bound, recovery is done and no stop is in flight.  The
        ``status`` flips to ``degraded`` (with machine-readable
        ``reasons``) when the WAL fsync lag, the quarantined-node
        count or the barrier-timeout streak indicate the fleet signal
        is impaired even though the server is up.
        """
        reasons = []
        wal_pending = self._wal.pending if self._wal is not None else 0
        if wal_pending > WAL_LAG_DEGRADED:
            reasons.append("wal-flush-lag")
        states = self.guarded.fleet_health()["states"]
        quarantined = int(states.get("quarantined", 0))
        if quarantined:
            reasons.append("quarantined-nodes")
        if self._timeout_streak >= TIMEOUT_STREAK_DEGRADED:
            reasons.append("barrier-timeout-streak")
        ready = (
            self.ready.is_set()
            and not self._stop_requested
            and not self._finalized
        )
        return {
            "live": True,
            "ready": ready,
            "status": "degraded" if reasons else "ok",
            "reasons": reasons,
            "tick": self._cursor,
            "nodes": len(self._queues),
            "connections": self._open_conns,
            "quarantined": quarantined,
            "timeout_streak": self._timeout_streak,
            "wal": (
                None
                if self._wal is None
                else {
                    "appended": self._wal.appended,
                    "fsyncs": self._wal.fsyncs,
                    "pending": wal_pending,
                    "replayed": self.stats.wal_replayed,
                }
            ),
        }

    # -- lifecycle -----------------------------------------------------
    def _gather_backpressure(self) -> None:
        self.stats.dropped = sum(q.dropped for q in self._queues.values())
        self.stats.coalesced = sum(
            q.coalesced for q in self._queues.values()
        )
        if self._wal is not None:
            self.stats.wal_appended = self._wal.appended
            self.stats.wal_fsyncs = self._wal.fsyncs

    def _finalize(self, *, interrupted: bool) -> None:
        if self._finalized:
            return
        self._finalized = True
        self._gather_backpressure()
        if self.checkpoint is not None and self._recovered:
            # Final snapshot (pre-flush, like the replay loop's): a
            # restart re-emits the checkpointed prefix and the flush
            # events regenerate at the true end of stream.
            self._write_checkpoint()
        if interrupted:
            for event in flush_open_alerts(self.guarded):
                for sink in self.sinks:
                    sink.emit(event)
        for sink in self.sinks:
            sink.close()
        if self._wal is not None:
            self._wal.close()

    async def _main(self):
        from repro.service.ops import OpsProtocolServer

        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_conn, self.host, self.requested_port
        )
        self.port = server.sockets[0].getsockname()[1]
        ops_server = None
        if self.ops_host is not None:
            ops = OpsProtocolServer(self)
            ops_server = await asyncio.start_server(
                ops.handle, self.ops_host, self.requested_ops_port
            )
            self.ops_bound_port = ops_server.sockets[0].getsockname()[1]
        if self.port_file is not None:
            self.port_file.parent.mkdir(parents=True, exist_ok=True)
            self.port_file.write_text(f"{self.port}\n", encoding="utf-8")
            if self.ops_bound_port is not None:
                self.port_file.with_name(
                    self.port_file.name + ".ops"
                ).write_text(f"{self.ops_bound_port}\n", encoding="utf-8")
        self.ready.set()
        try:
            await self._pump()
        finally:
            server.close()
            if ops_server is not None:
                ops_server.close()
            await server.wait_closed()
            if ops_server is not None:
                await ops_server.wait_closed()

    def run(self) -> None:
        """Serve until drained/stopped (blocking; Ctrl-C flushes)."""
        try:
            if not self._recovered:
                self._recover()
            asyncio.run(self._main())
        except KeyboardInterrupt:
            self._finalize(interrupted=True)
            raise
        finally:
            self.ready.set()  # never leave a waiter hanging on failure
            self._finalize(interrupted=False)
            self._cleanup_port_files()

    def _cleanup_port_files(self) -> None:
        """Remove the port files on shutdown: a supervisor or script
        must never read a dead process's ephemeral port."""
        if self.port_file is None:
            return
        for path in (
            self.port_file,
            self.port_file.with_name(self.port_file.name + ".ops"),
        ):
            try:
                path.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - permission race
                pass

    def start_background(self) -> threading.Thread:
        """Run the server in a daemon thread (tests / benchmarks)."""
        thread = threading.Thread(target=self.run, daemon=True)
        thread.start()
        return thread

    def request_stop(self) -> None:
        """Thread-safe: drain what is queued, then stop."""
        loop = self._loop
        if loop is None:
            self._stop_requested = True
            return

        def _stop():
            self._stop_requested = True
            if self._wake is not None:
                self._wake.set()

        loop.call_soon_threadsafe(_stop)


class _AckStall(ConnectionError):
    """The server stopped acking: reconnect and resend from the tail."""


def _connect_with_backoff(address, *, timeout: float):
    """Connect to ``address`` (a ``(host, port)`` pair or a callable
    returning one — callables re-resolve per attempt, which is how a
    client follows a supervised restart onto a fresh ephemeral port),
    retrying ``ConnectionRefusedError``/transient ``OSError`` with
    capped exponential backoff for up to ``timeout`` seconds.

    This closes the port-file race: a scripted client that starts
    before the server has bound simply waits the bind out.
    """
    import socket

    deadline = time.monotonic() + timeout
    delay = 0.05
    while True:
        try:
            target = address() if callable(address) else address
            sock = socket.create_connection(tuple(target), timeout=10.0)
            sock.settimeout(None)
            return sock
        except (OSError, ValueError) as exc:
            # ValueError covers a half-written port file mid-restart.
            if time.monotonic() >= deadline:
                raise ConnectionRefusedError(
                    f"could not connect within {timeout:.0f}s: {exc}"
                ) from exc
            time.sleep(min(delay, 1.0, max(deadline - time.monotonic(), 0)))
            delay = min(delay * 2, 1.0)


def loadgen(
    setup,
    address,
    *,
    chunk: int,
    fmt: str = "binary",
    interval: float = 0.0,
    max_ticks: int | None = None,
    send_eof: bool = True,
    resume: bool = False,
    connect_timeout: float = 30.0,
    ack_timeout: float = 5.0,
    max_window: int = 64,
    total_timeout: float | None = None,
) -> dict:
    """Drive a server with the exact feed ``replay()`` would process.

    Connects a blocking socket to ``address`` (``(host, port)`` or a
    callable returning one) and streams one frame per (node, tick)
    over the held-out period of ``setup`` — tick *t* carries samples
    ``[t*chunk, (t+1)*chunk)``, nodes in sorted order, so a clean run
    reproduces the in-process replay's burst grouping (and therefore
    its alert bytes) exactly.  Connection-refused errors retry with
    capped exponential backoff (``connect_timeout`` budget).

    With ``resume=True`` the client subscribes to per-tick acks and
    survives transport faults: on a reset, a refused reconnect or an
    ack stall (``ack_timeout`` seconds without progress — the shape a
    corrupted-and-dropped frame leaves behind) it reconnects with
    backoff and go-back-N resends every tick after the last acked one.
    At most ``max_window`` unacked ticks are in flight, and the eof
    control frame is only sent once every tick is acked — which is what
    lets a server behind a chaos proxy (or SIGKILLed and supervised
    back up) still converge to the clean byte-identical alert stream.

    Payload bytes are cached per underlying eval matrix, so replicated
    fleets (:func:`repro.service.api.replicate_setup`) encode each
    distinct burst once regardless of fleet size.

    Returns ``{"ticks", "frames", "bytes", "seconds"}`` plus — in
    resume mode — ``{"reconnects", "resent_frames", "acked_ticks"}``.
    """
    import select

    from repro.service.protocol import (
        encode_acks_subscribe,
        encode_binary,
        encode_eof,
        encode_json,
    )

    if fmt not in ("binary", "json"):
        raise ValueError(f"fmt must be 'binary' or 'json', got {fmt!r}")
    horizon = max(m.shape[1] for m in setup.eval_data.values())
    n_ticks = (horizon + chunk - 1) // chunk
    if max_ticks is not None:
        n_ticks = min(n_ticks, int(max_ticks))
    paths = sorted(setup.eval_data)
    stats = {
        "ticks": n_ticks,
        "frames": 0,
        "bytes": 0,
        "seconds": 0.0,
        "reconnects": 0,
        "resent_frames": 0,
        "acked_ticks": 0,
    }
    # Replicas alias the same eval matrix: encode each distinct
    # (matrix, tick) payload once and only re-emit the cheap header.
    payload_cache: dict[tuple[int, int], bytes] = {}

    def tick_bytes(ti: int) -> tuple[bytes, int]:
        lo = ti * chunk
        out = bytearray()
        n_frames = 0
        for path in paths:
            m = setup.eval_data[path]
            if lo >= m.shape[1]:
                continue
            if fmt == "binary":
                key = (id(m), ti)
                cached = payload_cache.get(key)
                if cached is None:
                    cached = encode_binary("", ti, m[:, lo : lo + chunk])
                    payload_cache[key] = cached
                # Patch the node path into the cached frame: the
                # header is fixed-size, the path sits right after.
                out += _patch_binary_path(cached, path)
            else:
                out += encode_json(path, ti, m[:, lo : lo + chunk])
            n_frames += 1
        return bytes(out), n_frames

    start = time.perf_counter()
    overall_deadline = (
        time.monotonic() + total_timeout if total_timeout else None
    )

    def check_overall() -> None:
        if overall_deadline is not None and time.monotonic() > overall_deadline:
            raise TimeoutError(
                f"loadgen did not complete within {total_timeout:.0f}s "
                f"(acked {last_acked + 1}/{n_ticks} ticks)"
            )

    if not resume:
        sock = _connect_with_backoff(address, timeout=connect_timeout)
        try:
            for ti in range(n_ticks):
                out, n_frames = tick_bytes(ti)
                sock.sendall(out)
                stats["frames"] += n_frames
                stats["bytes"] += len(out)
                if interval > 0.0:
                    time.sleep(interval)
            if send_eof:
                sock.sendall(encode_eof())
        finally:
            sock.close()
        stats["seconds"] = time.perf_counter() - start
        return stats

    sock = None
    decoder = FrameDecoder()
    last_acked = -1

    def teardown() -> None:
        nonlocal sock
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
            sock = None

    def ensure_conn() -> None:
        nonlocal sock, decoder
        if sock is not None:
            return
        sock = _connect_with_backoff(address, timeout=connect_timeout)
        decoder = FrameDecoder()
        sock.sendall(encode_acks_subscribe())

    def drain_acks(block_s: float) -> None:
        """Consume whatever acks are readable (advances last_acked)."""
        nonlocal last_acked
        wait = block_s
        while True:
            readable, _, _ = select.select([sock], [], [], wait)
            if not readable:
                return
            data = sock.recv(1 << 16)
            if not data:
                raise ConnectionResetError("server closed the ack stream")
            frames, _ = decoder.feed(data)
            for frame in frames:
                if frame.control == "ack" and frame.tick > last_acked:
                    last_acked = frame.tick
            wait = 0.0

    def await_progress(target: int) -> None:
        """Block until ``last_acked`` reaches ``target`` or stall out."""
        stall_t0 = time.monotonic()
        floor = last_acked
        while last_acked < target:
            check_overall()
            drain_acks(0.05)
            if last_acked > floor:
                floor = last_acked
                stall_t0 = time.monotonic()
            elif time.monotonic() - stall_t0 > ack_timeout:
                raise _AckStall(
                    f"no ack progress past tick {last_acked} "
                    f"for {ack_timeout:.1f}s"
                )

    retryable = (
        ConnectionResetError,
        ConnectionAbortedError,
        ConnectionRefusedError,
        BrokenPipeError,
        _AckStall,
        OSError,
    )
    ti = 0
    while last_acked < n_ticks - 1:
        check_overall()
        try:
            ensure_conn()
            while ti < n_ticks:
                check_overall()
                if ti - last_acked > max_window:
                    await_progress(ti - max_window)
                out, n_frames = tick_bytes(ti)
                sock.sendall(out)
                stats["frames"] += n_frames
                stats["bytes"] += len(out)
                ti += 1
                drain_acks(0.0)
                if interval > 0.0:
                    time.sleep(interval)
            await_progress(n_ticks - 1)
        except retryable:
            teardown()
            stats["reconnects"] += 1
            resend_from = last_acked + 1
            stats["resent_frames"] += max(ti - resend_from, 0) * len(paths)
            ti = resend_from
    if send_eof:
        # Every tick is acked (processed and, per the server's fsync
        # policy, journaled): eof is now safe — nothing left to resend.
        try:
            ensure_conn()
            sock.sendall(encode_eof())
        except retryable:
            pass  # best effort; an idle server drains on its own
    teardown()
    stats["acked_ticks"] = last_acked + 1
    stats["seconds"] = time.perf_counter() - start
    return stats


def _patch_binary_path(frame: bytes, path: str) -> bytes:
    """Rewrite the (empty) node path of a cached binary frame.

    The v2 checksum is ``crc32(path, crc32(values))`` — values first —
    so the cached empty-path frame's crc field *is* ``crc32(values)``
    and re-stamping a node path costs one crc over the short path
    bytes, never over the payload.
    """
    import struct
    import zlib

    from repro.service.protocol import _HEADER2, MAGIC

    encoded = path.encode("utf-8")
    off = len(MAGIC) + 4
    body_len = struct.unpack_from("<I", frame, len(MAGIC))[0] + len(encoded)
    header = bytearray(frame[off : off + _HEADER2.size])
    struct.pack_into("<H", header, 1, len(encoded))
    values_crc = struct.unpack_from("<I", header, 17)[0]
    struct.pack_into("<I", header, 17, zlib.crc32(encoded, values_crc))
    return (
        MAGIC
        + struct.pack("<I", body_len)
        + bytes(header)
        + encoded
        + frame[off + _HEADER2.size :]
    )

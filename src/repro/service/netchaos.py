"""Seeded TCP chaos proxy for the network serving path.

:class:`ChaosProxy` sits between load generators and a
``repro serve --listen`` server and perturbs the client→server byte
stream the way a flaky network would: added latency/jitter, abrupt
connection resets (``RST`` via ``SO_LINGER 0``), short partitions
(stalls), single-byte corruption and truncation (dropped bytes).  The
server→client direction (acks) is forwarded untouched — a reset kills
both directions anyway, and keeping the return path clean makes the
fault attribution in tests unambiguous.

Like :class:`repro.service.chaos.ChaosInjector`, every decision is
drawn from a deterministic RNG — here keyed on
``(seed, connection, byte offset)``: the stream is treated as a
sequence of fixed :data:`WINDOW`-byte spans addressed by absolute
offset, and each span's fault plan comes from
``np.random.default_rng([seed, conn_id, window_index])``.  Plans are a
pure function of those coordinates — **independent of TCP chunking**
(a span's plan is identical whether it arrives in one ``recv`` or
twenty) and of wall clock, so a given seed yields the same fault
schedule on every run.  Bytes are forwarded as they arrive (a span is
never held back waiting to fill), which keeps request/ack round trips
live under proxying.

The convergence story this enables: corruption is caught by the v2
frame checksum and dropped without node attribution, resets/truncation
starve the server's ack stream, and the resuming ``loadgen`` client
re-sends everything after its last acked tick — so the final alert
JSONL still equals the clean in-process replay byte for byte
(``fleet-serve-chaos`` asserts exactly that).
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

__all__ = ["ChaosProxy", "NetChaosConfig", "WINDOW"]

#: Bytes per fault-plan span of the client→server stream.
WINDOW = 4096

_MB = 1024 * 1024


@dataclass(frozen=True)
class NetChaosConfig:
    """Fault rates for one proxy (all ``*_per_mb`` are expected events
    per forwarded megabyte; 0 disables that fault class)."""

    seed: int = 0
    latency_ms: float = 0.0
    jitter_ms: float = 0.0
    corrupt_per_mb: float = 0.0
    reset_per_mb: float = 0.0
    truncate_per_mb: float = 0.0
    partition_per_mb: float = 0.0
    partition_ms: float = 50.0

    def __post_init__(self):
        for name in (
            "latency_ms",
            "jitter_ms",
            "corrupt_per_mb",
            "reset_per_mb",
            "truncate_per_mb",
            "partition_per_mb",
            "partition_ms",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    @property
    def active(self) -> bool:
        return any(
            (
                self.latency_ms,
                self.jitter_ms,
                self.corrupt_per_mb,
                self.reset_per_mb,
                self.truncate_per_mb,
                self.partition_per_mb,
            )
        )


class _Reset(Exception):
    """The plan says: hard-reset this connection now."""


def _close(sock: socket.socket) -> None:
    """shutdown + close.  The shutdown matters: a peer thread blocked
    in ``recv`` holds a kernel reference to the socket, so a bare
    ``close()`` sends no FIN until that syscall returns — the other
    end would never see EOF."""
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


class ChaosProxy:
    """Threaded TCP proxy applying a :class:`NetChaosConfig` schedule.

    ``upstream`` is a ``(host, port)`` pair or a callable returning one
    — callables re-resolve per connection, so the proxy follows a
    supervised server restart onto its fresh ephemeral port.
    """

    def __init__(
        self,
        upstream,
        config: NetChaosConfig | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        port_file: str | Path | None = None,
    ):
        self.upstream = upstream
        self.config = config or NetChaosConfig()
        self.host = host
        self.requested_port = int(port)
        self.port_file = Path(port_file) if port_file else None
        self.port: int | None = None
        self.stats = {
            "connections": 0,
            "bytes_in": 0,
            "bytes_out": 0,
            "corrupted": 0,
            "resets": 0,
            "truncated_bytes": 0,
            "partitions": 0,
        }
        self._lock = threading.Lock()
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._conns: list[socket.socket] = []
        self._stop = threading.Event()

    # -- schedule ------------------------------------------------------
    def _plan(self, conn_id: int, window: int) -> dict:
        """The fault plan for one WINDOW-byte span, a pure function of
        ``(seed, connection, window index)`` — chunking-independent."""
        cfg = self.config
        rng = np.random.default_rng([cfg.seed, conn_id, window])
        p = WINDOW / _MB
        plan: dict = {}
        # Draw order is fixed: every knob consumes its draws whether or
        # not it fires, so enabling one fault class never reshuffles
        # another's schedule.
        jitter = float(rng.random())
        if cfg.latency_ms or cfg.jitter_ms:
            plan["delay"] = (cfg.latency_ms + cfg.jitter_ms * jitter) / 1e3
        r_corrupt, pos_corrupt, xor = (
            float(rng.random()),
            int(rng.integers(0, WINDOW)),
            int(rng.integers(1, 256)),
        )
        if r_corrupt < cfg.corrupt_per_mb * p:
            plan["corrupt"] = (pos_corrupt, xor)
        r_trunc, pos_trunc = float(rng.random()), int(rng.integers(0, WINDOW))
        if r_trunc < cfg.truncate_per_mb * p:
            plan["truncate"] = pos_trunc
        r_part = float(rng.random())
        if r_part < cfg.partition_per_mb * p:
            plan["partition"] = cfg.partition_ms / 1e3
        r_reset, pos_reset = float(rng.random()), int(rng.integers(0, WINDOW))
        if r_reset < cfg.reset_per_mb * p:
            plan["reset"] = pos_reset
        return plan

    def _count(self, key: str, n: int = 1) -> None:
        with self._lock:
            self.stats[key] += n

    # -- data path -----------------------------------------------------
    def _forward_chaotic(
        self, conn_id: int, client: socket.socket, server: socket.socket
    ) -> None:
        """client→server pump with the fault schedule applied."""
        offset = 0
        plan_window = -1
        plan: dict = {}
        while not self._stop.is_set():
            try:
                data = client.recv(1 << 16)
            except OSError:
                break
            if not data:
                break
            self._count("bytes_in", len(data))
            i = 0
            try:
                while i < len(data):
                    window, wo = divmod(offset, WINDOW)
                    if window != plan_window:
                        plan = self._plan(conn_id, window)
                        plan_window = window
                    take = min(len(data) - i, WINDOW - wo)
                    seg = bytearray(data[i : i + take])
                    if wo == 0:
                        # Span start: latency/partition apply once.
                        delay = plan.get("delay", 0.0) + plan.get(
                            "partition", 0.0
                        )
                        if "partition" in plan:
                            self._count("partitions")
                        if delay:
                            time.sleep(delay)
                    reset_at = plan.get("reset")
                    if reset_at is not None and wo <= reset_at < wo + take:
                        server.sendall(bytes(seg[: reset_at - wo]))
                        self._count("bytes_out", reset_at - wo)
                        raise _Reset()
                    corrupt = plan.get("corrupt")
                    if corrupt is not None and wo <= corrupt[0] < wo + take:
                        seg[corrupt[0] - wo] ^= corrupt[1]
                        self._count("corrupted")
                    trunc_at = plan.get("truncate")
                    if trunc_at is not None and trunc_at < wo + take:
                        keep = max(trunc_at - wo, 0)
                        self._count("truncated_bytes", len(seg) - keep)
                        del seg[keep:]
                    if seg:
                        server.sendall(bytes(seg))
                        self._count("bytes_out", len(seg))
                    offset += take
                    i += take
            except _Reset:
                self._count("resets")
                self._hard_reset(client)
                break
            except OSError:
                break
        for sock in (client, server):
            _close(sock)

    @staticmethod
    def _hard_reset(client: socket.socket) -> None:
        """Close with RST (SO_LINGER 0), not FIN — a real fault, not a
        polite shutdown, so the sender sees ``ConnectionResetError``."""
        try:
            client.setsockopt(
                socket.SOL_SOCKET,
                socket.SO_LINGER,
                struct.pack("ii", 1, 0),
            )
        except OSError:
            pass
        try:
            client.close()
        except OSError:
            pass

    def _forward_clean(
        self, server: socket.socket, client: socket.socket
    ) -> None:
        """server→client pump (acks) — transparent."""
        while not self._stop.is_set():
            try:
                data = server.recv(1 << 16)
                if not data:
                    break
                client.sendall(data)
            except OSError:
                break

    def _serve_conn(self, conn_id: int, client: socket.socket) -> None:
        deadline = time.monotonic() + 5.0
        server = None
        while server is None:
            try:
                target = (
                    self.upstream()
                    if callable(self.upstream)
                    else self.upstream
                )
                server = socket.create_connection(tuple(target), timeout=5.0)
                server.settimeout(None)
            except (OSError, ValueError):
                # Upstream down (mid-restart): give it a moment, then
                # reset the client so *its* backoff takes over.
                if self._stop.is_set() or time.monotonic() >= deadline:
                    self._hard_reset(client)
                    return
                time.sleep(0.05)
        with self._lock:
            self._conns.extend((client, server))
        down = threading.Thread(
            target=self._forward_clean, args=(server, client), daemon=True
        )
        down.start()
        self._forward_chaotic(conn_id, client, server)

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "ChaosProxy":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.requested_port))
        listener.listen(64)
        self._listener = listener
        self.port = listener.getsockname()[1]
        if self.port_file is not None:
            self.port_file.parent.mkdir(parents=True, exist_ok=True)
            self.port_file.write_text(f"{self.port}\n", encoding="utf-8")
        accept = threading.Thread(target=self._accept_loop, daemon=True)
        accept.start()
        self._threads.append(accept)
        return self

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                client, _ = self._listener.accept()
            except OSError:
                break
            with self._lock:
                self.stats["connections"] += 1
                conn_id = self.stats["connections"]
            worker = threading.Thread(
                target=self._serve_conn,
                args=(conn_id, client),
                daemon=True,
            )
            worker.start()
            self._threads.append(worker)

    def stop(self) -> dict:
        """Shut down and return the final stats payload."""
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            conns = list(self._conns)
        for sock in conns:
            _close(sock)
        for thread in self._threads:
            thread.join(timeout=2.0)
        if self.port_file is not None:
            try:
                self.port_file.unlink(missing_ok=True)
            except OSError:
                pass
        with self._lock:
            return dict(self.stats)

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

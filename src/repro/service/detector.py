"""The composed online hot path: ingest → classify → alert.

:class:`FleetFaultDetector` is the service's per-tick work unit.  One
``process_block`` call takes a burst of raw samples per node, pushes
every burst through the ring-buffered incremental streams, classifies
*all* signatures the fleet emitted in that tick with a single
stacked-forest pass, drives each node's threshold + hysteresis
:class:`~repro.service.alerts.AlertPolicy`, and attributes every opening
alert back to raw sensors via
:func:`repro.analysis.rootcause.explain_difference` against the node's
healthy reference signature.

:func:`detect_naive` is the baseline the batched path is benchmarked
against — the obvious per-node loop (one ``push`` per sample, one
single-row forest predict per signature).  Both paths produce identical
alert events; only the batching differs.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.analysis.rootcause import explain_difference, findings_payload
from repro.core.pipeline import signature_features
from repro.engine.hotpath import SIGNATURE_MODES, TickArena
from repro.service.alerts import Alert, AlertPolicy
from repro.service.classify import TrainedFleet
from repro.service.ingest import FleetIngest

__all__ = ["FleetFaultDetector", "detect_naive"]

#: Tick-path backends: ``staged`` is the original multi-stage pipeline
#: (ingest → features → forest), ``fused`` runs the whole tick inside a
#: preallocated :class:`~repro.engine.hotpath.TickArena`.
BACKENDS = ("staged", "fused")


def _alert_event(
    trained: TrainedFleet,
    kind: str,
    path: str,
    alert: Alert,
    window: int,
    confidence: float,
    signature: np.ndarray,
    top_blocks: int,
) -> dict:
    """Serializable alert event (fixed key order, rounded floats)."""
    name_of = trained.classifier.name_of
    if kind == "open":
        findings = explain_difference(
            trained.engine.model(path),
            trained.references[path],
            signature,
            top=top_blocks,
        )
        return {
            "event": "open",
            "node": path,
            "window": window,
            "first_faulty": alert.first_faulty,
            "label": name_of(alert.label),
            "confidence": round(confidence, 6),
            "attribution": findings_payload(findings, ndigits=6),
        }
    return {
        "event": "close",
        "node": path,
        "window": window,
        "opened": alert.opened,
        "label": name_of(alert.dominant_label()),
        "windows": alert.n_windows,
        "peak_confidence": round(alert.peak_confidence, 6),
    }


class FleetFaultDetector:
    """Online fleet fault detection over a trained fleet.

    Parameters
    ----------
    trained:
        Output of :func:`repro.service.classify.train_fleet`.
    open_after, close_after, min_confidence:
        Per-node :class:`~repro.service.alerts.AlertPolicy` parameters.
    top_blocks:
        Deviating blocks attributed per opening alert.
    shards:
        Ingestion shards (see :class:`~repro.service.ingest.FleetIngest`);
        never changes results.
    record_history:
        When true (the default, used by replay scoring), every window's
        prediction is kept on :attr:`history` and closed alerts on each
        policy's ``history``.  Long-running serving loops pass ``False``
        so memory stays bounded regardless of uptime.
    backend:
        ``"staged"`` (default) runs the original ingest → features →
        forest pipeline; ``"fused"`` runs every tick inside a
        preallocated :class:`~repro.engine.hotpath.TickArena` (zero
        steady-state numpy allocations).  Exact-mode fused output is
        bit-identical to staged.
    mode:
        Fused signature arithmetic: ``"exact"`` (float64, default),
        ``"float32"``, or ``"quantized"`` (uint8-binned features).
        Only ``"exact"`` is valid with the staged backend.
    max_chunk:
        Largest per-tick burst the fused arena sizes its scratch for
        (bigger bursts are processed in slices; never changes results).
        Scratch scales with it — the store replayer passes its block
        size so whole recorded partitions absorb in one fused pass.
    """

    def __init__(
        self,
        trained: TrainedFleet,
        *,
        open_after: int = 2,
        close_after: int = 2,
        min_confidence: float = 0.0,
        top_blocks: int = 3,
        shards: int | None = None,
        record_history: bool = True,
        backend: str = "staged",
        mode: str = "exact",
        max_chunk: int = 256,
    ):
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
        if mode not in SIGNATURE_MODES:
            raise ValueError(
                f"unknown signature mode {mode!r}; expected one of {SIGNATURE_MODES}"
            )
        if backend == "staged" and mode != "exact":
            raise ValueError(
                "float32/quantized signature modes require backend='fused'"
            )
        self.trained = trained
        self.backend = backend
        self.mode = mode
        if backend == "fused":
            self.ingest = None
            self.arena = TickArena(
                trained.engine,
                trained.classifier.forest,
                mode=mode,
                max_chunk=max_chunk,
            )
            self._paths = list(self.arena.paths)
        else:
            self.ingest = FleetIngest(trained.engine, shards=shards)
            self.arena = None
            self._paths = list(self.ingest.paths)
        self.top_blocks = int(top_blocks)
        self.record_history = bool(record_history)
        self._policies = {
            p: AlertPolicy(
                healthy_label=trained.healthy_label,
                open_after=open_after,
                close_after=close_after,
                min_confidence=min_confidence,
                keep_history=self.record_history,
            )
            for p in self._paths
        }
        self._windows = {p: 0 for p in self._paths}
        #: Per-node prediction history: path -> (label ids, confidences).
        #: Empty when ``record_history`` is false.
        self.history: dict[str, tuple[list[int], list[float]]] = {
            p: ([], []) for p in self._paths
        }

    # ------------------------------------------------------------------
    @property
    def paths(self) -> list[str]:
        return self._paths

    def memory_report(self) -> dict:
        """Bytes retained per node by the tick path (fused backend only)."""
        if self.arena is None:
            raise ValueError("memory_report() requires backend='fused'")
        return self.arena.memory_report()

    def policy(self, path: str) -> AlertPolicy:
        return self._policies[path]

    def n_sensors(self, path: str) -> int:
        """Sensor count (block row count) one node's bursts must have."""
        return self.trained.engine.model(path).n_sensors

    def node_stream_state(self, path: str) -> dict:
        """One node's retained streaming state, backend-neutral.

        Both backends return the
        :meth:`~repro.engine.streaming.IncrementalSignatureCore.state_dict`
        layout (the fused arena's per-node ring row is the staged core's
        ring), which is what lets exact-mode checkpoints move between
        backends.
        """
        if self.arena is not None:
            return self.arena.node_state(path)
        return self.ingest.stream(path).state_dict()

    def restore_stream_states(self, states: Mapping[str, dict]) -> None:
        """Restore :meth:`node_stream_state` snapshots for every node."""
        if self.arena is not None:
            self.arena.restore_states(states)
            return
        missing = [p for p in self._paths if p not in states]
        if missing:
            raise KeyError(f"missing restore state for node(s) {missing!r}")
        for p in self._paths:
            self.ingest.stream(p).load_state(states[p])

    def windows_seen(self, path: str) -> int:
        """Windows classified so far for one node."""
        return self._windows[path]

    def open_alerts(self) -> dict[str, Alert]:
        """Currently open alert per node (nodes without one omitted)."""
        return {
            p: pol.alert
            for p, pol in self._policies.items()
            if pol.alert is not None
        }

    # ------------------------------------------------------------------
    def _advance(self, path, labels, confidence, sig_at, events):
        """Advance one node's alert policy over its tick's predictions.

        ``sig_at(j)`` lazily materializes the j-th emitted signature —
        only opening alerts need one (for root-cause attribution), so
        the fused backend pays nothing for it on quiet ticks.  Both
        backends funnel through here, which is what makes their alert
        streams structurally identical.
        """
        history_l, history_c = self.history[path]
        policy = self._policies[path]
        k = len(labels)
        # Fast path: no open alert and an all-healthy burst — the policy
        # outcome is fully determined (no events, streaks reset), so the
        # per-window Python loop is skipped.  Most ticks of most nodes
        # land here; faulty episodes take the exact per-window path.
        if k and policy.alert is None:
            faulty = np.not_equal(labels, policy.healthy_label)
            if policy.min_confidence > 0.0:
                faulty &= np.greater_equal(
                    confidence, policy.min_confidence
                )
            if not faulty.any():
                policy.skip_healthy(k)
                self._windows[path] += k
                if self.record_history:
                    history_l.extend(np.asarray(labels).tolist())
                    history_c.extend(np.asarray(confidence).tolist())
                return
        for j in range(len(labels)):
            window = self._windows[path]
            self._windows[path] = window + 1
            label = int(labels[j])
            conf = float(confidence[j])
            if self.record_history:
                history_l.append(label)
                history_c.append(conf)
            for kind, alert in policy.update(window, label, conf):
                events.append(
                    _alert_event(
                        self.trained,
                        kind,
                        path,
                        alert,
                        window,
                        conf,
                        sig_at(j),
                        self.top_blocks,
                    )
                )

    def process_block(self, data: Mapping[str, np.ndarray]) -> list[dict]:
        """Ingest one burst per node; return the alert events it caused.

        The hot path: every node's burst goes through its incremental
        stream, all emitted signatures are classified in **one** batched
        forest pass, and the per-node alert policies advance window by
        window.  Events are ordered by (sorted node path, window).
        """
        events: list[dict] = []
        if self.arena is not None:
            for path, labels, confidence, row0 in self.arena.tick(data):
                self._advance(
                    path,
                    labels,
                    confidence,
                    lambda j, r0=row0: self.arena.signature(r0 + j),
                    events,
                )
            return events
        signatures = self.ingest.push_blocks(data)
        return self._advance_staged(signatures, events)

    def process_blocks(self, blocks) -> list[dict]:
        """Block-feed entry point: drain an iterable of bursts.

        ``blocks`` yields ``{path: (n, m) matrix}`` mappings — e.g. the
        telemetry store's partition scan — each of which is processed
        like one :meth:`process_block` tick; the concatenated event list
        is returned.  With ``backend="fused"`` and ``max_chunk`` sized
        to the block length, each whole block runs as a single fused
        arena pass (no per-tick Python loop), which is what
        :func:`repro.service.fastreplay.replay_from_store` feeds.  Event
        *content* is identical to any other chunking of the same samples;
        only the grouping differs (see ``fastreplay`` for the live-order
        shuffle).
        """
        events: list[dict] = []
        for data in blocks:
            events.extend(self.process_block(data))
        return events

    def _advance_staged(self, signatures, events: list[dict]) -> list[dict]:
        """Classify + advance policies over staged per-node signatures."""
        order = [p for p in sorted(signatures) if signatures[p].shape[0]]
        if not order:
            return []
        stacked = np.concatenate([signatures[p] for p in order], axis=0)
        labels, confidence = self.trained.classifier.classify(stacked)
        pos = 0
        for path in order:
            sigs = signatures[path]
            k = sigs.shape[0]
            self._advance(
                path,
                labels[pos : pos + k],
                confidence[pos : pos + k],
                lambda j, s=sigs: s[j],
                events,
            )
            pos += k
        return events


def detect_naive(
    trained: TrainedFleet,
    data: Mapping[str, np.ndarray],
    *,
    open_after: int = 2,
    close_after: int = 2,
    min_confidence: float = 0.0,
    top_blocks: int = 3,
) -> list[dict]:
    """The per-node baseline loop (events identical to the batched path).

    For each node in turn: push samples one at a time, classify each
    emitted signature with a single-row forest predict, advance that
    node's policy.  This is what a straightforward implementation looks
    like, and what ``benchmarks/test_service_scaling.py`` measures the
    batched detector against.
    """
    events: list[dict] = []
    forest = trained.classifier.forest
    for path in sorted(data):
        stream = trained.engine.stream(path)
        policy = AlertPolicy(
            healthy_label=trained.healthy_label,
            open_after=open_after,
            close_after=close_after,
            min_confidence=min_confidence,
        )
        matrix = np.asarray(data[path], dtype=np.float64)
        window = 0
        for t in range(matrix.shape[1]):
            signature = stream.push(matrix[:, t])
            if signature is None:
                continue
            features = signature_features(signature[None, :])
            label_arr, proba = forest.predict_with_proba(features)
            label = int(label_arr[0])
            conf = float(proba[0].max())
            for kind, alert in policy.update(window, label, conf):
                events.append(
                    _alert_event(
                        trained,
                        kind,
                        path,
                        alert,
                        window,
                        conf,
                        signature,
                        top_blocks,
                    )
                )
            window += 1
    return events

"""The composed online hot path: ingest → classify → alert.

:class:`FleetFaultDetector` is the service's per-tick work unit.  One
``process_block`` call takes a burst of raw samples per node, pushes
every burst through the ring-buffered incremental streams, classifies
*all* signatures the fleet emitted in that tick with a single
stacked-forest pass, drives each node's threshold + hysteresis
:class:`~repro.service.alerts.AlertPolicy`, and attributes every opening
alert back to raw sensors via
:func:`repro.analysis.rootcause.explain_difference` against the node's
healthy reference signature.

:func:`detect_naive` is the baseline the batched path is benchmarked
against — the obvious per-node loop (one ``push`` per sample, one
single-row forest predict per signature).  Both paths produce identical
alert events; only the batching differs.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.analysis.rootcause import explain_difference, findings_payload
from repro.core.pipeline import signature_features
from repro.service.alerts import Alert, AlertPolicy
from repro.service.classify import TrainedFleet
from repro.service.ingest import FleetIngest

__all__ = ["FleetFaultDetector", "detect_naive"]


def _alert_event(
    trained: TrainedFleet,
    kind: str,
    path: str,
    alert: Alert,
    window: int,
    confidence: float,
    signature: np.ndarray,
    top_blocks: int,
) -> dict:
    """Serializable alert event (fixed key order, rounded floats)."""
    name_of = trained.classifier.name_of
    if kind == "open":
        findings = explain_difference(
            trained.engine.model(path),
            trained.references[path],
            signature,
            top=top_blocks,
        )
        return {
            "event": "open",
            "node": path,
            "window": window,
            "first_faulty": alert.first_faulty,
            "label": name_of(alert.label),
            "confidence": round(confidence, 6),
            "attribution": findings_payload(findings, ndigits=6),
        }
    return {
        "event": "close",
        "node": path,
        "window": window,
        "opened": alert.opened,
        "label": name_of(alert.dominant_label()),
        "windows": alert.n_windows,
        "peak_confidence": round(alert.peak_confidence, 6),
    }


class FleetFaultDetector:
    """Online fleet fault detection over a trained fleet.

    Parameters
    ----------
    trained:
        Output of :func:`repro.service.classify.train_fleet`.
    open_after, close_after, min_confidence:
        Per-node :class:`~repro.service.alerts.AlertPolicy` parameters.
    top_blocks:
        Deviating blocks attributed per opening alert.
    shards:
        Ingestion shards (see :class:`~repro.service.ingest.FleetIngest`);
        never changes results.
    record_history:
        When true (the default, used by replay scoring), every window's
        prediction is kept on :attr:`history` and closed alerts on each
        policy's ``history``.  Long-running serving loops pass ``False``
        so memory stays bounded regardless of uptime.
    """

    def __init__(
        self,
        trained: TrainedFleet,
        *,
        open_after: int = 2,
        close_after: int = 2,
        min_confidence: float = 0.0,
        top_blocks: int = 3,
        shards: int | None = None,
        record_history: bool = True,
    ):
        self.trained = trained
        self.ingest = FleetIngest(trained.engine, shards=shards)
        self.top_blocks = int(top_blocks)
        self.record_history = bool(record_history)
        self._policies = {
            p: AlertPolicy(
                healthy_label=trained.healthy_label,
                open_after=open_after,
                close_after=close_after,
                min_confidence=min_confidence,
                keep_history=self.record_history,
            )
            for p in self.ingest.paths
        }
        self._windows = {p: 0 for p in self.ingest.paths}
        #: Per-node prediction history: path -> (label ids, confidences).
        #: Empty when ``record_history`` is false.
        self.history: dict[str, tuple[list[int], list[float]]] = {
            p: ([], []) for p in self.ingest.paths
        }

    # ------------------------------------------------------------------
    @property
    def paths(self) -> list[str]:
        return self.ingest.paths

    def policy(self, path: str) -> AlertPolicy:
        return self._policies[path]

    def windows_seen(self, path: str) -> int:
        """Windows classified so far for one node."""
        return self._windows[path]

    def open_alerts(self) -> dict[str, Alert]:
        """Currently open alert per node (nodes without one omitted)."""
        return {
            p: pol.alert
            for p, pol in self._policies.items()
            if pol.alert is not None
        }

    # ------------------------------------------------------------------
    def process_block(self, data: Mapping[str, np.ndarray]) -> list[dict]:
        """Ingest one burst per node; return the alert events it caused.

        The hot path: every node's burst goes through its incremental
        stream, all emitted signatures are classified in **one** batched
        forest pass, and the per-node alert policies advance window by
        window.  Events are ordered by (sorted node path, window).
        """
        signatures = self.ingest.push_blocks(data)
        order = [p for p in sorted(signatures) if signatures[p].shape[0]]
        if not order:
            return []
        stacked = np.concatenate([signatures[p] for p in order], axis=0)
        labels, confidence = self.trained.classifier.classify(stacked)
        events: list[dict] = []
        pos = 0
        for path in order:
            sigs = signatures[path]
            history_l, history_c = self.history[path]
            policy = self._policies[path]
            for j in range(sigs.shape[0]):
                window = self._windows[path]
                self._windows[path] = window + 1
                label = int(labels[pos + j])
                conf = float(confidence[pos + j])
                if self.record_history:
                    history_l.append(label)
                    history_c.append(conf)
                for kind, alert in policy.update(window, label, conf):
                    events.append(
                        _alert_event(
                            self.trained,
                            kind,
                            path,
                            alert,
                            window,
                            conf,
                            sigs[j],
                            self.top_blocks,
                        )
                    )
            pos += sigs.shape[0]
        return events


def detect_naive(
    trained: TrainedFleet,
    data: Mapping[str, np.ndarray],
    *,
    open_after: int = 2,
    close_after: int = 2,
    min_confidence: float = 0.0,
    top_blocks: int = 3,
) -> list[dict]:
    """The per-node baseline loop (events identical to the batched path).

    For each node in turn: push samples one at a time, classify each
    emitted signature with a single-row forest predict, advance that
    node's policy.  This is what a straightforward implementation looks
    like, and what ``benchmarks/test_service_scaling.py`` measures the
    batched detector against.
    """
    events: list[dict] = []
    forest = trained.classifier.forest
    for path in sorted(data):
        stream = trained.engine.stream(path)
        policy = AlertPolicy(
            healthy_label=trained.healthy_label,
            open_after=open_after,
            close_after=close_after,
            min_confidence=min_confidence,
        )
        matrix = np.asarray(data[path], dtype=np.float64)
        window = 0
        for t in range(matrix.shape[1]):
            signature = stream.push(matrix[:, t])
            if signature is None:
                continue
            features = signature_features(signature[None, :])
            label_arr, proba = forest.predict_with_proba(features)
            label = int(label_arr[0])
            conf = float(proba[0].max())
            for kind, alert in policy.update(window, label, conf):
                events.append(
                    _alert_event(
                        trained,
                        kind,
                        path,
                        alert,
                        window,
                        conf,
                        signature,
                        top_blocks,
                    )
                )
            window += 1
    return events

"""Versioned checkpoint/restore of full detector state.

A mid-run crash of the online detector used to lose everything the
fleet had streamed: per-node ring buffers, pending window snapshots,
alert hysteresis, open alerts.  :func:`save_checkpoint` snapshots the
**complete** detector state into one atomic ``.npz`` archive (the
``atomic_savez`` temp-file + rename discipline and manifest-as-uint8
convention of :mod:`repro.monitoring.storage`):

* per-node :class:`~repro.engine.streaming.IncrementalSignatureCore`
  state — normalization ring, running sum, pending window-start
  snapshots, counts (backend-neutral: the fused arena exports the same
  layout);
* per-node :class:`~repro.service.alerts.AlertPolicy` hysteresis state,
  including the open alert;
* the alert events emitted so far plus replay bookkeeping
  (``next_lo``, event/alert counts, scoring history);
* the optional :class:`~repro.service.guard.GuardedDetector` health
  state;
* a **model lineage fingerprint** (:func:`fleet_fingerprint`, SHA-256
  over every model array) plus the replay knobs, so a checkpoint can
  never silently resume against a different fleet or configuration.

The contract — test-enforced per scenario and backend under a
PYTHONHASHSEED subprocess sweep — is *byte identity*: crash → restore →
replay-the-remaining-ticks produces alert JSONL identical to an
uninterrupted run.  Cross-backend restores (staged checkpoint → fused
resume and vice versa) are allowed in exact mode, where the two
backends are bit-identical anyway; any geometry, knob, mode or lineage
mismatch raises :class:`CheckpointError` naming the offending field —
never silent drift.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

from repro.monitoring.storage import atomic_savez, load_npz_arrays
from repro.service.alerts import ALERTS_SCHEMA, to_payload
from repro.service.classify import TrainedFleet
from repro.service.detector import FleetFaultDetector

__all__ = [
    "CHECKPOINT_FORMAT",
    "CheckpointError",
    "DetectorCheckpoint",
    "fleet_fingerprint",
    "load_checkpoint",
    "restore_checkpoint",
    "save_checkpoint",
]

CHECKPOINT_FORMAT = "repro-detector-checkpoint/v1"

#: Replay knobs a checkpoint pins: resuming under different values would
#: continue a *different* event sequence, so mismatches are typed errors.
_PINNED_PARAMS = (
    "open_after",
    "close_after",
    "min_confidence",
    "top_blocks",
    "record_history",
)


class CheckpointError(ValueError):
    """A checkpoint archive is unusable; ``field`` names the offender."""

    def __init__(self, message: str, *, field: str | None = None):
        super().__init__(message)
        self.field = field


def fleet_fingerprint(trained: TrainedFleet) -> str:
    """SHA-256 lineage hash over every array the detector's output
    depends on: per-node CS models + references, the shared forest's
    flat node arrays, and the label metadata.  Two fleets with the same
    fingerprint replay to byte-identical alert streams."""
    h = hashlib.sha256()
    engine = trained.engine
    h.update(
        json.dumps(
            [
                "all" if engine.blocks is None else int(engine.blocks),
                int(engine.wl),
                int(engine.ws),
                list(trained.label_names),
                int(trained.healthy_label),
            ]
        ).encode("utf-8")
    )
    for path in engine.paths:
        model = engine.model(path)
        h.update(path.encode("utf-8"))
        for arr in (
            model.permutation,
            model.lower,
            model.upper,
            trained.references[path],
        ):
            h.update(np.ascontiguousarray(arr).tobytes())
    for name, arr in sorted(trained.classifier.forest.to_arrays().items()):
        h.update(name.encode("utf-8"))
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def _detector_params(detector: FleetFaultDetector) -> dict:
    return {
        "open_after": detector.policy(detector.paths[0]).open_after,
        "close_after": detector.policy(detector.paths[0]).close_after,
        "min_confidence": detector.policy(detector.paths[0]).min_confidence,
        "top_blocks": detector.top_blocks,
        "record_history": detector.record_history,
    }


def save_checkpoint(
    path: str | Path,
    detector: FleetFaultDetector,
    *,
    fingerprint: str,
    chunk: int,
    next_lo: int,
    events: list[dict],
    n_events: int,
    n_alerts: int,
    guard_state: dict | None = None,
    server_state: dict | None = None,
    extra_arrays: dict[str, np.ndarray] | None = None,
) -> Path:
    """Snapshot the full detector state as one atomic ``.npz`` archive.

    ``next_lo`` is the first un-ingested sample column — the replay loop
    resumes from exactly there.  ``events`` is the alert stream emitted
    so far (re-emitted into fresh sinks on resume, which is what makes
    the resumed JSONL byte-identical end to end).

    ``server_state``/``extra_arrays`` are the network server's
    extension point: :class:`~repro.service.net.FleetServer` records
    its tick cursor + WAL index in the manifest and its routed-but-
    unprocessed queue contents as encoded-frame blobs, so a restart
    resumes routing exactly where the crash left it.  Plain replay
    checkpoints carry neither and restore exactly as before.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    paths = detector.paths
    arrays: dict[str, np.ndarray] = {}
    node_meta: dict[str, dict] = {}
    for i, node in enumerate(paths):
        st = detector.node_stream_state(node)
        arrays[f"node{i}_ring"] = st["ring"]
        arrays[f"node{i}_csum"] = st["csum"]
        arrays[f"node{i}_pending_starts"] = st["pending_starts"]
        arrays[f"node{i}_pending_snaps"] = st["pending_snaps"]
        labels, confs = detector.history[node]
        arrays[f"node{i}_hist_labels"] = np.asarray(labels, dtype=np.int64)
        arrays[f"node{i}_hist_conf"] = np.asarray(confs, dtype=np.float64)
        node_meta[node] = {
            "count": st["count"],
            "emitted": st["emitted"],
            "anchor": st["anchor"],
            "windows": detector.windows_seen(node),
        }
    manifest = {
        "format": CHECKPOINT_FORMAT,
        "alerts_schema": ALERTS_SCHEMA,
        "backend": detector.backend,
        "mode": detector.mode,
        "fingerprint": fingerprint,
        "chunk": int(chunk),
        "next_lo": int(next_lo),
        "paths": list(paths),
        "params": _detector_params(detector),
        "nodes": node_meta,
        "policies": {p: detector.policy(p).state_dict() for p in paths},
        "guard": guard_state,
        "n_events": int(n_events),
        "n_alerts": int(n_alerts),
    }
    if server_state is not None:
        manifest["server"] = server_state
    if extra_arrays:
        reserved = set(arrays) | {"manifest", "events"}
        for name, arr in extra_arrays.items():
            if name in reserved:
                raise ValueError(
                    f"extra checkpoint array {name!r} collides with a "
                    "reserved archive member"
                )
            arrays[name] = np.asarray(arr)
    arrays["manifest"] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    arrays["events"] = np.frombuffer(
        json.dumps([to_payload(e) for e in events]).encode("utf-8"),
        dtype=np.uint8,
    )
    atomic_savez(path, **arrays)
    return path


class DetectorCheckpoint:
    """A loaded (not yet validated) checkpoint archive."""

    def __init__(self, manifest: dict, events: list[dict], arrays: dict):
        self.manifest = manifest
        self.events = events
        self._arrays = arrays

    def node_state(self, index: int, path: str) -> dict:
        meta = self.manifest["nodes"][path]
        return {
            "ring": self._arrays[f"node{index}_ring"],
            "csum": self._arrays[f"node{index}_csum"],
            "pending_starts": self._arrays[f"node{index}_pending_starts"],
            "pending_snaps": self._arrays[f"node{index}_pending_snaps"],
            "count": int(meta["count"]),
            "emitted": int(meta["emitted"]),
            "anchor": int(meta["anchor"]),
        }

    def node_history(self, index: int) -> tuple[list[int], list[float]]:
        return (
            self._arrays[f"node{index}_hist_labels"].tolist(),
            self._arrays[f"node{index}_hist_conf"].tolist(),
        )

    def array(self, name: str) -> np.ndarray | None:
        """An extra archive member (server queue blobs), if present."""
        return self._arrays.get(name)


def load_checkpoint(path: str | Path) -> DetectorCheckpoint:
    """Load and structurally validate a checkpoint archive.

    Truncated, corrupt or non-checkpoint files raise
    :class:`CheckpointError` (never a raw numpy/zip/KeyError), so a
    crash *during* a checkpoint write — already unlikely thanks to the
    atomic temp-file + rename — cannot take the resuming process down
    ungracefully.
    """
    path = Path(path)
    if not path.exists():
        raise CheckpointError(
            f"{path}: checkpoint file does not exist", field="path"
        )
    try:
        arrays = load_npz_arrays(path)
        if "manifest" not in arrays:
            raise CheckpointError(
                f"{path}: not a detector checkpoint (no manifest)",
                field="manifest",
            )
        manifest = json.loads(bytes(arrays["manifest"]).decode("utf-8"))
        if manifest.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"{path}: unsupported checkpoint format "
                f"{manifest.get('format')!r}",
                field="format",
            )
        events = json.loads(bytes(arrays["events"]).decode("utf-8"))
        for i, node in enumerate(manifest["paths"]):
            for part in ("ring", "csum", "pending_starts", "pending_snaps"):
                if f"node{i}_{part}" not in arrays:
                    raise CheckpointError(
                        f"{path}: checkpoint missing array "
                        f"node{i}_{part} for node {node!r}",
                        field=f"node{i}_{part}",
                    )
    except CheckpointError:
        raise
    except Exception as exc:  # zip/json/numpy decode failures
        raise CheckpointError(
            f"{path}: unreadable checkpoint archive ({exc})", field="archive"
        ) from exc
    return DetectorCheckpoint(manifest, events, arrays)


def restore_checkpoint(
    ckpt: DetectorCheckpoint,
    detector: FleetFaultDetector,
    *,
    fingerprint: str,
    chunk: int,
    guard=None,
) -> tuple[list[dict], int, int, int]:
    """Restore a checkpoint into a freshly constructed detector.

    Validates lineage, geometry, mode/backend compatibility and every
    pinned replay knob before touching any state — a mismatch raises
    :class:`CheckpointError` with the offending ``field``.  Returns
    ``(events, next_lo, n_events, n_alerts)`` for the replay loop.
    """
    m = ckpt.manifest
    if m["fingerprint"] != fingerprint:
        raise CheckpointError(
            "checkpoint was taken against a different trained fleet "
            f"(lineage {m['fingerprint'][:12]}... vs {fingerprint[:12]}...)",
            field="fingerprint",
        )
    if m["mode"] != detector.mode:
        raise CheckpointError(
            f"checkpoint mode {m['mode']!r} is incompatible with a "
            f"{detector.mode!r} resume; cross-backend restores are only "
            "exact-mode (float32/quantized state is not bit-portable)",
            field="mode",
        )
    if m["backend"] != detector.backend and detector.mode != "exact":
        raise CheckpointError(
            f"checkpoint backend {m['backend']!r} cannot resume on "
            f"{detector.backend!r} outside exact mode",
            field="backend",
        )
    if int(m["chunk"]) != int(chunk):
        raise CheckpointError(
            f"checkpoint taken at chunk={m['chunk']}, resume wants "
            f"chunk={chunk} (tick boundaries would shift)",
            field="chunk",
        )
    if list(m["paths"]) != list(detector.paths):
        raise CheckpointError(
            f"checkpoint covers {len(m['paths'])} node(s) "
            f"{m['paths'][:4]}..., detector has "
            f"{len(detector.paths)} node(s)",
            field="paths",
        )
    params = _detector_params(detector)
    for knob in _PINNED_PARAMS:
        if m["params"].get(knob) != params[knob]:
            raise CheckpointError(
                f"checkpoint taken with {knob}={m['params'].get(knob)!r}, "
                f"resume wants {knob}={params[knob]!r}",
                field=knob,
            )
    if (m.get("guard") is not None) != (guard is not None):
        raise CheckpointError(
            "guard mismatch: checkpoint "
            + ("has" if m.get("guard") is not None else "lacks")
            + " guard state but the resuming replay "
            + ("lacks" if guard is None else "has")
            + " a guard",
            field="guard",
        )
    try:
        detector.restore_stream_states(
            {
                node: ckpt.node_state(i, node)
                for i, node in enumerate(m["paths"])
            }
        )
    except (KeyError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint stream state does not fit this fleet ({exc})",
            field="streams",
        ) from exc
    for i, node in enumerate(m["paths"]):
        detector.policy(node).load_state(m["policies"][node])
        detector._windows[node] = int(m["nodes"][node]["windows"])
        if detector.record_history:
            detector.history[node] = ckpt.node_history(i)
    if guard is not None:
        guard.load_state(m["guard"])
    return (
        list(ckpt.events),
        int(m["next_lo"]),
        int(m["n_events"]),
        int(m["n_alerts"]),
    )

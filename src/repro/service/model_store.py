"""Versioned npz persistence for trained fleets.

``repro serve`` / ``repro detect`` used to retrain the whole fleet on
every invocation — CS models per node plus the shared random forest —
even though training is a pure function of the recipes and knobs.
:func:`save_fleet_npz` snapshots a :class:`~repro.service.classify.
TrainedFleet` into one atomic ``.npz`` archive (same temp-file + rename
discipline and manifest-as-uint8 convention as the segment cache in
:mod:`repro.monitoring.storage`), and :func:`load_fleet_npz` rebuilds a
fleet whose detection output is **bit-identical** to the freshly trained
original: CS models round-trip as raw float64/intp arrays and the forest
through :meth:`repro.ml.forest.RandomForestClassifier.to_arrays`.

The manifest records the geometry knobs (``blocks``/``wl``/``ws``) so a
loaded model can be validated against the run that wants to use it —
silently classifying with mismatched window geometry would produce
garbage alerts, so :func:`load_fleet_npz` raises instead.

Every way an archive can be bad — truncated download, bit-flipped
block, not-an-npz, missing arrays, mangled manifest — surfaces as a
:class:`ModelStoreError` naming the offending field, never a raw
zipfile/numpy/JSON traceback: model files cross machine boundaries, so
a hostile or damaged file must be a *diagnosable* failure.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path
from zipfile import BadZipFile

import numpy as np

from repro.core.model import CSModel
from repro.engine.fleet import FleetSignatureEngine
from repro.ml.forest import RandomForestClassifier
from repro.monitoring.storage import atomic_savez, load_npz_arrays
from repro.service.classify import FleetClassifier, TrainedFleet

__all__ = [
    "FLEET_MODEL_FORMAT",
    "ModelStoreError",
    "save_fleet_npz",
    "load_fleet_npz",
]

FLEET_MODEL_FORMAT = "repro-fleet-model/v1"


class ModelStoreError(ValueError):
    """A fleet model archive is unusable; ``field`` names the offender."""

    def __init__(self, message: str, *, field: str | None = None):
        super().__init__(message)
        self.field = field


def save_fleet_npz(trained: TrainedFleet, path: str | Path) -> Path:
    """Persist a trained fleet as one atomic ``.npz`` archive.

    Stores per-node CS models (permutation + bounds + healthy reference
    signature), the shared forest's flat node arrays, and a JSON
    manifest with the fleet geometry and label metadata.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    engine = trained.engine
    paths = engine.paths
    arrays: dict[str, np.ndarray] = {}
    sensor_names: list[list[str] | None] = []
    for i, node in enumerate(paths):
        model = engine.model(node)
        arrays[f"node{i}_perm"] = model.permutation
        arrays[f"node{i}_lower"] = model.lower
        arrays[f"node{i}_upper"] = model.upper
        arrays[f"node{i}_reference"] = trained.references[node]
        sensor_names.append(
            list(model.sensor_names) if model.sensor_names is not None else None
        )
    for name, arr in trained.classifier.forest.to_arrays().items():
        arrays[f"forest_{name}"] = arr
    manifest = {
        "format": FLEET_MODEL_FORMAT,
        "blocks": "all" if engine.blocks is None else int(engine.blocks),
        "wl": int(engine.wl),
        "ws": int(engine.ws),
        "paths": list(paths),
        "sensor_names": sensor_names,
        "label_names": list(trained.label_names),
        "healthy_label": int(trained.healthy_label),
    }
    arrays["manifest"] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    atomic_savez(path, **arrays)
    return path


def load_fleet_npz(
    path: str | Path,
    *,
    expect_blocks: int | str | None = None,
    expect_wl: int | None = None,
    expect_ws: int | None = None,
    expect_paths: list[str] | None = None,
) -> TrainedFleet:
    """Rebuild a :class:`TrainedFleet` saved by :func:`save_fleet_npz`.

    The optional ``expect_*`` arguments validate the archive against the
    run's own knobs; any mismatch raises :class:`ModelStoreError` (a
    ``ValueError``) with the stored vs expected values, which is how
    ``repro detect --model`` refuses to replay a fleet trained under
    different geometry.  Unreadable archives — truncated, bit-flipped,
    not an npz — also raise :class:`ModelStoreError`, with ``field``
    naming what failed.
    """
    path = Path(path)
    if not path.exists():
        raise ModelStoreError(
            f"{path}: fleet model file does not exist", field="path"
        )
    try:
        # Eager load (no mmap): the zip layer verifies each member's
        # CRC-32 on decompression, so a bit-flipped or truncated archive
        # fails *here* with a typed error instead of feeding silently
        # corrupted model arrays into detection.
        data = load_npz_arrays(path)
    except ModelStoreError:
        raise
    except (BadZipFile, OSError, ValueError, KeyError, EOFError, zlib.error) as exc:
        raise ModelStoreError(
            f"{path}: unreadable fleet model archive ({exc})",
            field="archive",
        ) from exc
    if "manifest" not in data:
        raise ModelStoreError(
            f"{path}: not a fleet model archive (no manifest)",
            field="manifest",
        )
    try:
        manifest = json.loads(bytes(data["manifest"]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ModelStoreError(
            f"{path}: corrupt fleet model manifest ({exc})",
            field="manifest",
        ) from exc
    if manifest.get("format") != FLEET_MODEL_FORMAT:
        raise ModelStoreError(
            f"{path}: unsupported fleet model format "
            f"{manifest.get('format')!r}",
            field="format",
        )
    blocks = manifest["blocks"]
    if expect_blocks is not None and blocks != (
        "all" if expect_blocks == "all" else int(expect_blocks)
    ):
        raise ModelStoreError(
            f"{path}: model trained with blocks={blocks!r}, run wants "
            f"blocks={expect_blocks!r}",
            field="blocks",
        )
    for knob, expect in (("wl", expect_wl), ("ws", expect_ws)):
        if expect is not None and int(manifest[knob]) != int(expect):
            raise ModelStoreError(
                f"{path}: model trained with {knob}={manifest[knob]}, run "
                f"wants {knob}={expect}",
                field=knob,
            )
    paths = list(manifest["paths"])
    if expect_paths is not None and sorted(paths) != sorted(expect_paths):
        raise ModelStoreError(
            f"{path}: model covers {len(paths)} nodes "
            f"{sorted(paths)[:4]}..., run wants {len(expect_paths)} nodes "
            f"{sorted(expect_paths)[:4]}...",
            field="paths",
        )
    try:
        engine = FleetSignatureEngine(
            blocks, wl=int(manifest["wl"]), ws=int(manifest["ws"])
        )
        references: dict[str, np.ndarray] = {}
        for i, node in enumerate(paths):
            names = manifest["sensor_names"][i]
            engine.set_model(
                node,
                CSModel(
                    permutation=np.array(data[f"node{i}_perm"], dtype=np.intp),
                    lower=np.array(data[f"node{i}_lower"], dtype=np.float64),
                    upper=np.array(data[f"node{i}_upper"], dtype=np.float64),
                    sensor_names=tuple(names) if names is not None else None,
                ),
            )
            references[node] = np.array(data[f"node{i}_reference"])
        forest = RandomForestClassifier.from_arrays(
            {
                name[len("forest_") :]: arr
                for name, arr in data.items()
                if name.startswith("forest_")
            }
        )
        label_names = tuple(manifest["label_names"])
        healthy_label = int(manifest["healthy_label"])
    except ModelStoreError:
        raise
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise ModelStoreError(
            f"{path}: fleet model archive is structurally invalid ({exc})",
            field="arrays",
        ) from exc
    return TrainedFleet(
        engine=engine,
        classifier=FleetClassifier(forest, label_names),
        references=references,
        label_names=label_names,
        healthy_label=healthy_label,
    )

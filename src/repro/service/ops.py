"""HTTP ops surface for a live :class:`~repro.service.net.FleetServer`.

A deliberately tiny HTTP/1.1 responder on the server's own event loop
(stdlib only — no framework).  All responses are JSON and close the
connection.  Routes:

========================== =========================================
``GET /health``            liveness + readiness + degraded reasons
                           (WAL flush lag, quarantined nodes,
                           barrier-timeout streak) + tick/fleet size
``GET /health/live``       bare liveness probe (always 200)
``GET /health/ready``      readiness probe (503 until listeners are
                           bound and recovery finished, or once a
                           stop is in flight)
``GET /fleet``             per-node guard health (``fleet_health()``)
``GET /alerts``            alert log with full ``repro-alerts/v1``
                           root-cause payloads (suppressed hidden;
                           ``?all=1`` shows them)
``POST /alerts/<id>/ack``  acknowledge an alert
``POST /alerts/<id>/suppress``  hide an alert from the default list
``GET /stats``             ingestion counters, samples/sec, tick
                           latency p50/p99, backpressure totals
========================== =========================================

:class:`AlertLog` is the bridge: it is an
:class:`~repro.service.alerts.AlertSink` fed the live event stream, so
the ops view needs no second pipeline and can never disagree with the
JSONL the sinks wrote.
"""

from __future__ import annotations

import json
from collections import deque

from repro.service.alerts import ALERTS_SCHEMA, AlertSink, to_payload

__all__ = ["AlertLog", "OpsProtocolServer"]


class AlertLog(AlertSink):
    """In-memory alert registry with stable ids and ack/suppress bits.

    Every ``open`` event mints an id (``a000000``, ``a000001``, ...);
    the matching ``close``/``flush`` event transitions the record.
    Guard events are not alerts and pass through uncounted.

    Retention is bounded: only the newest ``MAX_RECORDS`` records are
    kept (older ones are evicted and counted in :attr:`evicted`), so a
    long-running fleet with churning alerts holds steady-state memory.
    A second ``open`` for a node whose prior record never closed marks
    that prior record ``superseded`` instead of leaking it open.
    """

    #: Newest records retained; older ones are evicted FIFO.
    MAX_RECORDS = 4096

    def __init__(self):
        self._records: deque = deque()
        self._by_id: dict[str, dict] = {}
        self._open_by_node: dict[str, dict] = {}
        self._next_id = 0
        self.evicted = 0

    def emit(self, event: dict) -> None:
        kind = event.get("event")
        if kind == "open":
            prior = self._open_by_node.get(event["node"])
            if prior is not None:
                # Re-open with the prior still open: the close never
                # reached us — retire the stale record explicitly.
                prior["state"] = "superseded"
            record = {
                "id": f"a{self._next_id:06d}",
                "node": event["node"],
                "state": "open",
                "acked": False,
                "suppressed": False,
                "opened_window": event.get("window"),
                "open_event": to_payload(event),
                "close_event": None,
            }
            self._next_id += 1
            self._records.append(record)
            self._by_id[record["id"]] = record
            self._open_by_node[record["node"]] = record
            while len(self._records) > self.MAX_RECORDS:
                old = self._records.popleft()
                self._by_id.pop(old["id"], None)
                if self._open_by_node.get(old["node"]) is old:
                    del self._open_by_node[old["node"]]
                self.evicted += 1
        elif kind in ("close", "flush"):
            record = self._open_by_node.pop(event.get("node"), None)
            if record is not None:
                record["state"] = "closed" if kind == "close" else "flushed"
                record["close_event"] = to_payload(event)

    def records(self, *, include_suppressed: bool = False) -> list[dict]:
        return [
            r
            for r in self._records
            if include_suppressed or not r["suppressed"]
        ]

    def ack(self, alert_id: str) -> bool:
        record = self._by_id.get(alert_id)
        if record is None:
            return False
        record["acked"] = True
        return True

    def suppress(self, alert_id: str) -> bool:
        record = self._by_id.get(alert_id)
        if record is None:
            return False
        record["suppressed"] = True
        return True


class OpsProtocolServer:
    """Request handler bound to one :class:`FleetServer`'s live state."""

    MAX_HEAD = 64 * 1024

    def __init__(self, server):
        self.server = server

    async def handle(self, reader, writer):
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except Exception:
            writer.close()
            return
        try:
            status, body = self._dispatch(head)
        except Exception as exc:  # never take the loop down from ops
            status, body = 500, {"error": str(exc)}
        payload = json.dumps(body, separators=(",", ":")).encode("utf-8")
        reason = {
            200: "OK",
            404: "Not Found",
            405: "Method Not Allowed",
            503: "Service Unavailable",
        }
        writer.write(
            (
                f"HTTP/1.1 {status} {reason.get(status, 'Error')}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("ascii")
            + payload
        )
        try:
            await writer.drain()
        except ConnectionResetError:
            pass
        writer.close()

    def _dispatch(self, head: bytes) -> tuple[int, dict]:
        request_line = head.split(b"\r\n", 1)[0].decode("latin-1")
        parts = request_line.split(" ")
        if len(parts) < 2:
            return 404, {"error": "bad request"}
        method, target = parts[0], parts[1]
        path, _, query = target.partition("?")
        srv = self.server
        if method == "GET" and path == "/health":
            return 200, srv.health()
        if method == "GET" and path == "/health/live":
            # Liveness is answering at all: if the loop can run this
            # handler, the process is alive.
            return 200, {"live": True}
        if method == "GET" and path == "/health/ready":
            payload = srv.health()
            ready = bool(payload["ready"])
            return (200 if ready else 503), {
                "ready": ready,
                "status": payload["status"],
                "reasons": payload["reasons"],
            }
        if method == "GET" and path == "/fleet":
            return 200, {"fleet": srv.guarded.fleet_health()}
        if method == "GET" and path == "/alerts":
            include = "all=1" in query.split("&")
            return 200, {
                "schema": ALERTS_SCHEMA,
                "alerts": srv.alert_log.records(include_suppressed=include),
            }
        if path.startswith("/alerts/") and path.count("/") == 3:
            _, _, alert_id, action = path.split("/")
            if action in ("ack", "suppress"):
                if method != "POST":
                    return 405, {"error": "POST required"}
                fn = getattr(srv.alert_log, action)
                if fn(alert_id):
                    return 200, {"id": alert_id, action: True}
                return 404, {"error": f"unknown alert {alert_id!r}"}
        if method == "GET" and path == "/stats":
            srv._gather_backpressure()
            return 200, srv.stats.snapshot()
        return 404, {"error": f"no route for {method} {path}"}

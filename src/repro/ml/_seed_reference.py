"""Frozen seed implementation of the CART trees and random forests.

This module preserves, verbatim in behaviour, the pre-optimization ML
engine: the per-node ``np.argsort`` recursive tree builder (one-hot +
``cumsum`` Gini scan, cumulative-moment MSE scan) and the forests that
loop over 50 sequential per-tree walks at predict time.

It exists for two reasons:

* the golden-model tests in ``tests/test_ml_golden.py`` assert that the
  presorted iterative builder in :mod:`repro.ml.tree` produces
  bit-identical node arrays and predictions;
* ``benchmarks/test_ml_scaling.py`` measures the optimized engine
  against this exact code path and records the speedups in
  ``BENCH_ml.json``.

Do not modify this file when optimizing the live engine — it is the
baseline the optimizations are measured and verified against.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "SeedDecisionTreeClassifier",
    "SeedDecisionTreeRegressor",
    "SeedRandomForestClassifier",
    "SeedRandomForestRegressor",
]

_LEAF = -1


def _resolve_max_features(max_features, n_features: int) -> int:
    """Translate a max_features spec into a concrete column count."""
    if max_features is None:
        return n_features
    if isinstance(max_features, str):
        if max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if max_features == "log2":
            return max(1, int(np.log2(n_features))) if n_features > 1 else 1
        raise ValueError(f"unknown max_features spec {max_features!r}")
    if isinstance(max_features, float):
        if not 0.0 < max_features <= 1.0:
            raise ValueError("float max_features must be in (0, 1]")
        return max(1, int(max_features * n_features))
    mf = int(max_features)
    if mf < 1:
        raise ValueError("max_features must be >= 1")
    return min(mf, n_features)


class _TreeBuilder:
    """Shared recursive builder; criterion handled by subclass hooks."""

    def __init__(
        self,
        *,
        max_depth: int | None,
        min_samples_split: int,
        min_samples_leaf: int,
        max_features,
        rng: np.random.Generator,
    ):
        self.max_depth = np.inf if max_depth is None else int(max_depth)
        self.min_samples_split = int(min_samples_split)
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_features = max_features
        self.rng = rng
        # Flat tree arrays, grown via Python lists during the build.
        self.feature: list[int] = []
        self.threshold: list[float] = []
        self.left: list[int] = []
        self.right: list[int] = []
        self.values: list[np.ndarray] = []

    # Subclass hooks ----------------------------------------------------
    def node_value(self, idx: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def node_impurity(self, idx: np.ndarray) -> float:
        raise NotImplementedError

    def split_gain(self, idx: np.ndarray, order: np.ndarray, col: np.ndarray):
        """Best split of one sorted feature; returns (gain, pos) or None.

        ``order`` sorts ``idx`` by ``col`` (already gathered values);
        ``pos`` is the count of samples in the left child.
        """
        raise NotImplementedError

    # Build -------------------------------------------------------------
    def build(self, X: np.ndarray, idx: np.ndarray, depth: int) -> int:
        node = len(self.feature)
        self.feature.append(_LEAF)
        self.threshold.append(0.0)
        self.left.append(_LEAF)
        self.right.append(_LEAF)
        self.values.append(self.node_value(idx))

        m = idx.shape[0]
        if (
            depth >= self.max_depth
            or m < self.min_samples_split
            or m < 2 * self.min_samples_leaf
            or self.node_impurity(idx) <= 1e-12
        ):
            return node

        n_features = X.shape[1]
        k = _resolve_max_features(self.max_features, n_features)
        # Sample without replacement; when k == n_features skip the shuffle.
        if k < n_features:
            candidates = self.rng.choice(n_features, size=k, replace=False)
        else:
            candidates = np.arange(n_features)

        best_gain = 0.0
        best_feature = _LEAF
        best_pos = -1
        best_order: np.ndarray | None = None
        for f in candidates:
            col = X[idx, f]
            if col[0] == col[-1] and (col == col[0]).all():
                continue  # constant feature: no valid split
            order = np.argsort(col)
            found = self.split_gain(idx, order, col[order])
            if found is None:
                continue
            gain, pos = found
            if gain > best_gain + 1e-15:
                best_gain = gain
                best_feature = int(f)
                best_pos = pos
                best_order = order

        if best_feature == _LEAF or best_order is None:
            return node

        col = X[idx, best_feature][best_order]
        thr = 0.5 * (col[best_pos - 1] + col[best_pos])
        # Guard against degenerate thresholds from float averaging.
        if not col[best_pos - 1] < thr:
            thr = col[best_pos]
        left_idx = idx[best_order[:best_pos]]
        right_idx = idx[best_order[best_pos:]]
        self.feature[node] = best_feature
        self.threshold[node] = float(thr)
        self.left[node] = self.build(X, left_idx, depth + 1)
        self.right[node] = self.build(X, right_idx, depth + 1)
        return node

    def finalize(self):
        return (
            np.asarray(self.feature, dtype=np.intp),
            np.asarray(self.threshold, dtype=np.float64),
            np.asarray(self.left, dtype=np.intp),
            np.asarray(self.right, dtype=np.intp),
            np.stack(self.values),
        )


class _ClassificationBuilder(_TreeBuilder):
    def __init__(self, y: np.ndarray, n_classes: int, **kw):
        super().__init__(**kw)
        self.y = y
        self.n_classes = n_classes
        self.min_leaf = self.min_samples_leaf

    def node_value(self, idx: np.ndarray) -> np.ndarray:
        return np.bincount(self.y[idx], minlength=self.n_classes).astype(
            np.float64
        ) / idx.shape[0]

    def node_impurity(self, idx: np.ndarray) -> float:
        p = self.node_value(idx)
        return float(1.0 - np.einsum("i,i->", p, p))

    def split_gain(self, idx, order, sorted_col):
        m = order.shape[0]
        labels = self.y[idx[order]]
        onehot = np.zeros((m, self.n_classes))
        onehot[np.arange(m), labels] = 1.0
        left_counts = np.cumsum(onehot, axis=0)  # counts including row i
        total = left_counts[-1]
        # Candidate split after position i (left size i+1); valid where the
        # feature value changes and both children satisfy min_samples_leaf.
        sizes_left = np.arange(1, m + 1, dtype=np.float64)
        sizes_right = m - sizes_left
        valid = np.empty(m, dtype=bool)
        valid[:-1] = sorted_col[1:] > sorted_col[:-1]
        valid[-1] = False
        if self.min_leaf > 1:
            valid &= (sizes_left >= self.min_leaf) & (sizes_right >= self.min_leaf)
        if not valid.any():
            return None
        with np.errstate(divide="ignore", invalid="ignore"):
            gini_left = 1.0 - np.einsum(
                "ij,ij->i", left_counts, left_counts
            ) / (sizes_left**2)
            right_counts = total - left_counts
            safe_right = np.where(sizes_right > 0, sizes_right, 1.0)
            gini_right = 1.0 - np.einsum(
                "ij,ij->i", right_counts, right_counts
            ) / (safe_right**2)
        parent = 1.0 - np.einsum("i,i->", total, total) / m**2
        weighted = (sizes_left * gini_left + sizes_right * gini_right) / m
        gains = np.where(valid, parent - weighted, -np.inf)
        best = int(np.argmax(gains))
        if gains[best] <= 0.0:
            return None
        return float(gains[best]), best + 1


class _RegressionBuilder(_TreeBuilder):
    def __init__(self, y: np.ndarray, **kw):
        super().__init__(**kw)
        self.y = y
        self.min_leaf = self.min_samples_leaf

    def node_value(self, idx: np.ndarray) -> np.ndarray:
        return np.asarray([self.y[idx].mean()])

    def node_impurity(self, idx: np.ndarray) -> float:
        return float(self.y[idx].var())

    def split_gain(self, idx, order, sorted_col):
        m = order.shape[0]
        targets = self.y[idx[order]]
        csum = np.cumsum(targets)
        csum2 = np.cumsum(targets * targets)
        total, total2 = csum[-1], csum2[-1]
        sizes_left = np.arange(1, m + 1, dtype=np.float64)
        sizes_right = m - sizes_left
        valid = np.empty(m, dtype=bool)
        valid[:-1] = sorted_col[1:] > sorted_col[:-1]
        valid[-1] = False
        if self.min_leaf > 1:
            valid &= (sizes_left >= self.min_leaf) & (sizes_right >= self.min_leaf)
        if not valid.any():
            return None
        # Variance * size == sum(y^2) - (sum y)^2 / size ; minimize the sum
        # of child SSEs == maximize parent SSE - children SSE.
        sse_left = csum2 - csum**2 / sizes_left
        safe_right = np.where(sizes_right > 0, sizes_right, 1.0)
        sse_right = (total2 - csum2) - (total - csum) ** 2 / safe_right
        sse_right = np.where(sizes_right > 0, sse_right, 0.0)
        parent_sse = total2 - total**2 / m
        gains = np.where(valid, (parent_sse - sse_left - sse_right) / m, -np.inf)
        best = int(np.argmax(gains))
        if gains[best] <= 1e-15:
            return None
        return float(gains[best]), best + 1


class _BaseDecisionTree:
    """Shared fit/predict plumbing for the two tree flavours."""

    def __init__(
        self,
        *,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        random_state: int | np.random.Generator | None = None,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self._fitted = False

    def _rng(self) -> np.random.Generator:
        if isinstance(self.random_state, np.random.Generator):
            return self.random_state
        return np.random.default_rng(self.random_state)

    def _check_X(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        return X

    def _apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf index reached by every row of ``X``."""
        if not self._fitted:
            raise RuntimeError("tree is not fitted")
        X = self._check_X(X)
        node = np.zeros(X.shape[0], dtype=np.intp)
        active = self._feature[node] != _LEAF
        while active.any():
            cur = node[active]
            f = self._feature[cur]
            thr = self._threshold[cur]
            go_left = X[active, f] <= thr
            nxt = np.where(go_left, self._left[cur], self._right[cur])
            node[active] = nxt
            active = self._feature[node] != _LEAF
        return node

    @property
    def node_count(self) -> int:
        """Total number of nodes in the fitted tree."""
        if not self._fitted:
            raise RuntimeError("tree is not fitted")
        return int(self._feature.shape[0])

    @property
    def depth(self) -> int:
        """Depth of the fitted tree (root-only tree has depth 0)."""
        if not self._fitted:
            raise RuntimeError("tree is not fitted")
        depths = np.zeros(self.node_count, dtype=np.intp)
        for node in range(self.node_count):
            for child in (self._left[node], self._right[node]):
                if child != _LEAF:
                    depths[child] = depths[node] + 1
        return int(depths.max())


class SeedDecisionTreeClassifier(_BaseDecisionTree):
    """CART classifier with Gini impurity splits."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SeedDecisionTreeClassifier":
        X = self._check_X(X)
        y = np.asarray(y)
        if y.shape != (X.shape[0],):
            raise ValueError("y must be 1-D with one label per row of X")
        self.classes_, y_enc = np.unique(y, return_inverse=True)
        builder = _ClassificationBuilder(
            y_enc.astype(np.intp),
            n_classes=self.classes_.shape[0],
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            rng=self._rng(),
        )
        builder.build(X, np.arange(X.shape[0], dtype=np.intp), 0)
        (
            self._feature,
            self._threshold,
            self._left,
            self._right,
            self._values,
        ) = builder.finalize()
        self._fitted = True
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class-probability estimates (leaf class frequencies)."""
        nodes = self._apply(X)
        return self._values[nodes]

    def predict(self, X: np.ndarray) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]


class SeedDecisionTreeRegressor(_BaseDecisionTree):
    """CART regressor with variance-reduction (MSE) splits."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SeedDecisionTreeRegressor":
        X = self._check_X(X)
        y = np.asarray(y, dtype=np.float64)
        if y.shape != (X.shape[0],):
            raise ValueError("y must be 1-D with one target per row of X")
        builder = _RegressionBuilder(
            y,
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            rng=self._rng(),
        )
        builder.build(X, np.arange(X.shape[0], dtype=np.intp), 0)
        (
            self._feature,
            self._threshold,
            self._left,
            self._right,
            self._values,
        ) = builder.finalize()
        self._fitted = True
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        nodes = self._apply(X)
        return self._values[nodes][:, 0]


class _SeedBaseForest:
    def __init__(
        self,
        n_estimators: int = 50,
        *,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        bootstrap: bool = True,
        random_state: int | None = None,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = int(n_estimators)
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bool(bootstrap)
        self.random_state = random_state
        self.estimators_: list = []

    def _tree_factory(self, rng: np.random.Generator):
        raise NotImplementedError

    def _fit_forest(self, X: np.ndarray, y: np.ndarray) -> None:
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if y.shape[0] != X.shape[0]:
            raise ValueError("X and y have inconsistent lengths")
        m = X.shape[0]
        seeds = np.random.SeedSequence(self.random_state).spawn(self.n_estimators)
        self.estimators_ = []
        for seq in seeds:
            rng = np.random.default_rng(seq)
            if self.bootstrap:
                sample = rng.integers(0, m, size=m)
            else:
                sample = np.arange(m)
            tree = self._tree_factory(rng)
            tree.fit(X[sample], y[sample])
            self.estimators_.append(tree)

    @property
    def is_fitted(self) -> bool:
        return bool(self.estimators_)

    def _require_fit(self) -> None:
        if not self.estimators_:
            raise RuntimeError("forest is not fitted")


class SeedRandomForestClassifier(_SeedBaseForest):
    """Bootstrap-aggregated Gini CART classifier (soft voting).

    Parameters mirror the paper's setup; ``max_features`` defaults to
    ``"sqrt"`` as in scikit-learn's classifier forests.
    """

    def __init__(self, n_estimators: int = 50, *, max_features="sqrt", **kw):
        super().__init__(n_estimators, max_features=max_features, **kw)

    def _tree_factory(self, rng: np.random.Generator) -> SeedDecisionTreeClassifier:
        return SeedDecisionTreeClassifier(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            random_state=rng,
        )

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SeedRandomForestClassifier":
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        self._class_index = {c: i for i, c in enumerate(self.classes_)}
        self._fit_forest(X, y)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Mean of per-tree leaf class frequencies (soft voting)."""
        self._require_fit()
        X = np.asarray(X, dtype=np.float64)
        proba = np.zeros((X.shape[0], self.classes_.shape[0]))
        for tree in self.estimators_:
            tree_proba = tree.predict_proba(X)
            # Trees trained on bootstrap samples may miss rare classes;
            # align their columns onto the forest's class set.
            cols = np.searchsorted(self.classes_, tree.classes_)
            proba[:, cols] += tree_proba
        proba /= len(self.estimators_)
        return proba

    def predict(self, X: np.ndarray) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]


class SeedRandomForestRegressor(_SeedBaseForest):
    """Bootstrap-aggregated variance-reduction CART regressor.

    ``max_features`` defaults to one third of the features (Breiman's
    classic regression-forest recommendation) and ``min_samples_leaf`` to
    5, which keeps continuous-target trees from degenerating into one
    leaf per sample; both can be overridden.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        *,
        max_features=1 / 3,
        min_samples_leaf: int = 5,
        **kw,
    ):
        super().__init__(
            n_estimators,
            max_features=max_features,
            min_samples_leaf=min_samples_leaf,
            **kw,
        )

    def _tree_factory(self, rng: np.random.Generator) -> SeedDecisionTreeRegressor:
        return SeedDecisionTreeRegressor(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            random_state=rng,
        )

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SeedRandomForestRegressor":
        self._fit_forest(X, np.asarray(y, dtype=np.float64))
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._require_fit()
        X = np.asarray(X, dtype=np.float64)
        acc = np.zeros(X.shape[0])
        for tree in self.estimators_:
            acc += tree.predict(X)
        return acc / len(self.estimators_)

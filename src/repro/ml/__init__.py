"""Machine-learning substrate (scikit-learn replacement).

The paper's evaluation uses scikit-learn 0.20.3 models; that package is
not available in this environment, so this subpackage re-implements the
pieces the evaluation needs, with the same hyper-parameters:

* :class:`~repro.ml.forest.RandomForestClassifier` /
  :class:`~repro.ml.forest.RandomForestRegressor` — 50 estimators, Gini
  impurity (classification) or variance reduction (regression), bootstrap
  sampling and per-split feature subsampling, built on the CART trees in
  :mod:`repro.ml.tree`;
* :class:`~repro.ml.mlp.MLPClassifier` — 2 hidden layers of 100 ReLU
  units, softmax output, Adam optimizer;
* :mod:`repro.ml.model_selection` — stratified and plain K-fold
  cross-validation with shuffling;
* :mod:`repro.ml.metrics` — F1 score (macro), precision/recall, NRMSE and
  the paper's ``ML score`` convention (``1 - NRMSE`` for regression).

Everything is pure numpy, vectorized per the HPC-Python guides: split
search uses prefix-sum scans over sorted features rather than per-sample
loops.
"""

from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    f1_score,
    ml_score_classification,
    ml_score_regression,
    nrmse,
    precision_recall_f1,
    r2_score,
    rmse,
)
from repro.ml.mlp import MLPClassifier, MLPRegressor
from repro.ml.model_selection import (
    KFold,
    StratifiedKFold,
    cross_validate_classifier,
    cross_validate_regressor,
    repeated_cross_validate_classifier,
    repeated_cross_validate_regressor,
    train_test_split,
)
from repro.ml.preprocessing import LabelEncoder, MinMaxScaler, StandardScaler
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = [
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "RandomForestClassifier",
    "RandomForestRegressor",
    "MLPClassifier",
    "MLPRegressor",
    "KFold",
    "StratifiedKFold",
    "train_test_split",
    "cross_validate_classifier",
    "cross_validate_regressor",
    "repeated_cross_validate_classifier",
    "repeated_cross_validate_regressor",
    "LabelEncoder",
    "MinMaxScaler",
    "StandardScaler",
    "accuracy_score",
    "confusion_matrix",
    "f1_score",
    "precision_recall_f1",
    "ml_score_classification",
    "ml_score_regression",
    "nrmse",
    "rmse",
    "r2_score",
]

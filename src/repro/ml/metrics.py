"""Evaluation metrics used in the paper's experiments.

Classification quality is reported as the **F1-score** ("the harmonic mean
between the precision and recall metrics"), macro-averaged over classes.
Regression quality is the **Normalized Root Mean Square Error**; to show
both on one higher-is-better axis the paper defines the *ML score*
``NRMSE_c = 1 - NRMSE``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "confusion_matrix",
    "accuracy_score",
    "precision_recall_f1",
    "f1_score",
    "rmse",
    "nrmse",
    "r2_score",
    "ml_score_classification",
    "ml_score_regression",
]


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, labels: np.ndarray | None = None
) -> np.ndarray:
    """Confusion matrix ``C[i, j]`` = samples of class i predicted as j."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    else:
        labels = np.asarray(labels)
    k = labels.shape[0]
    ti = np.searchsorted(labels, y_true)
    pi = np.searchsorted(labels, y_pred)
    # Guard against values not present in `labels`.
    if k == 0 or np.any(labels[np.clip(ti, 0, k - 1)] != y_true) or np.any(
        labels[np.clip(pi, 0, k - 1)] != y_pred
    ):
        raise ValueError("y contains values not present in labels")
    cm = np.zeros((k, k), dtype=np.int64)
    np.add.at(cm, (ti, pi), 1)
    return cm


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exactly correct predictions."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    if y_true.size == 0:
        raise ValueError("cannot score empty arrays")
    return float(np.mean(y_true == y_pred))


def precision_recall_f1(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    *,
    average: str = "macro",
    labels: np.ndarray | None = None,
) -> tuple[float, float, float]:
    """Precision, recall and F1 with macro/micro/weighted averaging.

    Per-class precision (recall) with an empty denominator is defined as 0,
    matching scikit-learn's zero-division behaviour.
    """
    cm = confusion_matrix(y_true, y_pred, labels=labels).astype(np.float64)
    tp = np.diagonal(cm)
    pred_pos = cm.sum(axis=0)
    actual_pos = cm.sum(axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        prec = np.where(pred_pos > 0, tp / np.where(pred_pos > 0, pred_pos, 1), 0.0)
        rec = np.where(
            actual_pos > 0, tp / np.where(actual_pos > 0, actual_pos, 1), 0.0
        )
        f1 = np.where(prec + rec > 0, 2 * prec * rec / np.where(
            prec + rec > 0, prec + rec, 1
        ), 0.0)
    if average == "macro":
        return float(prec.mean()), float(rec.mean()), float(f1.mean())
    if average == "weighted":
        w = actual_pos / actual_pos.sum()
        return (
            float(np.dot(prec, w)),
            float(np.dot(rec, w)),
            float(np.dot(f1, w)),
        )
    if average == "micro":
        total_tp = tp.sum()
        p = total_tp / cm.sum() if cm.sum() > 0 else 0.0
        return float(p), float(p), float(p)
    raise ValueError(f"unknown average {average!r}")


def f1_score(
    y_true: np.ndarray, y_pred: np.ndarray, *, average: str = "macro"
) -> float:
    """Macro-averaged (by default) F1 score."""
    return precision_recall_f1(y_true, y_pred, average=average)[2]


def rmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Root mean square error."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    if y_true.size == 0:
        raise ValueError("cannot score empty arrays")
    return float(np.sqrt(np.mean((y_true - y_pred) ** 2)))


def nrmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """RMSE normalized by the observed target range.

    A constant target (zero range) makes the normalization undefined; we
    then fall back to the raw RMSE, which is 0 exactly when predictions
    are perfect.
    """
    y_true = np.asarray(y_true, dtype=np.float64)
    value_range = float(y_true.max() - y_true.min()) if y_true.size else 0.0
    raw = rmse(y_true, y_pred)
    return raw / value_range if value_range > 0 else raw


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def ml_score_classification(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """The paper's ML score for classification tasks: macro F1."""
    return f1_score(y_true, y_pred, average="macro")


def ml_score_regression(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """The paper's ML score for regression tasks: ``1 - NRMSE``."""
    return 1.0 - nrmse(y_true, y_pred)

"""Random forests built on the CART trees of :mod:`repro.ml.tree`.

The paper's model of choice: "a random forest (with 50 estimators and
using the Gini impurity to evaluate the quality of splits), due to its
effectiveness in many ODA use cases as well as its robustness against
over-fitting".  Defaults follow scikit-learn 0.20 semantics: bootstrap
sampling, ``max_features="sqrt"`` for classification and all features for
regression.
"""

from __future__ import annotations

import numpy as np

from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = ["RandomForestClassifier", "RandomForestRegressor"]


class _BaseForest:
    def __init__(
        self,
        n_estimators: int = 50,
        *,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        bootstrap: bool = True,
        random_state: int | None = None,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = int(n_estimators)
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bool(bootstrap)
        self.random_state = random_state
        self.estimators_: list = []

    def _tree_factory(self, rng: np.random.Generator):
        raise NotImplementedError

    def _fit_forest(self, X: np.ndarray, y: np.ndarray) -> None:
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if y.shape[0] != X.shape[0]:
            raise ValueError("X and y have inconsistent lengths")
        m = X.shape[0]
        seeds = np.random.SeedSequence(self.random_state).spawn(self.n_estimators)
        self.estimators_ = []
        for seq in seeds:
            rng = np.random.default_rng(seq)
            if self.bootstrap:
                sample = rng.integers(0, m, size=m)
            else:
                sample = np.arange(m)
            tree = self._tree_factory(rng)
            tree.fit(X[sample], y[sample])
            self.estimators_.append(tree)

    @property
    def is_fitted(self) -> bool:
        return bool(self.estimators_)

    def _require_fit(self) -> None:
        if not self.estimators_:
            raise RuntimeError("forest is not fitted")


class RandomForestClassifier(_BaseForest):
    """Bootstrap-aggregated Gini CART classifier (soft voting).

    Parameters mirror the paper's setup; ``max_features`` defaults to
    ``"sqrt"`` as in scikit-learn's classifier forests.
    """

    def __init__(self, n_estimators: int = 50, *, max_features="sqrt", **kw):
        super().__init__(n_estimators, max_features=max_features, **kw)

    def _tree_factory(self, rng: np.random.Generator) -> DecisionTreeClassifier:
        return DecisionTreeClassifier(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            random_state=rng,
        )

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        self._class_index = {c: i for i, c in enumerate(self.classes_)}
        self._fit_forest(X, y)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Mean of per-tree leaf class frequencies (soft voting)."""
        self._require_fit()
        X = np.asarray(X, dtype=np.float64)
        proba = np.zeros((X.shape[0], self.classes_.shape[0]))
        for tree in self.estimators_:
            tree_proba = tree.predict_proba(X)
            # Trees trained on bootstrap samples may miss rare classes;
            # align their columns onto the forest's class set.
            cols = np.searchsorted(self.classes_, tree.classes_)
            proba[:, cols] += tree_proba
        proba /= len(self.estimators_)
        return proba

    def predict(self, X: np.ndarray) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]


class RandomForestRegressor(_BaseForest):
    """Bootstrap-aggregated variance-reduction CART regressor.

    ``max_features`` defaults to one third of the features (Breiman's
    classic regression-forest recommendation) and ``min_samples_leaf`` to
    5, which keeps continuous-target trees from degenerating into one
    leaf per sample; both can be overridden.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        *,
        max_features=1 / 3,
        min_samples_leaf: int = 5,
        **kw,
    ):
        super().__init__(
            n_estimators,
            max_features=max_features,
            min_samples_leaf=min_samples_leaf,
            **kw,
        )

    def _tree_factory(self, rng: np.random.Generator) -> DecisionTreeRegressor:
        return DecisionTreeRegressor(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            random_state=rng,
        )

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        self._fit_forest(X, np.asarray(y, dtype=np.float64))
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._require_fit()
        X = np.asarray(X, dtype=np.float64)
        acc = np.zeros(X.shape[0])
        for tree in self.estimators_:
            acc += tree.predict(X)
        return acc / len(self.estimators_)
